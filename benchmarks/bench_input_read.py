"""Supplementary (paper Section III-B): global .rea input read time.

Paper: reading the global mesh takes 7.5 s (E = 136K on 32,768 procs) to
28 s (E = 546K on 131,072 procs).  Read happens once per run, which is why
the optimization focus is the write path.
"""

from _common import PAPER_SCALE, SMOKE, bench_record, print_series

from repro.experiments.inputread import input_read_time

if PAPER_SCALE:
    CASES = [(32768, 136_000), (65536, 546_000)]
elif SMOKE:
    CASES = [(256, 2_000)]
else:
    CASES = [(1024, 8_000)]


def test_input_read(benchmark):
    def run():
        return [input_read_time(n, e) for n, e in CASES]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Input read: global .rea presetup",
        ["np", "E", "file", "read", "parse", "bcast", "total"],
        [[r["n_ranks"], r["elements"], f"{r['file_mb']:.0f} MB",
          f"{r['read']:.2f} s", f"{r['parse']:.2f} s",
          f"{r['bcast']:.2f} s", f"{r['total']:.2f} s"] for r in results],
    )

    bench_record("input_read", total_s={
        f"np{r['n_ranks']}_E{r['elements']}": r["total"] for r in results
    })
    for r in results:
        assert r["total"] > 0
        assert r["parse"] > r["bcast"]  # parsing dominates distribution
    if PAPER_SCALE:
        small, large = results
        # 7.5 s and 28 s in the paper; match within ~2x.
        assert 3 < small["total"] < 15
        assert 14 < large["total"] < 56
        assert large["total"] > 2.5 * small["total"]
