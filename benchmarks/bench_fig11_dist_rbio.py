"""Figure 11: per-rank I/O time distribution for rbIO at 65,536 processors.

The paper's two "lines": an almost flat upper line — the 1,024 writers'
commit time, well synchronized even with independent MPI_File_write_at —
and a near-zero lower line, the workers' Isend windows.
"""

import numpy as np
from _common import FIG11_NP, PAPER_SCALE, bench_record, print_series

from repro.experiments import fig11_distribution_rbio
from repro.profiling import distribution_summary


def test_fig11_distribution_rbio(benchmark):
    out = benchmark.pedantic(
        lambda: fig11_distribution_rbio(n_ranks=FIG11_NP), rounds=1, iterations=1
    )
    w = distribution_summary(out["writer_times"])
    k = distribution_summary(out["worker_times"])
    print_series(
        f"Fig 11: rbIO per-rank I/O time, np={FIG11_NP}",
        ["population", "count", "median", "max", "spread(max/median)"],
        [
            ["writers", w["count"], f"{w['median']:.2f} s", f"{w['max']:.2f} s",
             f"{w['max']/w['median']:.2f}"],
            ["workers", k["count"], f"{k['median']*1e6:.0f} us",
             f"{k['max']*1e6:.0f} us", f"{k['max']/max(k['median'],1e-12):.2f}"],
        ],
    )
    bench_record("fig11_dist_rbio", n_ranks=FIG11_NP,
                 writer_median_s=w["median"], writer_max_s=w["max"],
                 worker_median_us=k["median"] * 1e6,
                 worker_max_us=k["max"] * 1e6)

    # Two separated lines: workers orders of magnitude below writers.
    assert k["max"] < w["median"] / 100
    # The writer line is flat (good synchronization without collectives).
    assert w["max"] < 1.6 * w["median"]
    if PAPER_SCALE:
        assert w["count"] == 1024
        # Writers commit ~156 GB in ~10 s.
        assert 5 < w["median"] < 20
