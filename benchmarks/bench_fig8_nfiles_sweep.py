"""Figure 8: rbIO (nf = ng) bandwidth as a function of the number of files.

The paper: performance peaks near nf = 1024 concurrently written files on
Intrepid's GPFS at 16K, 32K, and 64K processors — too few files can't
drive the backend, too many thrash it (and flood the step directory).
"""

from _common import FIG8_FILES, PAPER_SCALE, SIZES, bench_record, print_series

from repro.campaign.shim import figure_campaign, prefetch_campaign
from repro.experiments import fig8_file_sweep

#: One campaign over every (nf, np) sweep point; infeasible combinations
#: (fewer than two ranks per writer group) are skipped by the expansion,
#: mirroring the guard fig8_file_sweep itself applies.
CAMPAIGN = figure_campaign("fig8_nfiles_sweep",
                           [f"rbio_nf{nf}" for nf in FIG8_FILES], SIZES)


def test_fig8_file_sweep(benchmark):
    prefetch_campaign(CAMPAIGN)
    out = benchmark.pedantic(
        lambda: fig8_file_sweep(sizes=SIZES, n_files=FIG8_FILES),
        rounds=1, iterations=1,
    )
    rows = []
    for n in SIZES:
        rows.append([f"np={n}"] + [
            f"{out[n][nf]:.2f}" if nf in out[n] else "-" for nf in FIG8_FILES
        ])
    print_series("Fig 8: rbIO (nf=ng) bandwidth (GB/s) vs number of files",
                  ["series"] + [f"nf={nf}" for nf in FIG8_FILES], rows)
    bench_record("fig8_nfiles_sweep", gbps={
        str(n): {str(nf): bw for nf, bw in out[n].items()} for n in SIZES
    })

    if PAPER_SCALE:
        for n in SIZES:
            present = {nf: bw for nf, bw in out[n].items()}
            best = max(present, key=present.get)
            # The optimum sits at 1024 files at every scale.
            assert best == 1024, (n, present)
            # And the curve falls away on both sides.
            if 256 in present:
                assert present[256] < present[1024]
            if 4096 in present:
                assert present[4096] < present[1024]
