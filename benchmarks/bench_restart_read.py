"""Supplementary: restart-read performance of the checkpoint layouts.

The paper motivates application-level checkpoints as restart *and*
postprocessing inputs.  This bench measures the coordinated restart path
(every rank reading its blocks back) for the three layouts.  Restart is
read-dominated — no allocation or lock-token costs — so even the nf=1
single-file layout restores far faster than it wrote.
"""

from _common import PAPER_SCALE, bench_np, bench_record, cached_point, print_series

from repro.ckpt import CollectiveIO, OneFilePerProcess, ReducedBlockingIO
from repro.experiments import paper_data, run_checkpoint_and_restore, scaled_problem

NP = bench_np(16384, 2048)


def test_restart_read(benchmark):
    data = paper_data(NP) if PAPER_SCALE else scaled_problem(NP).data()

    def run():
        out = {}
        for label, strategy in [
            ("1PFPP", OneFilePerProcess()),
            ("coIO 64:1", CollectiveIO(ranks_per_file=64)),
            ("rbIO nf=ng", ReducedBlockingIO(workers_per_writer=64)),
        ]:
            out[label] = cached_point(
                "restart_read",
                lambda: run_checkpoint_and_restore(strategy, NP, data),
                label, NP,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, r in out.items():
        rows.append([
            label,
            f"{r['checkpoint'].overall_time:.2f} s",
            f"{r['restore_seconds']:.2f} s",
            f"{r['restore_bandwidth']/1e9:.2f} GB/s",
        ])
    print_series(
        f"Restart read, np={NP}",
        ["layout", "checkpoint (write)", "restart (read)", "read bandwidth"],
        rows,
    )

    bench_record("restart_read", n_ranks=NP, restore_s={
        label: r["restore_seconds"] for label, r in out.items()
    })
    for label, r in out.items():
        assert r["restore_seconds"] > 0
        assert max(r["per_rank_restore"].values()) <= r["restore_seconds"] * 1.01
    if PAPER_SCALE:
        # Restart avoids the write-side pathologies: far faster than the
        # 1PFPP write path once the metadata storm exists.
        assert out["1PFPP"]["restore_seconds"] < out["1PFPP"]["checkpoint"].overall_time / 3
