"""Table I: perceived rbIO write performance (worker-side Isend speed).

Paper rows (np, bandwidth): 16K -> 251 TB/s, 32K -> 442 TB/s,
64K -> 1091 TB/s — the perceived bandwidth doubles with the weak-scaled
data volume because the worker Isend window stays roughly constant
(one ~2.4 MB package buffered at node memory bandwidth).
"""

import pytest
from _common import PAPER_SCALE, SIZES, bench_record, prefetch, print_series

from repro.experiments import table1_perceived


def test_table1_perceived(benchmark):
    prefetch(("rbio_ng", n) for n in SIZES)
    rows = benchmark.pedantic(
        lambda: table1_perceived(sizes=SIZES), rounds=1, iterations=1
    )
    print_series(
        "Table I: perceived write performance (rbIO)",
        ["np", "max Isend time", "time (CPU cycles)", "perceived BW"],
        [[r["np"], f"{r['time_us']:.1f} us", f"{r['time_cycles']:.0f}",
          f"{r['perceived_tbps']:.0f} TB/s"] for r in rows],
    )
    bench_record("table1_perceived_bw", rows={
        str(r["np"]): {"time_us": r["time_us"],
                       "perceived_tbps": r["perceived_tbps"]} for r in rows
    })

    # Perceived time ~constant under weak scaling => TB/s doubles with S.
    times = [r["time_us"] for r in rows]
    assert max(times) < 2 * min(times)
    bws = [r["perceived_tbps"] for r in rows]
    assert bws[1] / bws[0] == pytest.approx(2.0, rel=0.3)
    assert bws[2] / bws[1] == pytest.approx(2.0, rel=0.3)
    if PAPER_SCALE:
        # Hundreds of TB/s, approaching 1 PB/s at 64K (paper: 251/442/1091).
        assert 100 < bws[0] < 500
        assert 500 < bws[2] < 2000
