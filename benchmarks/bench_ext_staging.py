"""Extension: bbIO burst-buffer staging (beyond the paper; DESIGN.md §8).

bbIO keeps rbIO's 64:1 aggregation but acknowledges workers once the
group package is resident in a staging buffer, letting a background
process trickle it to GPFS during the computation gaps.  Four studies:

1. **bbIO vs rbIO vs coIO** at equal np with checkpoint gaps shorter
   than a PFS commit: rbIO writers (which acknowledge only after the
   commit) push their backlog into worker blocking, bbIO writers do not.
2. **Drain-bandwidth sweep** — the staging analogue of the paper's
   lambda: workers only block once ``drain_bandwidth * gap`` falls below
   the per-writer checkpoint volume and the buffer fills.
3. **Buffer-capacity sweep** — capacity buys steps before backpressure,
   not sustained bandwidth.
4. **Partner-replicated restart** — with ``replicate=True`` a restart
   reads every group's package from its partner's buffer: zero PFS reads.
"""

from _common import (
    PAPER_SCALE,
    SMOKE,
    bench_np,
    bench_record,
    cached_point,
    print_series,
)

from repro.ckpt import BurstBufferIO, CollectiveIO, ReducedBlockingIO
from repro.experiments import (
    ext_staging_capacity_sweep,
    ext_staging_drain_sweep,
    ext_staging_run,
    paper_data,
    run_checkpoint_and_restore,
    run_checkpoint_steps,
    scaled_problem,
)

NP = bench_np(16384, 2048)
N_STEPS = 3 if SMOKE else 4
GAP = 1.0  # shorter than a PFS commit at every scale

#: The drain sweep is a fixed-size physics experiment (one/two psets);
#: its threshold depends on per-writer volume and gap, not on np.  The
#: backlog of an undersized drain compounds over steps, so the sweep
#: keeps its step count at every scale.
SWEEP_NP = 512
SWEEP_STEPS = 4
SWEEP_GAP = 4.0
#: Per-writer drain rates; at 64:1 the per-writer step volume is
#: ~154 MB, so the gap=4 s backpressure threshold sits near 38 MB/s.
SWEEP_BWS = (None, 20e6) if SMOKE else (None, 60e6, 20e6, 10e6)


def _data(n):
    return paper_data(n) if PAPER_SCALE else scaled_problem(n).data()


def _steady_blocking(results):
    per_step = [r.blocking_time for r in results]
    return max(per_step[1:] if len(per_step) > 1 else per_step)


def _steady_bw(results):
    return max(r.write_bandwidth for r in results)


def test_staging_vs_rbio_coio(benchmark):
    """bbIO worker blocking <= rbIO's at equal np (and far below coIO's)."""
    def run():
        out = {}
        bb = cached_point(
            "staging_bbio",
            lambda: ext_staging_run(n_ranks=NP, n_steps=N_STEPS,
                                    gap_seconds=GAP, max_outstanding=1),
            NP, N_STEPS, GAP,
        )
        out["bbio"] = (bb["blocking_time"],
                       _steady_bw(bb["results"]), bb)
        for key, strat in (
            ("rbio", ReducedBlockingIO(workers_per_writer=64,
                                       max_outstanding=1)),
            ("coio", CollectiveIO(ranks_per_file=64)),
        ):
            pair = cached_point(
                "staging_baseline",
                lambda: (lambda r: (_steady_blocking(r.results),
                                    _steady_bw(r.results)))(
                    run_checkpoint_steps(strat, NP, _data(NP),
                                         n_steps=N_STEPS, gap_seconds=GAP,
                                         barrier_each_step=False)),
                key, NP, N_STEPS, GAP,
            )
            out[key] = (pair[0], pair[1], None)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        f"bbIO vs rbIO vs coIO, np={NP}, gap={GAP}s",
        ["approach", "worker blocking", "perceived bandwidth"],
        [[k, f"{out[k][0]:.4f} s", f"{out[k][1]/1e9:.2f} GB/s"]
         for k in ("bbio", "rbio", "coio")],
    )
    bb, rb, co = out["bbio"][0], out["rbio"][0], out["coio"][0]
    bench_record("ext_staging", n_ranks=NP, blocking_s={
        "bbio": bb, "rbio": rb, "coio": co
    })
    # Staging acknowledges at buffer speed; the PFS commit moved into the
    # background drain, so bbIO never blocks workers longer than rbIO.
    assert bb <= rb + 1e-3
    # coIO makes every rank wait out the collective write.
    assert co > rb
    # The drain did commit the campaign to the PFS in the background.
    stats = out["bbio"][2]
    assert stats["packages_drained"] > 0
    assert stats["bytes_drained"] > 0


def test_staging_drain_bandwidth_sweep(benchmark):
    """Blocking engages once drain_bandwidth * gap < per-writer volume."""
    out = benchmark.pedantic(
        lambda: cached_point(
            "staging_drain",
            lambda: ext_staging_drain_sweep(SWEEP_BWS, n_ranks=SWEEP_NP,
                                            n_steps=SWEEP_STEPS,
                                            gap_seconds=SWEEP_GAP,
                                            capacity_steps=1.5),
            SWEEP_BWS, SWEEP_NP, SWEEP_STEPS, SWEEP_GAP, 1.5,
        ),
        rounds=1, iterations=1,
    )
    per_writer = scaled_problem(SWEEP_NP).data()
    volume = per_writer.header_bytes + 64 * per_writer.total_bytes
    rows = []
    for bw in SWEEP_BWS:
        r = out[bw]
        rows.append([
            "unthrottled" if bw is None else f"{bw/1e6:.0f} MB/s",
            f"{r['blocking_time']:.4f} s", r["stalls"],
            f"{r['peak_used']/1e6:.0f} MB",
        ])
    print_series(
        f"Drain-bandwidth sweep, np={SWEEP_NP}, gap={SWEEP_GAP}s "
        f"(per-writer volume {volume/1e6:.0f} MB/step)",
        ["drain bandwidth", "worker blocking", "stalls", "peak buffer"],
        rows,
    )
    blockings = [out[bw]["blocking_time"] for bw in SWEEP_BWS]
    # Monotone: less drain bandwidth never unblocks workers.
    for faster, slower in zip(blockings, blockings[1:]):
        assert slower >= faster - 1e-6
    for bw in SWEEP_BWS:
        if bw is None or bw * SWEEP_GAP > 1.2 * volume:
            # Drain keeps up: workers never wait on the buffer.
            assert out[bw]["blocking_time"] < 0.1
        elif bw * SWEEP_GAP < 0.8 * volume:
            # Drain falls behind: the buffer fills and backpressure
            # reaches the workers (the staging lambda).
            assert out[bw]["blocking_time"] > 1.0
            assert out[bw]["stalls"] > 0


def test_staging_capacity_sweep(benchmark):
    """A bigger buffer delays backpressure under an undersized drain."""
    caps = (1.2, 3.0)
    out = benchmark.pedantic(
        lambda: cached_point(
            "staging_capacity",
            lambda: ext_staging_capacity_sweep(caps, n_ranks=SWEEP_NP,
                                               n_steps=SWEEP_STEPS,
                                               gap_seconds=SWEEP_GAP,
                                               drain_bandwidth=20e6),
            caps, SWEEP_NP, SWEEP_STEPS, SWEEP_GAP, 20e6,
        ),
        rounds=1, iterations=1,
    )
    print_series(
        f"Buffer-capacity sweep, np={SWEEP_NP}, drain 20 MB/s",
        ["capacity (steps)", "worker blocking", "stalls", "peak buffer"],
        [[f"{c:.1f}", f"{out[c]['blocking_time']:.4f} s", out[c]["stalls"],
          f"{out[c]['peak_used']/1e6:.0f} MB"] for c in caps],
    )
    small, large = out[caps[0]], out[caps[1]]
    # The campaign fits the large buffer: no backpressure within it.
    assert large["blocking_time"] < 0.1
    # The small buffer fills mid-campaign under the same drain rate.
    assert small["blocking_time"] > 1.0
    assert small["stalls"] > large["stalls"]


def test_staging_partner_restart(benchmark):
    """Replicated staging restarts entirely from buffers: zero PFS reads."""
    from repro.staging import StagingConfig

    np_restart = bench_np(16384, 2048)
    strat = BurstBufferIO(workers_per_writer=64,
                          staging=StagingConfig(replicate=True),
                          restore_from="partner")
    out = benchmark.pedantic(
        lambda: cached_point(
            "staging_partner_restart",
            lambda: run_checkpoint_and_restore(strat, np_restart,
                                               _data(np_restart)),
            np_restart,
        ),
        rounds=1, iterations=1,
    )
    stats = out["checkpoint"].fs_stats
    print_series(
        f"Partner-replicated restart, np={np_restart}",
        ["metric", "value"],
        [
            ["restore time", f"{out['restore_seconds']:.3f} s"],
            ["restore bandwidth", f"{out['restore_bandwidth']/1e9:.2f} GB/s"],
            ["PFS reads", stats["reads"]],
            ["PFS writes", stats["writes"]],
        ],
    )
    # Every group pulled its package from a partner buffer; the PFS was
    # never consulted on the restart path.
    assert stats["reads"] == 0
    assert out["restore_seconds"] > 0
    for t in out["per_rank_restore"].values():
        assert t >= 0
