"""Figure 6: overall time per checkpointing step (log scale in the paper).

rbIO and coIO cut the step time by orders of magnitude versus 1PFPP; the
rbIO bars stay nearly flat up to 65,536 processors.
"""

from _common import PAPER_SCALE, SIZES, bench_record, prefetch, print_series

from repro.buffers import stats as buffer_stats
from repro.experiments import APPROACHES, APPROACH_LABELS, fig6_overall_time


def test_fig6_overall_time(benchmark):
    prefetch((key, n) for key in APPROACHES for n in SIZES)
    buffer_stats.reset()
    out = benchmark.pedantic(
        lambda: fig6_overall_time(sizes=SIZES), rounds=1, iterations=1
    )
    rows = [
        [APPROACH_LABELS[key]] + [f"{out[key][n]:.2f} s" for n in SIZES]
        for key in out
    ]
    print_series("Fig 6: overall time per checkpoint step",
                  ["approach"] + [f"np={n}" for n in SIZES], rows)
    bench_record("fig6_overall_time", seconds={
        key: {str(n): out[key][n] for n in SIZES} for key in out
    }, bytes_copied=buffer_stats.bytes_copied)

    if PAPER_SCALE:
        for n in SIZES:
            assert out["1pfpp"][n] > 5 * out["coio_nf1"][n]
        n16, _n32, n64 = SIZES
        # 1PFPP in the hundreds-to-thousands of seconds.
        assert out["1pfpp"][n16] > 100
        assert out["1pfpp"][n64] > 1000
        # rbIO nf=ng stays ~flat: 64K within 4x of 16K despite 4x the data.
        assert out["rbio_ng"][n64] < 4 * out["rbio_ng"][n16]
        # And absolute magnitude ~10 s (156 GB at >13 GB/s).
        assert out["rbio_ng"][n64] < 15
