"""Figure 5: write bandwidth of the five I/O configurations vs processors.

Paper series (GPFS on Intrepid, weak scaling 39/78/156 GB per step):
1PFPP collapses to ~0.1 GB/s on metadata; coIO/rbIO with nf=1 plateau at a
few GB/s on single-file extent allocation; coIO 64:1 rises then drops at
64K; rbIO nf=ng scales flat-rising past 13 GB/s at 65,536 processors.
"""

from _common import PAPER_SCALE, SIZES, bench_record, print_series

from repro.buffers import stats as buffer_stats
from repro.campaign.shim import figure_campaign, prefetch_campaign
from repro.experiments import APPROACHES, APPROACH_LABELS, fig5_write_bandwidth

#: The whole figure as one declarative campaign; prefetching its expansion
#: warms the same caches the legacy (approach, np) loop did, byte for byte.
CAMPAIGN = figure_campaign("fig5_write_bandwidth", tuple(APPROACHES), SIZES)


def test_fig5_write_bandwidth(benchmark):
    prefetch_campaign(CAMPAIGN)
    buffer_stats.reset()
    out = benchmark.pedantic(
        lambda: fig5_write_bandwidth(sizes=SIZES), rounds=1, iterations=1
    )
    rows = [
        [APPROACH_LABELS[key]] + [f"{out[key][n]:.2f} GB/s" for n in SIZES]
        for key in out
    ]
    print_series("Fig 5: write bandwidth", ["approach"] + [f"np={n}" for n in SIZES], rows)
    bench_record("fig5_write_bandwidth", gbps={
        key: {str(n): out[key][n] for n in SIZES} for key in out
    }, bytes_copied=buffer_stats.bytes_copied)

    for n in SIZES:
        # rbIO nf=ng beats its nf=1 variant; the two nf=1 variants are
        # comparable (two-phase layers do not interfere).
        assert out["rbio_ng"][n] > out["rbio_nf1"][n]
        assert 0.5 < out["rbio_nf1"][n] / out["coio_nf1"][n] < 2.0
    if PAPER_SCALE:
        # Mechanisms that need paper-scale volume/directories to bite:
        # the metadata storm and the ~2x single-file allocation gap.
        for n in SIZES:
            assert out["1pfpp"][n] < out["coio_nf1"][n] / 5
            assert out["rbio_ng"][n] > 1.5 * out["rbio_nf1"][n]
        n16, n32, n64 = SIZES
        # >13 GB/s on 65,536 processors; ~100x over 1PFPP.
        assert out["rbio_ng"][n64] > 13.0
        assert out["rbio_ng"][n64] > 50 * out["1pfpp"][n64]
        # coIO 64:1 drops at 64K; rbIO performs no worse at larger scale.
        assert out["coio_64"][n64] < out["coio_64"][n32]
        assert out["rbio_ng"][n64] >= out["coio_64"][n64]
        # rbIO nf=ng scales (monotone non-decreasing).
        assert out["rbio_ng"][n16] <= out["rbio_ng"][n32] <= out["rbio_ng"][n64]
