"""Equations 2-7: blocked-processor-time speedup of rbIO over coIO.

The paper derives Speedup ~ (np/ng) * BW_rbIO / BW_coIO for lambda -> 0
(Eq. 7) and argues even the worst case (BW_rbIO = BW_coIO/2) keeps ~30x.
This bench evaluates the model from measured bandwidths and cross-checks
it against blocked processor-seconds measured directly in the simulator.
"""

from _common import PAPER_SCALE, bench_np, bench_record, prefetch, print_series

from repro.experiments import eq2_7_speedup

NP = bench_np(65536, 4096)


def test_eq2_7_speedup_model(benchmark):
    prefetch([("coio_64", NP), ("rbio_ng", NP)])
    out = benchmark.pedantic(
        lambda: eq2_7_speedup(n_ranks=NP), rounds=1, iterations=1
    )
    print_series(
        f"Eqs 2-7: rbIO-over-coIO blocked-time speedup, np={NP}",
        ["quantity", "value"],
        [
            ["np / ng", f"{out['np']} / {out['ng']}"],
            ["BW_coIO", f"{out['bw_coio_gbps']:.2f} GB/s"],
            ["BW_rbIO", f"{out['bw_rbio_gbps']:.2f} GB/s"],
            ["BW_perceived", f"{out['bw_perceived_tbps']:.0f} TB/s"],
            ["T_coIO model / measured",
             f"{out['t_coio_model']:.3e} / {out['t_coio_measured']:.3e} proc-s"],
            ["T_rbIO model / measured",
             f"{out['t_rbio_model']:.3e} / {out['t_rbio_measured']:.3e} proc-s"],
            ["speedup Eq.5 (exact)", f"{out['speedup_eq5']:.1f}x"],
            ["speedup Eq.6 (approx)", f"{out['speedup_eq6']:.1f}x"],
            ["speedup Eq.7 (limit)", f"{out['speedup_eq7']:.1f}x"],
            ["speedup measured (sim)", f"{out['speedup_measured']:.1f}x"],
        ],
    )
    bench_record("eq2_7_speedup_model", n_ranks=NP,
                 speedup_eq5=out["speedup_eq5"],
                 speedup_eq7=out["speedup_eq7"],
                 speedup_measured=out["speedup_measured"])

    # Eq. 7 approximates Eq. 5 well at lambda = 0.
    assert abs(out["speedup_eq7"] - out["speedup_eq5"]) / out["speedup_eq5"] < 0.35
    # Model agrees with direct simulator measurement within ~2x.
    ratio = out["speedup_measured"] / out["speedup_eq5"]
    assert 0.4 < ratio < 2.5
    if PAPER_SCALE:
        # Far beyond the paper's conservative 30x floor.
        assert out["speedup_measured"] > 30
        assert out["speedup_eq7"] > 30
