"""Extension: the GPFS vs lock-free PVFS comparison the paper wanted.

Section V-C1: "we investigated the performance characteristics of these I/O
configurations on PVFS as well and intended to compare GPFS performance
with lock-free PVFS.  However ... significant hardware configuration
differences, e.g. cache was (and still is) turned off on PVFS, make the
comparison very weak and pointless."  In simulation both file systems run
on identical hardware (we keep PVFS's no-client-cache handicap), so the
comparison is clean:

- the nf = 1 shared-file ceiling is a GPFS lock/allocation artifact —
  lock-free PVFS lifts it;
- coIO 64:1 at 65,536 processors does *not* collapse on PVFS: no token
  manager, no revocation storms;
- sole-owner-file strategies (rbIO nf = ng) behave similarly on both,
  paying only PVFS's cache handicap.
"""

from _common import PAPER_SCALE, bench_np, bench_record, cached_point, print_series

from repro.ckpt import CollectiveIO, ReducedBlockingIO
from repro.experiments import get_run, paper_data, run_checkpoint_step, scaled_problem

NP = bench_np(65536, 4096)

_KEYS = [("coIO nf=1", "coio_nf1"), ("coIO 64:1", "coio_64"),
         ("rbIO nf=ng", "rbio_ng")]


def _strategy_for(label):
    return {
        "coIO nf=1": lambda: CollectiveIO(ranks_per_file=None),
        "coIO 64:1": lambda: CollectiveIO(ranks_per_file=64),
        "rbIO nf=ng": lambda: ReducedBlockingIO(workers_per_writer=64),
    }[label]()


def test_ext_pvfs_comparison(benchmark):
    data = paper_data(NP) if PAPER_SCALE else scaled_problem(NP).data()

    def run():
        out = {"gpfs": {}, "pvfs": {}}
        for label, cache_key in _KEYS:
            # GPFS side: shared with the Figs. 5-7 measurement campaign.
            res = get_run(cache_key, NP).result
            out["gpfs"][label] = res.write_bandwidth / 1e9
            out["pvfs"][label] = cached_point(
                "ext_pvfs",
                lambda: run_checkpoint_step(
                    _strategy_for(label), NP, data, fs_type="pvfs"
                ).result.write_bandwidth / 1e9,
                label, NP,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = ["coIO nf=1", "coIO 64:1", "rbIO nf=ng"]
    print_series(
        f"Extension: GPFS vs lock-free PVFS, np={NP}",
        ["file system"] + labels,
        [[fs] + [f"{out[fs][l]:.2f} GB/s" for l in labels]
         for fs in ("gpfs", "pvfs")],
    )

    bench_record("ext_pvfs", n_ranks=NP, gbps={
        fs: dict(out[fs]) for fs in ("gpfs", "pvfs")
    })
    # Lock-free PVFS lifts the shared-file allocation/lock ceiling.
    assert out["pvfs"]["coIO nf=1"] > out["gpfs"]["coIO nf=1"]
    if PAPER_SCALE:
        # No token storms on PVFS: coIO 64:1 does not collapse at 64K.
        assert out["pvfs"]["coIO 64:1"] > 1.4 * out["gpfs"]["coIO 64:1"]
        # Sole-owner rbIO files never depended on locks: within the cache
        # handicap on either system.
        ratio = out["pvfs"]["rbIO nf=ng"] / out["gpfs"]["rbIO nf=ng"]
        assert 0.5 < ratio <= 1.05
