"""Figure 7: ratio of checkpoint time over computation time per step.

The paper: Ratio_1PFPP generally above 1000 while Ratio_rbIO stays flat and
small — rbIO is the only approach whose checkpoint cost does not grow into
the computation.  (Our rbIO numerator is the application-blocking time:
workers resume after the Isend window while dedicated writers drain in the
background; see DESIGN.md §5 and EXPERIMENTS.md for the discrepancy note.)
"""

from _common import PAPER_SCALE, SIZES, bench_record, prefetch, print_series

from repro.experiments import (
    APPROACHES,
    APPROACH_LABELS,
    TCOMP_PER_STEP,
    fig7_checkpoint_ratio,
)


def test_fig7_checkpoint_ratio(benchmark):
    prefetch((key, n) for key in APPROACHES for n in SIZES)
    out = benchmark.pedantic(
        lambda: fig7_checkpoint_ratio(sizes=SIZES), rounds=1, iterations=1
    )
    rows = [
        [APPROACH_LABELS[key]] + [f"{out[key][n]:.3g}" for n in SIZES]
        for key in out
    ]
    print_series(
        f"Fig 7: T(checkpoint)/T(computation)  [Tcomp={TCOMP_PER_STEP}s/step]",
        ["approach"] + [f"np={n}" for n in SIZES], rows,
    )
    bench_record("fig7_ckpt_ratio", ratio={
        key: {str(n): out[key][n] for n in SIZES} for key in out
    }, t_comp=TCOMP_PER_STEP)

    for n in SIZES:
        assert out["rbio_ng"][n] < out["coio_64"][n]
    if PAPER_SCALE:
        for n in SIZES:
            assert out["coio_64"][n] < out["1pfpp"][n]
        n16, _n32, n64 = SIZES
        # Ratio_1pfpp above 1000 (paper: "generally above 1000").
        assert out["1pfpp"][n16] > 1000
        # Ratio_rbio under 20 and flat across the sweep.
        assert out["rbio_ng"][n64] < 20
        assert out["rbio_ng"][n64] < 3 * max(out["rbio_ng"][n16], 1e-9)
