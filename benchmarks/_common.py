"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation at
the paper's processor counts (16K / 32K / 64K ranks) by default.  Set
``REPRO_BENCH_SCALE=small`` to run a 16x-reduced sweep for quick iteration
(series shapes persist; absolute values differ), or
``REPRO_BENCH_SCALE=smoke`` for the minimal configuration the test suite
uses to exercise every benchmark module end to end.

Each benchmark prints the regenerated series in the same rows/axes the
paper reports, and asserts the paper's qualitative claims (who wins, by
roughly what factor, where the optimum falls) at paper scale.
"""

from __future__ import annotations

import json
import os
import time

SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper")
PAPER_SCALE = SCALE not in ("small", "smoke")
SMOKE = SCALE == "smoke"

# Small and paper tiers persist run summaries across invocations (and
# share them between the figure benchmarks); smoke stays cache-free so the
# test suite always exercises the live simulation path.  An explicit
# REPRO_BENCH_CACHE setting (including "0") wins.
if not SMOKE:
    os.environ.setdefault("REPRO_BENCH_CACHE", "1")


def bench_np(paper: int, small: int) -> int:
    """Processor count for the current scale tier.

    Smoke runs shrink the small-scale count a further 8x (floored at 128
    ranks, half a pset, so aggregation ratios and ION routing still
    exercise real group structure).
    """
    if PAPER_SCALE:
        return paper
    if SMOKE:
        return max(128, small // 8)
    return small


#: Weak-scaling processor counts for Figs. 5-7 / Table I.
if PAPER_SCALE:
    SIZES = (16384, 32768, 65536)
elif SMOKE:
    SIZES = (128, 256, 512)
else:
    SIZES = (1024, 2048, 4096)

#: Fig. 8's file-count sweep values.
if PAPER_SCALE:
    FIG8_FILES = (256, 512, 1024, 2048, 4096)
elif SMOKE:
    FIG8_FILES = (4, 8, 16)
else:
    FIG8_FILES = (16, 32, 64, 128, 256)

#: Processor counts for the distribution figures.
FIG9_NP = bench_np(16384, 1024)    # 1PFPP distribution
FIG10_NP = bench_np(65536, 4096)   # coIO distribution
FIG11_NP = bench_np(65536, 4096)   # rbIO distribution
FIG12_NP = bench_np(32768, 2048)   # Darshan write activity


def prefetch(points) -> None:
    """Fan a bench's ``(approach, np)`` grid out before building figures.

    Thin wrapper over :func:`repro.experiments.prefetch_runs`: missing
    points run in parallel worker processes (``REPRO_BENCH_PARALLEL``)
    and land in the shared caches, so the figure functions that follow
    only see warm hits.
    """
    from repro.experiments import prefetch_runs

    prefetch_runs(points)


def cached_point(name: str, compute, *key_parts):
    """Disk-memoize one benchmark point's (picklable) derived results.

    The figure sweeps share results through ``get_run``'s caches; the
    extension/ablation benches call the simulation directly, so this
    gives them the same property — re-running a benchmark after an
    unrelated edit is a cache hit.  Keys include the scale tier and
    ``CACHE_VERSION`` (bumped on any timing-semantics change), and the
    smoke tier never caches (``REPRO_BENCH_CACHE`` stays unset there),
    so the test suite always exercises the live simulation path.
    """
    from repro.experiments.parallel import cache_key, sweep_cache

    cache = sweep_cache()
    if cache is None:
        return compute()
    key = cache_key("bench_point", SCALE, name, *key_parts)
    hit = cache.get(key)
    if hit is None:
        hit = compute()
        cache.put(key, hit)
    return hit


def bench_record(name: str, **metrics) -> None:
    """Write one benchmark's headline metrics to ``BENCH_<name>.json``.

    Every bench module calls this once with its key numbers (bandwidths,
    wall times, events/sec ...) so perf regressions are diffable artifacts
    rather than scrollback.  The CI perf-smoke job uploads these files.
    """
    record = {
        "name": name,
        "scale": SCALE,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "metrics": metrics,
    }
    path = f"BENCH_{name}.json"
    with open(path, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True, default=str)
        f.write("\n")


def print_series(title: str, columns, rows) -> None:
    """Render one figure's data as an aligned text table."""
    print(f"\n=== {title} ===")
    header = " | ".join(f"{c:>24}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{v:>24}" for v in row))
