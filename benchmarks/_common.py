"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation at
the paper's processor counts (16K / 32K / 64K ranks) by default.  Set
``REPRO_BENCH_SCALE=small`` to run a 16x-reduced sweep for quick iteration
(series shapes persist; absolute values differ).

Each benchmark prints the regenerated series in the same rows/axes the
paper reports, and asserts the paper's qualitative claims (who wins, by
roughly what factor, where the optimum falls) at paper scale.
"""

from __future__ import annotations

import os

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper") != "small"

#: Weak-scaling processor counts for Figs. 5-7 / Table I.
SIZES = (16384, 32768, 65536) if PAPER_SCALE else (1024, 2048, 4096)

#: Fig. 8's file-count sweep values.
FIG8_FILES = (256, 512, 1024, 2048, 4096) if PAPER_SCALE else (16, 32, 64, 128, 256)

#: Processor counts for the distribution figures.
FIG9_NP = 16384 if PAPER_SCALE else 1024     # 1PFPP distribution
FIG10_NP = 65536 if PAPER_SCALE else 4096    # coIO distribution
FIG11_NP = 65536 if PAPER_SCALE else 4096    # rbIO distribution
FIG12_NP = 32768 if PAPER_SCALE else 2048    # Darshan write activity


def print_series(title: str, columns, rows) -> None:
    """Render one figure's data as an aligned text table."""
    print(f"\n=== {title} ===")
    header = " | ".join(f"{c:>24}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{v:>24}" for v in row))
