"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation at
the paper's processor counts (16K / 32K / 64K ranks) by default.  Set
``REPRO_BENCH_SCALE=small`` to run a 16x-reduced sweep for quick iteration
(series shapes persist; absolute values differ), or
``REPRO_BENCH_SCALE=smoke`` for the minimal configuration the test suite
uses to exercise every benchmark module end to end.

Each benchmark prints the regenerated series in the same rows/axes the
paper reports, and asserts the paper's qualitative claims (who wins, by
roughly what factor, where the optimum falls) at paper scale.
"""

from __future__ import annotations

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper")
PAPER_SCALE = SCALE not in ("small", "smoke")
SMOKE = SCALE == "smoke"


def bench_np(paper: int, small: int) -> int:
    """Processor count for the current scale tier.

    Smoke runs shrink the small-scale count a further 8x (floored at 128
    ranks, half a pset, so aggregation ratios and ION routing still
    exercise real group structure).
    """
    if PAPER_SCALE:
        return paper
    if SMOKE:
        return max(128, small // 8)
    return small


#: Weak-scaling processor counts for Figs. 5-7 / Table I.
if PAPER_SCALE:
    SIZES = (16384, 32768, 65536)
elif SMOKE:
    SIZES = (128, 256, 512)
else:
    SIZES = (1024, 2048, 4096)

#: Fig. 8's file-count sweep values.
if PAPER_SCALE:
    FIG8_FILES = (256, 512, 1024, 2048, 4096)
elif SMOKE:
    FIG8_FILES = (4, 8, 16)
else:
    FIG8_FILES = (16, 32, 64, 128, 256)

#: Processor counts for the distribution figures.
FIG9_NP = bench_np(16384, 1024)    # 1PFPP distribution
FIG10_NP = bench_np(65536, 4096)   # coIO distribution
FIG11_NP = bench_np(65536, 4096)   # rbIO distribution
FIG12_NP = bench_np(32768, 2048)   # Darshan write activity


def print_series(title: str, columns, rows) -> None:
    """Render one figure's data as an aligned text table."""
    print(f"\n=== {title} ===")
    header = " | ".join(f"{c:>24}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{v:>24}" for v in row))
