"""Figure 12: Darshan-style write-activity analysis, rbIO vs coIO at 32K.

The paper compares the write activity of rbIO (nf = ng) and coIO 64:1 from
Darshan logs: comparable aggregate performance, but coIO's write windows
are less synchronized (lock contention on the shared files) while rbIO's
writers form one tight band.
"""

import numpy as np
from _common import FIG12_NP, PAPER_SCALE, bench_record, print_series

from repro.experiments import fig12_write_activity


def test_fig12_write_activity(benchmark):
    out = benchmark.pedantic(
        lambda: fig12_write_activity(n_ranks=FIG12_NP), rounds=1, iterations=1
    )
    rows = []
    for key, label in (("rbio_ng", "rbIO nf=ng"), ("coio_64", "coIO 64:1")):
        counts = out[key]["active_writers"]
        starts = out[key]["bin_starts"]
        active_bins = counts > 0
        span = float(starts[active_bins][-1] - starts[active_bins][0]) if active_bins.any() else 0.0
        rows.append([
            label,
            out[key]["n_write_ops"],
            f"{counts.max()}",
            f"{span:.1f} s",
        ])
    print_series(
        f"Fig 12: write activity, np={FIG12_NP}",
        ["approach", "write ops", "peak active write ops/bin", "activity span"],
        rows,
    )

    rb = out["rbio_ng"]["active_writers"]
    co = out["coio_64"]["active_writers"]
    bench_record("fig12_darshan_activity", n_ranks=FIG12_NP,
                 rbio_peak_active=int(rb.max()), coio_peak_active=int(co.max()),
                 rbio_write_ops=out["rbio_ng"]["n_write_ops"],
                 coio_write_ops=out["coio_64"]["n_write_ops"])
    assert rb.max() >= 1 and co.max() >= 1
    if PAPER_SCALE:
        # rbIO: one tight band of ng=512 writers at 32K.
        assert rb.max() > 256
        # coIO 64:1 runs 2 aggregators per file at 32:1 ROMIO default:
        # about twice the file-system access concurrency of rbIO — the
        # paper's "concurrency is only 50% of the coIO case".
        assert co.max() > 1.5 * rb.max()


def test_fig12_activity_parity_from_span_store(benchmark):
    """The span tracer regenerates Fig. 12 row-identically to Darshan.

    Same run, two recorders: the DarshanProfiler op log (the legacy
    figure path) and the trace plane's forwarded ``fs:write`` spans.
    Both must rasterise to the exact same activity arrays — one event,
    two views, no chance to disagree.  Runs at a fixed tiny np on every
    scale tier; the figure itself covers the paper scale.
    """
    import repro.trace as trace_mod
    from repro.experiments.figures import problem_for, strategy_for
    from repro.experiments.runner import run_checkpoint_steps
    from repro.trace import configure_trace
    from repro.trace.export import write_intervals_from_spans

    n = 128
    for key in ("rbio_ng", "coio_64"):
        tr = configure_trace("full")
        try:
            run = run_checkpoint_steps(strategy_for(key, n), n,
                                       problem_for(n).data(), 1)
            legacy = run.profiler.write_intervals()
            rebuilt = write_intervals_from_spans(trace_mod.tracer)
        finally:
            configure_trace("off")
        assert rebuilt.intervals == legacy.intervals, key
        l_starts, l_counts = legacy.activity(0.25)
        s_starts, s_counts = rebuilt.activity(0.25)
        assert np.array_equal(s_starts, l_starts), key
        assert np.array_equal(s_counts, l_counts), key
        assert tr.phase_totals()["fs:write"]["count"] == len(legacy)
