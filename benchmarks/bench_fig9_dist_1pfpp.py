"""Figure 9: per-rank I/O time distribution for 1PFPP at 16,384 processors.

The paper's scatter: some processors finish within seconds while others
take more than 300 s — the signature of 16,384 file creates serializing
through one directory's metadata.
"""

import numpy as np
from _common import FIG9_NP, PAPER_SCALE, bench_record, print_series

from repro.experiments import fig9_distribution_1pfpp
from repro.profiling import distribution_summary


def test_fig9_distribution_1pfpp(benchmark):
    ranks, times = benchmark.pedantic(
        lambda: fig9_distribution_1pfpp(n_ranks=FIG9_NP), rounds=1, iterations=1
    )
    s = distribution_summary(times)
    deciles = np.percentile(times, [0, 10, 25, 50, 75, 90, 100])
    print_series(
        f"Fig 9: 1PFPP per-rank I/O time, np={FIG9_NP}",
        ["metric", "value"],
        [["ranks", str(len(ranks))]]
        + [[f"p{p}", f"{v:.1f} s"] for p, v in
           zip([0, 10, 25, 50, 75, 90, 100], deciles)]
        + [["mean", f"{s['mean']:.1f} s"]],
    )
    bench_record("fig9_dist_1pfpp", n_ranks=FIG9_NP, mean_s=s["mean"],
                 p50_s=float(deciles[3]), max_s=float(deciles[-1]))

    assert len(ranks) == FIG9_NP
    # Triangular spread: earliest finishers are a small fraction of the max.
    assert deciles[1] < deciles[-1] / 3
    if PAPER_SCALE:
        # Fastest ranks finish within seconds; slowest beyond 300 s.
        assert deciles[0] < 10
        assert deciles[-1] > 250
