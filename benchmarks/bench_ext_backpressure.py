"""Extension: measuring the paper's lambda (worker blocking fraction).

The speedup model (Eqs. 4-6) contains lambda — the fraction of the
writers' write time that workers remain blocked.  The paper argues that
for NekCEM "the writers can flush their I/O requests roughly in the time
between writes", so lambda ~ 0; this bench *measures* that claim with the
flow-controlled rbIO variant (``max_outstanding=1``): checkpoints are
issued back-to-back with varying computation gaps, and worker blocking is
read off directly.

- gap >= writer commit time: writers drain between checkpoints,
  lambda ~ 0 (the paper's operating point, microsecond blocking);
- gap -> 0: workers wait a full commit per step, lambda -> 1, and the
  Eq. 6 speedup degrades toward 1/(BW_coIO/BW_rbIO) as the model predicts.
"""

from _common import PAPER_SCALE, bench_np, bench_record, cached_point, print_series

from repro.ckpt import ReducedBlockingIO
from repro.experiments import paper_data, run_checkpoint_steps, scaled_problem
from repro.model import SpeedupModel

NP = bench_np(16384, 2048)


def test_ext_backpressure_lambda(benchmark):
    data = paper_data(NP) if PAPER_SCALE else scaled_problem(NP).data()

    def measure():
        # Writer commit time from an unconstrained single step.
        probe = run_checkpoint_steps(
            ReducedBlockingIO(workers_per_writer=64), NP, data
        ).result
        commit = probe.overall_time
        out = {"commit": commit, "rows": []}
        for gap_factor in (0.0, 0.5, 1.5):
            strategy = ReducedBlockingIO(workers_per_writer=64,
                                         max_outstanding=1)
            run_ = run_checkpoint_steps(
                strategy, NP, data, n_steps=3,
                gap_seconds=gap_factor * commit, barrier_each_step=False,
            )
            blocked = run_.results[-1].blocking_time
            lam = min(blocked / commit, 1.0)
            out["rows"].append((gap_factor, blocked, lam))
        return out

    def run():
        return cached_point("ext_backpressure", measure, NP)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    commit = out["commit"]
    model = SpeedupModel(NP, NP // 64, bw_coio=8e9, bw_rbio=12e9,
                         bw_perceived=500e12)
    rows = []
    for gap_factor, blocked, lam in out["rows"]:
        m = SpeedupModel(NP, NP // 64, bw_coio=8e9, bw_rbio=12e9,
                         bw_perceived=500e12, lam=lam)
        rows.append([
            f"{gap_factor:.1f}x commit",
            f"{blocked:.3f} s",
            f"{lam:.3f}",
            f"{m.speedup_approx():.1f}x",
        ])
    print_series(
        f"Extension: measured lambda vs compute gap, np={NP} "
        f"(writer commit ~{commit:.1f} s)",
        ["gap between ckpts", "worker blocked", "lambda", "Eq.6 speedup"],
        rows,
    )

    bench_record("ext_backpressure", n_ranks=NP, commit_s=commit, lambda_by_gap={
        f"{g:.1f}x": lam for g, _b, lam in out["rows"]
    })
    lams = [lam for _g, _b, lam in out["rows"]]
    # Back-to-back checkpoints saturate the writers (lambda large)...
    assert lams[0] > 0.5
    # ...more compute between checkpoints monotonically frees the workers...
    assert lams[0] >= lams[1] >= lams[2]
    # ...and a gap exceeding the commit time restores lambda ~ 0 — the
    # paper's "writers flush roughly in the time between writes".
    assert lams[2] < 0.05