"""Ablations of the design choices behind the paper's results.

Four studies (DESIGN.md section 8):

1. **Noise/storms off** — rerunning coIO 64:1 at 64K on an unloaded file
   system removes the outlier storms: the drop of Fig. 5 disappears,
   confirming the paper's attribution to "noise ... under normal user load".
2. **File-domain alignment off** — ROMIO's block alignment avoids
   read-modify-write and token ping-pong on shared files (Liao & Choudhary);
   disabling it costs bandwidth and generates RMW traffic.
3. **rbIO aggregation ratio** — 64:1 / 32:1 / 16:1 at 64K (ng = 1024 /
   2048 / 4096): past the GPFS concurrency optimum more writers hurt.
4. **Writer flush granularity** — rbIO writers flushing small buffers vs
   large: sole-owner files make rbIO robust to this tunable (its nf=1
   variant, which shares one file, is the configuration that pays).
"""

import pytest
from _common import (
    PAPER_SCALE,
    SMOKE,
    bench_np,
    bench_record,
    cached_point,
    print_series,
)

from repro.ckpt import CollectiveIO, ReducedBlockingIO
from repro.experiments import get_run, paper_data, run_checkpoint_step, scaled_problem
from repro.mpiio import Hints
from repro.topology import intrepid

NP_BIG = bench_np(65536, 4096)
NP_MID = bench_np(16384, 2048)


def _data(n):
    return paper_data(n) if PAPER_SCALE else scaled_problem(n).data()


def test_ablation_noise_storms(benchmark):
    """Without shared-load noise the coIO 64:1 collapse at 64K vanishes."""
    def run():
        noisy = get_run("coio_64", NP_BIG).result
        quiet = cached_point(
            "ablation_quiet",
            lambda: run_checkpoint_step(
                CollectiveIO(ranks_per_file=64), NP_BIG, _data(NP_BIG),
                config=intrepid().quiet(),
            ).result,
            NP_BIG,
        )
        return noisy, quiet

    noisy, quiet = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        f"Ablation 1: coIO 64:1 at np={NP_BIG}, shared-load noise",
        ["configuration", "bandwidth", "overall time"],
        [
            ["normal load (paper)", f"{noisy.write_bandwidth/1e9:.2f} GB/s",
             f"{noisy.overall_time:.2f} s"],
            ["unloaded (no storms)", f"{quiet.write_bandwidth/1e9:.2f} GB/s",
             f"{quiet.overall_time:.2f} s"],
        ],
    )
    assert quiet.write_bandwidth >= noisy.write_bandwidth
    if PAPER_SCALE:
        # The drop is noise-driven: unloaded coIO recovers substantially.
        assert quiet.write_bandwidth > 1.4 * noisy.write_bandwidth


def test_ablation_alignment(benchmark):
    """Unaligned file domains cost bandwidth and cause RMW traffic.

    Uses coIO nf=1 (a single shared file with many aggregators): every
    interior domain boundary that misses a block multiple forces a
    read-modify-write and token ping-pong between neighbouring aggregators.
    Field-section boundaries are inherently unaligned in the NekCEM layout,
    so a small RMW count remains even with the optimization on.
    """
    def run():
        out = {}
        for aligned in (True, False):
            out[aligned] = cached_point(
                "ablation_alignment",
                lambda: (lambda r: (r.result, r.fs.stats()))(
                    run_checkpoint_step(
                        CollectiveIO(ranks_per_file=None,
                                     hints=Hints(align_file_domains=aligned)),
                        NP_MID, _data(NP_MID), config=intrepid().quiet(),
                    )),
                aligned, NP_MID,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for aligned in (True, False):
        res, stats = out[aligned]
        rows.append([
            "aligned (BG/P ROMIO)" if aligned else "unaligned",
            f"{res.write_bandwidth/1e9:.2f} GB/s",
            stats["rmw_reads"],
            stats["revocations"],
        ])
    print_series(
        f"Ablation 2: file-domain alignment, coIO nf=1, np={NP_MID}",
        ["configuration", "bandwidth", "RMW reads", "revocations"],
        rows,
    )
    res_al, stats_al = out[True]
    res_un, stats_un = out[False]
    assert stats_un["rmw_reads"] > 5 * max(stats_al["rmw_reads"], 1)
    # At smoke scale the bandwidth cost is within run-to-run noise; only
    # the RMW/token evidence above is scale-independent.
    slack = 1.05 if SMOKE else 1.0
    assert res_un.write_bandwidth <= slack * res_al.write_bandwidth


def test_ablation_rbio_ratio(benchmark):
    """Worker:writer ratios 64:1 / 32:1 / 16:1 (paper Section V-B)."""
    ratios = (64, 32, 16)

    def run():
        out = {}
        for wpw in ratios:
            nf = NP_BIG // wpw
            out[wpw] = get_run(f"rbio_nf{nf}", NP_BIG).result
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        f"Ablation 3: rbIO np:ng ratio at np={NP_BIG}",
        ["np:ng", "writers", "bandwidth", "blocked (app)"],
        [[f"{w}:1", len(out[w].writer_ranks),
          f"{out[w].write_bandwidth/1e9:.2f} GB/s",
          f"{out[w].blocking_time*1e6:.0f} us"] for w in ratios],
    )
    bench_record("ablations_rbio_ratio", n_ranks=NP_BIG, gbps={
        f"{w}:1": out[w].write_bandwidth / 1e9 for w in ratios
    })
    # Worker blocking stays in microseconds at every ratio.
    for w in ratios:
        assert out[w].blocking_time < 1e-2
    if PAPER_SCALE:
        # 16:1 (4096 writers) sits past the concurrency optimum.
        assert out[16].write_bandwidth < out[64].write_bandwidth


def test_ablation_writer_buffer(benchmark):
    """Flush granularity has no cliff for sole-owner writer files.

    Unlike the nf=1 shared file (whose extent allocation serializes
    regardless of how writers flush), per-writer files stay within the
    same performance regime across a 32x buffer range — the rbIO design
    is robust to this tunable.  Moderate flushes interleave best with the
    backend's queue-depth behaviour.
    """
    buffers = (8 << 20, 64 << 20, 256 << 20)

    def run():
        out = {}
        for buf in buffers:
            out[buf] = cached_point(
                "ablation_wbuf",
                lambda: run_checkpoint_step(
                    ReducedBlockingIO(workers_per_writer=64,
                                      writer_buffer=buf),
                    NP_MID, _data(NP_MID), config=intrepid().quiet(),
                ).result,
                buf, NP_MID,
            )
        out["nf1"] = cached_point(
            "ablation_wbuf",
            lambda: run_checkpoint_step(
                ReducedBlockingIO(workers_per_writer=64, single_file=True),
                NP_MID, _data(NP_MID), config=intrepid().quiet(),
            ).result,
            "nf1", NP_MID,
        )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        f"Ablation 4: rbIO writer buffer size, np={NP_MID}",
        ["configuration", "bandwidth"],
        [[f"nf=ng, {b >> 20} MB buffer", f"{out[b].write_bandwidth/1e9:.2f} GB/s"]
         for b in buffers]
        + [["nf=1 (shared file)", f"{out['nf1'].write_bandwidth/1e9:.2f} GB/s"]],
    )
    bws = [out[b].write_bandwidth for b in buffers]
    # No cliff across the sweep.
    assert max(bws) < 2.0 * min(bws)
    if PAPER_SCALE:
        # At production volume every buffer size beats the shared-file
        # configuration (whose extent allocation serializes).
        assert min(bws) > out["nf1"].write_bandwidth
