"""Extension: incremental content-addressed checkpointing (DESIGN.md §14).

Three studies of the content-defined-chunking delta path, all driven
through the declarative campaign layer (``grid.delta`` axis + evolving
``workload``), on an rbIO strategy writing an evolving state where a
contiguous ``mutated_fraction`` of each rank's image is overwritten per
step:

1. **Headline bytes-to-PFS reduction** — delta-on vs delta-off on the
   same campaign.  With a quarter of the state mutating per step over a
   20-generation chain, the delta path must ship >= 3x fewer physical
   bytes while the *perceived* checkpoint bandwidth (logical bytes over
   blocked time) rises, because the application still logically
   checkpoints everything.
2. **Mutated-fraction sweep** — the dedup ratio degrades monotonically
   as more of the state churns, tracking the analytic
   ``chain_reduction(n, f_eff)`` model of :mod:`repro.model`.
3. **Chain-length (checkpoint-frequency) sweep** — longer chains
   amortize the full generation 0 further; the reduction approaches the
   model's ``1 / f_eff`` asymptote from below.

The simulator-vs-model agreement asserted here is what lets the interval
planner (:mod:`repro.ckpt.schedule`) price delta checkpoints without
running the simulation.
"""

from _common import (
    PAPER_SCALE,
    SMOKE,
    bench_record,
    cached_point,
    print_series,
)

from repro.campaign import CampaignSpec
from repro.campaign.shim import run_campaign
from repro.model import chain_reduction, effective_delta_fraction

# A fixed-size study (like the fault sweep): the delta ratio is a
# per-rank property, so scaling np only multiplies the same images.
NP = 512 if PAPER_SCALE else (64 if not SMOKE else 8)
PPR = 12000 if PAPER_SCALE else (9000 if not SMOKE else 6000)
GAP = 0.5
HEADLINE_F = 0.25          # acceptance point: <= 25% of state mutates
HEADLINE_STEPS = 20
FRACTIONS = (0.05, 0.25, 0.5)
CHAIN_LENGTHS = (5, 10, 20)
SEED = 42

#: EvolvingData.mutating writes 142 bytes per point per rank; the default
#: ChunkingParams average is 8 KiB and a JSON manifest entry ~95 bytes.
IMAGE_BYTES = 142 * PPR
AVG_CHUNK = 8192
OVERHEAD = 4096 + 95 * (IMAGE_BYTES // AVG_CHUNK)  # header + manifest

_RECORD: dict = {"n_ranks": NP, "points_per_rank": PPR}


def _spec(fraction: float, n_steps: int, modes) -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": f"ext_incremental_f{fraction}_n{n_steps}",
        "seed": SEED,
        "machine": {"preset": "intrepid_quiet"},
        "grid": {"approaches": ["rbio_nf2"], "np": [NP],
                 "delta": list(modes)},
        "steps": {"n_steps": n_steps, "gap": GAP},
        "workload": {"points_per_rank": PPR, "mutated_fraction": fraction},
    })


def _delta_cell(fraction: float, n_steps: int) -> dict:
    """One delta="require" campaign point, reduced to headline numbers."""
    (row,) = run_campaign(_spec(fraction, n_steps, ["require"]))
    return _reduce(row)


def _reduce(row: dict) -> dict:
    out = {"delta": row["delta"], "gbps": row["gbps"]}
    if row["delta"] != "off":
        out.update({
            "bytes_logical": row["bytes_logical"],
            "bytes_to_pfs": row["bytes_to_pfs"],
            "reduction": row["bytes_logical"] / row["bytes_to_pfs"],
            "chunk_hits": row["chunk_hits"],
            "chunk_misses": row["chunk_misses"],
        })
    return out


def _model_reduction(fraction: float, n_steps: int) -> float:
    f_eff = effective_delta_fraction(
        fraction, IMAGE_BYTES, AVG_CHUNK, overhead_bytes=OVERHEAD)
    return chain_reduction(n_steps, f_eff)


def test_headline_reduction_and_perceived_bandwidth(benchmark):
    """Delta-on ships >= 3x fewer bytes to the PFS at f=0.25, n=20."""
    def run():
        rows = run_campaign(_spec(HEADLINE_F, HEADLINE_STEPS,
                                  ["off", "require"]))
        return [_reduce(r) for r in rows]

    off, on = benchmark.pedantic(
        lambda: cached_point("incremental_headline", run, NP, PPR,
                             HEADLINE_F, HEADLINE_STEPS),
        rounds=1, iterations=1,
    )
    assert off["delta"] == "off" and on["delta"] == "require"
    print_series(
        f"Incremental headline, rbio np={NP}, f={HEADLINE_F}, "
        f"{HEADLINE_STEPS} generations",
        ["mode", "perceived GB/s", "bytes to PFS", "reduction"],
        [["full write", f"{off['gbps']:.4f}", on["bytes_logical"], "1.00x"],
         ["delta", f"{on['gbps']:.4f}", on["bytes_to_pfs"],
          f"{on['reduction']:.2f}x"]],
    )
    # The acceptance criterion: <= 25% churn per step must cut physical
    # PFS traffic at least 3x over the chain.
    assert on["reduction"] >= 3.0
    # Logical bytes are the full image every generation regardless of mode.
    assert on["bytes_logical"] == NP * IMAGE_BYTES * HEADLINE_STEPS
    # Dedup hits dominate after generation 0 at 25% churn.
    assert on["chunk_hits"] > on["chunk_misses"]
    # Shipping fewer physical bytes for the same logical checkpoint raises
    # the perceived bandwidth.
    assert on["gbps"] > off["gbps"]
    _RECORD["headline"] = {"off_gbps": off["gbps"], "on_gbps": on["gbps"],
                           "reduction": on["reduction"],
                           "bytes_to_pfs": on["bytes_to_pfs"]}
    bench_record("ext_incremental", **_RECORD)


def test_reduction_vs_mutated_fraction(benchmark):
    """More churn, less dedup — monotone, and the analytic model tracks."""
    def run():
        return [_delta_cell(f, HEADLINE_STEPS) for f in FRACTIONS]

    cells = benchmark.pedantic(
        lambda: cached_point("incremental_fractions", run, NP, PPR,
                             FRACTIONS, HEADLINE_STEPS),
        rounds=1, iterations=1,
    )
    models = [_model_reduction(f, HEADLINE_STEPS) for f in FRACTIONS]
    print_series(
        f"Reduction vs mutated fraction, np={NP}, "
        f"{HEADLINE_STEPS} generations",
        ["mutated fraction", "reduction", "model", "chunk hit rate"],
        [[f"{f:.2f}", f"{c['reduction']:.2f}x", f"{m:.2f}x",
          f"{c['chunk_hits'] / (c['chunk_hits'] + c['chunk_misses']):.3f}"]
         for f, c, m in zip(FRACTIONS, cells, models)],
    )
    reductions = [c["reduction"] for c in cells]
    assert all(a > b for a, b in zip(reductions, reductions[1:]))
    # The chunk-granularity model prices every cell to ~25%.
    for got, want in zip(reductions, models):
        assert 0.75 * want <= got <= 1.3 * want
    _RECORD["fractions"] = [
        {"mutated_fraction": f, "reduction": c["reduction"], "model": m}
        for f, c, m in zip(FRACTIONS, cells, models)
    ]
    bench_record("ext_incremental", **_RECORD)


def test_reduction_vs_chain_length(benchmark):
    """Longer chains amortize the full generation 0 toward 1/f_eff."""
    def run():
        return [_delta_cell(HEADLINE_F, n) for n in CHAIN_LENGTHS]

    cells = benchmark.pedantic(
        lambda: cached_point("incremental_chain", run, NP, PPR, HEADLINE_F,
                             CHAIN_LENGTHS),
        rounds=1, iterations=1,
    )
    models = [_model_reduction(HEADLINE_F, n) for n in CHAIN_LENGTHS]
    print_series(
        f"Reduction vs chain length, np={NP}, f={HEADLINE_F}",
        ["generations", "reduction", "model"],
        [[n, f"{c['reduction']:.2f}x", f"{m:.2f}x"]
         for n, c, m in zip(CHAIN_LENGTHS, cells, models)],
    )
    reductions = [c["reduction"] for c in cells]
    assert all(b > a for a, b in zip(reductions, reductions[1:]))
    for got, want in zip(reductions, models):
        assert 0.75 * want <= got <= 1.3 * want
    # Still below the infinite-chain asymptote the model predicts.
    f_eff = effective_delta_fraction(HEADLINE_F, IMAGE_BYTES, AVG_CHUNK,
                                     overhead_bytes=OVERHEAD)
    assert reductions[-1] < 1.0 / f_eff
    _RECORD["chain"] = [
        {"n_steps": n, "reduction": c["reduction"], "model": m}
        for n, c, m in zip(CHAIN_LENGTHS, cells, models)
    ]
    bench_record("ext_incremental", **_RECORD)
