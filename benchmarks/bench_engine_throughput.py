"""DES engine micro-benchmarks: raw event throughput of the hot paths.

The figure sweeps are dominated by three engine workloads: pure timeout
churn (heap push/pop/dispatch), process ping-pong (event callbacks and
synchronous resume), and wide collectives (arrival counting plus the
one-shot completion fan-out).  This bench measures events/second for each
via the engine's built-in counters (:meth:`~repro.sim.Engine.counters`)
so hot-path regressions show up as a number, not a vague slowdown.
"""

from _common import SMOKE, bench_np, bench_record, print_series

from repro.mpi import Job
from repro.sim import Engine
from repro.topology import intrepid

N_TIMEOUTS = 20_000 if SMOKE else 200_000
N_PINGPONG = 10_000 if SMOKE else 100_000
BARRIER_NP = bench_np(4096, 4096)
N_BARRIERS = 4 if SMOKE else 16


def _timeout_storm() -> Engine:
    """Many overlapping timeouts: heap throughput, FIFO tie-breaking."""
    eng = Engine()

    def proc(offset):
        for i in range(N_TIMEOUTS // 100):
            yield eng.timeout(((i * 7 + offset) % 13) * 0.001)

    for offset in range(100):
        eng.process(proc(offset))
    eng.run()
    return eng


def _ping_pong() -> Engine:
    """Two processes alternating on events: the resume fast path."""
    eng = Engine()
    state = {"ball": None}

    def ping():
        for _ in range(N_PINGPONG):
            ev = eng.event()
            state["ball"] = ev
            yield eng.timeout(0.0)
            ev.succeed(None)

    def pong():
        while state["ball"] is None:
            yield eng.timeout(0.0)
        for _ in range(N_PINGPONG):
            yield eng.timeout(0.0)

    eng.process(ping())
    eng.process(pong())
    eng.run()
    return eng


def _wide_barrier() -> Engine:
    """Repeated full-width barriers at 4K ranks: collective throughput."""
    job = Job(BARRIER_NP, intrepid().quiet())

    def rank_main(ctx):
        for _ in range(N_BARRIERS):
            yield from ctx.comm.barrier()

    job.spawn(rank_main)
    job.run()
    return job.engine


def test_engine_throughput(benchmark):
    def run():
        return {
            "timeout_storm": _timeout_storm().counters(),
            "ping_pong": _ping_pong().counters(),
            "barrier_4k": _wide_barrier().counters(),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "DES engine throughput",
        ["workload", "events", "wall", "events/sec"],
        [[name, c["events_processed"], f"{c['wall_seconds']:.2f} s",
          f"{c['events_per_second']:,.0f}"] for name, c in out.items()],
    )
    bench_record("engine_throughput", **{
        name: {"events": c["events_processed"],
               "wall_seconds": c["wall_seconds"],
               "events_per_second": c["events_per_second"]}
        for name, c in out.items()
    })

    for name, c in out.items():
        assert c["events_processed"] > 0, name
        assert c["events_per_second"] > 0, name
    # The raw heap path should sustain well beyond 100K events/sec on any
    # machine this runs on; a big miss means a hot-path regression.
    assert out["timeout_storm"]["events_per_second"] > 100_000
