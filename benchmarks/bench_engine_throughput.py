"""DES engine micro-benchmarks: raw event throughput of the hot paths.

The figure sweeps are dominated by three engine workloads: timeout churn
(calendar push/pop/dispatch), process ping-pong (event callbacks and
synchronous resume), and wide collectives (arrival counting plus the
one-shot completion fan-out).  This bench measures events/second for each
via the engine's built-in counters (:meth:`~repro.sim.Engine.counters`)
so hot-path regressions show up as a number, not a vague slowdown.

The headline ``timeout_storm`` / ``ping_pong`` workloads use the batched
event paths (:meth:`~repro.sim.Engine.timeout_batch`,
:meth:`~repro.sim.Engine.cohort`) the checkpoint strategies lean on; the
``*_scalar`` series keep the one-event-per-yield variants alive as
regression canaries for the unbatched path.  ``barrier_4k`` runs
uncoalesced per-rank barriers; ``barrier_64k`` runs the same total rank
count through coalesced representatives so the O(1)-per-wave claim for
symmetric groups (``Communicator._barrier_arrive_members``) is measured,
not asserted.
"""

import numpy as np
from _common import SMOKE, bench_np, bench_record, print_series

from repro.mpi import Job
from repro.sim import Engine
from repro.topology import intrepid

N_TIMEOUTS = 20_000 if SMOKE else 200_000
N_PINGPONG = 10_000 if SMOKE else 100_000
BATCH = 100  # timeouts per timeout_batch / exchanges per cohort volley
BARRIER_NP = bench_np(4096, 4096)
BARRIER64_NP = bench_np(65536, 8192)
GROUP64 = 64  # coalesced group width (the paper's rbIO 64:1 shape)
N_BARRIERS = 16


def _timeout_storm() -> Engine:
    """Vectorized timeout scheduling: one calendar entry per delay batch."""
    eng = Engine()
    n_batches = N_TIMEOUTS // 100 // BATCH

    def proc(offset):
        delays = (((np.arange(BATCH) * 7 + offset) % 13) * 0.001)
        for _ in range(n_batches):
            yield eng.timeout_batch(delays)

    for offset in range(100):
        eng.process(proc(offset))
    eng.run()
    return eng


def _timeout_storm_scalar() -> Engine:
    """Many overlapping scalar timeouts: calendar throughput, FIFO ties."""
    eng = Engine()

    def proc(offset):
        for i in range(N_TIMEOUTS // 100):
            yield eng.timeout(((i * 7 + offset) % 13) * 0.001)

    for offset in range(100):
        eng.process(proc(offset))
    eng.run()
    return eng


def _ping_pong() -> Engine:
    """Cohort volleys: each exchange carries a BATCH-wide completion cohort."""
    eng = Engine()
    state = {"ball": None}
    n_volleys = N_PINGPONG // BATCH

    def ping():
        for _ in range(n_volleys):
            coh = eng.cohort(BATCH)
            state["ball"] = coh
            yield eng.timeout(0.0)
            coh.succeed()

    def pong():
        for _ in range(n_volleys):
            while state["ball"] is None:
                yield eng.timeout(0.0)
            coh = state["ball"]
            state["ball"] = None
            yield coh

    eng.process(ping())
    eng.process(pong())
    eng.run()
    return eng


def _ping_pong_scalar() -> Engine:
    """Two processes alternating on events: the resume fast path."""
    eng = Engine()
    state = {"ball": None}

    def ping():
        for _ in range(N_PINGPONG):
            ev = eng.event()
            state["ball"] = ev
            yield eng.timeout(0.0)
            ev.succeed(None)

    def pong():
        while state["ball"] is None:
            yield eng.timeout(0.0)
        for _ in range(N_PINGPONG):
            yield eng.timeout(0.0)

    eng.process(ping())
    eng.process(pong())
    eng.run()
    return eng


def _wide_barrier() -> Engine:
    """Repeated full-width barriers at 4K ranks: collective throughput."""
    job = Job(BARRIER_NP, intrepid().quiet())

    def rank_main(ctx):
        for _ in range(N_BARRIERS):
            yield from ctx.comm.barrier()

    job.spawn(rank_main)
    job.run()
    return job.engine


def _wide_barrier_coalesced() -> Engine:
    """Same barrier waves at 64K ranks, entered by coalesced 64-wide reps.

    One representative process per contiguous 64-member group stands in
    for the whole group (the rbIO coalescing shape), so each wave costs
    O(groups) interpreted work instead of O(ranks).
    """
    job = Job(BARRIER64_NP, intrepid().quiet())

    def rep_main(ctx, members):
        for _ in range(N_BARRIERS):
            yield from ctx.comm.barrier_members(members)

    for g in range(BARRIER64_NP // GROUP64):
        members = range(g * GROUP64, (g + 1) * GROUP64)
        job.spawn(rep_main, members, ranks=[members[0]])
    job.run()
    return job.engine


_WORKLOADS = {
    "timeout_storm": _timeout_storm,
    "ping_pong": _ping_pong,
    "barrier_4k": _wide_barrier,
    "barrier_64k": _wide_barrier_coalesced,
    "timeout_storm_scalar": _timeout_storm_scalar,
    "ping_pong_scalar": _ping_pong_scalar,
}


def test_engine_throughput(benchmark):
    def run():
        return {name: fn().counters() for name, fn in _WORKLOADS.items()}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "DES engine throughput",
        ["workload", "events", "dispatched", "wall", "events/sec"],
        [[name, c["events_processed"], c["dispatched_events"],
          f"{c['wall_seconds']:.2f} s", f"{c['events_per_second']:,.0f}"]
         for name, c in out.items()],
    )
    bench_record("engine_throughput", **{
        name: {"events": c["events_processed"],
               "dispatched": c["dispatched_events"],
               "wall_seconds": c["wall_seconds"],
               "events_per_second": c["events_per_second"]}
        for name, c in out.items()
    })

    for name, c in out.items():
        assert c["events_processed"] > 0, name
        assert c["events_per_second"] > 0, name
    # The batched paths should clear 1M logical events/sec on any machine
    # this runs on (target hardware does >5M); the scalar calendar path
    # should sustain well beyond 100K.  A big miss means a hot-path
    # regression.
    assert out["timeout_storm"]["events_per_second"] > 1_000_000
    assert out["ping_pong"]["events_per_second"] > 1_000_000
    assert out["timeout_storm_scalar"]["events_per_second"] > 100_000
    # Coalesced entry must make a wave *cheaper* in wall time than the
    # uncoalesced run despite twice the rank count — the O(1)-per-wave
    # property, measured.
    assert (out["barrier_64k"]["wall_seconds"]
            < out["barrier_4k"]["wall_seconds"])


# -- trace-plane overhead cell ------------------------------------------------

TRACE_NP = bench_np(2048, 512)
TRACE_ROUNDS = 1 if SMOKE else 3


def _ckpt_wall(mode: str) -> float:
    """Host seconds for one instrumented rbIO checkpoint at ``mode``."""
    import time as _time

    from repro.experiments.figures import problem_for, strategy_for
    from repro.experiments.runner import run_checkpoint_steps
    from repro.trace import configure_trace

    configure_trace(mode)
    try:
        t0 = _time.perf_counter()
        run_checkpoint_steps(strategy_for("rbio_ng", TRACE_NP), TRACE_NP,
                             problem_for(TRACE_NP).data(), 1)
        return _time.perf_counter() - t0
    finally:
        configure_trace("off")


def test_trace_overhead(benchmark):
    """The off-switch guarantee, measured on the instrumented hot path.

    Runs the same rbIO checkpoint with tracing off / summary / full
    (min of interleaved rounds) through every instrumented call site
    (ckpt envelope, pack, mpiio exchange/commit, forwarded fs spans).
    The span/event counts are deterministic and gated unconditionally by
    the perf gate, so instrumentation-coverage drift fails CI; the wall
    ratios carry ``wall`` in their key so the gate treats them as
    host-dependent (one-sided, ``PERF_GATE_WALL=1`` opt-in), and the
    strict <=2%-overhead assertion only arms on quiet dedicated runners.
    """
    import os

    from repro.trace import configure_trace

    _ckpt_wall("off")  # warm allocators and import paths before timing
    walls = {"off": [], "summary": [], "full": []}
    for _ in range(TRACE_ROUNDS + 1):
        for mode in walls:
            walls[mode].append(_ckpt_wall(mode))
    best = {mode: min(w) for mode, w in walls.items()}

    tracer = configure_trace("full")
    try:
        from repro.experiments.figures import problem_for, strategy_for
        from repro.experiments.runner import run_checkpoint_steps
        run_checkpoint_steps(strategy_for("rbio_ng", TRACE_NP), TRACE_NP,
                             problem_for(TRACE_NP).data(), 1)
        n_spans = len(tracer.spans)
        n_events = len(tracer.events)
        rank_spans = sum(1 for s in tracer.spans for _r in s.expand())
    finally:
        configure_trace("off")

    summary_ratio = best["summary"] / best["off"]
    full_ratio = best["full"] / best["off"]
    print_series(
        "trace-plane overhead (instrumented rbIO checkpoint)",
        ["mode", "best wall", "vs off"],
        [[m, f"{best[m]:.4f} s", f"{best[m] / best['off']:.3f}x"]
         for m in ("off", "summary", "full")],
    )
    bench_record("trace_overhead", **{
        "ckpt_rbio": {
            "np": TRACE_NP,
            "n_spans_full": n_spans,
            "n_events_full": n_events,
            "rank_spans_full": rank_spans,
            "wall_seconds_off": best["off"],
            "wall_seconds_summary": best["summary"],
            "wall_seconds_full": best["full"],
            "summary_over_off_wall_ratio": summary_ratio,
            "full_over_off_wall_ratio": full_ratio,
        },
    })

    assert n_spans > 0 and rank_spans >= TRACE_NP
    # Loose sanity everywhere; the contractual <=2% band needs a quiet
    # machine (same opt-in the perf gate uses for wall metrics).
    assert summary_ratio < 1.5 and full_ratio < 1.5
    # Smoke walls are ~milliseconds — below timer-noise floor for a 2%
    # band — so the strict assert needs the small/paper tiers too.
    if os.environ.get("PERF_GATE_WALL") == "1" and not SMOKE:
        assert summary_ratio <= 1.02, (
            f"trace summary-mode overhead {summary_ratio:.3f}x exceeds the "
            "2% band; the off/summary paths must stay near-free")
