"""Extension (paper future work): rbIO on a Lustre-like file system.

The paper plans to "investigate how rbIO performs on platforms such as the
Cray XT with other file systems such as Lustre".  This bench runs the
rbIO file-count sweep of Fig. 8 on the Lustre variant and contrasts it
with GPFS: object striping over ``stripe_count`` OSTs makes small file
counts (and especially a single shared file) far worse on Lustre, shifting
the optimum — confirming the paper's observation that "this optimal number
could vary from one file system to another".
"""

from _common import (
    PAPER_SCALE,
    SMOKE,
    bench_np,
    bench_record,
    cached_point,
    print_series,
)

from repro.ckpt import CollectiveIO, ReducedBlockingIO
from repro.experiments import paper_data, run_checkpoint_step, scaled_problem

NP = bench_np(16384, 2048)
if PAPER_SCALE:
    N_FILES = (64, 256, 1024, 4096)
elif SMOKE:
    N_FILES = (4, 16, 64)
else:
    N_FILES = (16, 64, 256)


def _data():
    return paper_data(NP) if PAPER_SCALE else scaled_problem(NP).data()


def test_ext_lustre_file_sweep(benchmark):
    def run():
        data = _data()
        out = {"gpfs": {}, "lustre": {}}
        for nf in N_FILES:
            wpw = NP // nf
            if wpw < 2:
                continue
            for fs_type in ("gpfs", "lustre"):
                out[fs_type][nf] = cached_point(
                    "ext_lustre",
                    lambda: run_checkpoint_step(
                        ReducedBlockingIO(workers_per_writer=wpw), NP, data,
                        fs_type=fs_type,
                    ).result.write_bandwidth / 1e9,
                    fs_type, nf, NP,
                )
        # Shared-file collective baseline on both.
        for fs_type in ("gpfs", "lustre"):
            out[fs_type]["nf=1 coIO"] = cached_point(
                "ext_lustre",
                lambda: run_checkpoint_step(
                    CollectiveIO(ranks_per_file=None), NP, data,
                    fs_type=fs_type,
                ).result.write_bandwidth / 1e9,
                fs_type, "coio_nf1", NP,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    cols = [f"nf={nf}" for nf in N_FILES if NP // nf >= 2] + ["coIO nf=1"]
    keys = [nf for nf in N_FILES if NP // nf >= 2] + ["nf=1 coIO"]
    rows = [
        [fs_type] + [f"{out[fs_type][k]:.2f}" for k in keys]
        for fs_type in ("gpfs", "lustre")
    ]
    print_series(
        f"Extension: rbIO bandwidth (GB/s) on GPFS vs Lustre, np={NP}",
        ["file system"] + cols, rows,
    )

    bench_record("ext_lustre", n_ranks=NP, gbps={
        fs_type: {str(k): out[fs_type][k] for k in keys}
        for fs_type in ("gpfs", "lustre")
    })
    # A single shared file on Lustre is capped by its stripe width (4 OSTs
    # of 128 servers) — Dickens & Logan's poor shared-file MPI-IO.
    assert out["lustre"]["nf=1 coIO"] < out["gpfs"]["nf=1 coIO"]
    # With many files both file systems can use the whole backend.
    many = keys[-2]
    # (at smoke scale the stripe-width gap narrows; keep a looser floor)
    factor = 1.5 if SMOKE else 2
    assert out["lustre"][many] > factor * out["lustre"]["nf=1 coIO"]
    if PAPER_SCALE:
        # The shared-file ceiling is drastic: >4x below GPFS's (already
        # allocation-limited) shared-file rate...
        assert out["lustre"]["nf=1 coIO"] < out["gpfs"]["nf=1 coIO"] / 4
        # ...while with enough files Lustre is within 2x of GPFS.
        assert out["lustre"][many] > 0.5 * out["gpfs"][many]
