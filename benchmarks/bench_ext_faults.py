"""Extension: resilience under deterministic fault injection (DESIGN.md §10).

Two studies on top of :mod:`repro.faults`:

1. **Fault-rate overhead sweep** — checkpoint campaigns under growing
   transient FS fault rates (errors absorbed by bounded retry, stalls by
   waiting them out).  The zero-rate point must coincide *exactly* with a
   fault-free run: the injection layer's off-switch is one pointer test
   on the hot paths, so disabled injection is provably zero-cost.
2. **Writer-failover campaign** — an rbIO campaign that loses a dedicated
   writer between generations; a surviving writer adopts the orphaned
   group, and the coordinated restart falls back to the newest complete
   generation instead of hanging or silently restoring a partial one.

The fault-rate sweep is a fixed-size study (like the staging drain
sweep): fault counts are per-campaign, so scaling np only dilutes them.
"""

from _common import SMOKE, bench_np, bench_record, cached_point, print_series

from repro.campaign.shim import (
    failover_campaign,
    failover_metrics,
    faults_sweep_campaign,
    rate_rows,
)
from repro.ckpt import ReducedBlockingIO
from repro.experiments import run_checkpoint_steps, scaled_problem

NP = bench_np(4096, 1024)
N_STEPS = 2
GAP = 2.0
RATES = (0.0, 2.0, 6.0) if SMOKE else (0.0, 2.0, 6.0, 12.0)
WPW = 64

#: Both studies as declarative campaigns; the shim executors reproduce the
#: legacy resilience_sweep / run_resilient_campaign values bit for bit.
SWEEP_CAMPAIGN = faults_sweep_campaign(
    "ext_faults_sweep", NP, RATES, N_STEPS, GAP, horizon=GAP * N_STEPS)
FAILOVER_CAMPAIGN = failover_campaign(
    "ext_faults_failover", NP, N_STEPS, GAP)

#: Cumulative metrics; each test re-records so BENCH_ext_faults.json holds
#: everything the module produced so far.
_RECORD: dict = {"n_ranks": NP}


def _data(n):
    return scaled_problem(n).data()


def test_fault_rate_overhead_sweep(benchmark):
    """Overhead grows with the injected fault rate; zero rate costs zero."""
    def run():
        rows = rate_rows(SWEEP_CAMPAIGN)
        baseline = run_checkpoint_steps(
            ReducedBlockingIO(workers_per_writer=WPW), NP, _data(NP),
            N_STEPS, gap_seconds=GAP, coalesce="off",
        ).results[-1]
        return rows, baseline.overall_time

    rows, base_time = benchmark.pedantic(
        lambda: cached_point("faults_sweep", run, NP, N_STEPS, GAP, RATES),
        rounds=1, iterations=1,
    )
    print_series(
        f"Fault-rate overhead sweep, rbio np={NP}, {N_STEPS} steps",
        ["rate", "injected", "overall time", "overhead"],
        [[f"{r['rate']:.0f}", r["injected"],
          f"{r['overall_time']:.3f} s", f"{r['overhead']:.3f}x"]
         for r in rows],
    )
    # Zero-cost off-switch: the empty schedule reproduces the fault-free
    # campaign bit-exactly (same events, same timing).
    assert rows[0]["rate"] == 0.0
    assert rows[0]["injected"] == 0
    assert rows[0]["overall_time"] == base_time
    # Injected transient faults only ever add time (retry backoff, stall
    # waits), and the heaviest rate measurably hurts.
    for r in rows:
        assert r["overhead"] >= 1.0 - 1e-9
    assert rows[-1]["injected"] > 0
    assert rows[-1]["overall_time"] >= rows[0]["overall_time"]
    _RECORD["sweep"] = [
        {k: r[k] for k in ("rate", "injected", "overall_time", "overhead")}
        for r in rows
    ]
    bench_record("ext_faults", **_RECORD)


def test_writer_failover_campaign(benchmark):
    """Losing a writer neither hangs the campaign nor corrupts the restart."""
    crash_rank = 0  # first dedicated writer

    def run():
        return failover_metrics(FAILOVER_CAMPAIGN)

    out = benchmark.pedantic(
        lambda: cached_point("faults_failover", run, NP, N_STEPS, GAP),
        rounds=1, iterations=1,
    )
    print_series(
        f"Writer-failover campaign, rbio np={NP}, crash rank {crash_rank}",
        ["metric", "value"],
        [[k, v] for k, v in out.items()],
    )
    # The orphaned group was adopted by a survivor in generation 1 ...
    assert out["failovers"] == 1
    assert out["crashed_roles"] == 1
    # ... and the coordinated restart agreed on the newest *complete*
    # generation (generation 1 misses the dead rank's data).
    assert out["restored_step"] == 0
    _RECORD["failover"] = out
    bench_record("ext_faults", **_RECORD)
