"""Data-plane microbenchmark: host bytes copied per byte checkpointed.

Payload-carrying runs exercise the zero-copy scatter-gather data plane
(:mod:`repro.buffers`): worker packages, writer reassembly, two-phase
exchange, staging CRC/replication, and FS extent commits all move segment
references, materializing exactly once at the file-system boundary.  This
bench runs every strategy over a payload-size sweep twice — once in
``zerocopy`` mode and once in ``eager`` mode (which materializes at every
hop, reproducing the pre-rope behavior) — and records MB copied per MB
checkpointed plus wall time for both, asserting the headline reduction.

Both modes commit bit-identical file images (the property suite proves
it); only host copy volume and wall time differ.
"""

import time

import numpy as np
from _common import SMOKE, bench_record, print_series

from repro import buffers
from repro.ckpt import (
    BurstBufferIO,
    CheckpointData,
    CollectiveIO,
    Field,
    OneFilePerProcess,
    ReducedBlockingIO,
)
from repro.experiments import run_checkpoint_steps
from repro.topology import intrepid

N_RANKS = 32 if SMOKE else 64
N_FIELDS = 3
GROUP = 8 if SMOKE else 16
#: Per-field payload sizes (bytes per rank).
PAYLOAD_SIZES = (2048, 16384) if SMOKE else (65536, 524288)
#: Writer aggregation buffer, sized below every swept group image so every
#: commit happens in several bursts (the multi-burst flush is one of the
#: copies eager mode pays and zerocopy does not).
WRITER_BUFFER = 32 * 1024 if SMOKE else 1024 * 1024


def _strategies():
    return (
        ("1pfpp", lambda: OneFilePerProcess(arrival_jitter=0.0)),
        ("coio", lambda: CollectiveIO(ranks_per_file=GROUP)),
        ("rbio_ng", lambda: ReducedBlockingIO(workers_per_writer=GROUP,
                                              writer_buffer=WRITER_BUFFER)),
        ("bbio", lambda: BurstBufferIO(workers_per_writer=GROUP)),
    )


def _data_builder(per_field: int):
    """Per-rank distinct payloads (seeded), so file bytes are meaningful."""

    def build(rank: int) -> CheckpointData:
        rng = np.random.default_rng(9000 + rank)
        fields = [
            Field(f"f{i}", per_field,
                  rng.integers(0, 256, size=per_field, dtype=np.uint8).tobytes())
            for i in range(N_FIELDS)
        ]
        return CheckpointData(fields, header_bytes=512)

    return build


def _measure(make_strategy, per_field: int, mode: str) -> dict:
    """One run in one copy mode: copies/byte + wall seconds."""
    prev = buffers.set_copy_mode(mode)
    try:
        buffers.stats.reset()
        t0 = time.perf_counter()
        run_checkpoint_steps(make_strategy(), N_RANKS,
                             _data_builder(per_field), 1,
                             config=intrepid().quiet())
        wall = time.perf_counter() - t0
        checkpointed = N_RANKS * N_FIELDS * per_field
        snap = buffers.stats.snapshot()
        return {
            "bytes_checkpointed": checkpointed,
            "bytes_copied": snap["bytes_copied"],
            "buffer_allocs": snap["buffer_allocs"],
            "copies_per_byte": snap["bytes_copied"] / checkpointed,
            "wall_seconds": wall,
        }
    finally:
        buffers.set_copy_mode(prev)
        buffers.stats.reset()


def test_dataplane_copies(benchmark):
    def run():
        out = {}
        for name, make in _strategies():
            for per in PAYLOAD_SIZES:
                zc = _measure(make, per, "zerocopy")
                eager = _measure(make, per, "eager")
                out[f"{name}@{per}"] = {
                    "strategy": name,
                    "per_field_bytes": per,
                    "zerocopy": zc,
                    "eager": eager,
                    "reduction": (eager["copies_per_byte"]
                                  / zc["copies_per_byte"]),
                }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Data plane: MB copied per MB checkpointed",
        ["case", "zerocopy", "eager", "reduction", "zc wall"],
        [[case,
          f"{r['zerocopy']['copies_per_byte']:.3f}",
          f"{r['eager']['copies_per_byte']:.3f}",
          f"{r['reduction']:.2f}x",
          f"{r['zerocopy']['wall_seconds']:.2f} s"]
         for case, r in out.items()],
    )
    bench_record("dataplane", cases=out)

    for case, r in out.items():
        # Zero-copy pays ~1 copy/byte: the single FS-commit materialization
        # (plus per-file header zeros, a sliver).
        assert r["zerocopy"]["copies_per_byte"] < 1.5, case
        # Eager never beats zerocopy.
        assert r["reduction"] >= 1.0, case
    # Headline: rbIO nf=ng with payloads copies >= 3x less per checkpointed
    # byte (worker concat + field-major reassembly + burst slicing all
    # collapse into segment gathers).
    for per in PAYLOAD_SIZES:
        r = out[f"rbio_ng@{per}"]
        assert r["reduction"] >= 3.0, (per, r["reduction"])
