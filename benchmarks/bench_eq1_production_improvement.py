"""Equation 1: end-to-end production improvement of rbIO over 1PFPP.

Paper: with checkpoint frequency nc = 20, Ratio_1PFPP generally above 1000
and Ratio_rbIO under 20 give ~25x production-time improvement for NekCEM.

Two readings of rbIO's checkpoint cost are reported: the *commit* time (the
slowest-processor wall clock of Fig. 6 — the paper-comparable number) and
the application-*blocking* time (microsecond worker Isends — the effective
cost once writer drain overlaps computation).
"""

from _common import PAPER_SCALE, SMOKE, bench_np, bench_record, prefetch, print_series

from repro.experiments import eq1_production_improvement

NP = bench_np(16384, 4096)


def test_eq1_production_improvement(benchmark):
    prefetch([("1pfpp", NP), ("rbio_ng", NP)])
    out = benchmark.pedantic(
        lambda: eq1_production_improvement(n_ranks=NP, nc=20),
        rounds=1, iterations=1,
    )
    print_series(
        f"Eq 1: production improvement, np={NP}, nc=20",
        ["quantity", "value"],
        [
            ["Ratio 1PFPP (Tc/Tcomp)", f"{out['ratio_1pfpp']:.0f}"],
            ["Ratio rbIO, commit time", f"{out['ratio_rbio_commit']:.1f}"],
            ["Ratio rbIO, app blocking", f"{out['ratio_rbio_blocking']:.4f}"],
            ["improvement (commit)", f"{out['improvement_commit']:.1f}x  (paper: ~25x)"],
            ["improvement (blocking)", f"{out['improvement_blocking']:.1f}x"],
        ],
    )
    bench_record("eq1_production_improvement", n_ranks=NP,
                 ratio_1pfpp=out["ratio_1pfpp"],
                 ratio_rbio_commit=out["ratio_rbio_commit"],
                 improvement_commit=out["improvement_commit"],
                 improvement_blocking=out["improvement_blocking"])

    if not SMOKE:
        # The 1PFPP metadata/file-count pathology needs real scale; at
        # the smoke tier's few hundred files the ratios cross over.
        assert out["ratio_1pfpp"] > out["ratio_rbio_commit"]
    assert out["improvement_blocking"] >= out["improvement_commit"]
    if PAPER_SCALE:
        # The paper's §V-B numbers: Ratio_1PFPP above 1000, Ratio_rbIO
        # under 20, improvement ~25x at nc=20.
        assert out["ratio_1pfpp"] > 1000
        assert out["ratio_rbio_commit"] < 20
        assert 15 < out["improvement_commit"] < 60
