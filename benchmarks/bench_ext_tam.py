"""Extension: two-level intra-node request aggregation (DESIGN.md §15).

Two studies of the TAM path (Kang et al., arXiv:1907.12656) — same-node
ranks coalesce their checkpoint extents through a node-local aggregator
before anything touches the torus, so only node leaders join the
inter-node exchange:

1. **rbIO np sweep (Fig. 5-style)** — flat vs TAM over the paper's
   processor counts.  Inter-node fabric *messages* drop by the
   cores-per-node factor (4x on BG/P) at every np, while inter-node
   *bytes* are bit-identical (every package still crosses the node
   boundary exactly once) and the written files are unchanged.  The
   per-writer message count demonstrates the scaling claim: flat is
   O(ranks per aggregator), TAM is O(nodes per aggregator).
2. **coIO aggregator-count sweep (Fig. 8-style)** — flat vs TAM across
   ``cb_nodes`` settings of the shared-file collective write.  The
   two-phase exchange coalesces per node on both the send and receive
   side, so the reduction tracks the node-local fan-in even as the
   aggregator count varies.

The headline acceptance: at the sweep's headline np (16K at paper
scale), rbIO under TAM must send >= 3x fewer inter-node fabric messages
than the flat protocol.
"""

from _common import (
    PAPER_SCALE,
    SMOKE,
    bench_record,
    cached_point,
    print_series,
)

from repro.ckpt import CollectiveIO
from repro.experiments import run_checkpoint_step
from repro.experiments.figures import problem_for, strategy_for
from repro.mpiio import Hints
from repro.topology import intrepid

#: Fig. 5-style weak-scaling counts for the rbIO flat-vs-TAM sweep.
if PAPER_SCALE:
    NP_SWEEP = (4096, 16384, 65536)
elif SMOKE:
    NP_SWEEP = (128, 256, 512)
else:
    NP_SWEEP = (512, 1024, 2048)

#: The acceptance point: np=16K at paper scale, mid-sweep otherwise.
HEADLINE_NP = NP_SWEEP[1]

#: coIO aggregator counts (cb_nodes) for the Fig. 8-style sweep, and the
#: fixed processor count they share.
CB_NODES = (2, 4, 8)
COIO_NP = 16384 if PAPER_SCALE else 128

WPW = 64  # rbio_ng group size (np:ng = 64:1)

QUIET = intrepid().quiet()
CPN = QUIET.cores_per_node

_RECORD: dict = {"np_sweep": list(NP_SWEEP), "cores_per_node": CPN}

#: The fabric-stats keys every cell carries into the record.
_KEYS = ("fabric_msgs_intra", "fabric_msgs_inter",
         "fabric_bytes_intra", "fabric_bytes_inter",
         "tam_msgs", "tam_packages", "tam_coalesce_ratio")


def _cell(strategy, n_ranks: int) -> dict:
    """Run one checkpoint step; return fabric stats + headline timing."""
    run = run_checkpoint_step(strategy, n_ranks,
                              problem_for(n_ranks).data(), config=QUIET)
    out = {k: run.job.fabric.stats()[k] for k in _KEYS}
    out["gbps"] = run.result.write_bandwidth / 1e9
    return out


def _rbio_pair(n_ranks: int) -> dict:
    flat = _cell(strategy_for("rbio_ng", n_ranks), n_ranks)
    tam = _cell(strategy_for("rbio_ng", n_ranks, tam="require"), n_ranks)
    return {"np": n_ranks, "flat": flat, "tam": tam,
            "reduction": flat["fabric_msgs_inter"]
            / tam["fabric_msgs_inter"]}


def _coio_pair(cb_nodes: int) -> dict:
    def build(tam):
        s = CollectiveIO(ranks_per_file=None, hints=Hints(cb_nodes=cb_nodes))
        return s.configure_tam(tam) if tam != "off" else s

    flat = _cell(build("off"), COIO_NP)
    tam = _cell(build("require"), COIO_NP)
    return {"cb_nodes": cb_nodes, "flat": flat, "tam": tam,
            "reduction": flat["fabric_msgs_inter"]
            / tam["fabric_msgs_inter"]}


def test_rbio_inter_node_message_reduction(benchmark):
    """TAM cuts rbIO inter-node fabric messages >= 3x at the headline np."""
    rows = benchmark.pedantic(
        lambda: cached_point("tam_rbio_sweep",
                             lambda: [_rbio_pair(np_) for np_ in NP_SWEEP],
                             NP_SWEEP, WPW, CPN),
        rounds=1, iterations=1,
    )
    print_series(
        f"rbIO (np:ng={WPW}:1) inter-node fabric messages, flat vs TAM, "
        f"cores/node={CPN}",
        ["np", "flat msgs", "TAM msgs", "reduction", "flat GB/s",
         "TAM GB/s"],
        [[r["np"], r["flat"]["fabric_msgs_inter"],
          r["tam"]["fabric_msgs_inter"], f"{r['reduction']:.2f}x",
          f"{r['flat']['gbps']:.3f}", f"{r['tam']['gbps']:.3f}"]
         for r in rows],
    )
    headline = next(r for r in rows if r["np"] == HEADLINE_NP)
    # The acceptance criterion: >= 3x fewer inter-node messages for rbIO
    # at the headline processor count (16K at paper scale).
    assert headline["reduction"] >= 3.0
    for r in rows:
        groups = r["np"] // WPW
        # Scaling shape, not just a factor: flat sends one message per
        # remote *rank* per aggregator, TAM one per remote *node*.
        assert r["flat"]["fabric_msgs_inter"] == groups * (WPW - CPN)
        assert r["tam"]["fabric_msgs_inter"] == groups * (WPW // CPN - 1)
        # Every package still crosses the node boundary exactly once, so
        # inter-node *bytes* are identical; only the message count drops.
        assert (r["tam"]["fabric_bytes_inter"]
                == r["flat"]["fabric_bytes_inter"])
        assert r["tam"]["tam_coalesce_ratio"] > 1.0
        assert r["flat"]["tam_msgs"] == 0
    _RECORD["rbio"] = [
        {"np": r["np"], "reduction": r["reduction"],
         "flat_msgs_inter": r["flat"]["fabric_msgs_inter"],
         "tam_msgs_inter": r["tam"]["fabric_msgs_inter"],
         "flat_gbps": r["flat"]["gbps"], "tam_gbps": r["tam"]["gbps"]}
        for r in rows
    ]
    _RECORD["headline_reduction"] = headline["reduction"]
    bench_record("ext_tam", **_RECORD)


def test_coio_reduction_across_aggregator_counts(benchmark):
    """The coIO two-phase reduction holds across cb_nodes settings."""
    rows = benchmark.pedantic(
        lambda: cached_point("tam_coio_sweep",
                             lambda: [_coio_pair(cb) for cb in CB_NODES],
                             CB_NODES, COIO_NP, CPN),
        rounds=1, iterations=1,
    )
    print_series(
        f"coIO (nf=1, np={COIO_NP}) inter-node fabric messages vs "
        "aggregator count, flat vs TAM",
        ["cb_nodes", "flat msgs", "TAM msgs", "reduction"],
        [[r["cb_nodes"], r["flat"]["fabric_msgs_inter"],
          r["tam"]["fabric_msgs_inter"], f"{r['reduction']:.2f}x"]
         for r in rows],
    )
    for r in rows:
        # Node-local coalescing approaches the cores-per-node fan-in; it
        # can't exceed it, and stays well above half of it even at the
        # largest aggregator count (where more leaders are themselves
        # aggregators and have nothing to forward).
        assert CPN / 2 < r["reduction"] <= CPN
        assert (r["tam"]["fabric_bytes_inter"]
                == r["flat"]["fabric_bytes_inter"])
        assert r["tam"]["tam_msgs"] > 0
    _RECORD["coio"] = [
        {"cb_nodes": r["cb_nodes"], "reduction": r["reduction"],
         "flat_msgs_inter": r["flat"]["fabric_msgs_inter"],
         "tam_msgs_inter": r["tam"]["fabric_msgs_inter"]}
        for r in rows
    ]
    bench_record("ext_tam", **_RECORD)
