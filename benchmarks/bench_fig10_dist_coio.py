"""Figure 10: per-rank I/O time distribution for coIO 64:1 at 65,536 ranks.

The paper: far more synchronized than 1PFPP (note the smaller y-range),
most processors finish within ~10 s, but a few outlier groups — noise
under shared-storage load — take several times longer, and every rank in
the collective waits for the slowest.
"""

import numpy as np
from _common import FIG10_NP, PAPER_SCALE, bench_record, print_series

from repro.experiments import fig10_distribution_coio
from repro.profiling import distribution_summary


def test_fig10_distribution_coio(benchmark):
    ranks, times = benchmark.pedantic(
        lambda: fig10_distribution_coio(n_ranks=FIG10_NP), rounds=1, iterations=1
    )
    s = distribution_summary(times)
    print_series(
        f"Fig 10: coIO 64:1 per-rank I/O time, np={FIG10_NP}",
        ["metric", "value"],
        [
            ["ranks", str(len(ranks))],
            ["median", f"{s['median']:.2f} s"],
            ["p95", f"{s['p95']:.2f} s"],
            ["max", f"{s['max']:.2f} s"],
            ["outlier fraction (>3x med)", f"{s['outlier_fraction']:.4f}"],
        ],
    )
    bench_record("fig10_dist_coio", n_ranks=FIG10_NP, median_s=s["median"],
                 p95_s=s["p95"], max_s=s["max"],
                 outlier_fraction=s["outlier_fraction"])

    assert len(ranks) == FIG10_NP
    # Much tighter than the 1PFPP spread: median within 4x of p95...
    assert s["p95"] < 4 * s["median"]
    if PAPER_SCALE:
        # ...but outlier groups several times the median hold everyone back.
        assert s["max"] > 2.0 * s["median"]
        assert s["median"] < 15.0
