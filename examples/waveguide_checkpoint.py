#!/usr/bin/env python
"""Waveguide simulation with checkpoint/restart on the simulated machine.

The paper's production workload is a 3-D waveguide simulation in NekCEM
(we substitute a rectangular guide for the cylindrical one; see DESIGN.md).
This example runs the full pipeline end to end:

1. *presetup* — generate the waveguide mesh, write/read the ``.rea`` input
   and the ``genmap`` partition (``.map``), exactly as production runs do;
2. *solver* — the slab-parallel SEDG Maxwell solver on a simulated
   8-rank partition, exchanging ghost faces over simulated MPI;
3. *checkpointing* — coordinated rbIO checkpoints every 4 steps;
4. *failure + restart* — the run is killed after step 10, rolls back to the
   step-8 checkpoint, re-executes, and finishes **bit-exactly** equal to an
   uninterrupted run.

Run:  python examples/waveguide_checkpoint.py
"""

import os
import tempfile

import numpy as np

from repro.ckpt import ReducedBlockingIO
from repro.nekcem import (
    MaxwellSolver,
    partition_linear,
    read_map,
    read_rea,
    run_parallel_solver,
    waveguide_mesh,
    write_map,
    write_rea,
)
from repro.nekcem.maxwell import waveguide_te10_fields, waveguide_te10_omega
from repro.topology import intrepid


def main() -> None:
    n_ranks = 8
    order = 4
    n_steps = 12

    # --- presetup: input files, global format (Fig. 1 of the paper) -----
    # Rectangular waveguide carrying the TE10 guided mode (the paper's
    # production workload is the cylindrical analogue).
    mesh = waveguide_mesh(cross_elements=2, axial_elements=8,
                          width=1.0, height=0.5, length=4.0, order=order)
    workdir = tempfile.mkdtemp(prefix="nekcem-wg-")
    rea = os.path.join(workdir, "waveguide.rea")
    map_path = os.path.join(workdir, "waveguide.map")
    write_rea(mesh, rea)
    write_map(partition_linear(mesh, n_ranks), n_ranks, map_path)
    mesh = read_rea(rea)
    owners, _ = read_map(map_path)
    print(f"presetup: E={mesh.n_elements} elements, N={order}, "
          f"n={mesh.n_gridpoints(order)} grid points, "
          f"{n_ranks} ranks ({np.bincount(owners).tolist()} elements each)")
    print(f"inputs  : {rea}")

    # --- clean run (reference) --------------------------------------------
    strategy = ReducedBlockingIO(workers_per_writer=4)
    clean = run_parallel_solver(
        n_ranks, mesh, order, n_steps,
        strategy=ReducedBlockingIO(workers_per_writer=4),
        checkpoint_every=4, config=intrepid(), init="te10",
    )
    print(f"\nclean run   : {n_steps} steps, dt={clean.dt:.5f}, "
          f"{len(clean.checkpoint_results)} checkpoints")
    for i, cr in enumerate(clean.checkpoint_results):
        print(f"  checkpoint {i}: {cr.total_bytes/1e6:.1f} MB in "
              f"{cr.overall_time*1e3:.1f} ms (virtual), app blocked "
              f"{cr.blocking_time*1e6:.0f} us")

    # --- failure at step 10, restart from step 8 -----------------------------
    crashed = run_parallel_solver(
        n_ranks, mesh, order, n_steps,
        strategy=strategy, checkpoint_every=4,
        simulate_failure_at=10, config=intrepid(), init="te10",
    )
    print(f"\nfailure run : crashed after step 10, restored from "
          f"step {crashed.restored_at_step} checkpoint, re-executed")

    diffs = [np.abs(a - b).max()
             for a, b in zip(clean.global_state(), crashed.global_state())]
    print(f"max |clean - restarted| over all 6 components: {max(diffs):.3e}")
    assert max(diffs) == 0.0, "restart must be bit-exact"

    # --- physics sanity -------------------------------------------------------
    solver = MaxwellSolver(mesh, order)
    X, Y, Z = solver.coordinates()
    t_final = clean.n_steps * clean.dt
    exact = waveguide_te10_fields(mesh.bounds, X, Y, Z, t_final)
    err = solver.l2_error(clean.global_state(), exact)
    omega = waveguide_te10_omega(1.0, 4.0)
    print(f"TE10 mode (omega={omega:.3f}): L2 error vs exact after "
          f"{n_steps} steps: {err:.3e}")
    print("\nOK: checkpoint/restart round-trip is bit-exact.")


if __name__ == "__main__":
    main()
