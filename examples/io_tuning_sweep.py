#!/usr/bin/env python
"""I/O parameter tuning study: finding the sweet spots (paper Figs. 5 & 8).

The paper's practical guidance is that checkpoint performance on a given
machine depends on two tunables — the number of output files nf and the
worker:writer ratio np:ng — and that both have machine-specific optima
(nf ~ 1024 on Intrepid's GPFS).  This example sweeps both on a simulated
16,384-processor partition and prints tuning tables like the ones a
performance engineer would build before a production campaign.

Run:  python examples/io_tuning_sweep.py [n_ranks]
"""

import sys

from repro.ckpt import CollectiveIO, ReducedBlockingIO
from repro.experiments import PAPER_SIZES, paper_data, run_checkpoint_step, scaled_problem


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 16384
    data = (paper_data(n_ranks) if n_ranks in PAPER_SIZES
            else scaled_problem(n_ranks).data())
    total_gb = data.total_bytes * n_ranks / 1e9
    print(f"Tuning sweep at np={n_ranks}, S={total_gb:.1f} GB per step\n")

    # --- sweep 1: number of files for rbIO (nf = ng) — Fig. 8 -----------
    print("rbIO: number of files (nf = ng)")
    print(f"{'nf':>8} {'np:ng':>8} {'bandwidth':>12} {'step time':>10}")
    best_nf, best_bw = None, 0.0
    nf = 64
    while nf <= n_ranks // 4:
        wpw = n_ranks // nf
        res = run_checkpoint_step(
            ReducedBlockingIO(workers_per_writer=wpw), n_ranks, data
        ).result
        bw = res.write_bandwidth / 1e9
        print(f"{nf:>8} {wpw:>6}:1 {bw:>9.2f} GB/s {res.overall_time:>8.2f} s")
        if bw > best_bw:
            best_nf, best_bw = nf, bw
        nf *= 2
    print(f"-> best: nf={best_nf} at {best_bw:.2f} GB/s "
          "(the paper finds ~1024 on Intrepid GPFS)\n")

    # --- sweep 2: coIO group size (np:nf ratio) ---------------------------
    print("coIO: ranks per file (np:nf ratio)")
    print(f"{'ranks/file':>12} {'nf':>8} {'bandwidth':>12} {'step time':>10}")
    for ranks_per_file in (None, 256, 64, 16):
        strategy = CollectiveIO(ranks_per_file=ranks_per_file)
        res = run_checkpoint_step(strategy, n_ranks, data).result
        nf = 1 if ranks_per_file is None else n_ranks // ranks_per_file
        label = "all (nf=1)" if ranks_per_file is None else str(ranks_per_file)
        print(f"{label:>12} {nf:>8} {res.write_bandwidth/1e9:>9.2f} GB/s "
              f"{res.overall_time:>8.2f} s")
    print("-> nf=1 pays single-file extent allocation; moderate groups win.\n")

    # --- sweep 3: rbIO aggregation ratio at fixed nf behaviour ------------
    print("rbIO: worker:writer ratio (paper compares 64:1, 32:1, 16:1)")
    print(f"{'np:ng':>8} {'writers':>8} {'bandwidth':>12} {'perceived':>12} "
          f"{'blocked':>10}")
    for wpw in (64, 32, 16):
        res = run_checkpoint_step(
            ReducedBlockingIO(workers_per_writer=wpw), n_ranks, data
        ).result
        print(f"{wpw:>6}:1 {len(res.writer_ranks):>8} "
              f"{res.write_bandwidth/1e9:>9.2f} GB/s "
              f"{res.perceived_bandwidth/1e12:>9.0f} TB/s "
              f"{res.blocking_time*1e6:>7.0f} us")
    print("\nMore writers raise raw bandwidth until the file system's")
    print("concurrency optimum; worker blocking stays microseconds throughout.")


if __name__ == "__main__":
    main()
