#!/usr/bin/env python
"""Burst-buffer staging study: bbIO vs rbIO, and sizing the drain.

bbIO extends the paper's rbIO with a staging tier (DESIGN.md §8): group
packages land in an ION-attached burst buffer, workers are acknowledged
at buffer speed, and a background drain trickles the data to GPFS during
the computation gaps.  This example shows the three decisions a staging
deployment has to get right:

1. whether staging helps at all (it does once the checkpoint cadence
   outpaces a PFS commit);
2. how much drain bandwidth the buffer needs (the backpressure
   threshold: per-writer volume / checkpoint gap);
3. what the multi-level efficiency model (per-tier Young intervals)
   says about checkpointing each tier at its own cadence.

Run:  python examples/burst_buffer_staging.py [n_ranks]
"""

import sys

from repro.ckpt import ReducedBlockingIO
from repro.experiments import (
    PAPER_SIZES,
    ext_staging_run,
    paper_data,
    run_checkpoint_steps,
    scaled_problem,
)
from repro.staging import MultiLevelModel, StagingConfig


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    data = (paper_data(n_ranks) if n_ranks in PAPER_SIZES
            else scaled_problem(n_ranks).data())
    per_writer_mb = (data.header_bytes + 64 * data.total_bytes) / 1e6
    gap = 1.0
    print(f"Staging study at np={n_ranks}, "
          f"{per_writer_mb:.0f} MB per writer per step, gap={gap}s\n")

    # --- 1: does staging help? -------------------------------------------
    print("Worker blocking per step, checkpoint gap shorter than a commit")
    print(f"{'approach':>10} {'blocking':>12} {'note':>40}")
    bb = ext_staging_run(n_ranks=n_ranks, n_steps=4, gap_seconds=gap,
                         max_outstanding=1)
    rb = run_checkpoint_steps(
        ReducedBlockingIO(workers_per_writer=64, max_outstanding=1),
        n_ranks, data, n_steps=4, gap_seconds=gap, barrier_each_step=False,
    )
    rb_block = max(r.blocking_time for r in rb.results[1:])
    print(f"{'bbIO':>10} {bb['blocking_time']:>10.4f} s "
          f"{'ack at buffer speed, drain in background':>40}")
    print(f"{'rbIO':>10} {rb_block:>10.4f} s "
          f"{'ack only after the GPFS commit':>40}")
    print(f"-> drain finished {bb['bytes_drained']/1e9:.2f} GB at "
          f"t={bb['last_drain_end']:.1f} s, long after the workers moved on\n")

    # --- 2: sizing the drain ---------------------------------------------
    threshold = per_writer_mb / 4.0  # MB/s per writer at gap=4 s
    print("Drain-bandwidth sweep (gap=4 s, buffer = 1.5 steps)")
    print(f"backpressure threshold ~ {threshold:.0f} MB/s per writer")
    print(f"{'drain':>12} {'blocking':>12} {'stalls':>8}")
    for bw in (None, 2e6 * threshold, 0.5e6 * threshold):
        staging = StagingConfig(
            capacity_bytes=int(1.5 * 4 * per_writer_mb * 1e6),
            drain_bandwidth=bw, high_watermark=None,
        )
        r = ext_staging_run(n_ranks=n_ranks, n_steps=4, gap_seconds=4.0,
                            staging=staging, max_outstanding=1)
        label = "unthrottled" if bw is None else f"{bw/1e6:.0f} MB/s"
        print(f"{label:>12} {r['blocking_time']:>10.4f} s {r['stalls']:>8}")
    print("-> below the threshold the buffer fills and workers block:\n"
          "   capacity buys steps, only drain bandwidth buys a campaign.\n")

    # --- 3: the multi-level model ----------------------------------------
    print("Multi-level efficiency (per-tier Young intervals)")
    flat = MultiLevelModel.single_tier(
        write_seconds=50.0, read_seconds=50.0,
        failure_rate=1 / 21600 + 1 / 604800,
    )
    staged = MultiLevelModel.staged(
        buffer_write=2.0, buffer_read=2.0,
        pfs_write=50.0, pfs_read=50.0,
        node_failure_rate=1 / 21600, system_failure_rate=1 / 604800,
    )
    print(f"{'model':>10} {'efficiency':>12} {'tier intervals':>30}")
    for name, m in (("flat PFS", flat), ("staged", staged)):
        ivals = ", ".join(f"{t.name}: {t.young_interval():.0f}s"
                          for t in m.tiers)
        print(f"{name:>10} {m.efficiency():>11.4f}  {ivals:>30}")
    print(f"-> staging improvement: "
          f"{staged.improvement_over(flat):.3f}x machine efficiency")


if __name__ == "__main__":
    main()
