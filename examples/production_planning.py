#!/usr/bin/env python
"""Production planning: checkpoint frequency and end-to-end cost (Eq. 1).

Given measured checkpoint costs on the simulated Intrepid, this example
answers the questions a production campaign asks:

- how much production time does each I/O approach cost over a long run
  (the paper's Eq. 1, ~25x improvement for rbIO over 1PFPP at nc = 20)?
- how should the checkpoint interval be chosen against a failure rate
  (Young's optimal interval — an extension beyond the paper)?

Run:  python examples/production_planning.py
"""

from repro.ckpt import (
    CheckpointSchedule,
    CollectiveIO,
    OneFilePerProcess,
    ReducedBlockingIO,
    production_improvement,
)
from repro.experiments import TCOMP_PER_STEP, paper_data, run_checkpoint_step

N_RANKS = 16384
N_STEPS = 10_000  # a production campaign's step count
NC = 20           # paper's checkpoint frequency example


def main() -> None:
    data = paper_data(N_RANKS)
    print(f"np={N_RANKS}, Tcomp={TCOMP_PER_STEP}s/step, "
          f"campaign={N_STEPS} steps, checkpoint every {NC} steps\n")

    blocked = {}
    for label, strategy in [
        ("1PFPP", OneFilePerProcess()),
        ("coIO 64:1", CollectiveIO(ranks_per_file=64)),
        ("rbIO nf=ng", ReducedBlockingIO(workers_per_writer=64)),
    ]:
        res = run_checkpoint_step(strategy, N_RANKS, data).result
        blocked[label] = res.blocking_time

    print(f"{'approach':<12} {'Tc (blocked)':>14} {'ratio Tc/Tcomp':>16} "
          f"{'campaign time':>16} {'ckpt overhead':>14}")
    print("-" * 78)
    for label, tc in blocked.items():
        sched = CheckpointSchedule(NC, TCOMP_PER_STEP, tc)
        total = sched.production_time(N_STEPS)
        print(f"{label:<12} {tc:>12.4f} s {sched.ratio:>16.2f} "
              f"{total/3600:>13.2f} h {sched.overhead_fraction*100:>12.2f} %")

    print()
    imp_rbio = production_improvement(
        blocked["1PFPP"], blocked["rbIO nf=ng"], TCOMP_PER_STEP, NC
    )
    imp_coio = production_improvement(
        blocked["1PFPP"], blocked["coIO 64:1"], TCOMP_PER_STEP, NC
    )
    print(f"Eq. 1 production improvement over 1PFPP at nc={NC}:")
    print(f"  coIO 64:1 : {imp_coio:5.1f}x")
    print(f"  rbIO nf=ng: {imp_rbio:5.1f}x   (paper: ~25x)")

    # --- Young's interval (extension) -------------------------------------
    print("\nYoung-optimal checkpoint interval vs system MTBF (rbIO cost):")
    tc = blocked["rbIO nf=ng"]
    # rbIO blocks the app for microseconds, but the *writers* must finish
    # before data is durable; size the interval with the writer commit time.
    tc_durable = 12.0  # ~writer commit seconds at this scale
    print(f"{'MTBF':>10} {'interval':>12} {'nc (steps)':>12}")
    for mtbf_h in (24, 12, 4, 1):
        sched = CheckpointSchedule.young(tc_durable, TCOMP_PER_STEP,
                                         mtbf_h * 3600.0)
        print(f"{mtbf_h:>8} h {sched.nc * TCOMP_PER_STEP:>10.0f} s "
              f"{sched.nc:>12}")
    print("\nShorter MTBF -> checkpoint more often; rbIO makes that cheap.")


if __name__ == "__main__":
    main()
