#!/usr/bin/env python
"""Quickstart: compare the paper's three checkpointing approaches.

Runs one coordinated checkpoint step for 1PFPP, coIO, and rbIO on a
simulated 16,384-processor Blue Gene/P partition with the paper's 39 GB
NekCEM checkpoint, and prints the Fig. 5-style comparison plus rbIO's
perceived (worker-side) bandwidth.

Run:  python examples/quickstart.py [n_ranks]

This is a simulation in virtual time: the 16K-rank experiment itself takes
well under a minute of wall clock.
"""

import sys

from repro.ckpt import CollectiveIO, OneFilePerProcess, ReducedBlockingIO
from repro.experiments import paper_data, PAPER_SIZES, run_checkpoint_step, scaled_problem


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 16384
    if n_ranks in PAPER_SIZES:
        data = paper_data(n_ranks)
    else:
        data = scaled_problem(n_ranks).data()
    total_gb = data.total_bytes * n_ranks / 1e9
    print(f"Checkpointing {total_gb:.1f} GB from {n_ranks} ranks "
          f"({data.total_bytes / 1e6:.2f} MB per rank, "
          f"{data.n_fields} fields)\n")

    approaches = [
        ("1PFPP (1 POSIX file per processor)", OneFilePerProcess()),
        ("coIO  (MPI-IO collective, np:nf=64:1)", CollectiveIO(ranks_per_file=64)),
        ("rbIO  (reduced-blocking, np:ng=64:1, nf=ng)",
         ReducedBlockingIO(workers_per_writer=64)),
    ]
    print(f"{'approach':<46} {'bandwidth':>12} {'step time':>10} {'app blocked':>12}")
    print("-" * 84)
    rbio_result = None
    for label, strategy in approaches:
        run = run_checkpoint_step(strategy, n_ranks, data)
        res = run.result
        print(f"{label:<46} {res.write_bandwidth/1e9:>9.2f} GB/s "
              f"{res.overall_time:>8.1f} s {res.blocking_time:>10.4f} s")
        if strategy.name == "rbio":
            rbio_result = res

    print()
    print("rbIO perceived (worker-side Isend) performance:")
    print(f"  max Isend window : {rbio_result.perceived_time*1e6:.0f} us")
    print(f"  perceived BW     : {rbio_result.perceived_bandwidth/1e12:.0f} TB/s")
    print()
    print("The application blocks for microseconds under rbIO while the")
    print("dedicated writers commit in the background -- the paper's")
    print("reduced-blocking contribution.")


if __name__ == "__main__":
    main()
