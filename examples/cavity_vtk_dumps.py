#!/usr/bin/env python
"""Serial NekCEM run producing real vtk checkpoints on local disk.

Exercises the application the paper checkpoints, at laptop scale: the SEDG
Maxwell solver integrates the TM110 mode of a PEC cavity, dumping vtk
legacy files (Fig. 2's output format — master header, grid, per-field
blocks) that ParaView/VisIt can open directly.  The run reports spectral
accuracy against the closed-form solution and verifies the dumps by reading
one back.

Run:  python examples/cavity_vtk_dumps.py [outdir]
"""

import os
import sys
import tempfile

import numpy as np

from repro.nekcem import MaxwellSolver, NekCEMApp, box_mesh, read_vtk


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="nekcem-cavity-"
    )
    mesh = box_mesh((2, 2, 2))
    order = 8
    app = NekCEMApp(mesh, order=order)
    dt = app.solver.max_dt()
    n_steps = int(round(1.0 / dt))
    every = max(1, n_steps // 4)
    print(f"cavity: E={mesh.n_elements}, N={order}, "
          f"n={mesh.n_gridpoints(order)} points, dt={dt:.5f}, "
          f"{n_steps} steps, checkpoint every {every}")

    out = app.run(n_steps=n_steps, dt=dt, checkpoint_every=every,
                  outdir=outdir)

    err = app.solver.l2_error(out["state"], app.solver.cavity_mode(out["t_final"]))
    print(f"t_final = {out['t_final']:.4f}")
    print(f"L2 error vs exact TM110 mode: {err:.3e}  (spectral accuracy)")
    print(f"energy: {out['energy']:.8f}")
    print(f"{len(out['checkpoints'])} vtk checkpoints in {outdir}:")
    for path in out["checkpoints"]:
        print(f"  {path}  ({os.path.getsize(path)/1e6:.2f} MB)")

    # Verify the final dump round-trips.
    back = read_vtk(out["checkpoints"][-1])
    p3 = (order + 1) ** 3
    ez_file = back["fields"]["Ez"]
    ez_state = out["state"][2].reshape(mesh.n_elements, p3).ravel()
    assert np.allclose(ez_file, ez_state)
    print("\nOK: final vtk dump matches the in-memory state "
          f"({len(back['points'])} points, {len(back['cells'])} hex cells).")


if __name__ == "__main__":
    main()
