"""Unit tests for the perf-regression gate (tools/perf_gate.py).

The gate's one-sided wall-clock policy is load-bearing for CI: a
throughput metric (``events_per_second``) must fail only when it drops
below the band, and a duration metric only when it rises above it —
getting faster is never a violation.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from perf_gate import compare_record, is_higher_better, is_wall_metric  # noqa: E402


def record(**metrics):
    return {"scale": "smoke", "metrics": metrics}


def test_metric_classification():
    assert is_wall_metric("wall_seconds")
    assert is_wall_metric("events_per_second")
    assert not is_wall_metric("events_processed")
    assert is_higher_better("events_per_second")
    assert not is_higher_better("wall_seconds")


def test_deterministic_metrics_gated_both_directions():
    base = record(events=1000)
    assert compare_record("b", base, record(events=1400), 0.25, False)
    assert compare_record("b", base, record(events=600), 0.25, False)
    assert not compare_record("b", base, record(events=1100), 0.25, False)


def test_wall_metrics_skipped_unless_enabled():
    base = record(wall_seconds=1.0)
    cur = record(wall_seconds=10.0)
    assert not compare_record("b", base, cur, 0.25, gate_wall=False)
    assert compare_record("b", base, cur, 0.25, gate_wall=True)


def test_throughput_gate_is_one_sided_upward_ok():
    base = record(events_per_second=1_000_000.0)
    # 10x faster: never a violation.
    faster = record(events_per_second=10_000_000.0)
    assert not compare_record("b", base, faster, 0.25, gate_wall=True)
    # 40% slower: regression.
    slower = record(events_per_second=600_000.0)
    problems = compare_record("b", base, slower, 0.25, gate_wall=True)
    assert len(problems) == 1 and "regressed" in problems[0]


def test_duration_gate_is_one_sided_downward_ok():
    base = record(wall_seconds=2.0)
    assert not compare_record("b", base, record(wall_seconds=0.5), 0.25,
                              gate_wall=True)
    problems = compare_record("b", base, record(wall_seconds=3.0), 0.25,
                              gate_wall=True)
    assert len(problems) == 1 and "regressed" in problems[0]


def test_vanished_metric_and_scale_mismatch_fail():
    base = record(events=10)
    assert compare_record("b", base, record(other=10), 0.25, False)
    cur = {"scale": "small", "metrics": {"events": 10}}
    problems = compare_record("b", base, cur, 0.25, False)
    assert "scale mismatch" in problems[0]
