"""Tests for GLL basis, differentiation, and the low-storage RK4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nekcem import (
    LSRK4,
    RK4A,
    RK4B,
    RK4C,
    differentiation_matrix,
    gll_points_weights,
    lagrange_interpolation_matrix,
)


# ---------------------------------------------------------------------------
# GLL points and weights
# ---------------------------------------------------------------------------

def test_gll_order_1_and_2_known_values():
    x, w = gll_points_weights(1)
    assert np.allclose(x, [-1, 1]) and np.allclose(w, [1, 1])
    x, w = gll_points_weights(2)
    assert np.allclose(x, [-1, 0, 1])
    assert np.allclose(w, [1 / 3, 4 / 3, 1 / 3])


def test_gll_includes_endpoints_and_sorted():
    for order in (3, 7, 15):
        x, _ = gll_points_weights(order)
        assert x[0] == -1.0 and x[-1] == 1.0
        assert np.all(np.diff(x) > 0)
        assert len(x) == order + 1


def test_gll_symmetry():
    x, w = gll_points_weights(9)
    assert np.allclose(x, -x[::-1])
    assert np.allclose(w, w[::-1])


def test_gll_weights_sum_to_two():
    for order in range(1, 16):
        _, w = gll_points_weights(order)
        assert np.isclose(w.sum(), 2.0)


def test_gll_quadrature_exactness():
    """GLL is exact for polynomials of degree <= 2N-1."""
    order = 5
    x, w = gll_points_weights(order)
    for deg in range(2 * order):
        exact = 2.0 / (deg + 1) if deg % 2 == 0 else 0.0
        assert np.isclose(np.sum(w * x**deg), exact, atol=1e-12), deg


def test_gll_order_15_paper_case():
    """The paper's production order: 16 points per direction."""
    x, w = gll_points_weights(15)
    assert len(x) == 16
    assert np.isclose(np.sum(w * x**2), 2.0 / 3.0)


def test_gll_invalid_order():
    with pytest.raises(ValueError):
        gll_points_weights(0)


# ---------------------------------------------------------------------------
# Differentiation matrix
# ---------------------------------------------------------------------------

def test_diff_matrix_kills_constants():
    D = differentiation_matrix(6)
    assert np.allclose(D @ np.ones(7), 0.0, atol=1e-12)


def test_diff_matrix_exact_on_polynomials():
    order = 7
    x, _ = gll_points_weights(order)
    D = differentiation_matrix(order)
    for deg in range(order + 1):
        du = D @ x**deg
        exact = deg * x ** max(deg - 1, 0) if deg else np.zeros_like(x)
        assert np.allclose(du, exact, atol=1e-9), deg


def test_diff_matrix_corner_entries():
    n = 5
    D = differentiation_matrix(n)
    assert np.isclose(D[0, 0], -n * (n + 1) / 4)
    assert np.isclose(D[-1, -1], n * (n + 1) / 4)


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=11, deadline=None)
def test_diff_matrix_row_sums_zero_property(order):
    D = differentiation_matrix(order)
    assert np.allclose(D.sum(axis=1), 0.0, atol=1e-10)


# ---------------------------------------------------------------------------
# Interpolation
# ---------------------------------------------------------------------------

def test_interpolation_reproduces_nodes():
    order = 6
    x, _ = gll_points_weights(order)
    L = lagrange_interpolation_matrix(order, x)
    assert np.allclose(L, np.eye(order + 1), atol=1e-12)


def test_interpolation_exact_for_polynomials():
    order = 5
    x, _ = gll_points_weights(order)
    targets = np.linspace(-1, 1, 17)
    L = lagrange_interpolation_matrix(order, targets)
    u = 3 * x**4 - x**2 + 0.5
    assert np.allclose(L @ u, 3 * targets**4 - targets**2 + 0.5, atol=1e-11)


# ---------------------------------------------------------------------------
# LSRK4
# ---------------------------------------------------------------------------

def test_rk4_coefficients_shapes():
    assert len(RK4A) == len(RK4B) == len(RK4C) == 5
    assert RK4A[0] == 0.0 and RK4C[0] == 0.0


def test_rk4_exact_linear_decay_order():
    """Convergence order ~4 on u' = -u."""
    errors = []
    for n in (10, 20, 40):
        integ = LSRK4(lambda s, t: [-s[0]])
        state = [np.array([1.0])]
        dt = 1.0 / n
        state, t = integ.integrate(state, 0.0, dt, n)
        errors.append(abs(state[0][0] - np.exp(-1.0)))
    order1 = np.log2(errors[0] / errors[1])
    order2 = np.log2(errors[1] / errors[2])
    assert order1 > 3.7 and order2 > 3.7


def test_rk4_oscillator_energy_accuracy():
    """Harmonic oscillator stays on its circle to O(dt^4)."""
    def rhs(s, t):
        return [s[1].copy(), -s[0]]

    integ = LSRK4(rhs)
    state = [np.array([1.0]), np.array([0.0])]
    dt = 2 * np.pi / 200
    state, t = integ.integrate(state, 0.0, dt, 200)
    assert abs(state[0][0] - 1.0) < 1e-6
    assert abs(state[1][0]) < 1e-6


def test_rk4_time_dependent_rhs():
    """u' = 2t  =>  u(1) = 1 exactly (polynomial in t)."""
    integ = LSRK4(lambda s, t: [np.array([2 * t])])
    state = [np.array([0.0])]
    state, t = integ.integrate(state, 0.0, 0.1, 10)
    assert np.isclose(state[0][0], 1.0, atol=1e-12)


def test_rk4_callback_invoked_each_step():
    calls = []
    integ = LSRK4(lambda s, t: [np.zeros(1)])
    integ.integrate([np.zeros(1)], 0.0, 0.5, 4,
                    callback=lambda s, t, i: calls.append((i, t)))
    assert [i for i, _ in calls] == [1, 2, 3, 4]
    assert np.isclose(calls[-1][1], 2.0)


def test_rk4_negative_steps_rejected():
    integ = LSRK4(lambda s, t: [np.zeros(1)])
    with pytest.raises(ValueError):
        integ.integrate([np.zeros(1)], 0.0, 0.1, -1)
