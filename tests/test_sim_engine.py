"""Unit tests for the DES kernel (engine, events, processes, conditions)."""

import time

import numpy as np
import pytest

from repro.sim import Engine, SimulationError, StopEngine, all_of, any_of


def test_timeout_ordering():
    eng = Engine()
    log = []

    def proc(name, delay):
        yield eng.timeout(delay)
        log.append((eng.now, name))

    eng.process(proc("late", 5.0))
    eng.process(proc("early", 1.0))
    eng.process(proc("mid", 3.0))
    eng.run()
    assert log == [(1.0, "early"), (3.0, "mid"), (5.0, "late")]


def test_same_time_fifo_order():
    eng = Engine()
    log = []

    def proc(i):
        yield eng.timeout(1.0)
        log.append(i)

    for i in range(10):
        eng.process(proc(i))
    eng.run()
    assert log == list(range(10))


def test_zero_delay_timeout_runs_at_current_time():
    eng = Engine()
    seen = []

    def proc():
        yield eng.timeout(2.0)
        yield eng.timeout(0.0)
        seen.append(eng.now)

    eng.process(proc())
    eng.run()
    assert seen == [2.0]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_timeout_value_passthrough():
    eng = Engine()
    got = []

    def proc():
        v = yield eng.timeout(1.0, value="payload")
        got.append(v)

    eng.process(proc())
    eng.run()
    assert got == ["payload"]


def test_process_return_value_propagates_to_waiter():
    eng = Engine()
    results = []

    def child():
        yield eng.timeout(1.0)
        return 42

    def parent():
        value = yield eng.process(child())
        results.append((eng.now, value))

    eng.process(parent())
    eng.run()
    assert results == [(1.0, 42)]


def test_waiting_on_already_finished_process():
    eng = Engine()
    results = []

    def child():
        yield eng.timeout(1.0)
        return "done"

    def parent(child_proc):
        yield eng.timeout(5.0)
        value = yield child_proc  # already processed: resumes immediately
        results.append((eng.now, value))

    cp = eng.process(child())
    eng.process(parent(cp))
    eng.run()
    assert results == [(5.0, "done")]


def test_event_succeed_wakes_waiter():
    eng = Engine()
    done = []

    def waiter(ev):
        value = yield ev
        done.append((eng.now, value))

    def trigger(ev):
        yield eng.timeout(3.0)
        ev.succeed("go")

    ev = eng.event()
    eng.process(waiter(ev))
    eng.process(trigger(ev))
    eng.run()
    assert done == [(3.0, "go")]


def test_event_double_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_throws_into_waiter():
    eng = Engine()
    caught = []

    def waiter(ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def failer(ev):
        yield eng.timeout(1.0)
        ev.fail(ValueError("boom"))

    ev = eng.event()
    eng.process(waiter(ev))
    eng.process(failer(ev))
    eng.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_process_exception_propagates_to_run():
    eng = Engine()

    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("crash")

    eng.process(bad())
    with pytest.raises(RuntimeError, match="crash"):
        eng.run()


def test_failed_process_propagates_to_waiting_parent():
    eng = Engine()
    caught = []

    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("child crash")

    def parent():
        child = eng.process(bad())
        try:
            yield child
        except RuntimeError as exc:
            caught.append(str(exc))

    eng.process(parent())
    eng.run()
    assert caught == ["child crash"]


def test_yield_non_event_raises_inside_process():
    eng = Engine()
    caught = []

    def bad():
        try:
            yield "not an event"
        except SimulationError as exc:
            caught.append("caught")
        yield eng.timeout(1.0)

    eng.process(bad())
    eng.run()
    assert caught == ["caught"]


def test_all_of_collects_values_in_order():
    eng = Engine()
    results = []

    def child(delay, value):
        yield eng.timeout(delay)
        return value

    def parent():
        procs = [eng.process(child(3.0, "a")), eng.process(child(1.0, "b"))]
        values = yield all_of(eng, procs)
        results.append((eng.now, values))

    eng.process(parent())
    eng.run()
    assert results == [(3.0, ["a", "b"])]


def test_all_of_empty_triggers_immediately():
    eng = Engine()
    results = []

    def parent():
        values = yield all_of(eng, [])
        results.append((eng.now, values))

    eng.process(parent())
    eng.run()
    assert results == [(0.0, [])]


def test_any_of_returns_first_value():
    eng = Engine()
    results = []

    def child(delay, value):
        yield eng.timeout(delay)
        return value

    def parent():
        procs = [eng.process(child(3.0, "slow")), eng.process(child(1.0, "fast"))]
        value = yield any_of(eng, procs)
        results.append((eng.now, value))

    eng.process(parent())
    eng.run()
    assert results == [(1.0, "fast")]


def test_any_of_empty_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        any_of(eng, [])


def test_all_of_fails_when_child_fails():
    eng = Engine()
    caught = []

    def ok():
        yield eng.timeout(5.0)

    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("child failed")

    def parent():
        a = eng.process(ok())
        b = eng.process(bad())
        try:
            yield all_of(eng, [a, b])
        except RuntimeError as exc:
            caught.append(str(exc))
        # Drain the surviving child so its failure doesn't crash the run.
        yield a

    eng.process(parent())
    eng.run()
    assert caught == ["child failed"]


def test_run_until_stops_clock_exactly():
    eng = Engine()
    log = []

    def proc():
        while True:
            yield eng.timeout(1.0)
            log.append(eng.now)

    eng.process(proc())
    eng.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert eng.now == 3.5


def test_run_until_in_past_rejected():
    eng = Engine()

    def proc():
        yield eng.timeout(10.0)

    eng.process(proc())
    eng.run(until=5.0)
    with pytest.raises(ValueError):
        eng.run(until=1.0)


def test_stop_engine_halts_run():
    eng = Engine()
    log = []

    def stopper():
        yield eng.timeout(2.0)
        raise StopEngine()

    def other():
        yield eng.timeout(10.0)
        log.append("should not happen")

    eng.process(stopper())
    eng.process(other())
    eng.run()
    assert log == []
    assert eng.now == 2.0


def test_is_alive_lifecycle():
    eng = Engine()

    def child():
        yield eng.timeout(2.0)

    p = eng.process(child())
    assert p.is_alive
    eng.run()
    assert not p.is_alive


def test_nested_process_chain_timing():
    eng = Engine()

    def leaf():
        yield eng.timeout(1.0)
        return 1

    def mid():
        v = yield eng.process(leaf())
        yield eng.timeout(1.0)
        return v + 1

    def root():
        v = yield eng.process(mid())
        return v + 1

    p = eng.process(root())
    eng.run()
    assert p.value == 3
    assert eng.now == 2.0


def test_events_processed_counter_increases():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.run()
    assert eng.events_processed >= 3  # init + two timeouts


def test_peek_reports_next_event_time():
    eng = Engine()

    def proc():
        yield eng.timeout(4.0)

    eng.process(proc())
    # Drain the bootstrap event first.
    eng.step()
    assert eng.peek() == 4.0
    eng.run()
    assert eng.peek() == float("inf")


def test_many_processes_scale_smoke():
    # 10k processes each doing two timeouts: the pattern the figure-scale
    # experiments rely on (65,536 ranks x handful of events each).
    eng = Engine()
    counter = []

    def proc(i):
        yield eng.timeout(float(i % 7))
        yield eng.timeout(1.0)
        counter.append(i)

    for i in range(10_000):
        eng.process(proc(i))
    eng.run()
    assert len(counter) == 10_000


# ---------------------------------------------------------------------------
# Batched event primitives (timeout_batch / cohort / succeed_many)
# ---------------------------------------------------------------------------

def test_timeout_batch_fires_at_max_delay():
    eng = Engine()
    got = []

    def proc():
        v = yield eng.timeout_batch([1.0, 3.0, 2.0], value="last")
        got.append((eng.now, v))

    eng.process(proc())
    eng.run()
    assert got == [(3.0, "last")]


def test_timeout_batch_numpy_delays():
    eng = Engine()
    got = []
    delays = np.array([0.5, 2.5, 1.5])

    def proc():
        yield eng.timeout_batch(delays)
        got.append(eng.now)

    eng.process(proc())
    eng.run()
    assert got == [2.5]


def test_timeout_batch_credits_logical_events():
    eng = Engine()

    def proc():
        yield eng.timeout_batch([1.0] * 10)

    eng.process(proc())
    eng.run()
    c = eng.counters()
    # 10 logical timeouts paid for with one calendar entry: the dispatched
    # representative plus nine batched members.
    assert c["batched_events"] == 9
    assert c["batches"] == 1
    assert c["batch_hist"] == {"8-15": 1}


def test_timeout_batch_rejects_empty_and_negative():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout_batch([])
    with pytest.raises(ValueError):
        eng.timeout_batch([1.0, -0.5])
    with pytest.raises(ValueError):
        eng.timeout_batch(np.array([1.0, -0.5]))


def test_cohort_wakes_all_waiters_and_credits_members():
    eng = Engine()
    woken = []
    coh = eng.cohort(8)

    def waiter(i):
        yield coh
        woken.append(i)

    def releaser():
        yield eng.timeout(2.0)
        coh.succeed()

    for i in range(3):
        eng.process(waiter(i))
    eng.process(releaser())
    eng.run()
    assert woken == [0, 1, 2]
    c = eng.counters()
    assert c["batched_events"] == 7  # 8 members minus the dispatched event
    assert c["batch_hist"] == {"8-15": 1}


def test_cohort_size_validated():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.cohort(0)


def test_cohort_fail_credits_nothing():
    eng = Engine()
    caught = []
    coh = eng.cohort(16)

    def waiter():
        try:
            yield coh
        except RuntimeError:
            caught.append(True)

    eng.process(waiter())
    coh.fail(RuntimeError("collective aborted"))
    eng.run()
    assert caught == [True]
    assert eng.counters()["batched_events"] == 0


def test_succeed_many_preserves_fifo_order():
    eng = Engine()
    order = []
    events = [eng.event() for _ in range(5)]

    def waiter(i, ev):
        v = yield ev
        order.append((i, v))

    for i, ev in enumerate(events):
        eng.process(waiter(i, ev))

    def trigger():
        yield eng.timeout(1.0)
        eng.succeed_many(events, value="go")

    eng.process(trigger())
    eng.run()
    assert order == [(i, "go") for i in range(5)]


def test_succeed_many_rejects_already_triggered():
    eng = Engine()
    a, b, c = eng.event(), eng.event(), eng.event()
    b.succeed()
    with pytest.raises(SimulationError):
        eng.succeed_many([a, b, c])
    # Sequential semantics: events before the offender are left triggered,
    # the offender and everything after are untouched.
    assert a.triggered
    assert not c.triggered


def test_count_events_credits_absorbed():
    eng = Engine()
    eng.count_events(100)
    c = eng.counters()
    assert c["absorbed_events"] == 100
    assert c["events_processed"] == 100


def test_counters_breakdown_is_exact():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        yield eng.timeout_batch([0.5] * 4)
        coh = eng.cohort(6)
        coh.succeed()
        yield coh

    eng.process(proc())
    eng.count_events(3)
    eng.run()
    c = eng.counters()
    assert c["events_processed"] == (
        c["dispatched_events"] + c["batched_events"] + c["absorbed_events"]
    )
    assert c["batched_events"] == (4 - 1) + (6 - 1)
    assert c["absorbed_events"] == 3
    assert c["batches"] == 2


# ---------------------------------------------------------------------------
# Wall-clock accounting (events_per_second must exclude setup time)
# ---------------------------------------------------------------------------

def test_wall_seconds_excludes_setup_time():
    eng = Engine()

    def proc():
        for _ in range(100):
            yield eng.timeout(1.0)

    eng.process(proc())
    # Expensive "setup" between construction and run() — building ranks,
    # fabrics, payloads in the real experiments — must not count toward
    # the dispatch-loop wall clock.
    time.sleep(0.05)
    eng.run()
    assert 0.0 < eng.wall_seconds < 0.05
    c = eng.counters()
    assert c["events_per_second"] == pytest.approx(
        c["events_processed"] / c["wall_seconds"]
    )


def test_wall_seconds_zero_before_run():
    eng = Engine()
    assert eng.wall_seconds == 0.0
    assert eng.events_per_second == 0.0


def test_step_accumulates_wall_and_dispatch():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.step()  # bootstrap event
    eng.step()  # the timeout
    assert eng.wall_seconds > 0.0
    assert eng.counters()["dispatched_events"] == 2


# ---------------------------------------------------------------------------
# Mid-instant abort: the unprocessed bucket remainder stays schedulable
# ---------------------------------------------------------------------------

def test_stop_engine_mid_instant_keeps_remainder():
    eng = Engine()
    log = []

    def stopper():
        yield eng.timeout(1.0)
        raise StopEngine()

    def survivor():
        yield eng.timeout(1.0)  # same instant, scheduled after the stopper
        log.append(eng.now)

    eng.process(stopper())
    eng.process(survivor())
    eng.run()
    assert log == []  # StopEngine halted before the survivor fired
    eng.run()  # resuming processes the same-instant remainder
    assert log == [1.0]
