"""Tests for the sharded sweep service and its HTTP API.

The headline contract: a tiny campaign (2 strategies x 2 processor
counts, one fault rule, one checkpoint rule) submitted through HTTP
returns results bit-identical to ``run_sweep`` over the same expanded
points, and concurrent duplicate submissions collapse to one execution
(asserted via the service counters).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign import CampaignSpec, SweepService, expand, run_point
from repro.campaign.http import start_server
from repro.experiments import DiskCache, run_sweep

#: 2 strategies x 2 np, one fault rule, one checkpoint rule (-> 2 steps).
E2E_SPEC = {
    "name": "e2e-tiny",
    "seed": 5,
    "grid": {"approaches": ["rbio_ng", "coio_64"], "np": [128, 256]},
    "checkpoint": {"horizon": 2.0, "wallclock_time": [{"every": 1.0}]},
    "faults": {"specs": [{"kind": "fs_stall", "time": 0.5, "delay": 0.1}]},
}


def _get(url: str):
    with urllib.request.urlopen(url) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def _jsonify(value):
    """What a dict looks like after one HTTP round trip."""
    return json.loads(json.dumps(value, default=str))


# ---------------------------------------------------------------------------
# Service core
# ---------------------------------------------------------------------------

def test_service_matches_direct_run_sweep():
    spec = CampaignSpec.from_dict(E2E_SPEC)
    direct = run_sweep(run_point, expand(spec).points, n_workers=1)
    with SweepService(n_workers=2, cache=False) as svc:
        cid = svc.submit(spec)
        status = svc.wait(cid, timeout=300)
        assert status["state"] == "done"
        assert status["total"] == 4
        assert svc.results(cid) == direct
        summary = svc.summary(cid)
        assert [p["approach"] for p in summary["points"]] == \
            ["rbio_ng", "rbio_ng", "coio_64", "coio_64"]


def test_point_level_inflight_dedup():
    # Campaign B's only point is A's *last* point; with one worker it is
    # still queued when B arrives, so B must share the in-flight future.
    a = CampaignSpec.from_dict({
        "name": "a", "seed": 5,
        "grid": {"approaches": ["rbio_ng", "coio_64"], "np": [128]}})
    b = CampaignSpec.from_dict({
        "name": "b", "seed": 5,
        "grid": {"approaches": ["coio_64"], "np": [128]}})
    assert expand(a).points[-1] == expand(b).points[0]
    with SweepService(n_workers=1, cache=False) as svc:
        cid_a = svc.submit(a)
        cid_b = svc.submit(b)
        svc.wait(cid_a, timeout=300)
        svc.wait(cid_b, timeout=300)
        counters = svc.service_status()["counters"]
        assert counters["points_executed"] == 2
        assert counters["points_deduped"] == 1
        assert svc.results(cid_a)[-1] == svc.results(cid_b)[0]


def test_disk_cache_spans_service_restarts(tmp_path):
    spec = CampaignSpec.from_dict({
        "name": "cached", "seed": 5,
        "grid": {"approaches": ["rbio_ng"], "np": [128]}})
    cache = DiskCache(tmp_path / "c")
    with SweepService(n_workers=1, cache=cache) as svc:
        first = svc.wait(svc.submit(spec), timeout=300)
        assert first["state"] == "done"
        results = svc.results(spec.campaign_id)
    with SweepService(n_workers=1, cache=DiskCache(tmp_path / "c")) as svc:
        status = svc.wait(svc.submit(spec), timeout=300)
        assert status["state"] == "done"
        counters = svc.service_status()["counters"]
        assert counters["points_cached"] == 1
        assert counters["points_executed"] == 0
        assert svc.results(spec.campaign_id) == results


def test_unknown_campaign_raises():
    with SweepService(n_workers=1, cache=False) as svc:
        with pytest.raises(KeyError):
            svc.status("deadbeef")


# ---------------------------------------------------------------------------
# HTTP API end to end
# ---------------------------------------------------------------------------

@pytest.fixture
def http_service():
    svc = SweepService(n_workers=2, cache=False)
    server, _thread = start_server(svc)
    host, port = server.server_address
    yield svc, f"http://{host}:{port}"
    server.shutdown()
    svc.shutdown()


def test_http_e2e_bit_identical_and_deduped(http_service):
    svc, base = http_service
    spec = CampaignSpec.from_dict(E2E_SPEC)
    direct = run_sweep(run_point, expand(spec).points, n_workers=1)

    # Two clients submit the identical campaign concurrently.
    barrier = threading.Barrier(2)
    responses = []

    def client():
        barrier.wait()
        responses.append(_post(f"{base}/campaigns", {"spec": E2E_SPEC}))

    threads = [threading.Thread(target=client) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert responses[0]["campaign_id"] == responses[1]["campaign_id"]
    cid = responses[0]["campaign_id"]
    assert cid == spec.campaign_id

    deadline = time.monotonic() + 300
    while True:
        status = _get(f"{base}/campaigns/{cid}")
        if status["state"] != "running":
            break
        assert time.monotonic() < deadline, "campaign did not finish"
        time.sleep(0.2)
    assert status["state"] == "done"

    # One execution despite two submissions, verified by counters ...
    service = _get(f"{base}/status")
    assert service["counters"]["campaigns_submitted"] == 2
    assert service["counters"]["campaigns_deduped"] == 1
    assert service["counters"]["points_executed"] == 4
    assert status["submissions"] == 2
    # ... and the HTTP results are bit-identical to a direct run_sweep
    # over the same expanded points.
    assert _get(f"{base}/campaigns/{cid}/results") == _jsonify(direct)
    summary = _get(f"{base}/campaigns/{cid}/summary")
    assert len(summary["points"]) == 4
    assert all(p["overall_time"] is not None for p in summary["points"])


def test_http_rejects_bad_spec_with_path(http_service):
    _svc, base = http_service
    try:
        _post(f"{base}/campaigns", {"spec": {"name": "x"}})
    except urllib.error.HTTPError as exc:
        assert exc.code == 400
        assert "grid" in json.loads(exc.read())["error"]
    else:
        pytest.fail("expected HTTP 400")


def test_http_unknown_campaign_404(http_service):
    _svc, base = http_service
    try:
        _get(f"{base}/campaigns/deadbeef")
    except urllib.error.HTTPError as exc:
        assert exc.code == 404
    else:
        pytest.fail("expected HTTP 404")


def test_http_campaign_listing(http_service):
    svc, base = http_service
    spec = CampaignSpec.from_dict({
        "name": "listed", "seed": 5,
        "grid": {"approaches": ["rbio_ng"], "np": [128]}})
    cid = svc.submit(spec)
    svc.wait(cid, timeout=300)
    listing = _get(f"{base}/campaigns")
    assert [c["name"] for c in listing] == ["listed"]
    assert listing[0]["campaign_id"] == cid
