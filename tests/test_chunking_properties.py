"""Seeded property tests for the content-defined chunking core.

200+ generated cases over :mod:`repro.ckpt.incremental`:

- **bound invariants** — chunk spans tile ``[0, len)`` exactly, every
  chunk is at most ``max_size``, every non-final chunk at least
  ``min_size``, and chunking is insensitive to how the rope is split
  into segments (the segment-seam carry of the rolling hash);
- **boundary stability** — an edit confined to a prefix region cannot
  re-chunk the suffix: once the pre- and post-edit boundary walks share
  a cut past the edit (they always resynchronize within a couple of
  ``max_size`` windows), every later cut is identical;
- **CRC32 agreement** — the rope's segment-iterative ``crc32`` equals
  ``zlib.crc32`` of the materialized bytes for every chunk, and the
  BLAKE2b chunk digest is segmentation-independent;
- **dedup monotonicity** — growing the mutated fraction (nested mutated
  regions) never shrinks the fresh bytes a delta plan ships by more
  than one chunk's worth of boundary slack, and large mutations cost
  several times more than small ones.
"""

import zlib

import numpy as np
import pytest

from repro.buffers import ByteRope
from repro.ckpt.incremental import (
    GEAR_WINDOW,
    ChunkingParams,
    chunk_boundaries,
    chunk_digest,
    chunk_spans,
    plan_section,
)

PARAMS = ChunkingParams(min_size=256, avg_size=1024, max_size=4096)


def random_rope(rng, nbytes: int, max_segments: int = 8):
    """A payload split into 1..max_segments rope segments at random seams."""
    data = rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()
    n_seams = int(rng.integers(0, max_segments))
    seams = sorted(int(s) for s in rng.integers(0, nbytes + 1, size=n_seams))
    parts, lo = [], 0
    for s in seams + [nbytes]:
        if s > lo:
            parts.append(data[lo:s])
            lo = s
    return ByteRope.concat(parts), data


# ---------------------------------------------------------------------------
# Bound invariants (60 cases)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(60))
def test_bounds_and_tiling(seed):
    rng = np.random.default_rng((100, seed))
    nbytes = int(rng.integers(1, 60_000))
    rope, data = random_rope(rng, nbytes)
    spans = chunk_spans(rope, PARAMS)

    # Exact tiling of [0, len).
    assert spans[0][0] == 0 and spans[-1][1] == nbytes
    for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
        assert a_hi == b_lo and a_lo < a_hi

    sizes = [hi - lo for lo, hi in spans]
    assert all(s <= PARAMS.max_size for s in sizes)
    # Every chunk but the tail respects the minimum.
    assert all(s >= PARAMS.min_size for s in sizes[:-1])

    # Segmentation independence: the same bytes in one flat segment chunk
    # identically (the rolling hash carries across rope seams).
    assert chunk_boundaries(ByteRope.wrap(data), PARAMS) == [
        hi for _, hi in spans]


# ---------------------------------------------------------------------------
# Boundary stability under prefix edits (60 cases)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(60))
def test_prefix_edit_does_not_rechunk_suffix(seed):
    rng = np.random.default_rng((200, seed))
    nbytes = int(rng.integers(30_000, 80_000))
    _, data = random_rope(rng, nbytes, max_segments=1)
    edit_len = int(rng.integers(1, 4096))
    edit_pos = int(rng.integers(0, nbytes // 3))
    edit_end = edit_pos + edit_len
    edited = (data[:edit_pos]
              + rng.integers(0, 256, size=edit_len, dtype=np.uint8).tobytes()
              + data[edit_end:])
    assert len(edited) == nbytes

    before = chunk_boundaries(ByteRope.wrap(data), PARAMS)
    after = chunk_boundaries(ByteRope.wrap(edited), PARAMS)

    # Cuts strictly before the edit are untouched.
    prefix = [c for c in before if c <= edit_pos]
    assert after[: len(prefix)] == prefix

    # Both walks resynchronize: they share a cut within a few max-size
    # windows past the edit, and from the first shared cut beyond the
    # rolling-hash window every later cut is identical.
    horizon = edit_end + GEAR_WINDOW
    shared = sorted(set(before) & set(after))
    resync = [c for c in shared if c >= horizon]
    assert resync, "boundary walks never resynchronized"
    assert resync[0] <= min(edit_end + 3 * PARAMS.max_size, nbytes)
    c = resync[0]
    assert [x for x in before if x >= c] == [x for x in after if x >= c]


# ---------------------------------------------------------------------------
# CRC32 / digest agreement across rope segmentations (40 cases)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(40))
def test_crc_and_digest_segmentation_agreement(seed):
    rng = np.random.default_rng((300, seed))
    nbytes = int(rng.integers(1, 30_000))
    rope, data = random_rope(rng, nbytes)
    for lo, hi in chunk_spans(rope, PARAMS):
        piece = rope.slice(lo, hi)
        flat = data[lo:hi]
        # Segment-iterative CRC over rope extents == flat zlib.crc32.
        assert piece.crc32() == zlib.crc32(flat)
        # BLAKE2b digest is a function of content, not segmentation.
        assert chunk_digest(piece) == chunk_digest(ByteRope.wrap(flat))


# ---------------------------------------------------------------------------
# Dedup-ratio monotonicity in the mutated fraction (40 cases)
# ---------------------------------------------------------------------------

FRACTIONS = (0.05, 0.15, 0.3, 0.5, 0.75, 0.95)


@pytest.mark.parametrize("seed", range(40))
def test_fresh_bytes_monotone_in_mutated_fraction(seed):
    rng = np.random.default_rng((400, seed))
    nbytes = int(rng.integers(40_000, 90_000))
    _, base = random_rope(rng, nbytes, max_segments=1)
    parent = plan_section(ByteRope.wrap(base), (nbytes,), member=0, step=0,
                          params=PARAMS).section

    # Nested mutations: one random block, applied at one position with
    # growing length, so a larger fraction strictly contains a smaller
    # one's dirty bytes.
    block = rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()
    start = int(rng.integers(0, nbytes // 4))
    fresh = []
    for f in FRACTIONS:
        length = min(int(nbytes * f), nbytes - start)
        mutated = base[:start] + block[:length] + base[start + length:]
        plan = plan_section(ByteRope.wrap(mutated), (nbytes,), member=0,
                            step=1, params=PARAMS, parent_section=parent)
        assert plan.hits + plan.misses == len(plan.section.chunks)
        assert plan.fresh_bytes >= length  # dirty bytes must all ship
        fresh.append(plan.fresh_bytes)

    # Monotone up to one max-size chunk of boundary-resync slack.
    for a, b in zip(fresh, fresh[1:]):
        assert b >= a - PARAMS.max_size
    # And strongly increasing overall.
    assert fresh[-1] > 3 * fresh[0]
