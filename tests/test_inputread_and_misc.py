"""Tests for the input-read experiment, file preloading, and job API."""

import pytest

from repro.experiments.inputread import (
    PARSE_CYCLES_PER_BYTE,
    REA_BYTES_PER_ELEMENT,
    input_read_time,
)
from repro.mpi import Job, run_spmd
from repro.storage import FSError, attach_storage
from repro.topology import intrepid

QUIET = intrepid().quiet()


# ---------------------------------------------------------------------------
# input_read_time
# ---------------------------------------------------------------------------

def test_input_read_components_sum():
    out = input_read_time(64, 10_000, config=QUIET)
    assert out["total"] == pytest.approx(
        out["read"] + out["parse"] + out["bcast"], rel=0.05
    )
    assert out["file_mb"] == pytest.approx(10_000 * REA_BYTES_PER_ELEMENT / 1e6)


def test_input_read_scales_with_elements():
    small = input_read_time(64, 5_000, config=QUIET)
    big = input_read_time(64, 20_000, config=QUIET)
    assert big["total"] > 2.5 * small["total"]


def test_input_read_parse_dominates():
    out = input_read_time(64, 50_000, config=QUIET)
    assert out["parse"] > out["read"]
    # Parse cost is deterministic: bytes * cycles / clock.
    nbytes = 50_000 * REA_BYTES_PER_ELEMENT
    assert out["parse"] == pytest.approx(
        nbytes * PARSE_CYCLES_PER_BYTE / QUIET.cpu_hz, rel=0.01
    )


def test_input_read_validation():
    with pytest.raises(ValueError):
        input_read_time(4, 0, config=QUIET)


# ---------------------------------------------------------------------------
# GPFS.preload_file
# ---------------------------------------------------------------------------

def test_preload_file_instant_and_readable():
    job = Job(4, QUIET)
    fs = attach_storage(job)
    fs.preload_file("/in/data", 1000, payload=b"z" * 1000)
    assert job.engine.now == 0.0  # no simulated cost

    def main(ctx):
        h = yield from ctx.fs.open("/in/data")
        data = yield from ctx.fs.read(h, 0, 1000)
        yield from ctx.fs.close(h)
        return data

    job.spawn(main, ranks=[0])
    assert job.run()[0] == b"z" * 1000


def test_preload_duplicate_rejected():
    job = Job(4, QUIET)
    fs = attach_storage(job)
    fs.preload_file("/f", 10)
    with pytest.raises(FSError):
        fs.preload_file("/f", 10)


def test_preload_payload_mismatch_rejected():
    job = Job(4, QUIET)
    fs = attach_storage(job)
    with pytest.raises(FSError):
        fs.preload_file("/f", 10, payload=b"short")


# ---------------------------------------------------------------------------
# Job / run_spmd API
# ---------------------------------------------------------------------------

def test_run_spmd_returns_all_ranks():
    def main(ctx):
        yield ctx.engine.timeout(0.0)
        return ctx.rank * 2

    out = run_spmd(main, 8, QUIET)
    assert out == {r: r * 2 for r in range(8)}


def test_job_spawn_subset_of_ranks():
    job = Job(8, QUIET)

    def main(ctx):
        yield ctx.engine.timeout(1.0)
        return "ran"

    job.spawn(main, ranks=[2, 5])
    out = job.run()
    assert set(out) == {2, 5}


def test_job_spawn_with_args():
    job = Job(2, QUIET)

    def main(ctx, base, scale):
        yield ctx.engine.timeout(0.0)
        return base + ctx.rank * scale

    job.spawn(main, 100, 10)
    assert job.run() == {0: 100, 1: 110}


def test_job_run_until_partial():
    job = Job(2, QUIET)

    def main(ctx):
        yield ctx.engine.timeout(10.0)
        return "done"

    job.spawn(main)
    out = job.run(until=1.0)
    assert out == {}  # nobody finished yet; no deadlock error with until
    assert job.now == 1.0


def test_job_services_dict():
    job = Job(2, QUIET)
    fs = attach_storage(job)
    assert job.services["fs"] is fs


def test_job_validation():
    with pytest.raises(ValueError):
        Job(0, QUIET)


def test_rank_context_accessors():
    job = Job(4, QUIET)
    ctx = job.contexts[3]
    assert ctx.rank == 3
    assert ctx.comm.size == 4
    assert ctx.config is QUIET
    assert ctx.engine is job.engine
