"""Tests for Darshan-style profiling and the figure analyses."""

import pytest

from repro.ckpt import OneFilePerProcess, ReducedBlockingIO
from repro.experiments import run_checkpoint_step, scaled_problem
from repro.profiling import (
    DarshanProfiler,
    distribution_summary,
    io_time_distribution,
    write_activity,
    writer_worker_split,
)
from repro.topology import intrepid

QUIET = intrepid().quiet()


def test_record_and_select():
    p = DarshanProfiler()
    p.record_op(0, "write", 0.0, 1.0, 100, "/a")
    p.record_op(1, "read", 1.0, 2.0, 50, "/b")
    p.record_phase(2, "isend", 0.0, 0.1, 10)
    assert len(p.records) == 3
    assert len(p.select(["write"])) == 1
    assert len(p.select(path_prefix="/a")) == 1
    assert p.select(["app:isend"])[0].rank == 2


def test_counters_and_bytes():
    p = DarshanProfiler()
    p.record_op(0, "write", 0.0, 1.0, 100, "/a")
    p.record_op(0, "write", 1.0, 2.0, 200, "/a")
    p.record_op(0, "read", 2.0, 3.0, 50, "/a")
    assert p.op_counts()["write"] == 2
    assert p.bytes_by_op()["write"] == 300
    assert p.bytes_by_op()["read"] == 50


def test_per_rank_io_time_and_span():
    p = DarshanProfiler()
    p.record_op(0, "write", 0.0, 1.0, 1, "/a")
    p.record_op(0, "write", 5.0, 6.5, 1, "/a")
    p.record_op(1, "write", 0.0, 0.5, 1, "/b")
    t = p.per_rank_io_time(["write"])
    assert t[0] == pytest.approx(2.5)
    assert t[1] == pytest.approx(0.5)
    span = p.per_rank_span(["write"])
    assert span[0] == (0.0, 6.5)


def test_file_counters_darshan_style():
    p = DarshanProfiler()
    p.record_op(0, "create", 0.0, 0.1, 0, "/f")
    p.record_op(0, "write", 0.1, 0.6, 100, "/f")
    p.record_op(1, "read", 1.0, 1.2, 40, "/f")
    c = p.file_counters()["/f"]
    assert c["OPENS"] == 1
    assert c["WRITES"] == 1
    assert c["BYTES_WRITTEN"] == 100
    assert c["F_WRITE_TIME"] == pytest.approx(0.5)
    assert c["BYTES_READ"] == 40


def test_reset_clears():
    p = DarshanProfiler()
    p.record_op(0, "write", 0.0, 1.0, 1, "/a")
    p.reset()
    assert len(p.records) == 0


def test_summary_fields():
    p = DarshanProfiler()
    p.record_op(0, "write", 0.0, 2.0, 100, "/a")
    s = p.summary()
    assert s["n_writes"] == 1
    assert s["bytes_written"] == 100
    assert s["max_rank_io_time"] == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------

def test_io_time_distribution_fills_missing_ranks():
    ranks, times = io_time_distribution({0: 1.0, 3: 2.0}, n_ranks=5)
    assert list(ranks) == [0, 1, 2, 3, 4]
    assert list(times) == [1.0, 0.0, 0.0, 2.0, 0.0]


def test_io_time_distribution_sparse():
    ranks, times = io_time_distribution({7: 1.0, 2: 3.0})
    assert list(ranks) == [2, 7]
    assert list(times) == [3.0, 1.0]


def test_distribution_summary_outliers():
    times = [1.0] * 99 + [50.0]
    s = distribution_summary(times)
    assert s["median"] == 1.0
    assert s["max"] == 50.0
    assert s["outlier_fraction"] == pytest.approx(0.01)


def test_distribution_summary_empty():
    assert distribution_summary([])["count"] == 0


def test_writer_worker_split():
    per_rank = {0: 10.0, 1: 0.1, 2: 0.2, 3: 10.5}
    out = writer_worker_split(per_rank, writer_ranks=[0, 3])
    assert out["writers"]["median"] == pytest.approx(10.25)
    assert out["workers"]["max"] == pytest.approx(0.2)


def test_write_activity_from_real_run():
    data = scaled_problem(16).data()
    run = run_checkpoint_step(OneFilePerProcess(arrival_jitter=0.0), 16, data,
                              config=QUIET)
    starts, counts = write_activity(run.profiler, bin_width=0.05)
    assert counts.max() >= 1
    assert counts.sum() > 0


def test_rbio_profiler_contains_isend_phases():
    data = scaled_problem(8).data()
    run = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=4), 8, data,
                              config=QUIET)
    isends = run.profiler.select(["app:isend"])
    assert len(isends) == 6  # 8 ranks - 2 writers
    writes = run.profiler.select(["write"])
    writers = {w.rank for w in writes}
    assert writers == {0, 4}


# ---------------------------------------------------------------------------
# Fabric traffic split: engine counters and Darshan summary
# ---------------------------------------------------------------------------

def test_fabric_counters_in_engine_and_summary():
    """Engine.counters() and DarshanProfiler.summary() both surface the
    process-wide intra/inter fabric split and the TAM coalescing ratio,
    and the per-step numbers agree with the job's own fabric instance."""
    from repro.network import stats as fabric_stats

    fabric_stats.reset()
    data = scaled_problem(16).data()
    strategy = ReducedBlockingIO(workers_per_writer=8).configure_tam("require")
    run = run_checkpoint_step(strategy, 16, data, config=QUIET)

    job_stats = run.job.fabric.stats()
    eng = run.job.engine.counters()
    darshan = run.profiler.summary()
    for counters in (eng, darshan):
        for key in ("fabric_msgs_intra", "fabric_msgs_inter",
                    "fabric_bytes_intra", "fabric_bytes_inter",
                    "tam_msgs", "tam_packages", "tam_coalesce_ratio"):
            assert counters[key] == job_stats[key], key
    assert eng["fabric_msgs_intra"] > 0
    assert eng["fabric_msgs_inter"] > 0
    assert eng["tam_coalesce_ratio"] > 1.0
    # Messages are classified exhaustively.
    assert (eng["fabric_msgs_intra"] + eng["fabric_msgs_inter"]
            == job_stats["messages_sent"])
    fabric_stats.reset()
    assert run.job.engine.counters()["tam_msgs"] == 0
