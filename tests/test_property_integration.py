"""Property-based integration tests over the substrates.

Random workloads through the full simulated stack, verifying conservation
invariants: every byte sent is delivered exactly once; every byte written
reads back exactly; layouts and strategies agree for arbitrary field
shapes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import CheckpointData, CollectiveIO, Field, ReducedBlockingIO
from repro.mpi import Job
from repro.storage import attach_storage
from repro.topology import intrepid

QUIET = intrepid().quiet()


@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 4096)),
        min_size=1, max_size=30,
    )
)
@settings(max_examples=30, deadline=None)
def test_mpi_messages_delivered_exactly_once(sends):
    """Arbitrary send patterns: per-destination byte totals conserve."""
    n = 8
    expected = [0] * n
    for _src, dst, nbytes in sends:
        expected[dst] += nbytes
    job = Job(n, QUIET)
    got = {}

    def main(ctx):
        my_sends = [(d, b) for s, d, b in sends if s == ctx.rank]
        reqs = [ctx.comm.isend(d, b, tag=1, buffered=True) for d, b in my_sends]
        n_recv = sum(1 for _s, d, _b in sends if d == ctx.rank)
        total = 0
        for _ in range(n_recv):
            msg = yield from ctx.comm.recv(tag=1)
            total += msg.nbytes
        if reqs:
            yield from ctx.comm.waitall(reqs)
        got[ctx.rank] = total

    job.spawn(main)
    job.run()
    assert [got[r] for r in range(n)] == expected


@given(
    st.lists(
        st.tuples(st.integers(0, 1 << 16), st.binary(min_size=1, max_size=256)),
        min_size=1, max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_fs_overlapping_writes_last_wins(extents):
    """Random (possibly overlapping) writes: reads reflect write order."""
    job = Job(4, QUIET)
    attach_storage(job)
    shadow = bytearray((1 << 16) + 256)

    def main(ctx):
        h = yield from ctx.fs.create("/f")
        for off, data in extents:
            yield from ctx.fs.write(h, off, len(data), payload=data)
            shadow[off : off + len(data)] = data
        out = yield from ctx.fs.read(h, 0, len(shadow))
        yield from ctx.fs.close(h)
        return out

    job.spawn(main, ranks=[0])
    got = job.run()[0]
    assert got == bytes(shadow)


@given(
    st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=5),
    st.integers(min_value=0, max_value=512),
)
@settings(max_examples=15, deadline=None)
def test_strategy_roundtrip_arbitrary_field_sizes(field_sizes, header):
    """coIO and rbIO restore arbitrary per-field sizes bit-exactly."""
    n = 4
    rng = np.random.default_rng(sum(field_sizes) + header)

    def data_for(rank):
        fields = []
        for i, size in enumerate(field_sizes):
            body = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            fields.append(Field(f"f{i}", size, body))
        return CheckpointData(fields, header_bytes=header)

    per_rank = {r: data_for(r) for r in range(n)}
    for strategy in (CollectiveIO(ranks_per_file=None),
                     ReducedBlockingIO(workers_per_writer=2)):
        job = Job(n, QUIET)
        attach_storage(job)

        def main(ctx, strategy=strategy):
            data = per_rank[ctx.rank]
            yield from ctx.comm.barrier()
            yield from strategy.checkpoint(ctx, data, 0, "/ckpt")
            yield from ctx.comm.barrier()
            fields = yield from strategy.restore(ctx, data, 0, "/ckpt")
            return fields == [f.payload for f in data.fields]

        job.spawn(main)
        results = job.run()
        assert all(results.values()), strategy.name
