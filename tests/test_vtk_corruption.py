"""Restart reads of damaged vtk checkpoint files raise VtkReadError.

A truncated or bit-rotted checkpoint must fail loudly at restart time —
never return short/garbage arrays, and never loop forever on a truncated
ASCII block.
"""

import numpy as np
import pytest

from repro.nekcem import VtkReadError, read_vtk, write_vtk


@pytest.fixture()
def vtk_file(tmp_path):
    order = 2
    p3 = (order + 1) ** 3
    n_elements = 2
    n_points = n_elements * p3
    rng = np.random.default_rng(42)
    points = rng.standard_normal((n_points, 3))
    fields = {"HX": rng.standard_normal(n_points),
              "HY": rng.standard_normal(n_points)}
    path = tmp_path / "ckpt.vtk"
    write_vtk(str(path), points, order, fields)
    return path, points, fields


def test_intact_file_roundtrips(vtk_file):
    path, points, fields = vtk_file
    out = read_vtk(str(path))
    assert np.allclose(out["points"], points)
    assert set(out["fields"]) == {"HX", "HY"}
    for name in fields:
        assert np.allclose(out["fields"][name], fields[name])
        assert len(out["fields"][name]) == len(points)


@pytest.mark.parametrize("keep_fraction", [0.1, 0.5, 0.9, 0.99])
def test_truncated_file_raises(vtk_file, tmp_path, keep_fraction):
    path, _, _ = vtk_file
    data = path.read_bytes()
    bad = tmp_path / "truncated.vtk"
    bad.write_bytes(data[: int(len(data) * keep_fraction)])
    with pytest.raises(VtkReadError):
        read_vtk(str(bad))


def test_empty_file_raises(tmp_path):
    bad = tmp_path / "empty.vtk"
    bad.write_bytes(b"")
    with pytest.raises(VtkReadError):
        read_vtk(str(bad))


def test_wrong_magic_raises(tmp_path):
    bad = tmp_path / "notvtk.vtk"
    bad.write_bytes(b"hello world\n" * 10)
    with pytest.raises(VtkReadError):
        read_vtk(str(bad))


def test_corrupt_cells_header_raises(vtk_file, tmp_path):
    path, _, _ = vtk_file
    data = path.read_bytes()
    head, sep, tail = data.partition(b"CELLS ")
    counts, nl, rest = tail.partition(b"\n")
    n, total = counts.split()
    bad_counts = b" ".join([n, str(int(total) + 1).encode()])
    bad = tmp_path / "badcells.vtk"
    bad.write_bytes(head + sep + bad_counts + nl + rest)
    with pytest.raises(VtkReadError):
        read_vtk(str(bad))


def test_truncated_ascii_file_raises_not_hangs(tmp_path):
    order = 1
    n_points = (order + 1) ** 3
    points = np.zeros((n_points, 3))
    path = tmp_path / "ascii.vtk"
    write_vtk(str(path), points, order, {"HX": np.ones(n_points)},
              binary=False)
    data = path.read_bytes()
    # Cut inside the POINTS block: the ASCII reader must hit EOF and
    # raise instead of spinning on empty reads.
    cut = data.index(b"POINTS")
    cut = data.index(b"\n", cut) + 1
    bad = tmp_path / "ascii_trunc.vtk"
    bad.write_bytes(data[:cut])
    with pytest.raises(VtkReadError):
        read_vtk(str(bad))


def test_corrupt_ascii_value_raises(tmp_path):
    order = 1
    n_points = (order + 1) ** 3
    points = np.zeros((n_points, 3))
    path = tmp_path / "ascii.vtk"
    write_vtk(str(path), points, order, {"HX": np.ones(n_points)},
              binary=False)
    data = path.read_bytes()
    # Corrupt the first value of the HX data block.
    marker = b"LOOKUP_TABLE default\n"
    pos = data.index(marker) + len(marker)
    bad = tmp_path / "ascii_corrupt.vtk"
    bad.write_bytes(data[:pos] + b"NaN?garbage " + data[pos:])
    with pytest.raises(VtkReadError):
        read_vtk(str(bad))


def test_vtk_read_error_is_value_error():
    assert issubclass(VtkReadError, ValueError)
