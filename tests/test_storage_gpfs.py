"""Tests for the GPFS-like file system: metadata, allocation, locks, data."""

import pytest

from repro.mpi import Job
from repro.storage import FSError, attach_storage
from repro.topology import intrepid

QUIET = intrepid().quiet()


def run_job(main, n_ranks=4, config=QUIET, ranks=None):
    job = Job(n_ranks, config)
    fs = attach_storage(job)
    job.spawn(main, ranks=ranks)
    results = job.run()
    return job, fs, results


# ---------------------------------------------------------------------------
# Metadata operations
# ---------------------------------------------------------------------------

def test_create_write_read_roundtrip():
    data = bytes(range(256)) * 10

    def main(ctx):
        h = yield from ctx.fs.create("/ckpt/file.vtk")
        yield from ctx.fs.write(h, 0, len(data), payload=data)
        yield from ctx.fs.close(h)
        h2 = yield from ctx.fs.open("/ckpt/file.vtk")
        got = yield from ctx.fs.read(h2, 0, len(data))
        yield from ctx.fs.close(h2)
        return got

    _, fs, results = run_job(main, 4, ranks=[0])
    assert results[0] == data
    assert fs.stats()["files"] == 1


def test_sparse_read_returns_zeros():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 100, 4, payload=b"abcd")
        got = yield from ctx.fs.read(h, 96, 12)
        yield from ctx.fs.close(h)
        return got

    _, _, results = run_job(main, 4, ranks=[0])
    assert results[0] == b"\x00" * 4 + b"abcd" + b"\x00" * 4


def test_open_missing_file_raises():
    def main(ctx):
        try:
            yield from ctx.fs.open("/nope")
        except FSError:
            return "raised"
        return "no error"

    _, _, results = run_job(main, 4, ranks=[0])
    assert results[0] == "raised"


def test_exclusive_create_existing_raises():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.close(h)
        try:
            yield from ctx.fs.create("/f", exclusive=True)
        except FSError:
            return "raised"
        return "no error"

    _, _, results = run_job(main, 4, ranks=[0])
    assert results[0] == "raised"


def test_create_existing_degrades_to_open():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 0, 4, payload=b"data")
        yield from ctx.fs.close(h)
        h2 = yield from ctx.fs.create("/f")  # open, not truncate-create
        got = yield from ctx.fs.read(h2, 0, 4)
        yield from ctx.fs.close(h2)
        return got

    _, fs, results = run_job(main, 4, ranks=[0])
    assert results[0] == b"data"
    assert fs.creates == 1


def test_double_close_raises():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.close(h)
        try:
            yield from ctx.fs.close(h)
        except FSError:
            return "raised"
        return "no"

    _, _, results = run_job(main, 4, ranks=[0])
    assert results[0] == "raised"


def test_write_after_close_raises():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.close(h)
        try:
            yield from ctx.fs.write(h, 0, 4)
        except FSError:
            return "raised"
        return "no"

    _, _, results = run_job(main, 4, ranks=[0])
    assert results[0] == "raised"


def test_directory_creates_serialize():
    """N creates in one directory take ~N * create_service (metadata storm)."""
    n = 16

    def main(ctx):
        h = yield from ctx.fs.create(f"/dir/file{ctx.rank}")
        yield from ctx.fs.close(h)
        return ctx.engine.now

    _, fs, results = run_job(main, n)
    svc = QUIET.meta_create_service
    assert max(results.values()) >= n * svc * 0.95
    # And the spread is roughly triangular: earliest finisher much sooner.
    assert min(results.values()) < max(results.values()) / 2


def test_creates_in_distinct_directories_parallel():
    n = 16

    def main(ctx):
        h = yield from ctx.fs.create(f"/dir{ctx.rank}/file")
        yield from ctx.fs.close(h)
        return ctx.engine.now

    _, _, results = run_job(main, n)
    svc = QUIET.meta_create_service
    assert max(results.values()) < 3 * svc + QUIET.meta_close_service


# ---------------------------------------------------------------------------
# Writes: sizes, allocation, locks
# ---------------------------------------------------------------------------

def test_write_zero_bytes_is_noop():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 0, 0)
        yield from ctx.fs.close(h)
        return "ok"

    _, fs, results = run_job(main, 4, ranks=[0])
    assert results[0] == "ok"
    assert fs.file("/f").size == 0


def test_write_bad_args_raise():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        for kwargs in [
            dict(offset=-1, nbytes=4),
            dict(offset=0, nbytes=-4),
        ]:
            try:
                yield from ctx.fs.write(h, **kwargs)
                return "no error"
            except FSError:
                pass
        try:
            yield from ctx.fs.write(h, 0, 4, payload=b"toolong!")
            return "no error"
        except FSError:
            return "raised"

    _, _, results = run_job(main, 4, ranks=[0])
    assert results[0] == "raised"


def test_file_size_tracks_highest_offset():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 1000, 24)
        yield from ctx.fs.write(h, 0, 8)
        yield from ctx.fs.close(h)

    _, fs, _ = run_job(main, 4, ranks=[0])
    assert fs.file("/f").size == 1024


def test_sole_writer_no_revocations():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 0, 10 * QUIET.fs_block_size)
        yield from ctx.fs.close(h)

    _, fs, _ = run_job(main, 4, ranks=[0])
    assert fs.revocations == 0


def test_shared_file_alternating_writes_revoke_tokens():
    bs = QUIET.fs_block_size

    def main(ctx):
        if ctx.rank == 0:
            h = yield from ctx.fs.create("/shared")
            yield from ctx.comm.barrier()
            yield from ctx.fs.write(h, 0, bs)
            yield from ctx.comm.barrier()
            yield from ctx.comm.barrier()
            # Rewrite a block now owned by rank 1: must revoke.
            yield from ctx.fs.write(h, bs, bs)
            yield from ctx.fs.close(h)
        elif ctx.rank == 1:
            yield from ctx.comm.barrier()
            yield from ctx.comm.barrier()
            h = yield from ctx.fs.open("/shared", write=True)
            yield from ctx.fs.write(h, bs, bs)
            yield from ctx.comm.barrier()
            yield from ctx.fs.close(h)
        else:
            yield from ctx.comm.barrier()
            yield from ctx.comm.barrier()
            yield from ctx.comm.barrier()

    _, fs, _ = run_job(main, 4)
    assert fs.revocations >= 1


def test_shared_writes_to_disjoint_blocks_acquire_without_revoke():
    bs = QUIET.fs_block_size

    def main(ctx):
        if ctx.rank == 0:
            h = yield from ctx.fs.create("/shared")
        else:
            yield from ctx.comm.barrier()
            h = yield from ctx.fs.open("/shared", write=True)
        if ctx.rank == 0:
            yield from ctx.comm.barrier()
        yield from ctx.fs.write(h, ctx.rank * bs, bs)
        yield from ctx.fs.close(h)

    _, fs, _ = run_job(main, 4)
    assert fs.revocations == 0


def test_shared_file_allocation_serializes():
    """Extent allocation on a multi-writer file costs per-block service."""
    bs = QUIET.fs_block_size
    blocks_per_rank = 8
    n = 8

    def main(ctx):
        if ctx.rank == 0:
            h = yield from ctx.fs.create("/shared")
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.barrier()
            h = yield from ctx.fs.open("/shared", write=True)
        t0 = ctx.engine.now
        yield from ctx.fs.write(h, ctx.rank * blocks_per_rank * bs, blocks_per_rank * bs)
        yield from ctx.fs.close(h)
        return ctx.engine.now - t0

    _, fs, results = run_job(main, n)
    total_alloc = QUIET.alloc_service * blocks_per_rank * n
    assert max(results.values()) >= total_alloc * 0.9


def test_sole_writer_allocation_batched():
    # Make data movement essentially free so only allocation time remains.
    fast = QUIET.with_(
        client_stream_bandwidth=1e15,
        ion_uplink_bandwidth=1e15,
        server_disk_bandwidth=1e15,
        seek_penalty_per_stream=0.0,
        ion_latency=0.0,
    )
    bs = fast.fs_block_size
    n_blocks = 2 * fast.alloc_batch_blocks

    def main(ctx):
        h = yield from ctx.fs.create("/big")
        t0 = ctx.engine.now
        yield from ctx.fs.write(h, 0, n_blocks * bs)
        dt = ctx.engine.now - t0
        yield from ctx.fs.close(h)
        return dt

    _, _, results = run_job(main, 4, config=fast, ranks=[0])
    # Two batched segments, not n_blocks serial allocations.
    assert results[0] == pytest.approx(2 * fast.alloc_service, rel=0.01)


# ---------------------------------------------------------------------------
# Data-path timing
# ---------------------------------------------------------------------------

def test_single_stream_capped_by_client_bandwidth():
    nbytes = 64 << 20

    def main(ctx):
        h = yield from ctx.fs.create("/f")
        t0 = ctx.engine.now
        yield from ctx.fs.write(h, 0, nbytes)
        dt = ctx.engine.now - t0
        yield from ctx.fs.close(h)
        return dt

    _, _, results = run_job(main, 4, ranks=[0])
    assert results[0] >= nbytes / QUIET.client_stream_bandwidth * 0.99


def test_ion_uplink_shared_within_pset():
    """Ranks in one pset share the ION pipe; aggregate <= uplink bandwidth."""
    nbytes = 32 << 20
    n = 8  # all within pset 0

    def main(ctx):
        h = yield from ctx.fs.create(f"/d{ctx.rank}/f")
        t0 = ctx.engine.now
        yield from ctx.fs.write(h, 0, nbytes)
        yield from ctx.fs.close(h)
        return ctx.engine.now

    _, _, results = run_job(main, n)
    total = n * nbytes
    assert max(results.values()) >= total / QUIET.ion_uplink_bandwidth * 0.95


def test_reads_faster_than_contended_writes():
    nbytes = 16 << 20

    def main(ctx):
        h = yield from ctx.fs.create("/f")
        t0 = ctx.engine.now
        yield from ctx.fs.write(h, 0, nbytes)
        t_write = ctx.engine.now - t0
        t0 = ctx.engine.now
        yield from ctx.fs.read(h, 0, nbytes)
        t_read = ctx.engine.now - t0
        yield from ctx.fs.close(h)
        return t_write, t_read

    _, _, results = run_job(main, 4, ranks=[0])
    t_write, t_read = results[0]
    assert t_read <= t_write  # no allocation cost on read


def test_stats_counters():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 0, 1024, payload=b"x" * 1024)
        yield from ctx.fs.read(h, 0, 1024)
        yield from ctx.fs.close(h)

    _, fs, _ = run_job(main, 4, ranks=[0])
    s = fs.stats()
    assert s["creates"] == 1
    assert s["writes"] == 1
    assert s["reads"] == 1
    assert s["bytes_stored"] == 1024


def test_noise_disabled_in_quiet_config():
    def main(ctx):
        h = yield from ctx.fs.create("/f")
        t0 = ctx.engine.now
        yield from ctx.fs.write(h, 0, 1 << 20)
        yield from ctx.fs.close(h)
        return ctx.engine.now - t0

    # Identical runs give identical times.
    _, _, r1 = run_job(main, 4, ranks=[0])
    _, _, r2 = run_job(main, 4, ranks=[0])
    assert r1[0] == r2[0]


def test_storms_only_on_shared_files():
    noisy = intrepid().with_(
        noise_sigma=0.0, storm_probability=1.0, storm_knee=1.0, storm_beta=0.0
    )

    def sole(ctx):
        h = yield from ctx.fs.create(f"/f{ctx.rank}")
        yield from ctx.fs.write(h, 0, 1 << 20)
        yield from ctx.fs.close(h)

    job = Job(4, noisy)
    fs = attach_storage(job)
    job.spawn(sole)
    job.run()
    assert fs.storms == 0

    def shared(ctx):
        if ctx.rank == 0:
            h = yield from ctx.fs.create("/shared")
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.barrier()
            h = yield from ctx.fs.open("/shared", write=True)
        yield from ctx.fs.write(h, ctx.rank * (1 << 22), 1 << 22)
        yield from ctx.fs.close(h)

    job = Job(4, noisy)
    fs = attach_storage(job)
    job.spawn(shared)
    job.run()
    assert fs.storms >= 1
