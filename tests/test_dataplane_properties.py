"""Property suite: the rope data plane commits bit-identical FS bytes.

The zero-copy refactor's hard invariant is that moving segment references
instead of flat buffers changes *nothing* observable on the simulated file
system: for every strategy, with and without fault injection, a run in
``zerocopy`` mode and a run in ``eager`` mode (the pre-rope copy-per-hop
baseline) must commit byte-identical file images with identical CRCs.

The suite sweeps 13 payload seeds x 4 strategies x {clean, transient FS
errors} = 104 cases; each case runs twice (once per copy mode) and compares
every committed file byte for byte.
"""

import numpy as np
import pytest

from repro import buffers
from repro.buffers import as_bytes, crc32_of
from repro.ckpt import (
    BurstBufferIO,
    CheckpointData,
    CollectiveIO,
    Field,
    OneFilePerProcess,
    ReducedBlockingIO,
)
from repro.experiments import run_checkpoint_steps
from repro.faults import FaultSchedule, FaultSpec
from repro.topology import intrepid

N_RANKS = 16
GROUP = 4
SEEDS = tuple(range(13))

STRATEGIES = {
    "1pfpp": lambda: OneFilePerProcess(arrival_jitter=0.0),
    "coio": lambda: CollectiveIO(ranks_per_file=GROUP),
    # Small writer buffer forces multi-burst commits (the sliciest path).
    "rbio": lambda: ReducedBlockingIO(workers_per_writer=GROUP,
                                      writer_buffer=4096),
    "bbio": lambda: BurstBufferIO(workers_per_writer=GROUP),
}

FAULT_MODES = {
    "clean": lambda: None,
    "fs_error": lambda: FaultSchedule((
        FaultSpec(kind="fs_error", time=0.0, op="write", count=2,
                  transient=True),
    )),
}


def _data_builder(seed: int):
    """Per-rank random payloads with seed-varied odd field sizes."""
    sizes = [64 + 37 * seed + 11 * i for i in range(3)]

    def build(rank: int) -> CheckpointData:
        rng = np.random.default_rng(10_000 * seed + rank)
        fields = [
            Field(f"f{i}", n,
                  rng.integers(0, 256, size=n, dtype=np.uint8).tobytes())
            for i, n in enumerate(sizes)
        ]
        return CheckpointData(fields, header_bytes=96 + 8 * seed)

    return build


def _committed_image(make_strategy, seed: int, faults, mode: str) -> dict:
    """Run one checkpoint step in ``mode``; return {path: (size, bytes, crc)}."""
    prev = buffers.set_copy_mode(mode)
    try:
        run = run_checkpoint_steps(make_strategy(), N_RANKS,
                                   _data_builder(seed), 1,
                                   config=intrepid().quiet(),
                                   faults=faults)
        fs = run.job.services["fs"]
        out = {}
        for path, fobj in sorted(fs.files.items()):
            content = fobj.read_extents(0, fobj.size)
            out[path] = (fobj.size, as_bytes(content), crc32_of(content))
        return out
    finally:
        buffers.set_copy_mode(prev)
        buffers.stats.reset()


@pytest.mark.parametrize("fault_name", sorted(FAULT_MODES))
@pytest.mark.parametrize("strategy_name", sorted(STRATEGIES))
def test_rope_vs_bytes_images_bit_identical(strategy_name, fault_name):
    make = STRATEGIES[strategy_name]
    make_faults = FAULT_MODES[fault_name]
    for seed in SEEDS:
        zc = _committed_image(make, seed, make_faults(), "zerocopy")
        eager = _committed_image(make, seed, make_faults(), "eager")
        assert zc.keys() == eager.keys(), (strategy_name, fault_name, seed)
        assert zc, (strategy_name, fault_name, seed)  # something was written
        for path in zc:
            z_size, z_bytes, z_crc = zc[path]
            e_size, e_bytes, e_crc = eager[path]
            assert z_size == e_size, (strategy_name, fault_name, seed, path)
            assert z_crc == e_crc, (strategy_name, fault_name, seed, path)
            assert z_bytes == e_bytes, (strategy_name, fault_name, seed, path)


def test_case_count_meets_floor():
    """The sweep above covers >= 100 seeded cases."""
    assert len(SEEDS) * len(STRATEGIES) * len(FAULT_MODES) >= 100
