"""Golden-manifest pin: the on-disk manifest format is frozen.

``tests/data/golden_manifest_v1.json`` is a committed byte-exact fixture
of one small version-1 manifest.  These tests pin

- **byte-stable serialization** — rebuilding the same manifest from
  Python values must reproduce the fixture bytes exactly (key order,
  separators, trailing newline, ASCII encoding), so checkpoints written
  by one build restore under any later build;
- **round-tripping** — ``from_bytes(to_bytes(m)) == m``;
- **version fencing** — unknown schema versions (and unversioned or
  malformed blobs) are rejected with the typed :class:`ManifestError`,
  which the resilient restore treats as "this generation is unreadable",
  never as silently-wrong data.

If a refactor changes the serialization, this test failing is the
signal that ``MANIFEST_VERSION`` must be bumped and a migration written
— do not regenerate the fixture to make it pass.
"""

import json
from pathlib import Path

import pytest

from repro.ckpt.incremental import (
    MANIFEST_VERSION,
    ChunkingParams,
    ChunkRef,
    Manifest,
    ManifestError,
    ManifestSection,
)
from repro.faults import UnrecoverableCheckpointError

GOLDEN = Path(__file__).parent / "data" / "golden_manifest_v1.json"


def golden_manifest() -> Manifest:
    """The fixture's content, rebuilt from Python values."""
    return Manifest(
        strategy="rbio", step=3, parent=2, header_bytes=256,
        chunking=ChunkingParams(min_size=256, avg_size=1024, max_size=4096),
        sections=(
            ManifestSection(member=0, field_sizes=(96, 64), chunks=(
                ChunkRef(0, 100, 0x1A2B3C4D,
                         "00112233445566778899aabbccddeeff", 3, 256),
                ChunkRef(100, 60, 0x0,
                         "ffeeddccbbaa99887766554433221100", 2, 900),
            )),
            ManifestSection(member=1, field_sizes=(96, 64), chunks=(
                ChunkRef(0, 160, 0xDEADBEEF,
                         "0123456789abcdef0123456789abcdef", 3, 356),
            )),
        ),
    )


def test_serialization_is_byte_stable():
    assert golden_manifest().to_bytes() == GOLDEN.read_bytes()


def test_golden_round_trips():
    manifest = Manifest.from_bytes(GOLDEN.read_bytes())
    assert manifest == golden_manifest()
    assert manifest.to_bytes() == GOLDEN.read_bytes()
    assert manifest.version == MANIFEST_VERSION == 1
    assert manifest.fresh_bytes == 100 + 160  # src_step == step chunks only


def test_unknown_version_is_rejected():
    d = json.loads(GOLDEN.read_bytes())
    d["version"] = MANIFEST_VERSION + 1
    with pytest.raises(ManifestError, match="unsupported manifest version"):
        Manifest.from_bytes(json.dumps(d).encode())


@pytest.mark.parametrize("blob", [
    b"",                          # empty file (aborted write)
    b"not json at all",           # garbage
    b"[1, 2, 3]",                 # JSON, wrong shape
    b"{\"strategy\": \"rbio\"}",  # unversioned object
    GOLDEN.read_bytes()[:-40],    # truncated mid-write
])
def test_malformed_blobs_raise_typed_error(blob):
    with pytest.raises(ManifestError):
        Manifest.from_bytes(blob)


def test_manifest_error_is_an_unrecoverable_checkpoint_error():
    """Restore voting fences unreadable manifests like any bad generation."""
    assert issubclass(ManifestError, UnrecoverableCheckpointError)
