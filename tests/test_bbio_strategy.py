"""Conformance tests for the bbIO burst-buffer checkpoint strategy.

BurstBufferIO must behave as a drop-in fourth strategy: bit-exact restart
round-trips at small scale through every restore tier (buffer, partner
replica, drained PFS file), rbIO-compatible file layouts once drained,
and worker blocking no worse than rbIO's.
"""

import numpy as np
import pytest

from repro.ckpt import BurstBufferIO, CheckpointData, Field, ReducedBlockingIO
from repro.experiments import run_checkpoint_step
from repro.mpi import Job
from repro.staging import StagingConfig, StagingError, staging_of
from repro.storage import attach_storage
from repro.topology import intrepid

QUIET = intrepid().quiet()


def payload_data(rank: int, per_field: int = 2048, n_fields: int = 3) -> CheckpointData:
    rng = np.random.default_rng(1000 + rank)
    fields = []
    for i in range(n_fields):
        body = rng.integers(0, 256, size=per_field, dtype=np.uint8).tobytes()
        fields.append(Field(f"f{i}", per_field, body))
    return CheckpointData(fields, header_bytes=512)


def roundtrip(strategy, n_ranks, config=QUIET):
    job = Job(n_ranks, config)
    attach_storage(job)

    def main(ctx):
        data = payload_data(ctx.rank)
        yield from ctx.comm.barrier()
        report = yield from strategy.checkpoint(ctx, data, 0, "/ckpt")
        yield from ctx.comm.barrier()
        fields = yield from strategy.restore(ctx, data, 0, "/ckpt")
        expected = [f.payload for f in data.fields]
        return (report, fields == expected)

    job.spawn(main)
    results = job.run()
    assert all(ok for _, ok in results.values()), "restored bytes differ"
    return job, {r: rep for r, (rep, _) in results.items()}


#: Drain slow enough that packages are still buffer-resident at restore
#: time, chunked so the trickle costs O(1) simulation events.
SLOW_DRAIN = StagingConfig(drain_bandwidth=1e3, drain_chunk=1 << 20,
                           high_watermark=None)


def test_bbio_roundtrip_auto():
    strategy = BurstBufferIO(workers_per_writer=4)
    job, reports = roundtrip(strategy, 8)
    roles = {r: rep.role for r, rep in reports.items()}
    assert roles[0] == "writer" and roles[4] == "writer"
    assert all(roles[r] == "worker" for r in [1, 2, 3, 5, 6, 7])


def test_bbio_roundtrip_from_buffer():
    strategy = BurstBufferIO(workers_per_writer=4, staging=SLOW_DRAIN,
                             restore_from="buffer")
    job, _ = roundtrip(strategy, 8)
    svc = staging_of(job)
    # The restore really came from resident packages, not the PFS (the
    # trickle drain finishes later, while the engine runs to quiescence).
    assert job.services["fs"].stats()["reads"] == 0
    assert svc.stats()["drain"]["packages_drained"] == 2


def test_bbio_roundtrip_from_partner_zero_pfs_reads():
    strategy = BurstBufferIO(
        workers_per_writer=4,
        staging=StagingConfig(replicate=True),
        restore_from="partner",
    )
    job, _ = roundtrip(strategy, 8)
    assert job.services["fs"].stats()["reads"] == 0
    svc = staging_of(job)
    assert sum(len(b.replicas) for b in svc.buffers) == 2  # one per group


def test_bbio_roundtrip_from_pfs_waits_for_drain():
    strategy = BurstBufferIO(workers_per_writer=4, restore_from="pfs")
    job, _ = roundtrip(strategy, 8)
    # The forced-PFS restore read the drained files.
    assert job.services["fs"].stats()["reads"] > 0


def test_bbio_drained_files_match_rbio_layout():
    """After the drain, the PFS holds rbIO's nf=ng field-major files."""
    strategy = BurstBufferIO(workers_per_writer=4)
    job, _ = roundtrip(strategy, 8)
    fs = job.services["fs"]
    assert fs.stats()["files"] == 2
    per, nfld, hdr = 2048, 3, 512
    fobj = fs.file("/ckpt/step000000/writer00000.vtk")
    data = fobj.read_extents(0, hdr + 4 * per * nfld)
    for member, world_rank in enumerate(range(4)):
        expected = payload_data(world_rank)
        for i in range(nfld):
            off = hdr + i * 4 * per + member * per
            assert data[off : off + per] == expected.fields[i].payload


def test_bbio_partner_restore_without_replica_raises():
    strategy = BurstBufferIO(workers_per_writer=4, staging=SLOW_DRAIN,
                             restore_from="partner")
    job = Job(8, QUIET)
    attach_storage(job)

    def main(ctx):
        data = payload_data(ctx.rank)
        yield from ctx.comm.barrier()
        yield from strategy.checkpoint(ctx, data, 0, "/ckpt")
        yield from ctx.comm.barrier()
        yield from strategy.restore(ctx, data, 0, "/ckpt")

    job.spawn(main)
    with pytest.raises(StagingError):
        job.run()


def test_bbio_workers_unblock_before_drain_completes():
    strategy = BurstBufferIO(workers_per_writer=4)
    run = run_checkpoint_step(strategy, 8, payload_data(0), config=QUIET)
    res = run.result
    worker_blocked = max(
        res.t_blocked_end[i] - res.t_start[i]
        for i in range(res.n_ranks) if res.roles[i] == "worker"
    )
    drain_end = staging_of(run.job).stats()["drain"]["last_drain_end"]
    assert drain_end > 0
    assert worker_blocked < drain_end / 10


def test_bbio_blocking_no_worse_than_rbio():
    bb = run_checkpoint_step(BurstBufferIO(workers_per_writer=4), 8,
                             payload_data(0), config=QUIET).result
    rb = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=4), 8,
                             payload_data(0), config=QUIET).result
    assert bb.blocking_time <= rb.blocking_time + 1e-6


def test_bbio_deterministic_across_runs():
    r1 = run_checkpoint_step(BurstBufferIO(workers_per_writer=4), 8,
                             payload_data(0), config=QUIET).result
    r2 = run_checkpoint_step(BurstBufferIO(workers_per_writer=4), 8,
                             payload_data(0), config=QUIET).result
    assert r1.overall_time == r2.overall_time
    assert np.array_equal(r1.t_complete, r2.t_complete)


def test_bbio_validation_and_describe():
    with pytest.raises(ValueError):
        BurstBufferIO(restore_from="tape")
    d = BurstBufferIO(workers_per_writer=32,
                      staging=StagingConfig(replicate=True)).describe()
    assert d["name"] == "bbio"
    assert d["np:ng"] == "32:1"
    assert d["replicate"] is True
    assert d["restore_from"] == "auto"
