"""Unit tests for the zero-copy scatter-gather data plane (repro.buffers)."""

import zlib

import pytest

from repro.buffers import (
    ByteRope,
    SegmentList,
    as_bytes,
    concat,
    copy_mode,
    crc32_of,
    overlay,
    set_copy_mode,
    stats,
    zeros,
)


@pytest.fixture(autouse=True)
def _clean_stats():
    stats.reset()
    yield
    stats.reset()
    set_copy_mode("zerocopy")


# -- construction -------------------------------------------------------------

def test_direct_construction_forbidden():
    with pytest.raises(TypeError):
        ByteRope()


def test_wrap_bytes_keeps_reference():
    data = b"hello world"
    rope = ByteRope.wrap(data)
    assert len(rope) == 11
    assert rope.n_segments == 1
    # bytes input keeps the object: to_bytes is free and identical.
    assert rope.to_bytes() is data
    assert stats.bytes_copied == 0


def test_wrap_bytearray_and_memoryview_views_in_place():
    src = bytearray(b"abcdef")
    rope = ByteRope.wrap(src)
    assert rope == b"abcdef"
    rope2 = ByteRope.wrap(memoryview(b"xyz"))
    assert bytes(rope2) == b"xyz"
    assert stats.bytes_copied == len(b"xyz")  # only the to_bytes join


def test_wrap_rope_is_identity_and_empty_is_shared():
    rope = ByteRope.wrap(b"ab")
    assert ByteRope.wrap(rope) is rope
    assert ByteRope.wrap(b"") is ByteRope.EMPTY
    assert not ByteRope.EMPTY
    assert bytes(ByteRope.EMPTY) == b""


def test_wrap_rejects_non_bytes():
    with pytest.raises(TypeError):
        ByteRope.wrap(42)


def test_segmentlist_alias():
    assert SegmentList is ByteRope


# -- structural ops ------------------------------------------------------------

def test_concat_is_zero_copy():
    rope = concat([b"aa", b"bb", bytearray(b"cc")])
    assert rope.n_segments == 3
    assert stats.bytes_copied == 0
    assert rope == b"aabbcc"
    assert bytes(rope) == b"aabbcc"
    assert stats.bytes_copied == 6  # the single materialization


def test_concat_drops_empties_and_unwraps_singletons():
    a = ByteRope.wrap(b"xy")
    assert concat([b"", a, b""]) is a
    assert concat([]) is ByteRope.EMPTY


def test_slice_full_range_returns_self():
    rope = concat([b"abc", b"def"])
    assert rope.slice(0, 6) is rope
    assert rope[:] is rope


def test_slice_and_split_share_segments():
    rope = concat([b"abcd", b"efgh", b"ijkl"])
    mid = rope.slice(2, 10)
    assert stats.bytes_copied == 0
    assert bytes(mid) == b"cdefghij"
    left, right = rope.split_at(5)
    assert bytes(left) + bytes(right) == bytes(rope)
    # Clamping: out-of-range bounds never raise.
    assert bytes(rope.slice(-5, 99)) == b"abcdefghijkl"
    assert rope.slice(7, 3) is ByteRope.EMPTY


def test_getitem_int_and_slice():
    rope = concat([bytes(range(10)), bytes(range(10, 20))])
    assert rope[0] == 0
    assert rope[13] == 13
    assert rope[-1] == 19
    assert bytes(rope[5:15]) == bytes(range(5, 15))
    with pytest.raises(IndexError):
        rope[20]
    with pytest.raises(ValueError):
        rope[::2]


def test_add_and_radd():
    rope = ByteRope.wrap(b"bb")
    assert bytes(rope + b"cc") == b"bbcc"
    assert bytes(b"aa" + rope) == b"aabb"
    assert bytes(rope + rope) == b"bbbb"


# -- content ops ---------------------------------------------------------------

def test_crc32_matches_flat_and_is_chainable():
    payload = bytes(range(256)) * 3
    rope = concat([payload[:100], payload[100:350], payload[350:]])
    assert rope.crc32() == (zlib.crc32(payload) & 0xFFFFFFFF)
    assert crc32_of(rope) == crc32_of(payload)
    seed = zlib.crc32(b"prefix") & 0xFFFFFFFF
    assert rope.crc32(seed) == (zlib.crc32(payload, seed) & 0xFFFFFFFF)
    assert stats.bytes_copied == 0


def test_to_bytes_memoized_and_counted_once():
    rope = concat([b"ab", b"cd"])
    flat1 = rope.to_bytes()
    flat2 = rope.to_bytes()
    assert flat1 is flat2 == b"abcd"
    assert stats.bytes_copied == 4
    assert stats.buffer_allocs == 1


def test_equality_without_materializing():
    a = concat([b"abc", b"defg", b"h"])
    b = concat([b"a", b"bcdef", b"gh"])
    assert a == b
    assert a == b"abcdefgh"
    assert a == bytearray(b"abcdefgh")
    assert a != b"abcdefgx"
    assert a != b"short"
    assert stats.bytes_copied == 0
    with pytest.raises(TypeError):
        hash(a)


# -- helpers -------------------------------------------------------------------

def test_zeros_shares_the_zero_page():
    big = zeros(3 * (1 << 20) + 17)
    assert len(big) == 3 * (1 << 20) + 17
    assert stats.buffer_allocs == 0
    assert big[0] == 0 and big[-1] == 0
    assert zeros(0) is ByteRope.EMPTY
    assert bytes(zeros(5)) == bytes(5)


def test_overlay_later_wins_and_zero_fills():
    img = overlay([(0, b"aaaa"), (2, b"bb"), (8, b"cc")], 0, 12)
    assert bytes(img) == b"aabb" + bytes(4) + b"cc" + bytes(2)
    # Single exactly-covering piece comes back as a plain slice.
    piece = ByteRope.wrap(b"wxyz")
    assert overlay([(0, piece)], 0, 4) is piece
    assert overlay([], 0, 4) == bytes(4)
    assert overlay([(0, b"aa")], 3, 3) is ByteRope.EMPTY


def test_as_bytes_boundary():
    assert as_bytes(None) is None
    raw = b"raw"
    assert as_bytes(raw) is raw
    assert as_bytes(bytearray(b"ba")) == b"ba"
    assert stats.bytes_copied == 2
    rope = concat([b"xx", b"yy"])
    assert as_bytes(rope) == b"xxyy"
    with pytest.raises(TypeError):
        as_bytes(3.14)


# -- copy modes ----------------------------------------------------------------

def test_mode_switch_roundtrip_and_validation():
    assert copy_mode() == "zerocopy"
    prev = set_copy_mode("eager")
    assert prev == "zerocopy"
    assert copy_mode() == "eager"
    set_copy_mode(prev)
    with pytest.raises(ValueError):
        set_copy_mode("lazy")


def test_eager_mode_counts_every_hop_but_same_bytes():
    payload = bytes(range(64))
    set_copy_mode("eager")
    rope = concat([payload[:20], payload[20:]])
    assert stats.bytes_copied == 64  # concat materialized
    part = rope.slice(10, 30)
    assert stats.bytes_copied == 64 + 20  # slice materialized
    z = zeros(8)
    assert stats.bytes_copied == 64 + 20 + 8  # zeros allocated
    set_copy_mode("zerocopy")
    assert bytes(part) == payload[10:30]
    assert bytes(z) == bytes(8)
    # Full-range slice still returns self (CPython bytes[:] semantics).
    set_copy_mode("eager")
    assert rope.slice(0, len(rope)) is rope
