"""End-to-end reproducibility guarantees.

Every figure in EXPERIMENTS.md must be bit-reproducible: identical seeds
and configurations produce identical virtual-time measurements, and
different seeds perturb only the stochastic parts.
"""

import numpy as np

from repro.ckpt import CollectiveIO, OneFilePerProcess, ReducedBlockingIO
from repro.experiments import clear_cache, fig5_write_bandwidth, run_checkpoint_step, scaled_problem
from repro.topology import intrepid

N = 512
DATA = scaled_problem(N).data()


def test_fig5_series_identical_across_processes_worth_of_state():
    """Clearing all caches and rerunning reproduces identical values."""
    clear_cache()
    a = fig5_write_bandwidth(sizes=(N,), approaches=("coio_64", "rbio_ng"))
    clear_cache()
    b = fig5_write_bandwidth(sizes=(N,), approaches=("coio_64", "rbio_ng"))
    clear_cache()
    for key in a:
        assert a[key][N] == b[key][N]


def test_noisy_runs_reproducible_with_default_seed():
    for strategy_factory in (
        lambda: OneFilePerProcess(),
        lambda: CollectiveIO(ranks_per_file=64),
        lambda: ReducedBlockingIO(workers_per_writer=64),
    ):
        r1 = run_checkpoint_step(strategy_factory(), N, DATA).result
        r2 = run_checkpoint_step(strategy_factory(), N, DATA).result
        assert r1.overall_time == r2.overall_time
        assert np.array_equal(r1.t_complete, r2.t_complete)


def test_different_seed_changes_noisy_measurement():
    r1 = run_checkpoint_step(CollectiveIO(ranks_per_file=64), N, DATA,
                             seed=1).result
    r2 = run_checkpoint_step(CollectiveIO(ranks_per_file=64), N, DATA,
                             seed=2).result
    assert r1.overall_time != r2.overall_time


def test_seed_does_not_matter_when_noise_disabled():
    quiet = intrepid().quiet()
    r1 = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=64), N,
                             DATA, config=quiet, seed=1).result
    r2 = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=64), N,
                             DATA, config=quiet, seed=2).result
    # rbIO uses no stochastic services in quiet mode except the 1PFPP-style
    # jitter (absent here): identical timings.
    assert r1.overall_time == r2.overall_time


def test_staging_benchmark_series_bit_identical():
    """Two same-seed bbIO staging campaigns produce identical series.

    The staging subsystem adds background drain processes, buffer
    queueing, and partner replication to the event mix — none of which
    may introduce ordering nondeterminism.
    """
    from repro.experiments import ext_staging_run
    from repro.staging import StagingConfig

    # Capacity must hold one step's residents plus replicas (~1.3 GB per
    # ION buffer here) but binds across steps, so the campaign exercises
    # deterministic reserve queueing and stalls too.
    staging = StagingConfig(capacity_bytes=3 * 1024**3 // 2,
                            drain_bandwidth=30e6, high_watermark=None,
                            replicate=True)
    runs = [
        ext_staging_run(n_ranks=N, n_steps=3, gap_seconds=2.0,
                        staging=staging, seed=7)
        for _ in range(2)
    ]
    a, b = runs
    assert a["per_step_blocking"] == b["per_step_blocking"]
    assert a["stall_seconds"] == b["stall_seconds"]
    assert a["stalls"] == b["stalls"]
    assert a["peak_used"] == b["peak_used"]
    assert a["last_drain_end"] == b["last_drain_end"]
    for ra, rb in zip(a["results"], b["results"]):
        assert np.array_equal(ra.t_complete, rb.t_complete)
        assert np.array_equal(ra.t_blocked_end, rb.t_blocked_end)
