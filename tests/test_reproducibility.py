"""End-to-end reproducibility guarantees.

Every figure in EXPERIMENTS.md must be bit-reproducible: identical seeds
and configurations produce identical virtual-time measurements, and
different seeds perturb only the stochastic parts.
"""

import numpy as np

from repro.ckpt import CollectiveIO, OneFilePerProcess, ReducedBlockingIO
from repro.experiments import clear_cache, fig5_write_bandwidth, run_checkpoint_step, scaled_problem
from repro.topology import intrepid

N = 512
DATA = scaled_problem(N).data()


def test_fig5_series_identical_across_processes_worth_of_state():
    """Clearing all caches and rerunning reproduces identical values."""
    clear_cache()
    a = fig5_write_bandwidth(sizes=(N,), approaches=("coio_64", "rbio_ng"))
    clear_cache()
    b = fig5_write_bandwidth(sizes=(N,), approaches=("coio_64", "rbio_ng"))
    clear_cache()
    for key in a:
        assert a[key][N] == b[key][N]


def test_noisy_runs_reproducible_with_default_seed():
    for strategy_factory in (
        lambda: OneFilePerProcess(),
        lambda: CollectiveIO(ranks_per_file=64),
        lambda: ReducedBlockingIO(workers_per_writer=64),
    ):
        r1 = run_checkpoint_step(strategy_factory(), N, DATA).result
        r2 = run_checkpoint_step(strategy_factory(), N, DATA).result
        assert r1.overall_time == r2.overall_time
        assert np.array_equal(r1.t_complete, r2.t_complete)


def test_different_seed_changes_noisy_measurement():
    r1 = run_checkpoint_step(CollectiveIO(ranks_per_file=64), N, DATA,
                             seed=1).result
    r2 = run_checkpoint_step(CollectiveIO(ranks_per_file=64), N, DATA,
                             seed=2).result
    assert r1.overall_time != r2.overall_time


def test_seed_does_not_matter_when_noise_disabled():
    quiet = intrepid().quiet()
    r1 = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=64), N,
                             DATA, config=quiet, seed=1).result
    r2 = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=64), N,
                             DATA, config=quiet, seed=2).result
    # rbIO uses no stochastic services in quiet mode except the 1PFPP-style
    # jitter (absent here): identical timings.
    assert r1.overall_time == r2.overall_time


def test_staging_benchmark_series_bit_identical():
    """Two same-seed bbIO staging campaigns produce identical series.

    The staging subsystem adds background drain processes, buffer
    queueing, and partner replication to the event mix — none of which
    may introduce ordering nondeterminism.
    """
    from repro.experiments import ext_staging_run
    from repro.staging import StagingConfig

    # Capacity must hold one step's residents plus replicas (~1.3 GB per
    # ION buffer here) but binds across steps, so the campaign exercises
    # deterministic reserve queueing and stalls too.
    staging = StagingConfig(capacity_bytes=3 * 1024**3 // 2,
                            drain_bandwidth=30e6, high_watermark=None,
                            replicate=True)
    runs = [
        ext_staging_run(n_ranks=N, n_steps=3, gap_seconds=2.0,
                        staging=staging, seed=7)
        for _ in range(2)
    ]
    a, b = runs
    assert a["per_step_blocking"] == b["per_step_blocking"]
    assert a["stall_seconds"] == b["stall_seconds"]
    assert a["stalls"] == b["stalls"]
    assert a["peak_used"] == b["peak_used"]
    assert a["last_drain_end"] == b["last_drain_end"]
    for ra, rb in zip(a["results"], b["results"]):
        assert np.array_equal(ra.t_complete, rb.t_complete)
        assert np.array_equal(ra.t_blocked_end, rb.t_blocked_end)


# -- fault-injection reproducibility ----------------------------------------

def _fs_image(job) -> dict:
    """Byte-exact snapshot of every file on the simulated PFS."""
    fs = job.services["fs"]
    return {
        path: (f.size, f.read_extents(0, f.size))
        for path, f in sorted(fs.files.items())
    }


def test_fault_schedule_generation_reproducible():
    from repro.faults import FaultConfig, FaultSchedule
    from repro.sim import StreamRegistry

    cfg = FaultConfig(fs_errors=3, fs_stalls=2, writer_crash_prob=0.9,
                      buffer_loss_prob=0.9, net_degrade_prob=0.9,
                      horizon=5.0)
    a = FaultSchedule.generate(StreamRegistry(11), 64, cfg)
    b = FaultSchedule.generate(StreamRegistry(11), 64, cfg)
    c = FaultSchedule.generate(StreamRegistry(12), 64, cfg)
    assert a == b
    assert a != c
    assert len(a) >= 5


def test_faulted_campaign_bit_reproducible():
    """Same seed, same schedule: identical reports, logs, and FS bytes."""
    from repro.ckpt import ReducedBlockingIO
    from repro.experiments import run_resilient_campaign
    from repro.faults import FaultSchedule, FaultSpec

    faults = FaultSchedule((
        FaultSpec(kind="fs_error", time=0.0, op="write", count=2,
                  transient=True),
        FaultSpec(kind="rank_crash", time=1.0, rank=0),
    ))

    def campaign():
        return run_resilient_campaign(
            ReducedBlockingIO(workers_per_writer=16), 64, DATA, n_steps=2,
            faults=faults, gap_seconds=2.0, seed=5,
        )

    a, b = campaign(), campaign()
    assert a.fault_report == b.fault_report
    assert {r: s for r, (s, _f) in a.restored.items()} == \
           {r: s for r, (s, _f) in b.restored.items()}
    for ra, rb in zip(a.results, b.results):
        assert np.array_equal(ra.t_complete, rb.t_complete)
        assert np.array_equal(ra.t_blocked_end, rb.t_blocked_end)
    assert _fs_image(a.run.job) == _fs_image(b.run.job)


def test_faulted_run_reproducible_under_auto_coalescing():
    """coalesce='auto' stays bit-identical when a fault schedule rides

    along (a non-empty schedule silently disables the coalescing plan)."""
    from repro.ckpt import ReducedBlockingIO
    from repro.experiments import run_checkpoint_steps
    from repro.faults import FaultSchedule, FaultSpec

    faults = FaultSchedule((
        FaultSpec(kind="fs_stall", time=0.0, op="create", delay=0.3),
    ))

    def run(mode):
        return run_checkpoint_steps(
            ReducedBlockingIO(workers_per_writer=16), 64, DATA, 2,
            gap_seconds=1.0, coalesce=mode, faults=faults)

    a, b = run("auto"), run("auto")
    c = run("off")
    for x in (b, c):
        for ra, rx in zip(a.results, x.results):
            assert np.array_equal(ra.t_complete, rx.t_complete)
    assert _fs_image(a.job) == _fs_image(c.job)


def test_empty_schedule_is_zero_cost():
    """faults=None and an empty FaultSchedule are bit-identical: the

    injector hooks stay disarmed, so timing and FS bytes cannot move."""
    from repro.ckpt import CollectiveIO
    from repro.experiments import run_checkpoint_steps
    from repro.faults import FaultSchedule

    base = run_checkpoint_steps(CollectiveIO(ranks_per_file=64), N, DATA, 2,
                                gap_seconds=1.0)
    empty = run_checkpoint_steps(CollectiveIO(ranks_per_file=64), N, DATA, 2,
                                 gap_seconds=1.0,
                                 faults=FaultSchedule(()))
    for ra, rb in zip(base.results, empty.results):
        assert np.array_equal(ra.t_complete, rb.t_complete)
        assert ra.overall_time == rb.overall_time
    assert _fs_image(base.job) == _fs_image(empty.job)
    fs = empty.job.services["fs"]
    assert fs.injector is None
    assert empty.job.fabric.injector is None


# ---------------------------------------------------------------------------
# Engine-level determinism: FIFO tie-break at equal virtual times
# ---------------------------------------------------------------------------

def test_same_time_fifo_matches_seq_heap_reference():
    """Seeded interleaving: bucketed-calendar dispatch order must be
    bit-identical to the classic ``(time, seq)`` heap tie-break.

    Delays are drawn from a tiny discrete set so most instants hold many
    tied events; the engine must fire them in scheduling order.
    """
    import heapq

    from repro.sim import Engine

    rng = np.random.default_rng(20260807)
    delays = rng.choice([0.0, 0.5, 1.0, 1.5, 2.0], size=300)

    # Reference: stable heap keyed on (time, issue sequence number).
    heap = [(float(d), seq, seq) for seq, d in enumerate(delays)]
    heapq.heapify(heap)
    expected = [label for _, _, label in
                [heapq.heappop(heap) for _ in range(len(delays))]]

    eng = Engine()
    fired = []

    def proc(i, d):
        yield eng.timeout(float(d))
        fired.append(i)

    # Bootstrap events all fire at t=0 in creation order, so the timeouts
    # are issued in index order — matching the reference's seq numbering.
    for i, d in enumerate(delays):
        eng.process(proc(i, d))
    eng.run()
    assert fired == expected


def test_zero_delay_cascade_interleaving_is_fifo():
    """Events appended to an instant *while it drains* fire after every
    event scheduled there earlier, in append order — seeded across several
    tied instants with two-stage processes."""
    from repro.sim import Engine

    rng = np.random.default_rng(7)
    delays = rng.choice([1.0, 2.0, 3.0], size=60)

    eng = Engine()
    fired = []

    def proc(i, d):
        yield eng.timeout(float(d))
        fired.append(("first", i))
        yield eng.timeout(0.0)  # appended to the live bucket mid-drain
        fired.append(("second", i))

    for i, d in enumerate(delays):
        eng.process(proc(i, d))
    eng.run()

    expected = []
    for t in sorted(set(delays.tolist())):
        at_t = [i for i, d in enumerate(delays) if d == t]
        expected.extend(("first", i) for i in at_t)
        expected.extend(("second", i) for i in at_t)
    assert fired == expected
