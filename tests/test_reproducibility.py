"""End-to-end reproducibility guarantees.

Every figure in EXPERIMENTS.md must be bit-reproducible: identical seeds
and configurations produce identical virtual-time measurements, and
different seeds perturb only the stochastic parts.
"""

import numpy as np

from repro.ckpt import CollectiveIO, OneFilePerProcess, ReducedBlockingIO
from repro.experiments import clear_cache, fig5_write_bandwidth, run_checkpoint_step, scaled_problem
from repro.topology import intrepid

N = 512
DATA = scaled_problem(N).data()


def test_fig5_series_identical_across_processes_worth_of_state():
    """Clearing all caches and rerunning reproduces identical values."""
    clear_cache()
    a = fig5_write_bandwidth(sizes=(N,), approaches=("coio_64", "rbio_ng"))
    clear_cache()
    b = fig5_write_bandwidth(sizes=(N,), approaches=("coio_64", "rbio_ng"))
    clear_cache()
    for key in a:
        assert a[key][N] == b[key][N]


def test_noisy_runs_reproducible_with_default_seed():
    for strategy_factory in (
        lambda: OneFilePerProcess(),
        lambda: CollectiveIO(ranks_per_file=64),
        lambda: ReducedBlockingIO(workers_per_writer=64),
    ):
        r1 = run_checkpoint_step(strategy_factory(), N, DATA).result
        r2 = run_checkpoint_step(strategy_factory(), N, DATA).result
        assert r1.overall_time == r2.overall_time
        assert np.array_equal(r1.t_complete, r2.t_complete)


def test_different_seed_changes_noisy_measurement():
    r1 = run_checkpoint_step(CollectiveIO(ranks_per_file=64), N, DATA,
                             seed=1).result
    r2 = run_checkpoint_step(CollectiveIO(ranks_per_file=64), N, DATA,
                             seed=2).result
    assert r1.overall_time != r2.overall_time


def test_seed_does_not_matter_when_noise_disabled():
    quiet = intrepid().quiet()
    r1 = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=64), N,
                             DATA, config=quiet, seed=1).result
    r2 = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=64), N,
                             DATA, config=quiet, seed=2).result
    # rbIO uses no stochastic services in quiet mode except the 1PFPP-style
    # jitter (absent here): identical timings.
    assert r1.overall_time == r2.overall_time
