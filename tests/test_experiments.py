"""Tests for the experiment harness: configs, runner, figure series.

Figure functions are exercised at reduced scale (the benchmarks run them at
the paper's 16K-64K scales); shapes and invariants checked here are the
same ones the paper's full-scale plots rely on.
"""

import numpy as np
import pytest

from repro.experiments import (
    APPROACHES,
    PAPER_SIZES,
    TCOMP_PER_STEP,
    clear_cache,
    eq1_production_improvement,
    eq2_7_speedup,
    fig5_write_bandwidth,
    fig6_overall_time,
    fig7_checkpoint_ratio,
    fig8_file_sweep,
    fig9_distribution_1pfpp,
    fig10_distribution_coio,
    fig11_distribution_rbio,
    fig12_write_activity,
    get_run,
    paper_data,
    paper_problem,
    scaled_problem,
    table1_perceived,
)
from repro.topology import intrepid

SMALL = (1024, 2048)
QUIET = intrepid().quiet()
# Small-scale metadata-storm config: the production calibration only makes
# directory inserts pathological past ~8K entries (as on real GPFS); tests
# at 1-2K ranks lower the knee so the 1PFPP mechanism is exercised.
STORMY = QUIET.with_(meta_create_dir_knee=200.0)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


# ---------------------------------------------------------------------------
# Configs
# ---------------------------------------------------------------------------

def test_paper_sizes_match_table():
    p16 = paper_problem(16384)
    assert p16.elements == 68_000
    assert p16.points == 68_000 * 16**3
    # ~39 GB per I/O step.
    assert p16.file_bytes == pytest.approx(39e9, rel=0.05)
    p64 = paper_problem(65536)
    assert p64.file_bytes == pytest.approx(156e9, rel=0.05)
    assert p64.points == pytest.approx(1.1e9, rel=0.05)


def test_paper_weak_scaling_constant_per_rank():
    per_rank = [paper_problem(n).bytes_per_rank for n in PAPER_SIZES]
    assert max(per_rank) - min(per_rank) < 0.02 * per_rank[0]


def test_paper_problem_unknown_size():
    with pytest.raises(ValueError):
        paper_problem(999)


def test_scaled_problem_any_size():
    p = scaled_problem(512)
    assert p.n_ranks == 512
    assert p.bytes_per_rank == pytest.approx(
        paper_problem(16384).bytes_per_rank, rel=0.05
    )


def test_paper_data_field_structure():
    d = paper_data(16384)
    assert d.n_fields == 7
    assert d.fields[0].name == "geometry"


def test_tcomp_constant():
    assert 0.2 < TCOMP_PER_STEP < 0.32


# ---------------------------------------------------------------------------
# get_run / cache
# ---------------------------------------------------------------------------

def test_get_run_cached():
    a = get_run("rbio_ng", 1024, QUIET)
    b = get_run("rbio_ng", 1024, QUIET)
    assert a is b


def test_get_run_distinct_keys():
    a = get_run("rbio_ng", 1024, QUIET)
    b = get_run("coio_64", 1024, QUIET)
    assert a is not b


def test_get_run_unknown_key():
    with pytest.raises(ValueError):
        get_run("bogus", 1024, QUIET)


def test_rbio_nf_sweep_key():
    run = get_run("rbio_nf128", 1024, QUIET)
    assert len(run.result.writer_ranks) == 128


# ---------------------------------------------------------------------------
# Figure series at reduced scale
# ---------------------------------------------------------------------------

def test_fig5_series_structure_and_ordering():
    out = fig5_write_bandwidth(sizes=SMALL, config=STORMY)
    assert set(out) == set(APPROACHES)
    for key in out:
        assert set(out[key]) == set(SMALL)
    for n in SMALL:
        # 1PFPP loses to everything once the metadata storm bites.
        assert out["1pfpp"][n] < out["coio_nf1"][n]
        # rbIO nf=ng is at least competitive at this (tiny) scale; the
        # strict paper-scale ordering is asserted by the benchmarks.
        assert out["rbio_ng"][n] > 0.7 * out["coio_nf1"][n]
        # nf=1 variants are similar (two-phase layers don't interfere).
        ratio = out["rbio_nf1"][n] / out["coio_nf1"][n]
        assert 0.5 < ratio < 2.0


def test_fig6_times_consistent_with_fig5():
    bw = fig5_write_bandwidth(sizes=(1024,), config=QUIET)
    times = fig6_overall_time(sizes=(1024,), config=QUIET)
    s = scaled_problem(1024).file_bytes
    for key in bw:
        assert times[key][1024] == pytest.approx(
            s / (bw[key][1024] * 1e9), rel=0.01
        )


def test_fig7_rbio_ratio_far_below_others():
    out = fig7_checkpoint_ratio(sizes=(1024,), config=STORMY)
    assert out["rbio_ng"][1024] < 0.1
    assert out["1pfpp"][1024] > 10
    assert out["coio_64"][1024] > out["rbio_ng"][1024] * 100


def test_fig8_sweep_skips_degenerate_ratios():
    out = fig8_file_sweep(sizes=(1024,), n_files=(128, 256, 1024), config=QUIET)
    assert 128 in out[1024]
    assert 256 in out[1024]
    assert 1024 not in out[1024]  # would need 1 rank per writer


def test_fig9_distribution_shape():
    ranks, times = fig9_distribution_1pfpp(n_ranks=1024, config=STORMY)
    assert len(ranks) == 1024
    assert times.min() >= 0
    # Metadata serialization: wide spread relative to the minimum.
    assert times.max() > 5 * np.median(times[times > 0])


def test_fig10_distribution_synchronized_groups():
    ranks, times = fig10_distribution_coio(n_ranks=1024, config=QUIET)
    # Split-collective: 64-rank groups share completion times.
    assert len(np.unique(np.round(times, 9))) <= 1024 // 64 + 1


def test_fig11_two_lines():
    out = fig11_distribution_rbio(n_ranks=1024, config=QUIET)
    assert out["writer_mask"].sum() == 16
    assert out["worker_times"].max() < out["writer_times"].min() / 100


def test_fig12_activity_series():
    out = fig12_write_activity(n_ranks=1024, bin_width=0.1, config=QUIET)
    for key in ("rbio_ng", "coio_64"):
        assert out[key]["n_write_ops"] > 0
        assert out[key]["active_writers"].max() >= 1


def test_table1_rows():
    rows = table1_perceived(sizes=(1024,), config=QUIET)
    (row,) = rows
    assert row["np"] == 1024
    assert row["perceived_tbps"] > 1  # still TB/s even at small scale
    assert row["time_cycles"] == pytest.approx(
        row["time_us"] * 1e-6 * intrepid().cpu_hz
    )


def test_eq1_improvement_large():
    out = eq1_production_improvement(n_ranks=1024, nc=20, config=STORMY)
    # Commit-based improvement > 1, blocking-based much larger, and the
    # blocking reading always dominates the commit reading.
    assert out["improvement_commit"] > 1
    assert out["improvement_blocking"] > 5
    assert out["improvement_blocking"] >= out["improvement_commit"]
    assert out["ratio_1pfpp"] > out["ratio_rbio_commit"]


def test_eq2_7_model_vs_measured():
    out = eq2_7_speedup(n_ranks=1024, config=QUIET)
    assert out["speedup_eq5"] > 10
    # Model and measurement agree within a factor ~2 (the paper's own
    # approximation level).
    ratio = out["speedup_measured"] / out["speedup_eq5"]
    assert 0.4 < ratio < 2.5
    # Eq. 7 is within ~25% of Eq. 5 when lambda ~ 0.
    assert out["speedup_eq7"] == pytest.approx(out["speedup_eq5"], rel=0.3)
