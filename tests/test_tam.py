"""Differential harness for two-level intra-node aggregation (TAM).

TAM (Kang et al., arXiv:1907.12656) re-routes checkpoint traffic — ranks
coalesce through node leaders before any inter-node exchange — but must
never change a single byte of what lands on the parallel file system.
Every cell of the matrix here runs twice, ``tam="off"`` (the flat
exchange) and ``tam`` engaged, across coalescing and incremental (delta)
modes, and asserts:

- identical file *sets* and bit-identical file *bytes* (and CRCs),
- bit-identical resiliently-restored state on every rank,
- that TAM actually cut inter-node fabric messages (the point of it),
  with intra-node traffic accounted separately.

Fault cells check the degradation contract: rank-crash schedules force
the flat failover protocol (``"auto"`` falls back silently,
``"require"`` refuses loudly), while transient FS errors keep TAM on.
"""

import numpy as np
import pytest

from repro.buffers import as_bytes
from repro.ckpt import (
    BurstBufferIO,
    CollectiveIO,
    EvolvingData,
    Field,
    CheckpointData,
    ReducedBlockingIO,
)
from repro.experiments import run_checkpoint_steps, run_resilient_campaign
from repro.faults import FaultSchedule, FaultSpec
from repro.mpiio import TamExchange, pick_node_aggregators
from repro.topology import NodeGroups, intrepid

QUIET = intrepid().quiet()          # cores_per_node=4: 8 ranks = 2 nodes
NP = 32
GROUP = 8
N_STEPS = 3
GAP = 2.0
PPR = 300

DATA = EvolvingData.mutating(PPR, mutated_fraction=0.25, seed=5,
                             header_bytes=256)

STRATEGIES = ["coio", "coio_nf1", "rbio", "rbio_nf1", "bbio"]


def make_strategy(name: str, tam: str = "off", delta: str = "off"):
    if name == "coio":
        s = CollectiveIO(ranks_per_file=GROUP)
    elif name == "coio_nf1":
        s = CollectiveIO(ranks_per_file=None)
    elif name == "rbio":
        s = ReducedBlockingIO(workers_per_writer=GROUP)
    elif name == "rbio_nf1":
        s = ReducedBlockingIO(workers_per_writer=GROUP, single_file=True)
    elif name == "bbio":
        s = BurstBufferIO(workers_per_writer=GROUP)
    else:
        raise AssertionError(name)
    if tam != "off":
        s.configure_tam(tam)
    if delta != "off":
        s.configure_delta(delta)
    return s


def fs_image(job):
    fs = job.services["fs"]
    return {path: (f.size, as_bytes(f.read_extents(0, f.size)))
            for path, f in sorted(fs.files.items())}


def assert_same_files(job_a, job_b):
    a, b = fs_image(job_a), fs_image(job_b)
    assert sorted(a) == sorted(b)
    for path in a:
        assert a[path][0] == b[path][0], path
        assert a[path][1] == b[path][1], path
        # Belt and braces: equal bytes, equal checksums.
        assert job_a.services["fs"].files[path].read_extents(
            0, a[path][0]).crc32() == job_b.services["fs"].files[
                path].read_extents(0, b[path][0]).crc32(), path


# ---------------------------------------------------------------------------
# The strategy x coalesce x delta differential matrix
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("delta", ["off", "auto"])
@pytest.mark.parametrize("coalesce", ["auto", "off"])
@pytest.mark.parametrize("strategy_name", STRATEGIES)
def test_matrix_cell_differential(strategy_name, coalesce, delta):
    runs = {}
    for tam in ("off", "require"):
        runs[tam] = run_resilient_campaign(
            make_strategy(strategy_name, tam=tam, delta=delta), NP, DATA,
            n_steps=N_STEPS, config=QUIET, gap_seconds=GAP,
            coalesce=coalesce)
    off, on = runs["off"], runs["require"]

    # Bit-identical PFS images and checksums.
    assert_same_files(off.run.job, on.run.job)

    # Same restored generation, bit-identical restored state, matching
    # the evolving workload's ground truth.
    assert off.restored_step == on.restored_step
    step = off.restored_step
    for rank in range(NP):
        step_off, fields_off = off.restored[rank]
        step_on, fields_on = on.restored[rank]
        assert step_off == step_on == step
        want = [f.payload for f in DATA.bind(rank).at_step(step).fields]
        assert [as_bytes(f) for f in fields_off] == want
        assert [as_bytes(f) for f in fields_on] == want

    # Logical figures agree (TAM changes traffic shape, not logic).
    for a, b in zip(off.run.results, on.run.results):
        assert a.roles == b.roles
        assert np.array_equal(a.ranks, b.ranks)
        assert np.array_equal(a.bytes_local, b.bytes_local)

    # TAM must have *reduced* inter-node fabric messages while keeping
    # total message count (every package still travels exactly once).
    sf = off.run.job.fabric.stats()
    st = on.run.job.fabric.stats()
    assert st["tam_msgs"] > 0
    assert st["tam_coalesce_ratio"] > 1.0
    assert st["fabric_msgs_inter"] < sf["fabric_msgs_inter"]
    assert sf["tam_msgs"] == 0 and sf["tam_packages"] == 0


def test_tam_coalesced_replay_is_exact():
    """Coalesced TAM runs are bit-identical to full TAM runs — timing,
    reports, fs stats and message accounting, not just content."""
    def data():
        rng = np.random.default_rng(7)
        return CheckpointData(
            [Field(f"f{i}", 4096,
                   rng.integers(0, 256, size=4096,
                                dtype=np.uint8).tobytes())
             for i in range(3)], header_bytes=512)

    strategy = ReducedBlockingIO(workers_per_writer=GROUP)
    runs = {}
    for coalesce in ("off", "require"):
        runs[coalesce] = run_checkpoint_steps(
            make_strategy("rbio", tam="require"), NP, data(), seed=11,
            n_steps=N_STEPS, gap_seconds=0.5, coalesce=coalesce)
    full, coal = runs["off"], runs["require"]
    assert_same_files(full.job, coal.job)
    for a, b in zip(full.results, coal.results):
        assert a.roles == b.roles
        for attr in ("t_start", "t_blocked_end", "t_complete",
                     "bytes_local", "isend_seconds"):
            assert np.array_equal(getattr(a, attr), getattr(b, attr)), attr
        assert a.fs_stats == b.fs_stats
    sa, sb = full.job.fabric.stats(), coal.job.fabric.stats()
    for key in ("messages_sent", "bytes_sent", "fabric_msgs_intra",
                "fabric_msgs_inter", "fabric_bytes_intra",
                "fabric_bytes_inter", "tam_msgs", "tam_packages"):
        assert sa[key] == sb[key], key


def test_tam_fabric_accounting_invariants():
    """TAM trades inter-node fan-in for an extra intra-node hop.

    The invariants: every package still crosses the node boundary exactly
    once (inter-node *bytes* match the flat run), the per-rank message
    count is unchanged (each member issues one send either way), the
    intra/inter split sums to the totals, and the coalesce ratio equals
    packages per combined message.
    """
    runs = {}
    for tam in ("off", "require"):
        runs[tam] = run_checkpoint_steps(
            make_strategy("rbio", tam=tam), NP, DATA, seed=11,
            n_steps=1)
    sf = runs["off"].job.fabric.stats()
    st = runs["require"].job.fabric.stats()
    assert st["fabric_bytes_inter"] == sf["fabric_bytes_inter"]
    assert st["messages_sent"] == sf["messages_sent"]
    assert st["fabric_msgs_inter"] < sf["fabric_msgs_inter"]
    assert st["fabric_bytes_intra"] > sf["fabric_bytes_intra"]
    for s in (sf, st):
        assert (s["fabric_bytes_intra"] + s["fabric_bytes_inter"]
                == s["bytes_sent"])
        assert (s["fabric_msgs_intra"] + s["fabric_msgs_inter"]
                == s["messages_sent"])
    assert st["tam_coalesce_ratio"] == st["tam_packages"] / st["tam_msgs"]


# ---------------------------------------------------------------------------
# Fault cells: degradation contract
# ---------------------------------------------------------------------------

WRITER_CRASH = FaultSchedule((
    FaultSpec(kind="rank_crash", time=1.0, rank=GROUP),
))
TRANSIENT_FS = FaultSchedule((
    FaultSpec(kind="fs_error", time=0.0, op="write", count=2,
              transient=True),
))


def test_writer_failover_under_tam_auto_falls_back_flat():
    """A rank-crash schedule forces the flat protocol; tam='auto' degrades
    silently and the campaign survives via writer failover, matching the
    flat run bit for bit."""
    runs = {}
    for tam in ("off", "auto"):
        runs[tam] = run_resilient_campaign(
            make_strategy("rbio", tam=tam), NP, DATA, n_steps=N_STEPS,
            faults=WRITER_CRASH, config=QUIET, gap_seconds=GAP)
    off, on = runs["off"], runs["auto"]
    assert_same_files(off.run.job, on.run.job)
    assert off.restored_step == on.restored_step
    assert on.restored == off.restored
    # The flat failover protocol ran: no TAM coalescing happened.
    assert on.run.job.fabric.stats()["tam_msgs"] == 0


def test_writer_failover_under_tam_require_raises():
    with pytest.raises(ValueError, match="tam='require'"):
        run_resilient_campaign(
            make_strategy("rbio", tam="require"), NP, DATA,
            n_steps=N_STEPS, faults=WRITER_CRASH, config=QUIET,
            gap_seconds=GAP)


def test_transient_fs_errors_keep_tam_engaged():
    """FS-level faults don't break group symmetry: TAM stays on and the
    retried commits still match the flat run."""
    runs = {}
    for tam in ("off", "require"):
        runs[tam] = run_resilient_campaign(
            make_strategy("rbio", tam=tam), NP, DATA, n_steps=N_STEPS,
            faults=TRANSIENT_FS, config=QUIET, gap_seconds=GAP)
    assert_same_files(runs["off"].run.job, runs["require"].run.job)
    assert runs["require"].run.job.fabric.stats()["tam_msgs"] > 0
    assert runs["require"].restored == runs["off"].restored


def test_tam_require_raises_when_nothing_coresident():
    """cores_per_node=1 gives every rank its own node: nothing to
    coalesce, 'require' refuses, 'auto' silently runs flat."""
    solo = QUIET.with_(cores_per_node=1)
    with pytest.raises(ValueError, match="cores_per_node"):
        run_checkpoint_steps(make_strategy("rbio", tam="require"),
                             NP, DATA, config=solo, n_steps=1)
    run = run_checkpoint_steps(make_strategy("rbio", tam="auto"),
                               NP, DATA, config=solo, n_steps=1)
    assert run.job.fabric.stats()["tam_msgs"] == 0


def test_coio_tam_require_raises_when_nothing_coresident():
    solo = QUIET.with_(cores_per_node=1)
    with pytest.raises(ValueError, match="cores_per_node"):
        run_checkpoint_steps(make_strategy("coio_nf1", tam="require"),
                             NP, DATA, config=solo, n_steps=1)


def test_configure_tam_validates_mode():
    with pytest.raises(ValueError):
        ReducedBlockingIO(workers_per_writer=GROUP).configure_tam("always")
    s = CollectiveIO().configure_tam("auto")
    assert s.tam == "auto"
    assert s.hints.tam == "auto"
    assert s.describe()["tam"] == "auto"


# ---------------------------------------------------------------------------
# Geometry units: NodeGroups and TamExchange
# ---------------------------------------------------------------------------

def test_node_groups_block_placement():
    g = NodeGroups(list(range(8, 16)), cores_per_node=4)
    assert g.leaders == (0, 4)          # local indices of ranks 8 and 12
    assert g.members_of[0] == (0, 1, 2, 3)
    assert g.members_of[4] == (4, 5, 6, 7)
    assert g.leader_of[6] == 4
    assert g.n_nodes == 2
    assert g.max_group == 4
    assert g.nontrivial


def test_node_groups_ragged_and_offset():
    # World ranks 6..13, cpn=4: nodes {6,7}, {8..11}, {12,13}.
    g = NodeGroups(list(range(6, 14)), cores_per_node=4)
    assert g.leaders == (0, 2, 6)
    assert g.members_of[2] == (2, 3, 4, 5)
    assert g.members_of[6] == (6, 7)
    assert g.max_group == 4


def test_node_groups_trivial_when_one_core_per_node():
    g = NodeGroups(list(range(8)), cores_per_node=1)
    assert not g.nontrivial
    assert g.max_group == 1
    assert g.n_nodes == 8


def test_pick_node_aggregators_only_leaders():
    leaders = (0, 4, 8, 12, 16, 20, 24, 28)
    assert pick_node_aggregators(leaders, 4) == (0, 8, 16, 24)
    # Clamped to the node count when cb_nodes over-asks.
    assert pick_node_aggregators(leaders, 100) == leaders
    assert pick_node_aggregators(leaders, 1) == (0,)


def test_tam_exchange_geometry():
    # 8 ranks, 100 B each, contiguous; 2 nodes of 4.
    groups = NodeGroups(list(range(8)), cores_per_node=4)
    ex = TamExchange([(i * 100, 100) for i in range(8)], groups,
                     n_aggregators=2, block_size=128)
    assert ex.aggregators == (0, 4)
    # Every leader ships to the domains its node's members touch; every
    # listed domain is guaranteed at least one non-empty piece.
    for lead, ks in ex.send_domains.items():
        for k in ks:
            dlo, dhi = ex.domains.domain(k)
            assert any(
                max(ex.raw[m][0], dlo) < min(ex.raw[m][0] + ex.raw[m][1],
                                             dhi)
                for m in groups.members_of[lead])
    # Aggregators only expect leaders that actually send.
    for k, leads in ex.expected.items():
        assert ex.aggregators[k] not in leads
        for lead in leads:
            assert k in ex.send_domains[lead]


def test_tam_exchange_zero_length_regions():
    groups = NodeGroups(list(range(8)), cores_per_node=4)
    regions = [(0, 0)] * 4 + [(i * 64, 64) for i in range(4)]
    ex = TamExchange(regions, groups, n_aggregators=2, block_size=32)
    # Node 0 contributes nothing: no send domains, no expectation of it.
    assert 0 not in ex.send_domains
    assert all(0 not in leads for leads in ex.expected.values())
