"""Tests for the Krylov exponential time integrator."""

import numpy as np
import pytest

from repro.nekcem import MaxwellSolver, box_mesh
from repro.nekcem.expint import KrylovExpIntegrator


def test_exact_on_small_linear_system():
    """u' = A u with known A: one step must match expm(dt A) u0."""
    rng = np.random.default_rng(0)
    A = rng.standard_normal((12, 12))
    A = (A - A.T) / 2  # skew: bounded dynamics

    def rhs(state, t):
        return [A @ state[0]]

    integ = KrylovExpIntegrator(rhs, krylov_dim=12)  # full space: exact
    u0 = rng.standard_normal(12)
    out = integ.step([u0.copy()], 0.0, 0.7)
    from scipy.linalg import expm
    expected = expm(0.7 * A) @ u0
    assert np.allclose(out[0], expected, atol=1e-10)


def test_happy_breakdown_exact():
    """If u0 spans an invariant subspace, small m is already exact."""
    # A with u0 an eigenvector: Krylov dim 1 suffices.
    A = np.diag([2.0, -1.0, 0.5])
    u0 = np.array([0.0, 1.0, 0.0])

    def rhs(state, t):
        return [A @ state[0]]

    integ = KrylovExpIntegrator(rhs, krylov_dim=5)
    out = integ.step([u0.copy()], 0.0, 1.0)
    assert np.allclose(out[0], [0.0, np.exp(-1.0), 0.0], atol=1e-12)


def test_zero_state_stays_zero():
    integ = KrylovExpIntegrator(lambda s, t: [s[0] * 2], krylov_dim=4)
    out = integ.step([np.zeros(5)], 0.0, 1.0)
    assert np.all(out[0] == 0)


def test_validation():
    with pytest.raises(ValueError):
        KrylovExpIntegrator(lambda s, t: s, krylov_dim=1)
    integ = KrylovExpIntegrator(lambda s, t: s, krylov_dim=4)
    with pytest.raises(ValueError):
        integ.integrate([np.ones(3)], 0.0, 0.1, -1)


def test_maxwell_cavity_beyond_cfl():
    """Exponential stepping at 5x the RK4 CFL limit stays accurate."""
    mesh = box_mesh((2, 2, 2))
    solver = MaxwellSolver(mesh, order=4, alpha=0.0)
    state = solver.cavity_mode(0.0)
    dt_cfl = solver.max_dt()
    dt = 5 * dt_cfl
    integ = KrylovExpIntegrator(solver.rhs, krylov_dim=40)
    n = 6
    state, t = integ.integrate(state, 0.0, dt, n)
    err = solver.l2_error(state, solver.cavity_mode(t))
    assert err < 5e-3  # stable and accurate where RK4 would blow up


def test_maxwell_matches_rk4_small_dt():
    """At small dt both integrators agree to tight tolerance."""
    mesh = box_mesh((2, 1, 1))
    solver = MaxwellSolver(mesh, order=3, alpha=1.0)
    dt = solver.max_dt(0.3)
    n = 5
    s_rk = solver.cavity_mode(0.0)
    s_rk, t = solver.run(s_rk, 0.0, dt, n)
    integ = KrylovExpIntegrator(solver.rhs, krylov_dim=30)
    s_exp = solver.cavity_mode(0.0)
    s_exp, t2 = integ.integrate(s_exp, 0.0, dt, n)
    assert t == pytest.approx(t2)
    diff = max(np.abs(a - b).max() for a, b in zip(s_rk, s_exp))
    assert diff < 1e-6


def test_callback_and_interface_parity():
    calls = []
    integ = KrylovExpIntegrator(lambda s, t: [-s[0]], krylov_dim=3)
    state, t = integ.integrate([np.ones(2)], 0.0, 0.25, 4,
                               callback=lambda s, t, i: calls.append(i))
    assert calls == [1, 2, 3, 4]
    assert np.allclose(state[0], np.exp(-1.0), atol=1e-8)
