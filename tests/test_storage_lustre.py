"""Tests for the Lustre-like storage variant (future-work extension)."""

import pytest

from repro.ckpt import CollectiveIO, ReducedBlockingIO
from repro.experiments import run_checkpoint_step, scaled_problem
from repro.mpi import Job
from repro.storage import GPFS, LustreFS, attach_storage
from repro.topology import intrepid

QUIET = intrepid().quiet()


def make_lustre(n_ranks=8, **kwargs):
    job = Job(n_ranks, QUIET)
    fs = attach_storage(job, fs_type="lustre", **kwargs)
    return job, fs


def test_attach_storage_selects_variant():
    job, fs = make_lustre()
    assert isinstance(fs, LustreFS)
    job2 = Job(4, QUIET)
    assert isinstance(attach_storage(job2), GPFS)
    with pytest.raises(ValueError):
        attach_storage(Job(4, QUIET), fs_type="zfs")


def test_stripe_count_validation():
    with pytest.raises(ValueError):
        make_lustre(stripe_count=0)
    with pytest.raises(ValueError):
        make_lustre(stripe_count=10_000)


def test_file_touches_only_stripe_count_servers():
    job, fs = make_lustre(stripe_count=4)

    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 0, 64 * QUIET.fs_block_size)
        yield from ctx.fs.close(h)

    job.spawn(main, ranks=[0])
    job.run()
    fobj = fs.file("/f")
    servers = {fs.server_of_block(fobj, b) for b in range(64)}
    assert len(servers) == 4


def test_different_files_use_different_osts():
    job, fs = make_lustre(stripe_count=2)

    def main(ctx):
        h = yield from ctx.fs.create(f"/f{ctx.rank}")
        yield from ctx.fs.write(h, 0, QUIET.fs_block_size)
        yield from ctx.fs.close(h)

    job.spawn(main, ranks=[0, 1, 2, 3])
    job.run()
    osts = [
        fs.server_of_block(fs.file(f"/f{r}"), 0) for r in range(4)
    ]
    assert len(set(osts)) == 4  # round-robin OST allocation


def test_lustre_round_trip_data_integrity():
    data = bytes(range(256)) * 8
    job, fs = make_lustre()

    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 0, len(data), payload=data)
        got = yield from ctx.fs.read(h, 0, len(data))
        yield from ctx.fs.close(h)
        return got

    job.spawn(main, ranks=[0])
    assert job.run()[0] == data


def test_lustre_creates_constant_service():
    """No directory-growth storm: N creates cost ~N * mds_service."""
    n = 16
    job, fs = make_lustre(n_ranks=n, mds_service=1e-3)

    def main(ctx):
        h = yield from ctx.fs.create(f"/dir/f{ctx.rank}")
        yield from ctx.fs.close(h)
        return ctx.engine.now

    job.spawn(main)
    results = job.run()
    assert max(results.values()) < n * 1e-3 * 2 + QUIET.meta_close_service * 2


def test_lustre_no_rmw_for_unaligned_shared_writes():
    bs = QUIET.fs_block_size
    job, fs = make_lustre(n_ranks=4)

    def main(ctx):
        if ctx.rank == 0:
            h = yield from ctx.fs.create("/shared")
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.barrier()
            h = yield from ctx.fs.open("/shared", write=True)
        # Deliberately unaligned, adjacent regions.
        yield from ctx.fs.write(h, ctx.rank * (bs + 100), bs + 100)
        yield from ctx.fs.close(h)

    job.spawn(main)
    job.run()
    assert fs.rmw_reads == 0  # extent locks: no whole-block RMW


def test_shared_file_ceiling_on_lustre():
    """A single shared file is limited to stripe_count OSTs: coIO nf=1 on
    Lustre underperforms the same run on GPFS (Dickens & Logan)."""
    n = 256
    data = scaled_problem(n).data()
    strategy = CollectiveIO(ranks_per_file=None)
    gpfs_bw = run_checkpoint_step(strategy, n, data, config=QUIET).result.write_bandwidth
    strategy = CollectiveIO(ranks_per_file=None)
    lustre_bw = run_checkpoint_step(strategy, n, data, config=QUIET,
                                    fs_type="lustre").result.write_bandwidth
    assert lustre_bw < gpfs_bw


def test_rbio_runs_unchanged_on_lustre():
    """The strategies are storage-agnostic: rbIO works on the variant."""
    n = 64
    data = scaled_problem(n).data()
    run = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=8), n,
                              data, config=QUIET, fs_type="lustre")
    res = run.result
    assert res.write_bandwidth > 0
    assert len(res.writer_ranks) == 8
