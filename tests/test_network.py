"""Unit tests for the torus fabric transport model."""

import pytest

from repro.sim import Engine
from repro.network import Fabric
from repro.topology import intrepid


def make_fabric(n_ranks=16, **overrides):
    cfg = intrepid().quiet().with_(**overrides) if overrides else intrepid().quiet()
    eng = Engine()
    return eng, Fabric(eng, cfg, n_ranks)


def test_transfer_intra_node_uses_memory_bandwidth():
    eng, fab = make_fabric()
    cfg = fab.config
    done = []

    def proc():
        # Ranks 0 and 1 share node 0 (4 cores per node).
        yield fab.transfer(0, 1, 1 << 20)
        done.append(eng.now)

    eng.process(proc())
    eng.run()
    expected = cfg.mpi_overhead + (1 << 20) / cfg.memory_bandwidth
    assert done[0] == pytest.approx(expected, rel=1e-9)


def test_transfer_cross_node_includes_hop_latency():
    eng, fab = make_fabric(n_ranks=64)
    cfg = fab.config
    done = []

    def proc():
        yield fab.transfer(0, 63, 0)  # zero bytes: pure latency
        done.append(eng.now)

    eng.process(proc())
    eng.run()
    src = fab.psets.node_of_rank(0)
    dst = fab.psets.node_of_rank(63)
    hops = fab.topology.hops(src, dst)
    assert hops > 0
    assert done[0] == pytest.approx(cfg.mpi_overhead + hops * cfg.torus_hop_latency)


def test_transfer_bandwidth_term():
    eng, fab = make_fabric(n_ranks=64)
    cfg = fab.config
    node_bw = cfg.torus_link_bandwidth * cfg.torus_links_per_node
    nbytes = 10 << 20
    done = []

    def proc():
        yield fab.transfer(0, 32, nbytes)
        done.append(eng.now)

    eng.process(proc())
    eng.run()
    assert done[0] >= nbytes / node_bw


def test_ejection_incast_serializes():
    """Many senders to one destination node share its ejection pipe."""
    eng, fab = make_fabric(n_ranks=256)
    cfg = fab.config
    node_bw = cfg.torus_link_bandwidth * cfg.torus_links_per_node
    nbytes = 4 << 20
    n_senders = 16
    finish = []

    def sender(src):
        yield fab.transfer(src, 0, nbytes)
        finish.append(eng.now)

    # Senders on distinct nodes, all to rank 0's node.
    for i in range(1, n_senders + 1):
        eng.process(sender(i * 4))
    eng.run()
    serial = n_senders * nbytes / node_bw
    assert max(finish) >= serial * 0.99
    # And clearly more than a single transfer would take.
    assert max(finish) > 2 * (nbytes / node_bw)


def test_distinct_destinations_proceed_in_parallel():
    eng, fab = make_fabric(n_ranks=256)
    cfg = fab.config
    node_bw = cfg.torus_link_bandwidth * cfg.torus_links_per_node
    nbytes = 4 << 20
    finish = []

    def sender(src, dst):
        yield fab.transfer(src, dst, nbytes)
        finish.append(eng.now)

    # Four disjoint (src, dst) node pairs.
    eng.process(sender(4, 128))
    eng.process(sender(8, 132))
    eng.process(sender(12, 136))
    eng.process(sender(16, 140))
    eng.run()
    one = nbytes / node_bw
    assert max(finish) < 1.5 * one  # no serialization across disjoint pairs


def test_latency_between_zero_distance():
    eng, fab = make_fabric()
    assert fab.latency_between(0, 1) == fab.config.mpi_overhead  # same node


def test_negative_size_rejected():
    eng, fab = make_fabric()
    with pytest.raises(ValueError):
        fab.transfer(0, 1, -1)
    with pytest.raises(ValueError):
        fab.local_copy_time(-1)


def test_stats_accumulate():
    eng, fab = make_fabric(n_ranks=64)

    def proc():
        yield fab.transfer(0, 32, 100)
        yield fab.transfer(0, 33, 200)

    eng.process(proc())
    eng.run()
    s = fab.stats()
    assert s["messages_sent"] == 2
    assert s["bytes_sent"] == 300
    assert s["nodes_touched"] >= 2


def test_pipes_created_lazily():
    eng, fab = make_fabric(n_ranks=1024)
    assert fab.stats()["nodes_touched"] == 0

    def proc():
        yield fab.transfer(0, 512, 10)

    eng.process(proc())
    eng.run()
    assert fab.stats()["nodes_touched"] == 2
