"""Unit tests for Resource, Store, and Pipe primitives."""

import pytest

from repro.sim import Engine, Pipe, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_serializes_exclusive_access():
    eng = Engine()
    res = Resource(eng, capacity=1)
    log = []

    def user(name, hold):
        yield res.request()
        log.append(("start", name, eng.now))
        yield eng.timeout(hold)
        log.append(("end", name, eng.now))
        res.release()

    eng.process(user("a", 2.0))
    eng.process(user("b", 1.0))
    eng.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 3.0),
    ]


def test_resource_capacity_two_overlaps():
    eng = Engine()
    res = Resource(eng, capacity=2)
    starts = []

    def user(i):
        yield res.request()
        starts.append((i, eng.now))
        yield eng.timeout(1.0)
        res.release()

    for i in range(4):
        eng.process(user(i))
    eng.run()
    # Two start immediately, two after the first pair releases.
    assert [t for _, t in starts] == [0.0, 0.0, 1.0, 1.0]


def test_resource_fifo_granting():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def user(i, arrive):
        yield eng.timeout(arrive)
        yield res.request()
        order.append(i)
        yield eng.timeout(10.0)
        res.release()

    for i in range(5):
        eng.process(user(i, arrive=float(i)))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_release_without_request_raises():
    eng = Engine()
    res = Resource(eng)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_queue_length_tracks_waiters():
    eng = Engine()
    res = Resource(eng, capacity=1)
    observed = []

    def holder():
        yield res.request()
        yield eng.timeout(5.0)
        observed.append(res.queue_length)
        res.release()

    def waiter():
        yield eng.timeout(1.0)
        yield res.request()
        res.release()

    eng.process(holder())
    eng.process(waiter())
    eng.run()
    assert observed == [1]


def test_resource_invalid_capacity():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_resource_acquire_helper():
    eng = Engine()
    res = Resource(eng, capacity=1)
    log = []

    def user(name):
        yield from res.acquire()
        log.append(name)
        yield eng.timeout(1.0)
        res.release()

    eng.process(user("x"))
    eng.process(user("y"))
    eng.run()
    assert log == ["x", "y"]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_without_filter():
    eng = Engine()
    store = Store(eng)
    got = []

    def producer():
        for i in range(3):
            yield eng.timeout(1.0)
            store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((eng.now, item))

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_before_put_blocks():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        item = yield store.get()
        got.append((eng.now, item))

    def producer():
        yield eng.timeout(5.0)
        store.put("late")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == [(5.0, "late")]


def test_store_filtered_get_skips_nonmatching():
    eng = Engine()
    store = Store(eng)
    store.put(("tagA", 1))
    store.put(("tagB", 2))
    store.put(("tagA", 3))
    got = []

    def consumer():
        item = yield store.get(lambda m: m[0] == "tagB")
        got.append(item)
        item = yield store.get(lambda m: m[0] == "tagA")
        got.append(item)

    eng.process(consumer())
    eng.run()
    assert got == [("tagB", 2), ("tagA", 1)]
    assert store.peek_all() == [("tagA", 3)]


def test_store_pending_filtered_getter_woken_by_matching_put():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        item = yield store.get(lambda m: m == "wanted")
        got.append((eng.now, item))

    def producer():
        yield eng.timeout(1.0)
        store.put("other")
        yield eng.timeout(1.0)
        store.put("wanted")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == [(2.0, "wanted")]
    assert store.peek_all() == ["other"]


def test_store_multiple_getters_served_in_order():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer(i):
        item = yield store.get()
        got.append((i, item))

    def producer():
        yield eng.timeout(1.0)
        store.put("first")
        store.put("second")

    eng.process(consumer(0))
    eng.process(consumer(1))
    eng.process(producer())
    eng.run()
    assert got == [(0, "first"), (1, "second")]


def test_store_len():
    eng = Engine()
    store = Store(eng)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ---------------------------------------------------------------------------
# Pipe
# ---------------------------------------------------------------------------

def test_pipe_single_transfer_time():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=100.0, latency=0.5)
    done = []

    def proc():
        yield pipe.transfer(200.0)  # 2s service + 0.5s latency
        done.append(eng.now)

    eng.process(proc())
    eng.run()
    assert done == [2.5]


def test_pipe_serializes_concurrent_transfers():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=100.0)
    done = []

    def proc(name):
        yield pipe.transfer(100.0)  # 1s each
        done.append((name, eng.now))

    eng.process(proc("a"))
    eng.process(proc("b"))
    eng.process(proc("c"))
    eng.run()
    assert done == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_pipe_idle_gap_resets_busy_window():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=100.0)
    done = []

    def proc():
        yield pipe.transfer(100.0)
        done.append(eng.now)
        yield eng.timeout(5.0)  # pipe idle
        yield pipe.transfer(100.0)
        done.append(eng.now)

    eng.process(proc())
    eng.run()
    assert done == [1.0, 7.0]


def test_pipe_extra_delay_occupies_pipe():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=100.0)
    done = []

    def first():
        yield pipe.transfer(100.0, extra_delay=2.0)  # occupies until t=3
        done.append(("first", eng.now))

    def second():
        yield pipe.transfer(100.0)
        done.append(("second", eng.now))

    eng.process(first())
    eng.process(second())
    eng.run()
    assert done == [("first", 3.0), ("second", 4.0)]


def test_pipe_latency_does_not_occupy_pipe():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=100.0, latency=10.0)
    done = []

    def proc(name):
        yield pipe.transfer(100.0)
        done.append((name, eng.now))

    eng.process(proc("a"))
    eng.process(proc("b"))
    eng.run()
    # Service times back-to-back (1s each), both plus 10s latency.
    assert done == [("a", 11.0), ("b", 12.0)]


def test_pipe_zero_byte_transfer_costs_latency_only():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=100.0, latency=0.25)
    done = []

    def proc():
        yield pipe.transfer(0.0)
        done.append(eng.now)

    eng.process(proc())
    eng.run()
    assert done == [0.25]


def test_pipe_rejects_bad_parameters():
    eng = Engine()
    with pytest.raises(ValueError):
        Pipe(eng, bandwidth=0.0)
    with pytest.raises(ValueError):
        Pipe(eng, bandwidth=1.0, latency=-1.0)
    pipe = Pipe(eng, bandwidth=1.0)
    with pytest.raises(ValueError):
        pipe.transfer(-5.0)


def test_pipe_would_complete_at_has_no_side_effects():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=100.0, latency=1.0)
    t = pipe.would_complete_at(100.0)
    assert t == 2.0
    assert pipe.busy_until == 0.0  # unchanged


def test_pipe_backlog_seconds():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=100.0)
    assert pipe.backlog_seconds == 0.0
    pipe.transfer(300.0)
    assert pipe.backlog_seconds == pytest.approx(3.0)


def test_pipe_bytes_moved_accumulates():
    eng = Engine()
    pipe = Pipe(eng, bandwidth=10.0)
    pipe.transfer(100.0)
    pipe.transfer(50.0)
    assert pipe.bytes_moved == 150


# ---------------------------------------------------------------------------
# Bulk grant / bulk put (batched event paths)
# ---------------------------------------------------------------------------

def test_release_many_grants_waiters_in_fifo_order():
    eng = Engine()
    res = Resource(eng, capacity=4)
    order = []

    def holder():
        # Take all four slots before yielding so the waiters all queue.
        reqs = [res.request() for _ in range(4)]
        yield reqs[-1]
        yield eng.timeout(1.0)
        res.release_many(4)  # return all four slots at once

    def waiter(i):
        yield res.request()
        order.append(i)

    eng.process(holder())
    for i in range(6):
        eng.process(waiter(i))
    eng.run()
    # The four freed slots go to the four oldest waiters, in queue order;
    # waiters 4 and 5 stay queued (nobody releases again).
    assert order == [0, 1, 2, 3]
    assert res.in_use == 4
    assert res.queue_length == 2


def test_release_many_partial_queue_frees_slots():
    eng = Engine()
    res = Resource(eng, capacity=4)
    for _ in range(4):
        res.request()
    w = res.request()  # one waiter
    res.release_many(3)
    assert w.triggered  # waiter granted
    assert res.in_use == 2  # 4 - (3 released - 1 regranted)
    assert res.queue_length == 0


def test_release_many_validation():
    eng = Engine()
    res = Resource(eng, capacity=2)
    res.request()
    with pytest.raises(ValueError):
        res.release_many(-1)
    with pytest.raises(RuntimeError):
        res.release_many(2)  # only one slot in use
    res.release_many(0)  # no-op
    assert res.in_use == 1


def test_release_many_matches_sequential_release():
    def run(bulk):
        eng = Engine()
        res = Resource(eng, capacity=3)
        order = []

        def holder():
            reqs = [res.request() for _ in range(3)]
            yield reqs[-1]
            yield eng.timeout(1.0)
            if bulk:
                res.release_many(3)
            else:
                for _ in range(3):
                    res.release()

        def waiter(i):
            yield res.request()
            order.append((eng.now, i))

        eng.process(holder())
        for i in range(5):
            eng.process(waiter(i))
        eng.run()
        return order

    assert run(bulk=True) == run(bulk=False)


def test_store_put_many_fifo_without_getters():
    eng = Engine()
    store = Store(eng)
    store.put("a")
    store.put_many(["b", "c", "d"])
    got = []

    def consumer():
        for _ in range(4):
            v = yield store.get()
            got.append(v)

    eng.process(consumer())
    eng.run()
    assert got == ["a", "b", "c", "d"]


def test_store_put_many_wakes_pending_getters_in_order():
    eng = Engine()
    store = Store(eng)
    got = []

    def getter(i, flt=None):
        v = yield store.get(flt)
        got.append((i, v))

    eng.process(getter(0))
    eng.process(getter(1, flt=lambda x: x > 10))
    eng.process(getter(2))

    def producer():
        yield eng.timeout(1.0)
        store.put_many([1, 2, 99])

    eng.process(producer())
    eng.run()
    # Getter 0 takes 1; getter 1's filter skips 2, so getter 2 takes it;
    # 99 matches getter 1's filter.
    assert sorted(got) == [(0, 1), (1, 99), (2, 2)]
    assert len(store) == 0
