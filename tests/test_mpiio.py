"""Tests for the MPI-IO layer: geometry, collective writes, data integrity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Job
from repro.mpiio import FileDomains, Hints, MPIFile, RegionMap, pick_aggregators
from repro.storage import attach_storage
from repro.topology import intrepid

QUIET = intrepid().quiet()


def run_job(main, n_ranks, config=QUIET):
    job = Job(n_ranks, config)
    fs = attach_storage(job)
    job.spawn(main)
    results = job.run()
    return job, fs, results


# ---------------------------------------------------------------------------
# Hints
# ---------------------------------------------------------------------------

def test_hints_defaults_and_validation():
    h = Hints()
    assert h.ranks_per_aggregator == 32
    assert h.n_aggregators(64) == 2
    assert h.n_aggregators(16) == 1  # never zero
    with pytest.raises(ValueError):
        Hints(ranks_per_aggregator=0)
    with pytest.raises(ValueError):
        Hints(cb_buffer_size=0)


def test_hints_with_override():
    h = Hints().with_(ranks_per_aggregator=64)
    assert h.ranks_per_aggregator == 64
    assert h.align_file_domains is True


def test_hints_cb_nodes_precedence():
    # An explicit cb_nodes count wins over the ranks_per_aggregator ratio.
    h = Hints(ranks_per_aggregator=32, cb_nodes=7)
    assert h.n_aggregators(1024) == 7
    # Clamped to the communicator size, never zero.
    assert h.n_aggregators(4) == 4
    assert Hints(cb_nodes=1).n_aggregators(4096) == 1
    # Without cb_nodes the ratio rule is unchanged.
    assert Hints(ranks_per_aggregator=32).n_aggregators(1024) == 32


def test_hints_cb_nodes_validation():
    with pytest.raises(ValueError):
        Hints(cb_nodes=0)
    with pytest.raises(ValueError):
        Hints(tam="always")


def test_hints_from_info_parses_romio_keys():
    h = Hints.from_info({
        "cb_nodes": "16",
        "cb_buffer_size": "8388608",
        "bgp_nodes_pset": "64",
        "tam": "auto",
        "align_file_domains": "false",
    })
    assert h.cb_nodes == 16
    assert h.cb_buffer_size == 8388608
    assert h.ranks_per_aggregator == 64
    assert h.tam == "auto"
    assert h.align_file_domains is False


def test_hints_from_info_layers_on_base():
    base = Hints(ranks_per_aggregator=8, tam="require")
    h = Hints.from_info({"cb_nodes": 3}, base=base)
    assert h.ranks_per_aggregator == 8   # untouched base field
    assert h.tam == "require"
    assert h.cb_nodes == 3


@pytest.mark.parametrize("info", [
    {"cb_nodes": "zero"},
    {"cb_nodes": 0},
    {"cb_buffer_size": -1},
    {"bgp_nodes_pset": "many"},
    {"tam": "maybe"},
    {"align_file_domains": "sometimes"},
])
def test_hints_from_info_invalid_values_name_the_key(info):
    (key,) = info
    with pytest.raises(ValueError, match=key):
        Hints.from_info(info)


def test_hints_from_info_rejects_unknown_keys():
    with pytest.raises(ValueError, match="romio_no_indep_rw"):
        Hints.from_info({"romio_no_indep_rw": "true"})


# ---------------------------------------------------------------------------
# RegionMap
# ---------------------------------------------------------------------------

def test_regionmap_global_range():
    rm = RegionMap([(100, 50), (0, 100), (150, 10)])
    assert rm.lo == 0
    assert rm.hi == 160
    assert rm.total_bytes == 160


def test_regionmap_senders_overlapping():
    # Ranks 0..3 write 100 bytes each, contiguous.
    rm = RegionMap([(i * 100, 100) for i in range(4)])
    senders = rm.senders_overlapping(150, 250)
    assert senders == [(1, 150, 200), (2, 200, 250)]


def test_regionmap_senders_exact_boundaries():
    rm = RegionMap([(0, 100), (100, 100)])
    assert rm.senders_overlapping(0, 100) == [(0, 0, 100)]
    assert rm.senders_overlapping(100, 200) == [(1, 100, 200)]


def test_regionmap_empty_range():
    rm = RegionMap([(0, 100)])
    assert rm.senders_overlapping(50, 50) == []


def test_regionmap_zero_length_regions_ignored_in_range():
    rm = RegionMap([(0, 0), (10, 5)])
    assert rm.lo == 10
    assert rm.hi == 15


def test_regionmap_zero_length_does_not_hide_overlap():
    """A zero-length region at the same offset must not end the scan early."""
    rm = RegionMap([(0, 400), (0, 0), (0, 0), (0, 0)])
    senders = rm.senders_overlapping(100, 200)
    assert senders == [(0, 100, 200)]


def test_regionmap_unsorted_input():
    rm = RegionMap([(200, 100), (0, 100), (100, 100)])
    senders = rm.senders_overlapping(0, 300)
    assert [s[0] for s in senders] == [1, 2, 0]


# ---------------------------------------------------------------------------
# FileDomains
# ---------------------------------------------------------------------------

def test_domains_cover_range_exactly():
    fd = FileDomains(0, 1000, 4, block_size=1, align=False)
    covered = []
    for k in range(4):
        lo, hi = fd.domain(k)
        covered.append((lo, hi))
    assert covered[0][0] == 0
    assert covered[-1][1] == 1000
    for (a, b), (c, d) in zip(covered, covered[1:]):
        assert b == c


def test_domains_aligned_to_absolute_blocks():
    bs = 4096
    # Range starting mid-block (e.g. after a file header): interior
    # boundaries must still land on absolute block multiples.
    fd = FileDomains(100, 10 * bs + 17, 3, block_size=bs, align=True)
    for k in range(1, 3):
        lo_k, _ = fd.domain(k)
        assert lo_k % bs == 0


def test_domains_unaligned_mid_block_boundaries():
    bs = 4096
    fd = FileDomains(0, 3 * bs, 2, block_size=bs, align=False)
    lo1, _ = fd.domain(1)
    assert lo1 % bs != 0  # classic even split lands mid-block


def test_domains_more_domains_than_bytes():
    fd = FileDomains(0, 2, 8, block_size=1, align=False)
    spans = [fd.domain(k) for k in range(8)]
    assert spans[0] == (0, 1)
    assert spans[1] == (1, 2)
    assert all(lo == hi for lo, hi in spans[2:])  # empty tail domains


def test_domains_overlapping_query():
    fd = FileDomains(0, 400, 4, block_size=1, align=False)
    assert list(fd.domains_overlapping(0, 100)) == [0]
    assert list(fd.domains_overlapping(50, 250)) == [0, 1, 2]
    assert list(fd.domains_overlapping(399, 400)) == [3]
    assert list(fd.domains_overlapping(400, 500)) == []


def test_domains_validation():
    with pytest.raises(ValueError):
        FileDomains(10, 0, 2, 1)
    with pytest.raises(ValueError):
        FileDomains(0, 10, 0, 1)
    fd = FileDomains(0, 10, 2, 1)
    with pytest.raises(ValueError):
        fd.domain(2)


@given(
    st.integers(min_value=1, max_value=1 << 20),
    st.integers(min_value=1, max_value=64),
    st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_domains_partition_property(span, n_domains, align):
    """Domains tile [lo, hi) without gaps or overlaps for any parameters."""
    bs = 4096
    fd = FileDomains(0, span, n_domains, block_size=bs, align=align)
    pos = 0
    for k in range(n_domains):
        lo, hi = fd.domain(k)
        if lo == hi:
            continue
        assert lo == pos
        pos = hi
    assert pos == span


# ---------------------------------------------------------------------------
# pick_aggregators
# ---------------------------------------------------------------------------

def test_pick_aggregators_spread():
    assert pick_aggregators(64, 2) == [0, 32]
    assert pick_aggregators(64, 1) == [0]
    assert pick_aggregators(8, 8) == list(range(8))


def test_pick_aggregators_validation():
    with pytest.raises(ValueError):
        pick_aggregators(4, 5)
    with pytest.raises(ValueError):
        pick_aggregators(4, 0)


# ---------------------------------------------------------------------------
# MPIFile: independent path
# ---------------------------------------------------------------------------

def test_independent_open_write_read_roundtrip():
    data = np.arange(1000, dtype=np.float64).tobytes()

    def main(ctx):
        if ctx.rank != 0:
            return None
        f = yield from MPIFile.open_independent(ctx, "/out/self.dat")
        yield from f.write_at(0, len(data), payload=data)
        got = yield from f.read_at(0, len(data))
        yield from f.close()
        return got

    _, _, results = run_job(main, 4)
    assert results[0] == data


def test_independent_file_is_sole_owner():
    def main(ctx):
        f = yield from MPIFile.open_independent(ctx, f"/out/w{ctx.rank}.dat")
        yield from f.write_at(0, 1 << 20)
        yield from f.close()

    _, fs, _ = run_job(main, 4)
    assert fs.revocations == 0
    assert fs.storms == 0
    assert fs.stats()["files"] == 4


def test_write_on_closed_file_raises():
    def main(ctx):
        if ctx.rank != 0:
            return None
        f = yield from MPIFile.open_independent(ctx, "/f")
        yield from f.close()
        try:
            yield from f.write_at(0, 10)
        except RuntimeError:
            return "raised"
        return "no"

    _, _, results = run_job(main, 4)
    assert results[0] == "raised"


# ---------------------------------------------------------------------------
# MPIFile: collective path
# ---------------------------------------------------------------------------

def test_collective_write_data_integrity():
    """Each rank writes a distinct slice; file contents must be exact."""
    n = 8
    per = 1000

    def main(ctx):
        f = yield from MPIFile.open(ctx, ctx.comm, "/out/shared.dat",
                                    hints=Hints(ranks_per_aggregator=4))
        payload = bytes([ctx.rank]) * per
        yield from f.write_at_all(ctx.rank * per, per, payload=payload)
        yield from f.close()

    _, fs, _ = run_job(main, n)
    fobj = fs.file("/out/shared.dat")
    assert fobj.size == n * per
    data = fobj.read_extents(0, n * per)
    for r in range(n):
        assert data[r * per : (r + 1) * per] == bytes([r]) * per


def test_collective_write_single_aggregator():
    n = 8

    def main(ctx):
        f = yield from MPIFile.open(ctx, ctx.comm, "/s",
                                    hints=Hints(ranks_per_aggregator=8))
        yield from f.write_at_all(ctx.rank * 100, 100,
                                  payload=bytes([ctx.rank]) * 100)
        yield from f.close()

    _, fs, _ = run_job(main, n)
    data = fs.file("/s").read_extents(0, 800)
    assert all(data[i * 100] == i for i in range(n))


def test_collective_write_all_ranks_return_together():
    n = 8

    def main(ctx):
        f = yield from MPIFile.open(ctx, ctx.comm, "/s")
        yield from f.write_at_all(ctx.rank * 4096, 4096)
        t = ctx.engine.now
        yield from f.close()
        return t

    _, _, results = run_job(main, n)
    assert len(set(results.values())) == 1  # collective: synchronized exit


def test_split_collective_overlaps_other_work():
    """Between begin and end, ranks can do unrelated work."""
    n = 4
    marks = {}

    def main(ctx):
        f = yield from MPIFile.open(ctx, ctx.comm, "/s")
        req = f.write_at_all_begin(ctx.rank * (1 << 20), 1 << 20)
        # Simulated computation while I/O is in flight.
        yield ctx.engine.timeout(0.001)
        marks[ctx.rank] = ctx.engine.now
        yield from f.write_at_all_end(req)
        yield from f.close()
        return ctx.engine.now

    _, _, results = run_job(main, n)
    for r in range(n):
        assert marks[r] <= results[r]


def test_collective_write_empty_regions_everywhere():
    def main(ctx):
        f = yield from MPIFile.open(ctx, ctx.comm, "/s")
        yield from f.write_at_all(0, 0)
        yield from f.close()
        return "ok"

    _, fs, results = run_job(main, 4)
    assert all(v == "ok" for v in results.values())
    assert fs.file("/s").size == 0


def test_collective_write_region_spanning_domains():
    """One rank's region can span several aggregator domains."""
    n = 4
    per = 64 * 1024

    def main(ctx):
        hints = Hints(ranks_per_aggregator=1, align_file_domains=False)
        f = yield from MPIFile.open(ctx, ctx.comm, "/s", hints=hints)
        # Rank 0 writes everything; others write nothing.
        if ctx.rank == 0:
            payload = bytes(range(256)) * (n * per // 256)
            yield from f.write_at_all(0, n * per, payload=payload)
        else:
            yield from f.write_at_all(0, 0)
        yield from f.close()

    _, fs, _ = run_job(main, n)
    data = fs.file("/s").read_extents(0, n * per)
    assert data == bytes(range(256)) * (n * per // 256)


def test_collective_on_subcommunicator():
    """Split-collective groups write independent files (the coIO 64:1 shape)."""
    n = 8
    group = 4

    def main(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank // group)
        f = yield from MPIFile.open(ctx, sub, f"/out/g{ctx.rank // group}.dat",
                                    hints=Hints(ranks_per_aggregator=2))
        payload = bytes([ctx.rank]) * 100
        yield from f.write_at_all(sub.rank * 100, 100, payload=payload)
        yield from f.close()

    _, fs, _ = run_job(main, n)
    assert fs.stats()["files"] == 2
    g0 = fs.file("/out/g0.dat").read_extents(0, 400)
    g1 = fs.file("/out/g1.dat").read_extents(0, 400)
    assert [g0[i * 100] for i in range(4)] == [0, 1, 2, 3]
    assert [g1[i * 100] for i in range(4)] == [4, 5, 6, 7]


def test_collective_write_on_independent_file_raises():
    def main(ctx):
        if ctx.rank != 0:
            return None
        f = yield from MPIFile.open_independent(ctx, "/f")
        try:
            f.write_at_all_begin(0, 10)
        except RuntimeError:
            return "raised"
        return "no"

    _, _, results = run_job(main, 4)
    assert results[0] == "raised"


def test_aggregator_writes_use_multiple_bursts():
    """Domains larger than cb_buffer_size are committed in several writes."""
    n = 4
    cb = 1 << 20

    def main(ctx):
        hints = Hints(ranks_per_aggregator=4, cb_buffer_size=cb)
        f = yield from MPIFile.open(ctx, ctx.comm, "/s", hints=hints)
        yield from f.write_at_all(ctx.rank * cb, cb)
        yield from f.close()

    _, fs, _ = run_job(main, n)
    # One aggregator, 4 MB domain, 1 MB bursts -> 4 write ops.
    assert fs.writes == 4


def test_successive_collective_writes_per_field_pattern():
    """The NekCEM pattern: one collective write per field, same file."""
    n = 4
    fields = 3
    per = 4096

    def main(ctx):
        f = yield from MPIFile.open(ctx, ctx.comm, "/s",
                                    hints=Hints(ranks_per_aggregator=2))
        for fld in range(fields):
            base = fld * n * per
            payload = bytes([fld * 16 + ctx.rank]) * per
            yield from f.write_at_all(base + ctx.rank * per, per, payload=payload)
        yield from f.close()

    _, fs, _ = run_job(main, n)
    data = fs.file("/s").read_extents(0, fields * n * per)
    for fld in range(fields):
        for r in range(n):
            off = fld * n * per + r * per
            assert data[off] == fld * 16 + r
