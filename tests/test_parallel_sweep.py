"""Tests for the parallel cached sweep runner (repro.experiments.parallel)."""

import os
import pickle

import pytest

from repro.experiments import (
    DiskCache,
    cache_key,
    clear_cache,
    default_workers,
    get_run,
    point_seed,
    prefetch_runs,
    run_sweep,
)
from repro.experiments.parallel import sweep_cache
from repro.topology import intrepid


# ---------------------------------------------------------------------------
# Keys and seeds
# ---------------------------------------------------------------------------

def test_cache_key_stable_and_distinct():
    a = cache_key("get_run", "rbio_ng", 1024, None, intrepid())
    b = cache_key("get_run", "rbio_ng", 1024, None, intrepid())
    c = cache_key("get_run", "rbio_ng", 2048, None, intrepid())
    assert a == b
    assert a != c
    assert len(a) == 64  # sha256 hex


def test_cache_key_sensitive_to_config():
    assert cache_key("x", intrepid()) != cache_key("x", intrepid().quiet())


def test_point_seed_deterministic():
    assert point_seed(7, "rbio_ng", 1024) == point_seed(7, "rbio_ng", 1024)
    assert point_seed(7, "rbio_ng", 1024) != point_seed(7, "rbio_ng", 2048)
    assert point_seed(7, "a") != point_seed(8, "a")
    assert point_seed(None, "a") is None


# ---------------------------------------------------------------------------
# DiskCache
# ---------------------------------------------------------------------------

def test_disk_cache_roundtrip(tmp_path):
    cache = DiskCache(tmp_path / "c")
    assert cache.get("k") is None
    cache.put("k", {"x": [1, 2, 3]})
    assert cache.get("k") == {"x": [1, 2, 3]}


def test_disk_cache_corrupt_entry_reads_as_miss(tmp_path):
    cache = DiskCache(tmp_path / "c")
    cache.put("k", 42)
    (cache.root / "k.pkl").write_bytes(b"not a pickle")
    assert cache.get("k") is None
    # The corrupt entry was evicted; a fresh put works again.
    cache.put("k", 43)
    assert cache.get("k") == 43


def test_disk_cache_atomic_write_leaves_no_temp_files(tmp_path):
    cache = DiskCache(tmp_path / "c")
    cache.put("k", list(range(100)))
    assert [p.name for p in cache.root.iterdir()] == ["k.pkl"]


# ---------------------------------------------------------------------------
# Bounded cache: LRU eviction + concurrent multi-process writers
# ---------------------------------------------------------------------------

def test_parse_size():
    from repro.experiments.parallel import parse_size

    assert parse_size("1000") == 1000
    assert parse_size("4K") == 4096
    assert parse_size("2M") == 2 * 1024 ** 2
    assert parse_size("1G") == 1024 ** 3
    assert parse_size("1.5K") == 1536
    with pytest.raises(ValueError):
        parse_size("lots")
    with pytest.raises(ValueError):
        parse_size("0")


def test_sweep_cache_max_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "c"))
    monkeypatch.setenv("REPRO_BENCH_CACHE_MAX", "64K")
    cache = sweep_cache()
    assert cache.max_bytes == 64 * 1024
    monkeypatch.delenv("REPRO_BENCH_CACHE_MAX")
    assert sweep_cache().max_bytes is None


def test_disk_cache_lru_eviction_bounds_size(tmp_path):
    import time

    cache = DiskCache(tmp_path / "c", max_bytes=2048)
    for i in range(12):
        cache.put(f"k{i:02d}", b"x" * 400)
        time.sleep(0.01)  # distinct mtimes so LRU order is unambiguous
    assert cache.size_bytes() <= 2048
    # Newest entries survive, oldest are gone.
    assert cache.get("k11") is not None
    assert cache.get("k00") is None
    # No lock or temp litter after a quiescent put sequence.
    leftover = {p.suffix for p in cache.root.iterdir()}
    assert leftover == {".pkl"}


def test_disk_cache_lru_reads_protect_entries(tmp_path):
    import time

    cache = DiskCache(tmp_path / "c", max_bytes=1300)
    cache.put("hot", b"x" * 400)
    for i in range(3):
        time.sleep(0.01)
        cache.put(f"cold{i}", b"x" * 400)
        time.sleep(0.01)
        assert cache.get("hot") is not None  # touch refreshes recency
    # The repeatedly-read entry outlived colder, younger ones.
    assert cache.get("hot") is not None
    assert cache.get("cold0") is None


def test_disk_cache_oversized_single_entry_still_readable(tmp_path):
    cache = DiskCache(tmp_path / "c", max_bytes=64)
    cache.put("big", b"x" * 1000)
    assert cache.get("big") is not None


def test_disk_cache_stale_evict_lock_is_broken(tmp_path):
    cache = DiskCache(tmp_path / "c", max_bytes=512)
    lock = cache.root / ".evict.lock"
    lock.touch()
    old = 1_000_000.0  # epoch 1970: far past the staleness threshold
    os.utime(lock, (old, old))
    for i in range(4):
        cache.put(f"k{i}", b"x" * 400)
    assert cache.size_bytes() <= 512
    assert not lock.exists()


def _hammer(args):
    """One worker process: interleaved puts and gets on a shared cache."""
    root, max_bytes, worker, rounds = args
    cache = DiskCache(root, max_bytes=max_bytes)
    bad = 0
    for i in range(rounds):
        key = f"k{(worker + i) % 8}"
        cache.put(key, (key, b"v" * 200))
        value = cache.get(key)
        # Concurrent eviction may turn the read into a miss, but a hit
        # must never be torn or belong to another key.
        if value is not None and value[0] != key:
            bad += 1
    return bad


def test_disk_cache_concurrent_multiprocess_writers(tmp_path):
    from concurrent.futures import ProcessPoolExecutor

    root = str(tmp_path / "shared")
    args = [(root, 4096, w, 25) for w in range(4)]
    with ProcessPoolExecutor(max_workers=4) as pool:
        corrupt = list(pool.map(_hammer, args))
    assert corrupt == [0, 0, 0, 0]
    cache = DiskCache(root, max_bytes=4096)
    # The shared directory stayed bounded and every surviving entry is
    # readable and consistent.
    assert cache.size_bytes() <= 4096
    for path in cache.root.glob("*.pkl"):
        key = path.stem
        value = cache.get(key)
        assert value is None or value[0] == key


# ---------------------------------------------------------------------------
# run_sweep
# ---------------------------------------------------------------------------

def test_run_sweep_serial_preserves_order():
    out = run_sweep(lambda p: p * p, [3, 1, 2], n_workers=1)
    assert out == [9, 1, 4]


def _square(x):
    return x * x


def test_run_sweep_parallel_matches_serial():
    points = list(range(8))
    assert run_sweep(_square, points, n_workers=2) == \
        run_sweep(_square, points, n_workers=1)


def test_default_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", "0")
    assert default_workers() == 1
    monkeypatch.delenv("REPRO_BENCH_PARALLEL")
    assert default_workers() >= 1


def test_sweep_cache_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    assert sweep_cache() is None
    monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
    assert sweep_cache() is None
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "sc"))
    cache = sweep_cache()
    assert cache is not None
    assert cache.root == tmp_path / "sc"


# ---------------------------------------------------------------------------
# get_run / prefetch_runs integration
# ---------------------------------------------------------------------------

@pytest.fixture
def disk_cached(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))
    clear_cache()
    yield tmp_path / "cache"
    clear_cache()


def test_get_run_populates_and_reads_disk_cache(disk_cached):
    a = get_run("rbio_ng", 256, seed=5)
    entries = list(disk_cached.iterdir())
    assert len(entries) == 1
    # A cold in-memory cache must be served from disk: same values, no rerun.
    clear_cache()
    b = get_run("rbio_ng", 256, seed=5)
    assert b.result.overall_time == a.result.overall_time
    assert b.fs_stats == a.fs_stats
    assert list(disk_cached.iterdir()) == entries


def test_disk_cached_summary_matches_fresh_run(disk_cached):
    warm = get_run("coio_64", 256, seed=5)
    clear_cache()
    cached = get_run("coio_64", 256, seed=5)
    clear_cache()
    os.environ["REPRO_BENCH_CACHE"] = "0"
    fresh = get_run("coio_64", 256, seed=5)
    assert cached.result.write_bandwidth == fresh.result.write_bandwidth
    assert cached.result.overall_time == warm.result.overall_time


def test_prefetch_runs_fills_cache(disk_cached):
    points = [("rbio_ng", 256), ("1pfpp", 256), ("rbio_ng", 256)]
    prefetch_runs(points, seed=5, n_workers=1)
    assert len(list(disk_cached.iterdir())) == 2  # deduplicated
    # get_run now hits memory cache (disk untouched -> same entry count).
    get_run("rbio_ng", 256, seed=5)
    get_run("1pfpp", 256, seed=5)
    assert len(list(disk_cached.iterdir())) == 2


def test_summaries_are_picklable():
    clear_cache()
    summary = get_run("rbio_ng", 256, seed=5)
    blob = pickle.dumps(summary)
    back = pickle.loads(blob)
    assert back.result.overall_time == summary.result.overall_time
    assert len(back.write_intervals) == len(summary.write_intervals)
    clear_cache()
