"""Tests for the parallel cached sweep runner (repro.experiments.parallel)."""

import os
import pickle

import pytest

from repro.experiments import (
    DiskCache,
    cache_key,
    clear_cache,
    default_workers,
    get_run,
    point_seed,
    prefetch_runs,
    run_sweep,
)
from repro.experiments.parallel import sweep_cache
from repro.topology import intrepid


# ---------------------------------------------------------------------------
# Keys and seeds
# ---------------------------------------------------------------------------

def test_cache_key_stable_and_distinct():
    a = cache_key("get_run", "rbio_ng", 1024, None, intrepid())
    b = cache_key("get_run", "rbio_ng", 1024, None, intrepid())
    c = cache_key("get_run", "rbio_ng", 2048, None, intrepid())
    assert a == b
    assert a != c
    assert len(a) == 64  # sha256 hex


def test_cache_key_sensitive_to_config():
    assert cache_key("x", intrepid()) != cache_key("x", intrepid().quiet())


def test_point_seed_deterministic():
    assert point_seed(7, "rbio_ng", 1024) == point_seed(7, "rbio_ng", 1024)
    assert point_seed(7, "rbio_ng", 1024) != point_seed(7, "rbio_ng", 2048)
    assert point_seed(7, "a") != point_seed(8, "a")
    assert point_seed(None, "a") is None


# ---------------------------------------------------------------------------
# DiskCache
# ---------------------------------------------------------------------------

def test_disk_cache_roundtrip(tmp_path):
    cache = DiskCache(tmp_path / "c")
    assert cache.get("k") is None
    cache.put("k", {"x": [1, 2, 3]})
    assert cache.get("k") == {"x": [1, 2, 3]}


def test_disk_cache_corrupt_entry_reads_as_miss(tmp_path):
    cache = DiskCache(tmp_path / "c")
    cache.put("k", 42)
    (cache.root / "k.pkl").write_bytes(b"not a pickle")
    assert cache.get("k") is None
    # The corrupt entry was evicted; a fresh put works again.
    cache.put("k", 43)
    assert cache.get("k") == 43


def test_disk_cache_atomic_write_leaves_no_temp_files(tmp_path):
    cache = DiskCache(tmp_path / "c")
    cache.put("k", list(range(100)))
    assert [p.name for p in cache.root.iterdir()] == ["k.pkl"]


# ---------------------------------------------------------------------------
# run_sweep
# ---------------------------------------------------------------------------

def test_run_sweep_serial_preserves_order():
    out = run_sweep(lambda p: p * p, [3, 1, 2], n_workers=1)
    assert out == [9, 1, 4]


def _square(x):
    return x * x


def test_run_sweep_parallel_matches_serial():
    points = list(range(8))
    assert run_sweep(_square, points, n_workers=2) == \
        run_sweep(_square, points, n_workers=1)


def test_default_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", "0")
    assert default_workers() == 1
    monkeypatch.delenv("REPRO_BENCH_PARALLEL")
    assert default_workers() >= 1


def test_sweep_cache_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    assert sweep_cache() is None
    monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
    assert sweep_cache() is None
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "sc"))
    cache = sweep_cache()
    assert cache is not None
    assert cache.root == tmp_path / "sc"


# ---------------------------------------------------------------------------
# get_run / prefetch_runs integration
# ---------------------------------------------------------------------------

@pytest.fixture
def disk_cached(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))
    clear_cache()
    yield tmp_path / "cache"
    clear_cache()


def test_get_run_populates_and_reads_disk_cache(disk_cached):
    a = get_run("rbio_ng", 256, seed=5)
    entries = list(disk_cached.iterdir())
    assert len(entries) == 1
    # A cold in-memory cache must be served from disk: same values, no rerun.
    clear_cache()
    b = get_run("rbio_ng", 256, seed=5)
    assert b.result.overall_time == a.result.overall_time
    assert b.fs_stats == a.fs_stats
    assert list(disk_cached.iterdir()) == entries


def test_disk_cached_summary_matches_fresh_run(disk_cached):
    warm = get_run("coio_64", 256, seed=5)
    clear_cache()
    cached = get_run("coio_64", 256, seed=5)
    clear_cache()
    os.environ["REPRO_BENCH_CACHE"] = "0"
    fresh = get_run("coio_64", 256, seed=5)
    assert cached.result.write_bandwidth == fresh.result.write_bandwidth
    assert cached.result.overall_time == warm.result.overall_time


def test_prefetch_runs_fills_cache(disk_cached):
    points = [("rbio_ng", 256), ("1pfpp", 256), ("rbio_ng", 256)]
    prefetch_runs(points, seed=5, n_workers=1)
    assert len(list(disk_cached.iterdir())) == 2  # deduplicated
    # get_run now hits memory cache (disk untouched -> same entry count).
    get_run("rbio_ng", 256, seed=5)
    get_run("1pfpp", 256, seed=5)
    assert len(list(disk_cached.iterdir())) == 2


def test_summaries_are_picklable():
    clear_cache()
    summary = get_run("rbio_ng", 256, seed=5)
    blob = pickle.dumps(summary)
    back = pickle.loads(blob)
    assert back.result.overall_time == summary.result.overall_time
    assert len(back.write_intervals) == len(summary.write_intervals)
    clear_cache()
