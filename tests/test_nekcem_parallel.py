"""Integration tests: parallel SEDG solver + checkpointing on the simulated
machine, including failure injection and restart."""

import numpy as np
import pytest

from repro.ckpt import CollectiveIO, OneFilePerProcess, ReducedBlockingIO
from repro.nekcem import (
    MaxwellSolver,
    box_mesh,
    compute_seconds_per_step,
    run_parallel_solver,
)
from repro.topology import intrepid

QUIET = intrepid().quiet()


def serial_reference(mesh, order, n_steps, dt):
    s = MaxwellSolver(mesh, order)
    state = s.cavity_mode(0.0)
    state, t = s.run(state, 0.0, dt, n_steps)
    return s, state, t


def test_parallel_matches_serial_bitwise():
    mesh = box_mesh((4, 2, 2))
    order = 3
    dt = MaxwellSolver(mesh, order).max_dt()
    _, ref, _ = serial_reference(mesh, order, 8, dt)
    res = run_parallel_solver(4, mesh, order, 8, dt=dt, config=QUIET)
    glob = res.global_state()
    for a, b in zip(ref, glob):
        assert np.array_equal(a, b)


def test_parallel_unbalanced_slabs():
    mesh = box_mesh((5, 2, 2), ((0, 5), (0, 1), (0, 1)))
    order = 2
    dt = MaxwellSolver(mesh, order).max_dt()
    _, ref, _ = serial_reference(mesh, order, 5, dt)
    res = run_parallel_solver(3, mesh, order, 5, dt=dt, config=QUIET)
    glob = res.global_state()
    for a, b in zip(ref, glob):
        assert np.array_equal(a, b)


def test_parallel_periodic_axis():
    mesh = box_mesh(
        (4, 1, 1), ((0, 2), (0, 1), (0, 1)),
        ("periodic", "periodic", "PEC", "PEC", "PEC", "PEC"),
    )
    order = 3
    dt = MaxwellSolver(mesh, order).max_dt()
    s = MaxwellSolver(mesh, order)
    state = s.cavity_mode(0.0)
    state, _ = s.run(state, 0.0, dt, 6)
    res = run_parallel_solver(2, mesh, order, 6, dt=dt, config=QUIET)
    glob = res.global_state()
    for a, b in zip(state, glob):
        assert np.array_equal(a, b)


def test_single_rank_parallel_run():
    mesh = box_mesh((2, 2, 2))
    res = run_parallel_solver(1, mesh, 2, 3, config=QUIET)
    assert res.n_ranks == 1
    assert len(res.global_state()) == 6


@pytest.mark.parametrize("strategy_factory", [
    lambda: OneFilePerProcess(arrival_jitter=0.0),
    lambda: CollectiveIO(ranks_per_file=2),
    lambda: ReducedBlockingIO(workers_per_writer=2),
])
def test_checkpointed_run_produces_results(strategy_factory):
    mesh = box_mesh((4, 1, 1))
    res = run_parallel_solver(
        4, mesh, 2, 4, strategy=strategy_factory(), checkpoint_every=2,
        config=QUIET,
    )
    assert len(res.checkpoint_results) == 2
    for cr in res.checkpoint_results:
        assert cr.total_bytes > 0
        assert cr.overall_time > 0


def test_failure_injection_recovers_bitwise():
    """Crash after step 4, restart from step-2 checkpoint: final state must
    equal the uninterrupted run's."""
    mesh = box_mesh((4, 1, 1))
    order = 3
    strategy = ReducedBlockingIO(workers_per_writer=2)
    clean = run_parallel_solver(
        4, mesh, order, 6, strategy=ReducedBlockingIO(workers_per_writer=2),
        checkpoint_every=2, config=QUIET,
    )
    crashed = run_parallel_solver(
        4, mesh, order, 6, strategy=strategy, checkpoint_every=2,
        simulate_failure_at=4, config=QUIET,
    )
    assert crashed.restored_at_step == 4
    for a, b in zip(clean.global_state(), crashed.global_state()):
        assert np.array_equal(a, b)


def test_failure_mid_interval_reexecutes_lost_steps():
    mesh = box_mesh((4, 1, 1))
    order = 2
    clean = run_parallel_solver(
        2, mesh, order, 7, strategy=CollectiveIO(), checkpoint_every=3,
        config=QUIET,
    )
    crashed = run_parallel_solver(
        2, mesh, order, 7, strategy=CollectiveIO(), checkpoint_every=3,
        simulate_failure_at=5, config=QUIET,
    )
    assert crashed.restored_at_step == 3
    for a, b in zip(clean.global_state(), crashed.global_state()):
        assert np.array_equal(a, b)


def test_failure_validation():
    mesh = box_mesh((2, 1, 1))
    with pytest.raises(ValueError, match="requires checkpointing"):
        run_parallel_solver(2, mesh, 2, 4, simulate_failure_at=2, config=QUIET)
    with pytest.raises(ValueError, match="before the first checkpoint"):
        run_parallel_solver(2, mesh, 2, 4, strategy=CollectiveIO(),
                            checkpoint_every=3, simulate_failure_at=2,
                            config=QUIET)
    with pytest.raises(ValueError, match="requires a strategy"):
        run_parallel_solver(2, mesh, 2, 4, checkpoint_every=2, config=QUIET)


def test_virtual_compute_time_matches_model():
    mesh = box_mesh((4, 1, 1))
    order = 3
    n_steps = 3
    res = run_parallel_solver(2, mesh, order, n_steps, config=QUIET)
    per_step = compute_seconds_per_step(2 * 4**3, QUIET)
    assert res.compute_seconds_per_step == pytest.approx(per_step)
    # Virtual clock advanced by at least the compute charge.
    assert res.job.now >= n_steps * per_step * 0.99


def test_compute_seconds_paper_scale():
    """~16.8K points per rank costs ~0.26 s/step on 850 MHz cores."""
    t = compute_seconds_per_step(16785, intrepid())
    assert 0.2 < t < 0.32


def test_too_many_ranks_rejected():
    mesh = box_mesh((2, 2, 2))
    with pytest.raises(ValueError, match="more ranks"):
        run_parallel_solver(3, mesh, 2, 1, config=QUIET)
