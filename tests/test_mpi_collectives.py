"""Tests for simulated MPI collectives (barrier, bcast, gather, reduce, split)."""

import pytest

from repro.mpi import Job, MPIError, run_spmd
from repro.topology import intrepid

QUIET = intrepid().quiet()


def test_barrier_synchronizes_all_ranks():
    def main(ctx):
        yield ctx.engine.timeout(float(ctx.rank))  # staggered arrivals
        yield from ctx.comm.barrier()
        return ctx.engine.now

    results = run_spmd(main, 8, QUIET)
    times = set(results.values())
    assert len(times) == 1  # everyone leaves together
    assert times.pop() >= 7.0  # not before the last arrival


def test_barrier_has_positive_cost():
    def main(ctx):
        yield from ctx.comm.barrier()
        return ctx.engine.now

    results = run_spmd(main, 16, QUIET)
    assert all(t > 0 for t in results.values())


def test_bcast_from_root():
    def main(ctx):
        value = {"mesh": "waveguide"} if ctx.rank == 0 else None
        out = yield from ctx.comm.bcast(value, root=0)
        return out["mesh"]

    results = run_spmd(main, 8, QUIET)
    assert all(v == "waveguide" for v in results.values())


def test_bcast_nonzero_root():
    def main(ctx):
        value = ctx.rank if ctx.rank == 3 else None
        out = yield from ctx.comm.bcast(value, root=3)
        return out

    results = run_spmd(main, 8, QUIET)
    assert all(v == 3 for v in results.values())


def test_gather_to_root():
    def main(ctx):
        out = yield from ctx.comm.gather(ctx.rank * 2, root=0)
        return out

    results = run_spmd(main, 8, QUIET)
    assert results[0] == [r * 2 for r in range(8)]
    assert all(results[r] is None for r in range(1, 8))


def test_allgather_everywhere():
    def main(ctx):
        out = yield from ctx.comm.allgather(ctx.rank + 1)
        return out

    results = run_spmd(main, 8, QUIET)
    expected = list(range(1, 9))
    assert all(v == expected for v in results.values())


def test_reduce_default_sum():
    def main(ctx):
        out = yield from ctx.comm.reduce(ctx.rank, root=0)
        return out

    results = run_spmd(main, 8, QUIET)
    assert results[0] == sum(range(8))
    assert results[1] is None


def test_reduce_custom_op_max():
    def main(ctx):
        out = yield from ctx.comm.reduce(float(ctx.rank % 3), op=max, root=0)
        return out

    results = run_spmd(main, 8, QUIET)
    assert results[0] == 2.0


def test_allreduce_sum_everywhere():
    def main(ctx):
        out = yield from ctx.comm.allreduce(1)
        return out

    results = run_spmd(main, 16, QUIET)
    assert all(v == 16 for v in results.values())


def test_split_into_groups():
    def main(ctx):
        group = ctx.rank // 4
        sub = yield from ctx.comm.split(color=group)
        return (group, sub.rank, sub.size)

    results = run_spmd(main, 16, QUIET)
    for r, (group, sub_rank, sub_size) in results.items():
        assert group == r // 4
        assert sub_size == 4
        assert sub_rank == r % 4


def test_split_subcomm_p2p_routes_correctly():
    def main(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank % 2)
        # Within each sub-communicator, rank 0 gathers from others.
        if sub.rank == 0:
            vals = []
            for _ in range(sub.size - 1):
                msg = yield from sub.recv()
                vals.append(msg.payload)
            return sorted(vals)
        else:
            yield from sub.send(0, nbytes=8, payload=ctx.rank)
            return None

    results = run_spmd(main, 8, QUIET)
    assert results[0] == [2, 4, 6]   # even world ranks
    assert results[1] == [3, 5, 7]   # odd world ranks


def test_split_key_orders_subranks():
    def main(ctx):
        # Reverse ordering via key.
        sub = yield from ctx.comm.split(color=0, key=-ctx.rank)
        return sub.rank

    results = run_spmd(main, 4, QUIET)
    assert results == {0: 3, 1: 2, 2: 1, 3: 0}


def test_collective_on_subcomm_independent_of_world():
    def main(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank // 2)
        total = yield from sub.allreduce(ctx.rank)
        return total

    results = run_spmd(main, 4, QUIET)
    assert results[0] == results[1] == 0 + 1
    assert results[2] == results[3] == 2 + 3


def test_collective_mismatch_raises():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.bcast("x", root=1)

    job = Job(2, QUIET)
    job.spawn(main)
    with pytest.raises(MPIError, match="collective mismatch"):
        job.run()


def test_sequential_collectives_keep_order():
    def main(ctx):
        a = yield from ctx.comm.allreduce(1)
        b = yield from ctx.comm.allreduce(2)
        yield from ctx.comm.barrier()
        c = yield from ctx.comm.allgather(ctx.rank)
        return (a, b, c)

    results = run_spmd(main, 4, QUIET)
    for a, b, c in results.values():
        assert (a, b) == (4, 8)
        assert c == [0, 1, 2, 3]


def test_deadlock_detection_reports_stuck_ranks():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.recv(source=1)  # never sent
        return None
        yield  # pragma: no cover

    job = Job(2, QUIET)
    job.spawn(main)
    with pytest.raises(RuntimeError, match="never finished"):
        job.run()


def test_barrier_cost_grows_with_scale():
    def main(ctx):
        yield from ctx.comm.barrier()
        return ctx.engine.now

    t_small = max(run_spmd(main, 4, QUIET).values())
    t_large = max(run_spmd(main, 256, QUIET).values())
    assert t_large > t_small
