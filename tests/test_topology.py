"""Unit and property tests for torus geometry and pset layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import PsetMap, TorusTopology, intrepid, torus_dims_for


# ---------------------------------------------------------------------------
# torus_dims_for
# ---------------------------------------------------------------------------

def test_dims_for_known_partitions():
    assert torus_dims_for(1) == (1, 1, 1)
    assert torus_dims_for(8) == (2, 2, 2)
    assert torus_dims_for(512) == (8, 8, 8)
    assert torus_dims_for(4096) == (16, 16, 16)


def test_dims_product_matches():
    for n in [1, 2, 4, 64, 1024, 4096, 8192, 16384]:
        x, y, z = torus_dims_for(n)
        assert x * y * z == n


def test_dims_near_balanced():
    for n in [2, 8, 128, 2048, 16384]:
        dims = torus_dims_for(n)
        assert max(dims) <= 2 * min(d for d in dims if d > 0) * 2


def test_dims_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        torus_dims_for(100)
    with pytest.raises(ValueError):
        torus_dims_for(0)


# ---------------------------------------------------------------------------
# TorusTopology
# ---------------------------------------------------------------------------

def test_coords_roundtrip():
    t = TorusTopology((4, 2, 8))
    for node in range(t.n_nodes):
        assert t.node_at(t.coords(node)) == node


def test_coords_out_of_range():
    t = TorusTopology((2, 2, 2))
    with pytest.raises(ValueError):
        t.coords(8)
    with pytest.raises(ValueError):
        t.node_at((2, 0, 0))


def test_hops_zero_for_self():
    t = TorusTopology((4, 4, 4))
    assert t.hops(5, 5) == 0


def test_hops_symmetric():
    t = TorusTopology((4, 4, 4))
    for a, b in [(0, 63), (1, 2), (10, 50)]:
        assert t.hops(a, b) == t.hops(b, a)


def test_hops_wraparound_shortcut():
    t = TorusTopology((8, 1, 1))
    # 0 -> 7 is one hop through the wrap link, not seven.
    assert t.hops(0, 7) == 1
    assert t.hops(0, 4) == 4


def test_hops_manhattan_on_small_grid():
    t = TorusTopology((4, 4, 1))
    a = t.node_at((0, 0, 0))
    b = t.node_at((1, 2, 0))
    assert t.hops(a, b) == 1 + 2


def test_neighbors_count_and_distance():
    t = TorusTopology((4, 4, 4))
    for node in [0, 17, 63]:
        nbrs = t.neighbors(node)
        assert len(nbrs) == 6
        assert all(t.hops(node, n) == 1 for n in nbrs)


def test_neighbors_degenerate_axis():
    t = TorusTopology((4, 1, 1))
    assert len(t.neighbors(0)) == 2


def test_max_hops_is_diameter():
    t = TorusTopology((8, 8, 8))
    assert t.max_hops() == 12


def test_invalid_dims_rejected():
    with pytest.raises(ValueError):
        TorusTopology((0, 4, 4))


@given(st.integers(min_value=0, max_value=11))
@settings(max_examples=30, deadline=None)
def test_triangle_inequality_property(seed):
    import random

    rng = random.Random(seed)
    t = TorusTopology((4, 4, 4))
    a, b, c = (rng.randrange(64) for _ in range(3))
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)


# ---------------------------------------------------------------------------
# PsetMap
# ---------------------------------------------------------------------------

def test_psetmap_intrepid_layout():
    # 16K ranks in VN mode: 4096 nodes, 64 psets of 64 nodes.
    m = PsetMap(16384, cores_per_node=4, nodes_per_pset=64)
    assert m.n_nodes == 4096
    assert m.n_psets == 64
    assert m.ranks_per_pset() == 256


def test_psetmap_rank_to_node_blockwise():
    m = PsetMap(16, cores_per_node=4, nodes_per_pset=2)
    assert [m.node_of_rank(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]


def test_psetmap_small_partition_single_pset():
    m = PsetMap(8, cores_per_node=4, nodes_per_pset=64)
    assert m.n_psets == 1
    assert m.pset_of_rank(7) == 0


def test_psetmap_pset_of_rank_boundaries():
    m = PsetMap(2048, cores_per_node=4, nodes_per_pset=64)
    assert m.n_psets == 8
    assert m.pset_of_rank(0) == 0
    assert m.pset_of_rank(255) == 0
    assert m.pset_of_rank(256) == 1
    assert m.pset_of_rank(2047) == 7


def test_psetmap_partial_node_allowed():
    # Tiny test partitions (fewer ranks than one node) round node count up.
    m = PsetMap(2, cores_per_node=4, nodes_per_pset=64)
    assert m.n_nodes == 1
    assert m.n_psets == 1


def test_psetmap_rejects_nonpositive():
    with pytest.raises(ValueError):
        PsetMap(0, cores_per_node=4, nodes_per_pset=64)


def test_psetmap_rank_out_of_range():
    m = PsetMap(8, 4, 64)
    with pytest.raises(ValueError):
        m.node_of_rank(8)


# ---------------------------------------------------------------------------
# MachineConfig
# ---------------------------------------------------------------------------

def test_intrepid_preset_values():
    cfg = intrepid()
    assert cfg.cores_per_node == 4
    assert cfg.nodes_per_pset == 64
    assert cfg.n_file_servers == 128
    # 47 GB/s aggregate backend peak.
    assert cfg.aggregate_disk_bandwidth == pytest.approx(47e9, rel=0.01)


def test_config_with_override():
    cfg = intrepid().with_(n_file_servers=64)
    assert cfg.n_file_servers == 64
    assert intrepid().n_file_servers == 128  # original untouched


def test_config_quiet_disables_noise():
    cfg = intrepid().quiet()
    assert cfg.noise_sigma == 0.0
    assert cfg.storm_probability == 0.0


def test_config_pset_and_torus_helpers():
    cfg = intrepid()
    m = cfg.pset_map(16384)
    assert m.n_psets == 64
    t = cfg.torus(16384)
    assert t.n_nodes == 4096
