"""Strategy × fault test matrix for the resilience layer.

Every cell runs a two-generation checkpoint campaign under one injected
fault class, then a coordinated resilient restore.  The invariant is the
resilience contract: each run either restores **bit-identical** field data
for every rank, or raises a typed
:class:`~repro.faults.UnrecoverableCheckpointError` — never a silently
corrupt restore.
"""

import numpy as np
import pytest

from repro.ckpt import (
    BurstBufferIO,
    CollectiveIO,
    OneFilePerProcess,
    ReducedBlockingIO,
    UnrecoverableCheckpointError,
)
from repro.experiments import run_resilient_campaign
from repro.faults import FaultSchedule, FaultSpec
from repro.staging import StagingConfig
from repro.topology import intrepid

QUIET = intrepid().quiet()
NP = 32          # 4 groups of 8 for the grouped strategies
GROUP = 8
N_STEPS = 2
GAP = 2.0        # step 1 starts ~2 s in, after any time<=1 fault lands


def matrix_data(rank: int, per_field: int = 1024, n_fields: int = 2):
    """Per-rank payload, identical across steps (so any complete
    generation restores the same bytes)."""
    from repro.ckpt import CheckpointData, Field

    rng = np.random.default_rng(4000 + rank)
    fields = [
        Field(f"f{i}",
              per_field,
              rng.integers(0, 256, size=per_field, dtype=np.uint8).tobytes())
        for i in range(n_fields)
    ]
    return CheckpointData(fields, header_bytes=256)


def expected_fields(rank: int):
    return [f.payload for f in matrix_data(rank).fields]


def make_strategy(name: str):
    if name == "1pfpp":
        return OneFilePerProcess(arrival_jitter=0.0)
    if name == "coio":
        return CollectiveIO(ranks_per_file=GROUP)
    if name == "rbio":
        return ReducedBlockingIO(workers_per_writer=GROUP)
    if name == "bbio":
        return BurstBufferIO(workers_per_writer=GROUP,
                             staging=StagingConfig(replicate=True))
    raise AssertionError(name)


FAULT_CELLS = {
    # Two transient write errors: absorbed by bounded retry everywhere.
    "transient_fs": FaultSchedule((
        FaultSpec(kind="fs_error", time=0.0, op="write", count=2,
                  transient=True),
    )),
    # Writer of group 1 (rank 8) dies between the generations.
    "writer_crash": FaultSchedule((
        FaultSpec(kind="rank_crash", time=1.0, rank=8),
    )),
    # Group 0's burst buffer device is lost mid-campaign.
    "buffer_loss": FaultSchedule((
        FaultSpec(kind="buffer_loss", time=1.0, rank=0),
    )),
    # Group 1's partner replica of the newest generation is corrupted
    # after the campaign settles, before the restart.
    "replica_corrupt": FaultSchedule((
        FaultSpec(kind="replica_corrupt", time=50.0, group=1, step=1),
    )),
}


def run_cell(strategy_name: str, fault_name: str):
    return run_resilient_campaign(
        make_strategy(strategy_name), NP, matrix_data,
        n_steps=N_STEPS, faults=FAULT_CELLS[fault_name],
        config=QUIET, gap_seconds=GAP,
    )


def assert_contract(campaign):
    """The two-outcome contract: bit-identical restore on every rank."""
    assert campaign.restored is not None
    steps = {s for s, _ in campaign.restored.values()}
    assert len(steps) == 1, "ranks disagreed on the restored generation"
    for rank in range(NP):
        _step, fields = campaign.restored[rank]
        assert fields == expected_fields(rank), (
            f"rank {rank} restored different bytes"
        )


@pytest.mark.parametrize("fault_name", sorted(FAULT_CELLS))
@pytest.mark.parametrize("strategy_name", ["1pfpp", "coio", "rbio", "bbio"])
def test_matrix_cell(strategy_name, fault_name):
    try:
        campaign = run_cell(strategy_name, fault_name)
    except UnrecoverableCheckpointError:
        # The allowed failure mode: typed, loud, never silent.
        return
    assert_contract(campaign)


# -- targeted semantics on top of the blanket invariant ---------------------

@pytest.mark.parametrize("strategy_name", ["1pfpp", "coio", "rbio", "bbio"])
def test_transient_errors_are_absorbed_and_logged(strategy_name):
    campaign = run_cell(strategy_name, "transient_fs")
    assert_contract(campaign)
    report = campaign.fault_report
    assert report["by_kind"].get("fs_error", 0) == 2
    # Retries absorbed them: newest generation restores fine.
    assert campaign.restored_step == N_STEPS - 1


@pytest.mark.parametrize("strategy_name", ["1pfpp", "coio", "rbio", "bbio"])
def test_writer_crash_falls_back_to_complete_generation(strategy_name):
    campaign = run_cell(strategy_name, "writer_crash")
    assert_contract(campaign)
    # Generation 1 is partial (rank 8 contributed nothing), so the
    # coordinated restore must agree on generation 0.
    assert campaign.restored_step == 0
    roles = campaign.results[-1].roles
    assert roles[8] == "crashed"


def test_rbio_failover_keeps_survivor_data_durable():
    """The adopter writer commits the orphaned group's survivors."""
    campaign = run_cell("rbio", "writer_crash")
    kinds = [e["kind"] for e in campaign.fault_report["log"]]
    assert "writer_failover" in kinds
    # Generation 1 holds a failover file for group 1 written by the
    # adopter — smaller than a full group file, hence rejected at restore.
    assert campaign.restored_step == 0


def test_bbio_buffer_loss_degrades_to_pfs():
    campaign = run_cell("bbio", "buffer_loss")
    assert_contract(campaign)
    log = campaign.fault_report["log"]
    assert any(e["kind"] == "buffer_loss" for e in log)
    # The generation checkpointed after the loss bypassed the dead buffer.
    assert any(e["kind"] == "bbio_degraded" for e in log)


def test_bbio_corrupt_replica_never_served():
    campaign = run_cell("bbio", "replica_corrupt")
    assert_contract(campaign)
    log = campaign.fault_report["log"]
    assert any(e["kind"] == "replica_corrupt" for e in log)


def test_bbio_bit_rot_falls_back_to_partner_replica():
    """Checksum catches in-buffer rot; the partner replica serves.

    Single-wave (restore in the same processes, drain still trickling) so
    the rotted package is still buffer-resident when the restore looks.
    """
    from repro.faults import attach_faults, faults_of
    from repro.mpi import Job
    from repro.storage import attach_storage

    slow = StagingConfig(replicate=True, drain_bandwidth=1e3,
                         drain_chunk=1 << 20, high_watermark=None)
    strategy = BurstBufferIO(workers_per_writer=GROUP, staging=slow)
    job = Job(NP, QUIET)
    attach_storage(job)
    attach_faults(job, FaultSchedule((
        FaultSpec(kind="bit_rot", time=0.9, group=1, step=0),
    )))

    def main(ctx):
        data = matrix_data(ctx.rank)
        yield from ctx.comm.barrier()
        yield from strategy.checkpoint(ctx, data, 0, "/ckpt")
        yield ctx.engine.timeout(1.0)  # let the bit-rot land
        yield from ctx.comm.barrier()
        fields = yield from strategy.restore(ctx, data, 0, "/ckpt")
        return fields == [f.payload for f in data.fields]

    job.spawn(main)
    results = job.run()
    assert all(results.values()), "restored bytes differ"
    log = faults_of(job).injected
    assert any(e["kind"] == "bit_rot" for e in log)
    assert any(e["kind"] == "corruption_detected" and e["tier"] == "buffer"
               for e in log)


def test_no_fault_cells_restore_newest_generation():
    for name in ["1pfpp", "coio", "rbio", "bbio"]:
        campaign = run_resilient_campaign(
            make_strategy(name), NP, matrix_data, n_steps=N_STEPS,
            faults=None, config=QUIET, gap_seconds=GAP,
        )
        assert_contract(campaign)
        assert campaign.restored_step == N_STEPS - 1
