"""Unit tests for measurement helpers (Tally, TimeSeries, IntervalRecorder)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import IntervalRecorder, Tally, TimeSeries


# ---------------------------------------------------------------------------
# Tally
# ---------------------------------------------------------------------------

def test_tally_basic_stats():
    t = Tally()
    t.extend([1.0, 2.0, 3.0, 4.0])
    assert t.count == 4
    assert t.total == 10.0
    assert t.min == 1.0
    assert t.max == 4.0
    assert t.mean == pytest.approx(2.5)
    assert t.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
    assert t.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))


def test_tally_empty_defaults():
    t = Tally()
    assert t.count == 0
    assert t.mean == 0.0
    assert t.variance == 0.0


def test_tally_single_observation():
    t = Tally()
    t.add(7.0)
    assert t.mean == 7.0
    assert t.variance == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
@settings(max_examples=100, deadline=None)
def test_tally_matches_numpy_property(xs):
    t = Tally()
    t.extend(xs)
    assert t.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
    assert t.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-4)
    assert t.min == min(xs)
    assert t.max == max(xs)


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------

def test_timeseries_record_and_arrays():
    ts = TimeSeries("bw")
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    t, v = ts.as_arrays()
    assert list(t) == [0.0, 1.0]
    assert list(v) == [1.0, 2.0]
    assert len(ts) == 2


def test_timeseries_rejects_backwards_time():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 1.0)


def test_timeseries_binned_sum():
    ts = TimeSeries()
    ts.record(0.1, 1.0)
    ts.record(0.2, 1.0)
    ts.record(1.5, 5.0)
    starts, sums = ts.binned_sum(1.0, t_end=3.0)
    assert sums[0] == pytest.approx(2.0)
    assert sums[1] == pytest.approx(5.0)
    assert np.all(sums[2:] == 0)


def test_timeseries_binned_sum_empty():
    ts = TimeSeries()
    starts, sums = ts.binned_sum(1.0)
    assert len(starts) == 0 and len(sums) == 0


def test_timeseries_bad_bin_width():
    ts = TimeSeries()
    ts.record(0.0, 1.0)
    with pytest.raises(ValueError):
        ts.binned_sum(0.0)


# ---------------------------------------------------------------------------
# IntervalRecorder
# ---------------------------------------------------------------------------

def test_intervals_activity_counts_overlaps():
    rec = IntervalRecorder()
    rec.record(0.0, 2.0, "a")
    rec.record(1.0, 3.0, "b")
    starts, counts = rec.activity(1.0)
    # Bins [0,1): a only; [1,2): a+b; [2,3): b only.
    assert list(counts) == [1, 2, 1]


def test_intervals_span_and_busy_time():
    rec = IntervalRecorder()
    rec.record(1.0, 2.0)
    rec.record(4.0, 7.0)
    assert rec.span == (1.0, 7.0)
    assert rec.total_busy_time() == pytest.approx(4.0)


def test_intervals_reject_inverted():
    rec = IntervalRecorder()
    with pytest.raises(ValueError):
        rec.record(2.0, 1.0)


def test_intervals_zero_length_counts_in_one_bin():
    rec = IntervalRecorder()
    rec.record(0.5, 0.5)
    rec.record(0.0, 1.0)
    starts, counts = rec.activity(1.0)
    assert counts[0] == 2


def test_intervals_empty_activity():
    rec = IntervalRecorder()
    starts, counts = rec.activity(1.0)
    assert len(starts) == 0 and len(counts) == 0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=50),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_intervals_activity_conserves_total_property(spans):
    """Max concurrent activity never exceeds interval count; bins cover span."""
    rec = IntervalRecorder()
    for start, dur in spans:
        rec.record(start, start + dur)
    starts, counts = rec.activity(1.0)
    assert counts.max() <= len(spans)
    assert counts.min() >= 0


# ---------------------------------------------------------------------------
# pow2_histogram
# ---------------------------------------------------------------------------

def test_pow2_histogram_labels_and_counts():
    from repro.sim import pow2_histogram

    # Keys are bit_length bins as produced by the engine's hot loops.
    raw = {0: 2, 1: 5, 2: 3, 4: 7, 7: 1}
    out = pow2_histogram(raw)
    assert out == {"0": 2, "1": 5, "2-3": 3, "8-15": 7, "64-127": 1}


def test_pow2_histogram_empty():
    from repro.sim import pow2_histogram

    assert pow2_histogram({}) == {}


def test_pow2_histogram_negative_bins_collapse_to_zero_label():
    from repro.sim import pow2_histogram

    # Defensive: bit_length is never negative, but a negative key must
    # not crash or invent a bogus range — it merges into the "0" label
    # (last writer wins dict-insertion; both map to the same key).
    out = pow2_histogram({-3: 1, 0: 2})
    assert out == {"0": 2}
    assert pow2_histogram({-1: 4}) == {"0": 4}


def test_pow2_histogram_max_bucket_overflow():
    from repro.sim import pow2_histogram

    # A terabyte-scale drain lands in bit_length 41; the label must be
    # the exact power-of-two range with no float rounding artifacts.
    out = pow2_histogram({41: 3, 64: 1})
    assert out[f"{1 << 40}-{(1 << 41) - 1}"] == 3
    assert out[f"{1 << 63}-{(1 << 64) - 1}"] == 1
    # Labels are exact integers even beyond float53 precision.
    assert str((1 << 64) - 1) in list(out)[-1]


def test_pow2_histogram_preserves_bin_order():
    from repro.sim import pow2_histogram

    out = pow2_histogram({7: 1, 1: 2, 4: 3})
    assert list(out) == ["1", "8-15", "64-127"]


def test_intervals_identical_overlaps_all_counted():
    # Coalesce expansion replays one representative interval per member:
    # N identical intervals must rasterise to concurrency N, not 1.
    rec = IntervalRecorder()
    for tag in range(4):
        rec.record(1.0, 2.0, tag)
    starts, counts = rec.activity(0.5)
    assert counts.tolist() == [4, 4]
    assert starts.tolist() == [1.0, 1.5]
    assert rec.total_busy_time() == pytest.approx(4.0)


def test_intervals_bin_width_larger_than_span():
    rec = IntervalRecorder()
    rec.record(0.0, 0.25, "a")
    rec.record(0.1, 0.2, "b")
    starts, counts = rec.activity(10.0)
    assert len(starts) == 1 and counts.tolist() == [2]


def test_intervals_partial_overlap_staircase():
    rec = IntervalRecorder()
    rec.record(0.0, 2.0, 0)
    rec.record(1.0, 3.0, 1)
    rec.record(2.0, 4.0, 2)
    starts, counts = rec.activity(1.0)
    # Bins [0,1) [1,2) [2,3) [3,4): overlap staircase 1-2-2-1.
    assert counts.tolist() == [1, 2, 2, 1]
    assert rec.span == (0.0, 4.0)
    assert rec.total_busy_time() == pytest.approx(6.0)


def test_intervals_activity_bad_bin_width():
    rec = IntervalRecorder()
    rec.record(0.0, 1.0)
    with pytest.raises(ValueError):
        rec.activity(0.0)
    with pytest.raises(ValueError):
        rec.activity(-1.0)
