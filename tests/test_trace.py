"""Tests for the unified tracing & metrics plane (repro.trace).

Covers the tracer core (modes, aggregates, coalesce expansion), the
metrics registry and counter schema, the Chrome trace exporter (schema
validation), reconciliation of span totals against ``Engine.counters()``
and ``DarshanProfiler.summary()``, the zero-cost off guarantee
(differential: trace off vs full is bit-identical across strategies ×
delta × tam × coalesce), the campaign ``grid.trace`` axis, and the
service ``/metrics`` + ``/healthz`` endpoints.
"""

import json
import math
import urllib.request

import pytest

from repro import trace as trace_mod
from repro.campaign import CampaignSpec, SweepService, expand, run_point
from repro.campaign.http import start_server
from repro.campaign.spec import SpecError
from repro.ckpt import EvolvingData
from repro.experiments.figures import problem_for, strategy_for
from repro.experiments.runner import run_checkpoint_steps
from repro.profiling import configure_profiling, make_profiler, profiling_mode
from repro.sim import Engine
from repro.trace import (
    SCHEMA,
    MetricsRegistry,
    Span,
    SpanTracer,
    configure_trace,
    trace_mode,
)
from repro.trace.export import (
    chrome_trace,
    fs_totals,
    phase_intervals_from_spans,
    write_intervals_from_spans,
)
from repro.trace.timeline import critical_path, render_critical_path, \
    render_timeline


@pytest.fixture(autouse=True)
def _trace_off():
    """Every test starts and ends with tracing off and profiling on."""
    configure_trace("off")
    configure_profiling("on")
    yield
    configure_trace("off")
    configure_profiling("on")


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------

def test_configure_trace_modes():
    assert trace_mode() == "off"
    assert trace_mod.tracer is None
    tr = configure_trace("summary")
    assert tr is trace_mod.tracer and tr.mode == "summary"
    tr = configure_trace("full")
    assert trace_mod.tracer.mode == "full"
    assert configure_trace("off") is None
    assert trace_mod.tracer is None
    with pytest.raises(ValueError):
        configure_trace("verbose")
    with pytest.raises(ValueError):
        SpanTracer("off")


def test_summary_mode_keeps_totals_not_spans():
    tr = SpanTracer("summary")
    tr.span(3, "write", "fs", 1.0, 2.5, 100)
    tr.span(4, "write", "fs", 2.0, 3.0, 50)
    assert tr.spans == []
    totals = tr.phase_totals()
    assert totals["fs:write"] == {"count": 2, "seconds": 2.5, "bytes": 150}
    s = tr.summary()
    assert s["mode"] == "summary" and s["n_spans"] == 0


def test_coalesced_span_counts_once_per_member():
    tr = SpanTracer("full")
    tr.span(8, "checkpoint", "ckpt", 0.0, 2.0, 10, members=(8, 9, 10, 11))
    totals = tr.phase_totals()["ckpt:checkpoint"]
    assert totals == {"count": 4, "seconds": 8.0, "bytes": 40}
    assert len(tr.spans) == 1
    assert list(tr.spans[0].expand()) == [8, 9, 10, 11]


def test_instant_events_and_reset():
    tr = SpanTracer("full")
    tr.instant("retry", "fault", 1.5, rank=7, args={"attempt": 1})
    assert tr.events[0]["name"] == "retry" and tr.events[0]["rank"] == 7
    tr.span(0, "x", "fs", 0, 1)
    tr.reset()
    assert not tr.spans and not tr.events and tr.phase_totals() == {}


def test_span_repr_and_duration():
    s = Span(1, "write", "fs", 1.0, 3.0, 64)
    assert s.duration == 2.0
    assert list(s.expand()) == [1]


# ---------------------------------------------------------------------------
# metrics registry + schema
# ---------------------------------------------------------------------------

def test_registry_snapshot_and_kinds():
    reg = MetricsRegistry()
    reg.counter("campaign.points_executed", 5)
    reg.gauge("campaign.inflight_points", 2)
    reg.histogram("sim.batch_hist", {"1": 3, "2-3": 4})
    snap = reg.snapshot()
    assert snap["campaign.points_executed"] == 5
    assert snap["sim.batch_hist"] == {"1": 3, "2-3": 4}
    assert len(reg) == 3
    assert reg.get("campaign.inflight_points") == 2
    with pytest.raises(ValueError):
        reg.counter(".bad")


def test_registry_prometheus_text():
    reg = MetricsRegistry()
    reg.counter("campaign.points_executed", 5, help="points run")
    reg.gauge("sim.virtual_time", 1.25)
    reg.histogram("sim.batch_hist", {"2-3": 4})
    text = reg.to_prometheus()
    assert "# TYPE repro_campaign_points_executed counter" in text
    assert "repro_campaign_points_executed 5" in text
    assert "# HELP repro_campaign_points_executed points run" in text
    assert "repro_sim_virtual_time 1.25" in text
    assert 'repro_sim_batch_hist{bin="2-3"} 4' in text
    assert text.endswith("\n")


def test_engine_counters_pin_full_key_set():
    """The counter schema is pinned: legacy keys + canonical aliases."""
    legacy = {
        "fabric_msgs_intra", "fabric_msgs_inter", "fabric_bytes_intra",
        "fabric_bytes_inter", "tam_msgs", "tam_packages",
        "tam_coalesce_ratio", "events_processed", "dispatched_events",
        "batched_events", "absorbed_events", "batches", "batch_hist",
        "drain_hist", "wall_seconds", "events_per_second", "virtual_time",
        "bytes_copied", "buffer_allocs", "bytes_logical", "bytes_to_pfs",
        "chunk_hits", "chunk_misses",
    }
    c = Engine().counters()
    assert set(c) == legacy | set(SCHEMA)
    # One release of aliasing: every canonical key mirrors its legacy one.
    for canonical, old in SCHEMA.items():
        assert c[canonical] == c[old], (canonical, old)
    assert set(SCHEMA.values()) <= legacy


def test_registry_collects_engine_counters():
    eng = Engine()
    reg = MetricsRegistry()
    reg.collect_engine(eng.counters())
    snap = reg.snapshot()
    assert snap["sim.events_processed"] == 0
    assert isinstance(snap["sim.batch_hist"], dict)
    assert "fabric.msgs_intra" in snap


# ---------------------------------------------------------------------------
# chrome trace export
# ---------------------------------------------------------------------------

def _validate_chrome(doc: dict) -> None:
    """Schema-validate a Chrome trace_event JSON document."""
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert doc["displayTimeUnit"] in ("ms", "ns")
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("X", "i", "M"), ev
        if ev["ph"] == "M":
            assert ev["name"] == "process_name"
            continue
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev["cat"], str)
        assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        assert isinstance(ev["args"], dict)
        if ev["ph"] == "X":
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
        else:
            assert ev["s"] in ("t", "p", "g")
    json.dumps(doc)  # must be JSON-serializable end to end


def test_chrome_trace_schema_and_node_attribution():
    tr = SpanTracer("full")
    tr.cores_per_node = 4
    tr.span(5, "write", "fs", 0.5, 1.5, 100, args={"path": "/f"})
    tr.instant("retry", "fault", 0.75, rank=5)
    doc = chrome_trace(tr)
    _validate_chrome(doc)
    x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(x) == 1
    assert x[0]["pid"] == 1 and x[0]["tid"] == 5       # rank 5 on node 1
    assert x[0]["ts"] == pytest.approx(0.5e6)
    assert x[0]["dur"] == pytest.approx(1.0e6)
    assert x[0]["args"]["nbytes"] == 100
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {m["pid"] for m in meta} == {1}


def test_chrome_trace_expands_coalesced_groups():
    tr = SpanTracer("full")
    tr.span(8, "checkpoint", "ckpt", 0.0, 1.0, 10, members=(8, 9, 10))
    doc = chrome_trace(tr, cores_per_node=2)
    x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert sorted(e["tid"] for e in x) == [8, 9, 10]
    assert all(e["args"]["coalesced_group"] == 3 for e in x)
    assert all(e["args"]["representative"] == 8 for e in x)


def test_interval_reconstruction_from_spans():
    tr = SpanTracer("full")
    tr.span(0, "write", "fs", 0.0, 1.0, 10)
    tr.span(1, "write", "fs", 0.5, 2.0, 20)
    tr.span(1, "read", "fs", 2.0, 3.0, 20)           # not a write
    tr.span(2, "isend", "phase", 0.0, 0.5, 5, members=(2, 3))
    rec = write_intervals_from_spans(tr)
    assert rec.intervals == [(0.0, 1.0, 0), (0.5, 2.0, 1)]
    phases = phase_intervals_from_spans(tr, "isend")
    assert phases.intervals == [(0.0, 0.5, 2), (0.0, 0.5, 3)]
    assert fs_totals(tr)["write"] == {"count": 2, "seconds": 2.5,
                                      "bytes": 30}


# ---------------------------------------------------------------------------
# timeline rendering
# ---------------------------------------------------------------------------

def test_timeline_and_critical_path():
    tr = SpanTracer("full")
    tr.cores_per_node = 2
    tr.span(0, "checkpoint", "ckpt", 0.0, 2.0, 100)
    tr.span(0, "write", "fs", 0.5, 1.9, 100)
    tr.span(1, "checkpoint", "ckpt", 0.0, 1.0, 100)
    tr.instant("retry", "fault", 0.7, rank=0)
    art = render_timeline(tr, width=40, max_rows=8)
    assert "r0/n0" in art and "r1/n0" in art
    assert "W" in art and "#" in art and "legend:" in art
    assert "fault:retry" in art
    cp = critical_path(tr)
    assert cp["slowest_rank"] == 0
    assert cp["makespan"] == pytest.approx(2.0)
    assert cp["chain"][0]["name"] == "checkpoint"
    text = render_critical_path(tr)
    assert "slowest rank 0" in text and "ckpt:checkpoint" in text


def test_timeline_empty_and_elision():
    assert "no spans" in render_timeline(SpanTracer("full"))
    assert critical_path(SpanTracer("full"))["slowest_rank"] is None
    tr = SpanTracer("full")
    for r in range(20):
        tr.span(r, "checkpoint", "ckpt", 0.0, 1.0)
    art = render_timeline(tr, width=20, max_rows=5)
    assert "more ranks elided" in art


# ---------------------------------------------------------------------------
# profiling off-switch (satellite: zero-cost DarshanProfiler)
# ---------------------------------------------------------------------------

def test_configure_profiling_modes():
    assert profiling_mode() == "on"
    assert isinstance(make_profiler(), object) and make_profiler() is not None
    prev = configure_profiling("off")
    assert prev == "on" and profiling_mode() == "off"
    assert make_profiler() is None
    # An active tracer forces a live profiler (spans are forwarded).
    configure_trace("full")
    assert make_profiler() is not None
    configure_trace("off")
    assert make_profiler() is None
    with pytest.raises(ValueError):
        configure_profiling("maybe")


def test_run_without_profiler_matches_run_with():
    """Profiling off changes no simulation outcome, only the records."""
    strategy = strategy_for("coio_64", 64)
    data = problem_for(64).data()
    base = run_checkpoint_steps(strategy, 64, data, 1)
    configure_profiling("off")
    quiet = run_checkpoint_steps(strategy_for("coio_64", 64), 64, data, 1)
    assert quiet.profiler is None
    assert base.profiler is not None and base.profiler.records
    assert quiet.result.overall_time == base.result.overall_time
    assert quiet.result.write_bandwidth == base.result.write_bandwidth


# ---------------------------------------------------------------------------
# reconciliation: spans vs Engine.counters() vs Darshan summary()
# ---------------------------------------------------------------------------

def test_full_trace_reconciles_with_profiler_and_counters():
    configure_trace("full")
    strategy = strategy_for("rbio_ng", 128)
    data = problem_for(128).data()
    run = run_checkpoint_steps(strategy, 128, data, 1)
    tr = trace_mod.tracer
    assert tr.spans

    summary = run.profiler.summary()
    writes = fs_totals(tr)["write"]
    assert writes["count"] == summary["n_writes"]
    assert writes["bytes"] == summary["bytes_written"]
    assert writes["seconds"] == pytest.approx(
        sum(r.duration for r in run.profiler.select(["write"])), rel=1e-12)

    # Span-derived write intervals are row-identical to the Darshan view.
    legacy = run.profiler.write_intervals()
    rebuilt = write_intervals_from_spans(tr)
    assert rebuilt.intervals == legacy.intervals

    # Engine counters reconcile through the schema aliases.
    c = run.job.engine.counters()
    for canonical, old in SCHEMA.items():
        assert c[canonical] == c[old]

    # Checkpoint envelope spans agree with the run's own report.
    ck = tr.phase_totals()["ckpt:checkpoint"]
    assert ck["count"] == 128
    assert ck["bytes"] == run.result.total_bytes

    doc = chrome_trace(tr)
    _validate_chrome(doc)


def test_trace_captures_tam_and_exchange_spans():
    configure_trace("full")
    strategy = strategy_for("coio_64", 64, tam="require")
    data = problem_for(64).data()
    run_checkpoint_steps(strategy, 64, data, 1)
    totals = trace_mod.tracer.phase_totals()
    assert "mpiio:exchange" in totals
    assert "mpiio:tam-gather" in totals
    assert "mpiio:commit" in totals


def test_trace_captures_restore_spans():
    from repro.experiments.runner import run_checkpoint_and_restore
    configure_trace("full")
    run_checkpoint_and_restore(strategy_for("1pfpp", 16), 16,
                               problem_for(16).data())
    totals = trace_mod.tracer.phase_totals()
    assert totals["ckpt:restore"]["count"] == 16


def test_retry_instants_recorded_on_transient_faults():
    from repro.faults import FaultSchedule, FaultSpec, faults_of
    configure_trace("full")
    faults = FaultSchedule((
        FaultSpec(kind="fs_error", time=0.0, op="write", count=2,
                  transient=True),
    ))
    run = run_checkpoint_steps(strategy_for("1pfpp", 32), 32,
                               problem_for(32).data(), 1, faults=faults)
    assert faults_of(run.job).report()["injected"] == 2
    tr = trace_mod.tracer
    assert tr.events, "injected faults must surface as trace instants"
    assert all(e["cat"] == "fault" for e in tr.events)
    kinds = {e["name"] for e in tr.events}
    assert "fs_error" in kinds          # injector-side instants
    assert "retry" in kinds             # retry-loop instants


# ---------------------------------------------------------------------------
# the off guarantee: bit-identical across strategies x delta x tam x coalesce
# ---------------------------------------------------------------------------

def _run_fingerprint(approach, n_ranks, *, delta="off", tam="off",
                     coalesce="auto", evolving=False, n_steps=1):
    strategy = strategy_for(approach, n_ranks, delta=delta, tam=tam)
    if evolving:
        data = EvolvingData.mutating(64, mutated_fraction=0.25, seed=3)
    else:
        data = problem_for(n_ranks).data()
    run = run_checkpoint_steps(strategy, n_ranks, data, n_steps,
                               coalesce=coalesce)
    fp = []
    for res in run.results:
        fp.append((res.overall_time, res.blocking_time,
                   res.write_bandwidth, tuple(res.roles),
                   res.t_start.tobytes(), res.t_blocked_end.tobytes(),
                   res.t_complete.tobytes(), res.bytes_local.tobytes()))
    fp.append(tuple(sorted(run.fs.stats().items())))
    fp.append(tuple(sorted(run.job.fabric.stats().items())))
    return fp


@pytest.mark.parametrize("cfg", [
    dict(approach="1pfpp", n_ranks=32),
    dict(approach="coio_64", n_ranks=64),
    dict(approach="coio_64", n_ranks=64, tam="require"),
    dict(approach="rbio_ng", n_ranks=64),
    dict(approach="rbio_ng", n_ranks=64, tam="require"),
    dict(approach="rbio_ng", n_ranks=64, coalesce="off"),
    dict(approach="rbio_ng", n_ranks=64, delta="auto", evolving=True,
         n_steps=2),
    dict(approach="coio_64", n_ranks=64, delta="auto", evolving=True,
         n_steps=2),
])
def test_trace_off_is_bit_identical(cfg):
    base = _run_fingerprint(**cfg)
    for mode in ("summary", "full"):
        configure_trace(mode)
        traced = _run_fingerprint(**cfg)
        configure_trace("off")
        assert traced == base, f"trace={mode} diverged for {cfg}"


# ---------------------------------------------------------------------------
# fig12 parity: the Darshan activity figure rebuilt from the span store
# ---------------------------------------------------------------------------

def test_fig12_activity_row_identical_from_spans():
    import numpy as np
    configure_trace("full")
    run = run_checkpoint_steps(strategy_for("rbio_ng", 128), 128,
                               problem_for(128).data(), 1)
    tr = trace_mod.tracer
    legacy_starts, legacy_counts = \
        run.profiler.write_intervals().activity(0.25)
    span_starts, span_counts = \
        write_intervals_from_spans(tr).activity(0.25)
    assert np.array_equal(span_starts, legacy_starts)
    assert np.array_equal(span_counts, legacy_counts)


# ---------------------------------------------------------------------------
# campaign axis + service telemetry
# ---------------------------------------------------------------------------

_SPEC = {
    "name": "trace-axis",
    "seed": 5,
    "grid": {"approaches": ["coio_64"], "np": [64],
             "trace": ["off", "summary"]},
}


def test_grid_trace_axis_expands_and_hashes_distinctly():
    expanded = expand(CampaignSpec.from_dict(_SPEC))
    assert [p.trace for p in expanded.points] == ["off", "summary"]
    assert len(set(expanded.hashes())) == 2
    off, summary = expanded.points
    assert off.is_figure_point and not summary.is_figure_point
    rt = CampaignSpec.from_dict(_SPEC).to_dict()
    assert rt["grid"]["trace"] == ["off", "summary"]


def test_grid_trace_axis_rejects_unknown_mode():
    bad = {**_SPEC, "grid": {**_SPEC["grid"], "trace": ["loud"]}}
    with pytest.raises(SpecError, match="trace"):
        CampaignSpec.from_dict(bad)


def test_run_point_trace_summary_and_restored_state():
    expanded = expand(CampaignSpec.from_dict(
        {**_SPEC, "grid": {"approaches": ["coio_64"], "np": [64],
                           "trace": ["full"]}}))
    out = run_point(expanded.points[0])
    assert out["trace"] == "full"
    phases = out["trace_summary"]["phases"]
    assert phases["ckpt:checkpoint"]["count"] == 64
    assert trace_mod.tracer is None          # restored after the point
    assert profiling_mode() == "on"
    json.dumps(out)


def test_run_point_trace_off_matches_traced_results():
    spec = CampaignSpec.from_dict(_SPEC)
    points = expand(spec).points
    off = run_point(points[0])
    traced = run_point(points[1])
    for key in ("overall_time", "blocking_time", "write_bandwidth"):
        assert math.isclose(off[key], traced[key], rel_tol=0, abs_tol=0)


def test_service_metrics_and_healthz_endpoints():
    service = SweepService(n_workers=1, cache=False)
    server, _thread = start_server(service)
    host, port = server.server_address
    try:
        campaign_id = service.submit(_SPEC)
        service.wait(campaign_id, timeout=300)
        with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=30) as resp:
            health = json.loads(resp.read())
        assert health["status"] == "ok" and health["workers"] == 1
        with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=30) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "# TYPE repro_campaign_points_executed counter" in text
        assert "repro_campaign_points_executed 2" in text
        assert "repro_campaign_n_workers 1" in text
    finally:
        server.shutdown()
        service.shutdown()
