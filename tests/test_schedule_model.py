"""Tests for the checkpoint schedule (Eq. 1) and speedup model (Eqs. 2-7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import (
    CheckpointResult,
    CheckpointSchedule,
    RankReport,
    checkpoint_ratio,
    production_improvement,
)
from repro.model import (
    SpeedupModel,
    blocked_processor_seconds,
    chain_reduction,
    delta_checkpoint_seconds,
    effective_delta_fraction,
    incremental_production_improvement,
)


# ---------------------------------------------------------------------------
# Eq. 1 / schedule
# ---------------------------------------------------------------------------

def test_checkpoint_ratio():
    assert checkpoint_ratio(260.0, 0.26) == pytest.approx(1000.0)
    with pytest.raises(ValueError):
        checkpoint_ratio(1.0, 0.0)


def test_production_improvement_paper_case():
    """Ratio_1pfpp > 1000, Ratio_rbio < 20, nc = 20 -> ~25x (paper §V-B)."""
    t_comp = 0.26
    imp = production_improvement(
        t_ckpt_old=1000 * t_comp, t_ckpt_new=20 * t_comp,
        t_computation_step=t_comp, nc=20,
    )
    assert imp == pytest.approx((1000 + 20) / (20 + 20))
    assert 20 < imp < 30


def test_production_improvement_identity():
    assert production_improvement(5.0, 5.0, 0.5, 10) == pytest.approx(1.0)


def test_production_improvement_validation():
    with pytest.raises(ValueError):
        production_improvement(1.0, 1.0, 1.0, 0)


def test_schedule_steps_and_time():
    s = CheckpointSchedule(nc=5, t_computation_step=1.0, t_checkpoint=10.0)
    assert not s.is_checkpoint_step(4)
    assert s.is_checkpoint_step(5)
    assert s.is_checkpoint_step(10)
    assert s.production_time(20) == pytest.approx(20 + 4 * 10)
    assert s.ratio == pytest.approx(10.0)
    assert s.overhead_fraction == pytest.approx(10 / 15)


def test_schedule_validation():
    with pytest.raises(ValueError):
        CheckpointSchedule(0, 1.0, 1.0)
    with pytest.raises(ValueError):
        CheckpointSchedule(1, 0.0, 1.0)
    with pytest.raises(ValueError):
        CheckpointSchedule(1, 1.0, -1.0)
    s = CheckpointSchedule(1, 1.0, 1.0)
    with pytest.raises(ValueError):
        s.is_checkpoint_step(0)
    with pytest.raises(ValueError):
        s.production_time(-1)


def test_young_interval():
    # sqrt(2 * 10 * 2000) = 200
    assert CheckpointSchedule.young_interval(10.0, 2000.0) == pytest.approx(200.0)
    s = CheckpointSchedule.young(10.0, 1.0, 2000.0)
    assert s.nc == 200
    with pytest.raises(ValueError):
        CheckpointSchedule.young_interval(0.0, 1.0)


@given(st.floats(min_value=0.1, max_value=1e4),
       st.floats(min_value=0.1, max_value=1e4),
       st.floats(min_value=0.01, max_value=10),
       st.integers(min_value=1, max_value=1000))
@settings(max_examples=100, deadline=None)
def test_improvement_monotone_property(tc_old, tc_new, t_comp, nc):
    """Improvement is on the faster side of 1 when the new approach is faster.

    Equality is allowed: when the checkpoint terms are negligible next to
    the compute term, ``(X + a) / (X + b)`` rounds to exactly 1.0 in
    float64 even though a != b.
    """
    imp = production_improvement(tc_old, tc_new, t_comp, nc)
    if tc_old > tc_new:
        assert imp >= 1
    elif tc_old < tc_new:
        assert imp <= 1


# ---------------------------------------------------------------------------
# Delta-sized checkpoints: Daly and the incremental interval model
# ---------------------------------------------------------------------------

def test_daly_interval_reduces_to_young_for_small_tc():
    """Daly's perturbation solution converges on Young as Tc/MTBF -> 0."""
    young = CheckpointSchedule.young_interval(1.0, 1e6)
    daly = CheckpointSchedule.daly_interval(1.0, 1e6)
    assert daly == pytest.approx(young, rel=1e-3)
    # Degenerate regime: checkpoints as expensive as two MTBFs.
    assert CheckpointSchedule.daly_interval(500.0, 100.0) == 100.0
    with pytest.raises(ValueError):
        CheckpointSchedule.daly_interval(0.0, 1.0)


def test_young_interval_incremental_shortens_with_delta():
    """Cheaper delta writes -> shorter optimal interval -> smaller nc."""
    full = CheckpointSchedule.young_interval(40.0, 1000.0)
    delta = CheckpointSchedule.young_interval_incremental(
        40.0, 0.25, 1000.0)
    # sqrt scaling: a quarter-cost checkpoint halves the interval.
    assert delta == pytest.approx(full / 2.0)
    # The fixed manifest overhead pushes the interval back up.
    assert CheckpointSchedule.young_interval_incremental(
        40.0, 0.25, 1000.0, manifest_overhead=30.0) > delta

    s_full = CheckpointSchedule.young(40.0, 1.0, 1000.0)
    s_delta = CheckpointSchedule.young_incremental(40.0, 0.25, 1.0, 1000.0)
    assert s_delta.nc < s_full.nc
    assert s_delta.t_checkpoint == pytest.approx(10.0)
    # Checkpointing more often with cheaper writes costs less overhead.
    assert s_delta.overhead_fraction < s_full.overhead_fraction


def test_young_incremental_validation():
    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            CheckpointSchedule.young_interval_incremental(10.0, bad, 100.0)
    with pytest.raises(ValueError):
        CheckpointSchedule.young_interval_incremental(
            10.0, 0.5, 100.0, manifest_overhead=-1.0)


def test_effective_delta_fraction_model():
    # 25% churn + one region's two boundary chunks + no fixed overhead.
    f = effective_delta_fraction(0.25, 1 << 20, 8192)
    assert f == pytest.approx(0.25 + 2 * 8192 / (1 << 20))
    # Overhead adds linearly; the churn term clamps at a full write.
    assert effective_delta_fraction(1.0, 1 << 20, 8192,
                                    overhead_bytes=1 << 18) \
        == pytest.approx(1.25)
    with pytest.raises(ValueError):
        effective_delta_fraction(1.5, 1 << 20, 8192)
    with pytest.raises(ValueError):
        effective_delta_fraction(0.5, 0, 8192)


def test_chain_reduction_model():
    # Generation 0 is full, so a 1-generation chain saves nothing.
    assert chain_reduction(1, 0.25) == pytest.approx(1.0)
    assert chain_reduction(20, 0.25) == pytest.approx(20 / (1 + 19 * 0.25))
    # Long chains approach the 1/f_eff asymptote from below.
    assert chain_reduction(10_000, 0.25) < 4.0
    with pytest.raises(ValueError):
        chain_reduction(0, 0.25)
    with pytest.raises(ValueError):
        chain_reduction(5, 0.0)


def test_incremental_production_improvement_consistency():
    """The model's Eq. 1 wrapper equals Eq. 1 on the scaled delta cost."""
    t_full, f_eff, t_comp, nc = 26.0, 0.3, 0.26, 20
    assert delta_checkpoint_seconds(t_full, f_eff) == pytest.approx(7.8)
    imp = incremental_production_improvement(t_full, f_eff, t_comp, nc)
    assert imp == pytest.approx(
        production_improvement(t_full, t_full * f_eff, t_comp, nc))
    assert imp > 1.0
    # A delta as large as the full image gives no improvement.
    assert incremental_production_improvement(t_full, 1.0, t_comp, nc) \
        == pytest.approx(1.0)
    with pytest.raises(ValueError):
        delta_checkpoint_seconds(-1.0, 0.5)
    with pytest.raises(ValueError):
        delta_checkpoint_seconds(1.0, 0.0)


# ---------------------------------------------------------------------------
# Eqs. 2-7
# ---------------------------------------------------------------------------

def model_fixture():
    return SpeedupModel(
        np_ranks=65536, ng_writers=1024,
        bw_coio=8e9, bw_rbio=14e9, bw_perceived=800e12, lam=0.0,
    )


def test_speedup_limit_eq7():
    m = model_fixture()
    # Eq. 7: (np/ng) * BW_rbio / BW_coio = 64 * 1.75 = 112.
    assert m.speedup_limit() == pytest.approx(64 * 14 / 8)


def test_speedup_approx_matches_limit_at_lambda_zero():
    m = model_fixture()
    assert m.speedup_approx() == pytest.approx(m.speedup_limit())


def test_speedup_exact_close_to_approx():
    """Eq. 5 vs Eq. 6: the dropped BW_p term is ~1e-6, so they agree."""
    m = model_fixture()
    assert m.speedup_exact() == pytest.approx(m.speedup_approx(), rel=5e-3)


def test_speedup_worst_case_half_ratio():
    """Paper: even if BW_rbio = BW_coio/2, speedup ~ half of np/ng (=30x+)."""
    m = SpeedupModel(65536, 1024, bw_coio=14e9, bw_rbio=7e9,
                     bw_perceived=800e12)
    assert m.speedup_limit() == pytest.approx(32.0)
    assert m.speedup_exact() > 25


def test_lambda_one_removes_overlap_benefit():
    m = SpeedupModel(1024, 16, bw_coio=1e9, bw_rbio=1e9,
                     bw_perceived=1e12, lam=1.0)
    # Workers blocked the whole writer write: speedup ~ 1.
    assert m.speedup_approx() == pytest.approx(1.0)


def test_blocked_times_eq3_eq4():
    m = model_fixture()
    s = 156e9
    assert m.t_coio(s) == pytest.approx(65536 * 156e9 / 8e9)
    expected_rbio = (65536 - 1024) * (s / 800e12) + 1024 * s / 14e9
    assert m.t_rbio(s) == pytest.approx(expected_rbio)


def test_model_validation():
    with pytest.raises(ValueError):
        SpeedupModel(10, 0, 1, 1, 1)
    with pytest.raises(ValueError):
        SpeedupModel(10, 11, 1, 1, 1)
    with pytest.raises(ValueError):
        SpeedupModel(10, 2, 0, 1, 1)
    with pytest.raises(ValueError):
        SpeedupModel(10, 2, 1, 1, 1, lam=2.0)


def test_model_describe_keys():
    d = model_fixture().describe()
    for key in ("np", "ng", "speedup_eq5", "speedup_eq6", "speedup_eq7"):
        assert key in d


def test_blocked_processor_seconds_roles():
    reports = {
        0: RankReport(0, "writer", 0.0, 0.0, 10.0, 1),   # writer: 10s commit
        1: RankReport(1, "worker", 0.0, 0.5, 0.5, 1),    # worker: 0.5s send
        2: RankReport(2, "collective", 0.0, 4.0, 4.0, 1),
    }
    res = CheckpointResult("x", reports)
    assert blocked_processor_seconds(res) == pytest.approx(0.0 + 10.0 + 0.5 + 4.0)


def test_from_results_extracts_parameters():
    coio = CheckpointResult("coio", {
        r: RankReport(r, "collective", 0.0, 2.0, 2.0, 500) for r in range(8)
    })
    rbio_reports = {}
    for r in range(8):
        if r % 4 == 0:
            rbio_reports[r] = RankReport(r, "writer", 0.0, 1.0, 1.0, 500)
        else:
            rbio_reports[r] = RankReport(r, "worker", 0.0, 0.01, 0.01, 500,
                                         isend_seconds=0.01)
    rbio = CheckpointResult("rbio", rbio_reports)
    m = SpeedupModel.from_results(coio, rbio)
    assert m.np_ranks == 8
    assert m.ng_writers == 2
    assert m.bw_coio == pytest.approx(coio.write_bandwidth)
