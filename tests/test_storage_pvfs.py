"""Tests for the PVFS-like (lock-free) storage variant."""

import pytest

from repro.ckpt import CollectiveIO, ReducedBlockingIO
from repro.experiments import run_checkpoint_step, scaled_problem
from repro.mpi import Job
from repro.storage import PVFS, attach_storage
from repro.topology import intrepid

QUIET = intrepid().quiet()


def make_pvfs(n_ranks=8, **kwargs):
    job = Job(n_ranks, QUIET)
    fs = attach_storage(job, fs_type="pvfs", **kwargs)
    return job, fs


def test_attach_selects_pvfs():
    _, fs = make_pvfs()
    assert isinstance(fs, PVFS)
    assert fs.byte_range_locks is False
    assert fs.serialized_shared_allocation is False


def test_validation():
    with pytest.raises(ValueError):
        make_pvfs(no_cache_factor=0.5)


def test_no_lock_traffic_on_shared_files():
    bs = QUIET.fs_block_size
    job, fs = make_pvfs(4)

    def main(ctx):
        if ctx.rank == 0:
            h = yield from ctx.fs.create("/shared")
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.barrier()
            h = yield from ctx.fs.open("/shared", write=True)
        # Unaligned, adjacent regions that would revoke + RMW on GPFS.
        yield from ctx.fs.write(h, ctx.rank * (bs + 100), bs + 100)
        yield from ctx.fs.close(h)

    job.spawn(main)
    job.run()
    assert fs.revocations == 0
    assert fs.rmw_reads == 0
    assert fs.storms == 0


def test_shared_allocation_not_serialized():
    """Multi-writer shared-file writes avoid the GPFS allocation floor.

    Uses an effectively infinite data path so only metadata/allocation
    time remains.
    """
    FAST = QUIET.with_(
        client_stream_bandwidth=1e15, ion_uplink_bandwidth=1e15,
        server_disk_bandwidth=1e15, seek_penalty_per_stream=0.0,
        ion_latency=0.0, server_queue_service_fraction=0.0,
    )
    bs = FAST.fs_block_size
    blocks_per_rank = 16
    n = 8

    def main(ctx):
        if ctx.rank == 0:
            h = yield from ctx.fs.create("/shared")
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.barrier()
            h = yield from ctx.fs.open("/shared", write=True)
        t0 = ctx.engine.now
        yield from ctx.fs.write(h, ctx.rank * blocks_per_rank * bs,
                                blocks_per_rank * bs)
        yield from ctx.fs.close(h)
        return ctx.engine.now - t0

    gpfs_job = Job(n, FAST)
    attach_storage(gpfs_job)
    gpfs_job.spawn(main)
    t_gpfs = max(gpfs_job.run().values())

    pvfs_job = Job(n, FAST)
    attach_storage(pvfs_job, fs_type="pvfs")
    pvfs_job.spawn(main)
    t_pvfs = max(pvfs_job.run().values())
    # GPFS pays n * blocks * alloc_service serialization; PVFS does not.
    assert t_gpfs - t_pvfs > 0.5 * FAST.alloc_service * blocks_per_rank * n


def test_pvfs_constant_create_cost():
    n = 16
    job, fs = make_pvfs(n_ranks=n, mds_service=1e-3)

    def main(ctx):
        h = yield from ctx.fs.create(f"/dir/f{ctx.rank}")
        yield from ctx.fs.close(h)
        return ctx.engine.now

    job.spawn(main)
    out = job.run()
    assert max(out.values()) < n * 1e-3 * 2 + 0.01


def test_pvfs_roundtrip_data():
    data = b"pvfs-bytes" * 100
    job, fs = make_pvfs()

    def main(ctx):
        h = yield from ctx.fs.create("/f")
        yield from ctx.fs.write(h, 0, len(data), payload=data)
        got = yield from ctx.fs.read(h, 0, len(data))
        yield from ctx.fs.close(h)
        return got

    job.spawn(main, ranks=[0])
    assert job.run()[0] == data


def test_coio_nf1_faster_on_pvfs_than_gpfs():
    """The nf=1 allocation ceiling is a GPFS artifact: PVFS lifts it."""
    n = 256
    data = scaled_problem(n).data()
    gpfs = run_checkpoint_step(CollectiveIO(), n, data, config=QUIET).result
    pvfs = run_checkpoint_step(CollectiveIO(), n, data, config=QUIET,
                               fs_type="pvfs").result
    assert pvfs.write_bandwidth > gpfs.write_bandwidth


def test_rbio_unchanged_semantics_on_pvfs():
    n = 64
    data = scaled_problem(n).data()
    run = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=8), n,
                              data, config=QUIET, fs_type="pvfs")
    res = run.result
    assert res.write_bandwidth > 0
    assert res.blocking_time < 1e-2
