"""Tests for the three checkpoint strategies at small scale.

Every strategy is exercised with real payload bytes and verified by reading
the data back (restart round-trip), plus structural checks: file counts,
roles, writer/worker splits, and timing-semantics invariants.
"""

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointData,
    CollectiveIO,
    Field,
    OneFilePerProcess,
    ReducedBlockingIO,
)
from repro.experiments import run_checkpoint_step, run_checkpoint_steps
from repro.mpi import Job
from repro.storage import attach_storage
from repro.topology import intrepid

QUIET = intrepid().quiet()


def payload_data(rank: int, per_field: int = 2048, n_fields: int = 3) -> CheckpointData:
    """Deterministic distinct payload per rank and field."""
    rng = np.random.default_rng(1000 + rank)
    fields = []
    for i in range(n_fields):
        body = rng.integers(0, 256, size=per_field, dtype=np.uint8).tobytes()
        fields.append(Field(f"f{i}", per_field, body))
    return CheckpointData(fields, header_bytes=512)


def roundtrip(strategy, n_ranks, config=QUIET, **kwargs):
    """Write a checkpoint, then restore it in the same job; verify bytes."""
    job = Job(n_ranks, config)
    attach_storage(job)

    def main(ctx):
        data = payload_data(ctx.rank)
        yield from ctx.comm.barrier()
        report = yield from strategy.checkpoint(ctx, data, 0, "/ckpt")
        yield from ctx.comm.barrier()
        fields = yield from strategy.restore(ctx, data, 0, "/ckpt")
        expected = [f.payload for f in data.fields]
        return (report, fields == expected)

    job.spawn(main)
    results = job.run()
    assert all(ok for _, ok in results.values()), "restored bytes differ"
    return job, {r: rep for r, (rep, _) in results.items()}


# ---------------------------------------------------------------------------
# 1PFPP
# ---------------------------------------------------------------------------

def test_1pfpp_roundtrip_and_file_count():
    strategy = OneFilePerProcess(arrival_jitter=0.0)
    job, reports = roundtrip(strategy, 8)
    fs = job.services["fs"]
    assert fs.stats()["files"] == 8
    assert all(rep.role == "independent" for rep in reports.values())


def test_1pfpp_all_files_in_one_directory():
    strategy = OneFilePerProcess(arrival_jitter=0.0)
    job, _ = roundtrip(strategy, 4)
    fs = job.services["fs"]
    dirs = {p.rsplit("/", 1)[0] for p in fs.files}
    assert dirs == {"/ckpt/step000000"}


def test_1pfpp_blocked_equals_complete():
    strategy = OneFilePerProcess(arrival_jitter=0.0)
    _, reports = roundtrip(strategy, 4)
    for rep in reports.values():
        assert rep.t_blocked_end == rep.t_complete


def test_1pfpp_jitter_validation():
    with pytest.raises(ValueError):
        OneFilePerProcess(arrival_jitter=-1.0)


def test_1pfpp_describe():
    d = OneFilePerProcess().describe()
    assert d["name"] == "1pfpp"
    assert d["nf"] == "np"


# ---------------------------------------------------------------------------
# coIO
# ---------------------------------------------------------------------------

def test_coio_nf1_roundtrip_single_file():
    strategy = CollectiveIO(ranks_per_file=None)
    job, reports = roundtrip(strategy, 8)
    fs = job.services["fs"]
    assert fs.stats()["files"] == 1
    assert all(rep.role == "collective" for rep in reports.values())


def test_coio_grouped_roundtrip_file_count():
    strategy = CollectiveIO(ranks_per_file=4)
    job, _ = roundtrip(strategy, 8)
    fs = job.services["fs"]
    assert fs.stats()["files"] == 2


def test_coio_file_layout_field_major():
    """Sections are field-major: each field's blocks in rank order."""
    strategy = CollectiveIO(ranks_per_file=None)
    job, _ = roundtrip(strategy, 4)
    fs = job.services["fs"]
    (path,) = list(fs.files)
    fobj = fs.file(path)
    per, nf, hdr = 2048, 3, 512
    data = fobj.read_extents(0, hdr + 4 * per * nf)
    for rank in range(4):
        expected = payload_data(rank)
        for i in range(nf):
            off = hdr + i * 4 * per + rank * per
            assert data[off : off + per] == expected.fields[i].payload


def test_coio_all_ranks_finish_together():
    strategy = CollectiveIO(ranks_per_file=None)
    _, reports = roundtrip(strategy, 8)
    completes = {rep.t_complete for rep in reports.values()}
    assert len(completes) == 1


def test_coio_groups_finish_independently():
    strategy = CollectiveIO(ranks_per_file=4)
    run = run_checkpoint_step(strategy, 8, payload_data(0), config=QUIET)
    res = run.result
    # Within a group all ranks share a completion time.
    t = res.t_complete
    assert np.allclose(t[:4], t[0])
    assert np.allclose(t[4:], t[4])


def test_coio_validation():
    with pytest.raises(ValueError):
        CollectiveIO(ranks_per_file=0)


def test_coio_describe():
    assert CollectiveIO().describe()["nf"] == 1
    assert CollectiveIO(ranks_per_file=64).describe()["nf"] == "np/64"


# ---------------------------------------------------------------------------
# rbIO
# ---------------------------------------------------------------------------

def test_rbio_roundtrip_per_writer_files():
    strategy = ReducedBlockingIO(workers_per_writer=4)
    job, reports = roundtrip(strategy, 8)
    fs = job.services["fs"]
    assert fs.stats()["files"] == 2  # ng = 2 writers
    roles = {r: rep.role for r, rep in reports.items()}
    assert roles[0] == "writer" and roles[4] == "writer"
    assert all(roles[r] == "worker" for r in [1, 2, 3, 5, 6, 7])


def test_rbio_single_file_roundtrip():
    strategy = ReducedBlockingIO(workers_per_writer=4, single_file=True)
    job, _ = roundtrip(strategy, 8)
    fs = job.services["fs"]
    assert fs.stats()["files"] == 1


def test_rbio_workers_unblock_before_writers_finish():
    strategy = ReducedBlockingIO(workers_per_writer=4)
    run = run_checkpoint_step(strategy, 8, payload_data(0), config=QUIET)
    res = run.result
    worker_blocked = max(
        res.t_blocked_end[i] - res.t_start[i]
        for i in range(res.n_ranks) if res.roles[i] == "worker"
    )
    writer_complete = max(
        res.t_complete[i] - res.t_start[i]
        for i in range(res.n_ranks) if res.roles[i] == "writer"
    )
    assert worker_blocked < writer_complete / 10


def test_rbio_perceived_bandwidth_exceeds_raw():
    strategy = ReducedBlockingIO(workers_per_writer=4)
    run = run_checkpoint_step(strategy, 8, payload_data(0), config=QUIET)
    res = run.result
    assert res.perceived_bandwidth > res.write_bandwidth * 10


def test_rbio_writer_file_layout_field_major():
    strategy = ReducedBlockingIO(workers_per_writer=4)
    job, _ = roundtrip(strategy, 8)
    fs = job.services["fs"]
    per, nfld, hdr = 2048, 3, 512
    fobj = fs.file("/ckpt/step000000/writer00000.vtk")
    data = fobj.read_extents(0, hdr + 4 * per * nfld)
    for member, world_rank in enumerate(range(4)):  # group 0 = ranks 0..3
        expected = payload_data(world_rank)
        for i in range(nfld):
            off = hdr + i * 4 * per + member * per
            assert data[off : off + per] == expected.fields[i].payload


def test_rbio_single_file_layout_global_field_major():
    strategy = ReducedBlockingIO(workers_per_writer=4, single_file=True)
    job, _ = roundtrip(strategy, 8)
    fs = job.services["fs"]
    per, nfld, hdr = 2048, 3, 512
    fobj = fs.file("/ckpt/step000000/all.vtk")
    data = fobj.read_extents(0, hdr + 8 * per * nfld)
    for rank in range(8):
        expected = payload_data(rank)
        for i in range(nfld):
            off = hdr + i * 8 * per + rank * per
            assert data[off : off + per] == expected.fields[i].payload


def test_rbio_isend_window_recorded_for_workers():
    strategy = ReducedBlockingIO(workers_per_writer=4)
    run = run_checkpoint_step(strategy, 8, payload_data(0), config=QUIET)
    res = run.result
    for i in range(res.n_ranks):
        if res.roles[i] == "worker":
            assert res.isend_seconds[i] > 0
        else:
            assert res.isend_seconds[i] == 0


def test_rbio_validation():
    with pytest.raises(ValueError):
        ReducedBlockingIO(workers_per_writer=1)
    with pytest.raises(ValueError):
        ReducedBlockingIO(writer_buffer=0)


def test_rbio_writer_ranks_helper():
    s = ReducedBlockingIO(workers_per_writer=64)
    assert s.writer_ranks(256) == [0, 64, 128, 192]
    assert s.n_groups(256) == 4


def test_rbio_describe():
    d = ReducedBlockingIO(workers_per_writer=32, single_file=True).describe()
    assert d["np:ng"] == "32:1"
    assert d["nf"] == 1


# ---------------------------------------------------------------------------
# Runner / multi-step
# ---------------------------------------------------------------------------

def test_multi_step_checkpoints_separate_directories():
    strategy = OneFilePerProcess(arrival_jitter=0.0)
    run = run_checkpoint_steps(strategy, 4, payload_data(0), n_steps=3,
                               config=QUIET)
    assert len(run.results) == 3
    fs = run.fs
    dirs = {p.rsplit("/", 1)[0] for p in fs.files}
    assert dirs == {f"/ckpt/step{i:06d}" for i in range(3)}


def test_result_metrics_sane():
    strategy = CollectiveIO(ranks_per_file=4)
    run = run_checkpoint_step(strategy, 8, payload_data(0), config=QUIET)
    res = run.result
    assert res.total_bytes == 8 * 3 * 2048
    assert res.overall_time > 0
    assert res.write_bandwidth > 0
    assert res.blocking_time <= res.overall_time + 1e-12


def test_deterministic_across_runs():
    strategy = ReducedBlockingIO(workers_per_writer=4)
    r1 = run_checkpoint_step(strategy, 8, payload_data(0), config=QUIET).result
    strategy2 = ReducedBlockingIO(workers_per_writer=4)
    r2 = run_checkpoint_step(strategy2, 8, payload_data(0), config=QUIET).result
    assert r1.overall_time == r2.overall_time
    assert np.array_equal(r1.t_complete, r2.t_complete)


def test_noisy_config_still_deterministic_with_same_seed():
    noisy = intrepid()
    strategy = CollectiveIO(ranks_per_file=4)
    r1 = run_checkpoint_step(strategy, 8, payload_data(0), config=noisy, seed=7).result
    strategy2 = CollectiveIO(ranks_per_file=4)
    r2 = run_checkpoint_step(strategy2, 8, payload_data(0), config=noisy, seed=7).result
    assert r1.overall_time == r2.overall_time


def test_profiler_captures_write_ops():
    strategy = OneFilePerProcess(arrival_jitter=0.0)
    run = run_checkpoint_step(strategy, 4, payload_data(0), config=QUIET)
    counts = run.profiler.op_counts()
    assert counts["create"] == 4
    assert counts["write"] == 4
    assert counts["close"] == 4
