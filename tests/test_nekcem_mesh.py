"""Tests for hex meshes, .rea/.map files, and partitioners."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nekcem import (
    HexMesh,
    box_mesh,
    partition_linear,
    partition_rcb,
    partition_stats,
    read_map,
    read_rea,
    waveguide_mesh,
    write_map,
    write_rea,
)


# ---------------------------------------------------------------------------
# HexMesh
# ---------------------------------------------------------------------------

def test_mesh_counts_and_sizes():
    m = box_mesh((4, 3, 2), ((0, 4), (0, 3), (0, 1)))
    assert m.n_elements == 24
    assert m.element_sizes == (1.0, 1.0, 0.5)
    assert m.n_gridpoints(15) == 24 * 4096


def test_element_index_roundtrip():
    m = box_mesh((3, 4, 5))
    for e in range(m.n_elements):
        assert m.element_id(*m.element_index(e)) == e


def test_element_vertices_geometry():
    m = box_mesh((2, 2, 2), ((0, 2), (0, 2), (0, 2)))
    v = m.element_vertices(0)
    assert v.min() == 0.0 and v.max() == 1.0
    v_last = m.element_vertices(m.n_elements - 1)
    assert v_last.min() == 1.0 and v_last.max() == 2.0


def test_neighbors_interior_and_boundary():
    m = box_mesh((3, 3, 3))
    center = m.element_id(1, 1, 1)
    nbrs = [m.neighbor(center, f) for f in range(6)]
    assert all(n is not None for n in nbrs)
    corner = m.element_id(0, 0, 0)
    assert m.neighbor(corner, 0) is None  # -x wall is PEC
    assert m.neighbor(corner, 1) == m.element_id(1, 0, 0)


def test_neighbors_periodic_wrap():
    m = HexMesh((4, 2, 2), ((0, 1), (0, 1), (0, 1)),
                ("periodic", "periodic", "PEC", "PEC", "PEC", "PEC"))
    first = m.element_id(0, 0, 0)
    last = m.element_id(3, 0, 0)
    assert m.neighbor(first, 0) == last
    assert m.neighbor(last, 1) == first


def test_mesh_validation():
    with pytest.raises(ValueError):
        box_mesh((0, 1, 1))
    with pytest.raises(ValueError):
        box_mesh((1, 1, 1), ((1, 0), (0, 1), (0, 1)))
    with pytest.raises(ValueError):
        HexMesh((1, 1, 1), ((0, 1),) * 3, ("PEC",) * 5 + ("bogus",))
    with pytest.raises(ValueError):
        # Unpaired periodic boundary.
        HexMesh((1, 1, 1), ((0, 1),) * 3,
                ("periodic", "PEC", "PEC", "PEC", "PEC", "PEC"))


def test_waveguide_mesh_shape():
    m = waveguide_mesh(cross_elements=2, axial_elements=8,
                       width=1.0, height=0.5, length=4.0)
    assert m.shape == (8, 2, 2)
    assert m.boundary[0] == m.boundary[1] == "periodic"
    assert m.boundary[2] == "PEC"


# ---------------------------------------------------------------------------
# .rea files
# ---------------------------------------------------------------------------

def test_rea_roundtrip_in_memory():
    m = box_mesh((2, 3, 4), ((0, 1), (0, 2), (0, 3)), order=7, dt=0.001)
    buf = io.StringIO()
    write_rea(m, buf)
    buf.seek(0)
    m2 = read_rea(buf)
    assert m2.shape == m.shape
    assert m2.bounds == m.bounds
    assert m2.boundary == m.boundary
    assert m2.params == {"order": 7, "dt": 0.001}


def test_rea_roundtrip_on_disk(tmp_path):
    m = waveguide_mesh()
    path = str(tmp_path / "wg.rea")
    write_rea(m, path)
    m2 = read_rea(path)
    assert m2.shape == m.shape
    assert m2.n_elements == m.n_elements


def test_rea_rejects_garbage():
    with pytest.raises(ValueError):
        read_rea(io.StringIO("not a rea file\n"))


def test_rea_detects_truncation():
    m = box_mesh((2, 2, 2))
    buf = io.StringIO()
    write_rea(m, buf)
    text = buf.getvalue()
    truncated = "\n".join(text.splitlines()[:-3])
    with pytest.raises(ValueError, match="truncated"):
        read_rea(io.StringIO(truncated))


# ---------------------------------------------------------------------------
# Partitioning and .map files
# ---------------------------------------------------------------------------

def test_linear_partition_balance():
    m = box_mesh((4, 4, 4))
    owners = partition_linear(m, 6)
    stats = partition_stats(owners, 6)
    assert stats["empty_ranks"] == 0
    assert stats["max"] - stats["min"] <= 1


def test_linear_partition_contiguous():
    m = box_mesh((4, 2, 1))
    owners = partition_linear(m, 4)
    assert list(owners) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_rcb_partition_balance_and_coverage():
    m = box_mesh((4, 4, 4))
    for n_ranks in (2, 3, 7, 16):
        owners = partition_rcb(m, n_ranks)
        stats = partition_stats(owners, n_ranks)
        assert stats["empty_ranks"] == 0
        assert stats["max"] - stats["min"] <= 1


def test_rcb_partition_spatial_locality():
    """RCB pieces should be spatially compact: first cut splits x halves."""
    m = box_mesh((8, 2, 2), ((0, 8), (0, 1), (0, 1)))
    owners = partition_rcb(m, 2)
    for e in range(m.n_elements):
        x = m.element_origin(e)[0]
        assert owners[e] == (0 if x < 4 else 1)


def test_partition_validation():
    m = box_mesh((2, 2, 2))
    with pytest.raises(ValueError):
        partition_linear(m, 0)
    with pytest.raises(ValueError):
        partition_linear(m, 9)
    with pytest.raises(ValueError):
        partition_rcb(m, 100)


def test_map_roundtrip(tmp_path):
    m = box_mesh((4, 4, 2))
    owners = partition_rcb(m, 5)
    path = str(tmp_path / "mesh.map")
    write_map(owners, 5, path)
    owners2, n_ranks = read_map(path)
    assert n_ranks == 5
    assert np.array_equal(owners, owners2)


def test_map_rejects_bad_owner():
    buf = io.StringIO()
    write_map(np.array([0, 1, 7]), 4, buf)
    buf.seek(0)
    with pytest.raises(ValueError, match="out of range"):
        read_map(buf)


@given(st.integers(min_value=1, max_value=32), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_partition_property_all_elements_assigned(n_ranks, which):
    m = box_mesh((4, 4, 2))
    if n_ranks > m.n_elements:
        return
    owners = (partition_linear if which % 2 == 0 else partition_rcb)(m, n_ranks)
    assert len(owners) == m.n_elements
    assert owners.min() >= 0 and owners.max() < n_ranks
    assert partition_stats(owners, n_ranks)["empty_ranks"] == 0
