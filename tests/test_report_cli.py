"""Tests for the CSV report generator CLI."""

import csv
import os

import pytest

from repro.report import FIGURES, main


def read_csv(path):
    with open(path) as f:
        return list(csv.reader(f))


def test_report_single_figure(tmp_path):
    out = str(tmp_path / "results")
    rc = main(["table1", "--out", out, "--scale", "small"])
    assert rc == 0
    rows = read_csv(os.path.join(out, "table1_perceived_bandwidth.csv"))
    assert rows[0] == ["np", "max_isend_us", "cpu_cycles", "perceived_tbps"]
    assert len(rows) == 4  # header + 3 sizes


def test_report_fig5_structure(tmp_path):
    out = str(tmp_path / "r")
    main(["fig5", "--out", out, "--scale", "small"])
    rows = read_csv(os.path.join(out, "fig5_write_bandwidth_gbps.csv"))
    assert rows[0][0] == "approach"
    assert len(rows) == 6  # header + five approaches
    for row in rows[1:]:
        for v in row[1:]:
            assert float(v) > 0


def test_report_fig8_csv(tmp_path):
    out = str(tmp_path / "r")
    main(["fig8", "--out", out, "--scale", "small"])
    rows = read_csv(os.path.join(out, "fig8_rbio_file_sweep_gbps.csv"))
    assert rows[0][0] == "np"
    assert len(rows) == 4


def test_report_distribution_csv(tmp_path):
    out = str(tmp_path / "r")
    main(["fig9", "--out", out, "--scale", "small"])
    rows = read_csv(os.path.join(out, "fig9_1pfpp_per_rank_io_time.csv"))
    assert rows[0] == ["rank", "io_time_s"]
    assert len(rows) == 1024 + 1  # smallest 'small' size + header


def test_report_unknown_figure_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["nope", "--out", str(tmp_path)])


def test_all_figures_registered():
    assert set(FIGURES) == {
        "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        "table1", "eq1", "eq2_7", "inputread",
    }


def test_report_inputread(tmp_path):
    out = str(tmp_path / "r")
    main(["inputread", "--out", out, "--scale", "small"])
    rows = read_csv(os.path.join(out, "inputread_presetup.csv"))
    assert rows[0][0] == "n_ranks"
    assert float(rows[1][-1]) > 0  # total time


# ---------------------------------------------------------------------------
# profile subcommand
# ---------------------------------------------------------------------------

PROFILE_SPEC = '{"name": "prof-demo", "grid": {"approaches": ["rbio_ng"], "np": [64]}}'


def test_profile_subcommand_prints_hotspots(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(PROFILE_SPEC)
    rc = main(["profile", str(spec), "--top", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "profiling point 0/1: rbio_ng np=64" in out
    assert "cumulative" in out  # the pstats table header
    assert "point result: overall_time=" in out


def test_profile_index_out_of_range(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(PROFILE_SPEC)
    rc = main(["profile", str(spec), "--index", "3"])
    assert rc == 2
    assert "out of range" in capsys.readouterr().err
