"""Tests for vtk legacy checkpoint files."""

import numpy as np
import pytest

from repro.nekcem import (
    MaxwellSolver,
    NekCEMApp,
    box_mesh,
    gll_hex_cells,
    read_vtk,
    write_vtk,
)


def make_points_fields(n_elements=2, order=2):
    p3 = (order + 1) ** 3
    n = n_elements * p3
    rng = np.random.default_rng(0)
    points = rng.random((n, 3))
    fields = {"Ex": rng.standard_normal(n), "Hy": rng.standard_normal(n)}
    return points, fields


def test_gll_hex_cells_counts_and_range():
    order, n_el = 3, 4
    cells = gll_hex_cells(n_el, order)
    assert cells.shape == (n_el * order**3, 8)
    assert cells.min() == 0
    assert cells.max() == n_el * (order + 1) ** 3 - 1


def test_gll_hex_cells_first_cell_connectivity():
    cells = gll_hex_cells(1, 1)  # single linear element: 1 cell, p=2
    # Corner ids of a 2x2x2 point block.
    assert set(cells[0]) == set(range(8))


def test_vtk_binary_roundtrip(tmp_path):
    points, fields = make_points_fields()
    path = str(tmp_path / "out.vtk")
    write_vtk(path, points, 2, fields, binary=True)
    back = read_vtk(path)
    assert np.allclose(back["points"], points)
    for name in fields:
        assert np.allclose(back["fields"][name], fields[name])
    assert back["cells"].shape[1] == 8


def test_vtk_ascii_roundtrip(tmp_path):
    points, fields = make_points_fields(n_elements=1)
    path = str(tmp_path / "out_ascii.vtk")
    write_vtk(path, points, 2, fields, binary=False)
    back = read_vtk(path)
    assert np.allclose(back["points"], points, atol=1e-12)
    assert np.allclose(back["fields"]["Ex"], fields["Ex"], atol=1e-12)


def test_vtk_validation(tmp_path):
    points, fields = make_points_fields()
    path = str(tmp_path / "bad.vtk")
    with pytest.raises(ValueError):
        write_vtk(path, points[:, :2], 2, fields)
    with pytest.raises(ValueError):
        write_vtk(path, points[:-1], 2, fields)  # not multiple of p^3
    with pytest.raises(ValueError):
        write_vtk(path, points, 2, {"bad": np.zeros(3)})


def test_vtk_rejects_non_vtk(tmp_path):
    path = str(tmp_path / "junk.vtk")
    with open(path, "w") as f:
        f.write("hello world\n")
    with pytest.raises(ValueError):
        read_vtk(path)


def test_app_checkpoint_file_readable_by_paraview_conventions(tmp_path):
    """The app's dump has the vtk master-header structure of Fig. 2."""
    mesh = box_mesh((2, 1, 1))
    app = NekCEMApp(mesh, order=2)
    out = app.run(n_steps=2, checkpoint_every=2, outdir=str(tmp_path))
    assert len(out["checkpoints"]) == 1
    path = out["checkpoints"][0]
    with open(path, "rb") as f:
        head = f.read(200).decode("ascii", errors="replace")
    assert head.startswith("# vtk DataFile Version")
    assert "BINARY" in head
    assert "UNSTRUCTURED_GRID" in head
    back = read_vtk(path)
    assert set(back["fields"]) == set(MaxwellSolver.COMPONENTS)
    assert len(back["points"]) == mesh.n_gridpoints(2)


def test_app_checkpoint_values_match_state(tmp_path):
    mesh = box_mesh((2, 1, 1))
    app = NekCEMApp(mesh, order=3)
    out = app.run(n_steps=3, checkpoint_every=3, outdir=str(tmp_path))
    back = read_vtk(out["checkpoints"][0])
    state = out["state"]
    p3 = 4**3
    for i, name in enumerate(MaxwellSolver.COMPONENTS):
        flat = state[i].reshape(mesh.n_elements, p3).ravel()
        assert np.allclose(back["fields"][name], flat)
