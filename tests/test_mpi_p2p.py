"""Tests for simulated MPI point-to-point communication."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Job, MPIError, run_spmd
from repro.topology import intrepid


QUIET = intrepid().quiet()


def test_send_recv_payload_roundtrip():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=64, tag=5, payload={"x": 42})
            return "sent"
        else:
            msg = yield from ctx.comm.recv(source=0, tag=5)
            return msg.payload["x"]

    results = run_spmd(main, 2, QUIET)
    assert results == {0: "sent", 1: 42}


def test_recv_any_source_any_tag():
    def main(ctx):
        if ctx.rank == 0:
            got = []
            for _ in range(3):
                msg = yield from ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append(msg.source)
            return sorted(got)
        else:
            yield from ctx.comm.send(0, nbytes=8, tag=ctx.rank)

    results = run_spmd(main, 4, QUIET)
    assert results[0] == [1, 2, 3]


def test_tag_matching_out_of_order():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, nbytes=8, tag=1, payload="first")
            yield from ctx.comm.send(1, nbytes=8, tag=2, payload="second")
        else:
            # Receive tag 2 before tag 1: filtered matching must work.
            m2 = yield from ctx.comm.recv(source=0, tag=2)
            m1 = yield from ctx.comm.recv(source=0, tag=1)
            return (m1.payload, m2.payload)

    results = run_spmd(main, 2, QUIET)
    assert results[1] == ("first", "second")


def test_isend_eager_completes_before_delivery():
    """A buffered isend's local completion precedes remote delivery."""
    nbytes = 4 << 20  # far above eager threshold; force buffered

    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(1, nbytes=nbytes, tag=0, buffered=True)
            yield req.event
            return ctx.engine.now  # local completion time
        else:
            msg = yield from ctx.comm.recv(source=0)
            return msg.delivered_at

    # Put ranks on different nodes: use 8 ranks, sender 0 / receiver 4.
    def main8(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(4, nbytes=nbytes, tag=0, buffered=True)
            yield req.event
            return ("local", ctx.engine.now)
        elif ctx.rank == 4:
            msg = yield from ctx.comm.recv(source=0)
            return ("delivered", msg.delivered_at)
        return None
        yield  # pragma: no cover

    results = run_spmd(main8, 8, QUIET)
    local_t = results[0][1]
    delivered_t = results[4][1]
    assert local_t < delivered_t
    # Local completion is roughly a memory copy: ~nbytes/membw.
    assert local_t == pytest.approx(
        QUIET.mpi_overhead + nbytes / QUIET.memory_bandwidth, rel=1e-6
    )


def test_isend_rendezvous_completes_at_delivery():
    nbytes = 4 << 20

    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(4, nbytes=nbytes, tag=0, buffered=False)
            yield req.event
            return ctx.engine.now
        elif ctx.rank == 4:
            msg = yield from ctx.comm.recv(source=0)
            return msg.delivered_at
        return None
        yield  # pragma: no cover

    results = run_spmd(main, 8, QUIET)
    assert results[0] == pytest.approx(results[4], rel=1e-9)


def test_small_message_is_eager_by_default():
    nbytes = 512  # below eager threshold (1200)

    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(4, nbytes=nbytes, tag=0)
            yield req.event
            return ctx.engine.now
        elif ctx.rank == 4:
            msg = yield from ctx.comm.recv(source=0)
            return msg.delivered_at
        return None
        yield  # pragma: no cover

    results = run_spmd(main, 8, QUIET)
    assert results[0] < results[4]


def test_waitall_collects_in_order():
    def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(source=s, tag=0) for s in (1, 2, 3)]
            msgs = yield from ctx.comm.waitall(reqs)
            return [m.payload for m in msgs]
        else:
            yield ctx.engine.timeout(float(4 - ctx.rank))  # reverse order
            yield from ctx.comm.send(0, nbytes=8, tag=0, payload=ctx.rank * 10)

    results = run_spmd(main, 4, QUIET)
    assert results[0] == [10, 20, 30]


def test_waitall_empty():
    def main(ctx):
        out = yield from ctx.comm.waitall([])
        return out

    assert run_spmd(main, 1, QUIET)[0] == []


def test_request_complete_flag():
    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(1, nbytes=8, tag=0)
            assert not req.complete
            yield req.event
            assert req.complete
        else:
            yield from ctx.comm.recv(source=0)

    run_spmd(main, 2, QUIET)


def test_isend_bad_dest_raises():
    job = Job(2, QUIET)

    def main(ctx):
        with pytest.raises(MPIError):
            ctx.comm.isend(5, nbytes=8)
        with pytest.raises(MPIError):
            ctx.comm.isend(0, nbytes=-1)
        return True
        yield  # pragma: no cover

    job.spawn(main, ranks=[0])
    res = job.run()
    assert res[0] is True


def test_message_timestamps_ordered():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(4, nbytes=1 << 16, tag=0)
        elif ctx.rank == 4:
            msg = yield from ctx.comm.recv(source=0)
            assert msg.sent_at <= msg.delivered_at
            return msg.nbytes
        return None
        yield  # pragma: no cover

    results = run_spmd(main, 8, QUIET)
    assert results[4] == 1 << 16


def test_many_to_one_incast_ordering():
    """63-into-1 pattern (the rbIO aggregation shape) delivers all messages."""
    def main(ctx):
        if ctx.rank == 0:
            total = 0
            for _ in range(ctx.comm.size - 1):
                msg = yield from ctx.comm.recv()
                total += msg.nbytes
            return total
        else:
            yield from ctx.comm.send(0, nbytes=1000 * ctx.rank, tag=0)

    n = 64
    results = run_spmd(main, n, QUIET)
    assert results[0] == 1000 * sum(range(1, n))
