"""Property-based resilience round-trips under randomized fault schedules.

Draws >= 200 seeded cases — random partition size, strategy, field
shapes, and a fault schedule generated from the registry's
``"faults.schedule"`` stream — and checks the single resilience property
on every one:

    the campaign either restores bit-identical field data on every rank,
    or raises a typed UnrecoverableCheckpointError.  Nothing in between.

Everything derives from the case index, so any failing case replays
exactly from its seed.
"""

import numpy as np
import pytest

from repro.ckpt import (
    BurstBufferIO,
    CheckpointData,
    CollectiveIO,
    Field,
    OneFilePerProcess,
    ReducedBlockingIO,
    UnrecoverableCheckpointError,
)
from repro.experiments import run_resilient_campaign
from repro.faults import FaultConfig, FaultSchedule
from repro.sim import StreamRegistry
from repro.topology import intrepid

QUIET = intrepid().quiet()
N_CASES = 200
ROOT_SEED = 20110926  # CLUSTER 2011

STRATEGY_NAMES = ("1pfpp", "coio", "rbio", "bbio")


def case_streams(i: int) -> StreamRegistry:
    return StreamRegistry(ROOT_SEED + 101 * i)


def build_case(i: int):
    """Deterministically derive one case's (strategy, np, data_fn, faults)."""
    rng = case_streams(i).stream("case")
    n_ranks = int(rng.choice([8, 16]))
    group = 4
    name = STRATEGY_NAMES[i % len(STRATEGY_NAMES)]
    if name == "1pfpp":
        strategy = OneFilePerProcess(arrival_jitter=0.0)
    elif name == "coio":
        strategy = CollectiveIO(ranks_per_file=group)
    elif name == "rbio":
        strategy = ReducedBlockingIO(workers_per_writer=group)
    else:
        strategy = BurstBufferIO(workers_per_writer=group)

    n_fields = int(rng.integers(1, 3))
    sizes = [int(rng.integers(64, 513)) for _ in range(n_fields)]

    def data_fn(rank: int) -> CheckpointData:
        drng = np.random.default_rng(ROOT_SEED + 7 * i + rank)
        fields = [
            Field(f"f{k}", sizes[k],
                  drng.integers(0, 256, size=sizes[k],
                                dtype=np.uint8).tobytes())
            for k in range(n_fields)
        ]
        return CheckpointData(fields, header_bytes=64)

    # All FS errors transient (fatal ones abort the checkpoint wave, which
    # is a different property than the restore contract probed here).
    cfg = FaultConfig(
        fs_errors=float(rng.integers(0, 3)),
        fs_stalls=float(rng.integers(0, 2)),
        stall_seconds=0.2,
        fs_fatal_fraction=0.0,
        writer_crash_prob=0.4,
        buffer_loss_prob=0.3,
        replica_corrupt_prob=0.2,
        net_degrade_prob=0.2,
        horizon=4.0,
    )
    writer_ranks = None
    if hasattr(strategy, "writer_ranks"):
        writer_ranks = strategy.writer_ranks(n_ranks)
    faults = FaultSchedule.generate(case_streams(i), n_ranks, cfg,
                                    writer_ranks=writer_ranks)
    return strategy, n_ranks, data_fn, faults


def check_case(i: int):
    strategy, n_ranks, data_fn, faults = build_case(i)
    try:
        campaign = run_resilient_campaign(
            strategy, n_ranks, data_fn, n_steps=2, faults=faults,
            config=QUIET, gap_seconds=1.5,
        )
    except UnrecoverableCheckpointError:
        return "unrecoverable"
    restored = campaign.restored
    steps = {s for s, _ in restored.values()}
    assert len(steps) == 1, f"case {i}: ranks disagreed on the generation"
    for rank in range(n_ranks):
        _step, fields = restored[rank]
        expected = [f.payload for f in data_fn(rank).fields]
        assert fields == expected, f"case {i}: rank {rank} bytes differ"
    return "restored"


@pytest.mark.parametrize("batch", range(20))
def test_fault_property_roundtrips(batch):
    """10 cases per batch x 20 batches = 200 seeded property cases."""
    for i in range(batch * 10, batch * 10 + 10):
        check_case(i)


def test_case_generation_is_deterministic():
    a = build_case(3)[3]
    b = build_case(3)[3]
    assert a == b


def test_case_mix_covers_fault_kinds():
    """The 200 generated schedules actually exercise the fault surface."""
    kinds = set()
    outcomes = set()
    for i in range(N_CASES):
        _, _, _, faults = build_case(i)
        kinds.update(s.kind for s in faults)
    assert {"fs_error", "fs_stall", "rank_crash", "buffer_loss",
            "net_degrade"} <= kinds
    # Both contract outcomes occur across the mix.
    for i in range(0, N_CASES, 7):
        outcomes.add(check_case(i))
    assert "restored" in outcomes
