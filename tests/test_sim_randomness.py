"""Unit and property tests for deterministic random streams and noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import NoiseModel, StreamRegistry


def test_same_seed_same_key_reproduces():
    a = StreamRegistry(123).stream("metadata")
    b = StreamRegistry(123).stream("metadata")
    assert np.array_equal(a.random(16), b.random(16))


def test_different_keys_independent():
    reg = StreamRegistry(123)
    a = reg.stream("metadata").random(16)
    b = reg.stream("servers").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = StreamRegistry(1).stream("x").random(16)
    b = StreamRegistry(2).stream("x").random(16)
    assert not np.array_equal(a, b)


def test_stream_cached_per_key():
    reg = StreamRegistry(0)
    assert reg.stream("k") is reg.stream("k")


def test_spawn_child_registry_is_deterministic_and_distinct():
    parent1 = StreamRegistry(7)
    parent2 = StreamRegistry(7)
    c1 = parent1.spawn("trial-0").stream("x").random(8)
    c2 = parent2.spawn("trial-0").stream("x").random(8)
    assert np.array_equal(c1, c2)
    other = parent1.spawn("trial-1").stream("x").random(8)
    assert not np.array_equal(c1, other)


def test_quiet_noise_is_identity():
    rng = np.random.default_rng(0)
    nm = NoiseModel.quiet()
    assert all(nm.factor(rng) == 1.0 for _ in range(10))
    assert np.all(nm.factors(rng, 100) == 1.0)


def test_noise_factors_positive_and_floored():
    rng = np.random.default_rng(0)
    nm = NoiseModel(sigma=2.0, floor=0.5)
    f = nm.factors(rng, 10_000)
    assert np.all(f >= 0.5)


def test_noise_scalar_matches_distribution_of_vector():
    nm = NoiseModel(sigma=0.3, outlier_prob=0.01)
    rng = np.random.default_rng(42)
    scalars = np.array([nm.factor(rng) for _ in range(5000)])
    rng2 = np.random.default_rng(43)
    vec = nm.factors(rng2, 5000)
    # Same model: medians should agree within a few percent.
    assert np.median(scalars) == pytest.approx(np.median(vec), rel=0.1)


def test_outlier_mixture_produces_heavy_tail():
    rng = np.random.default_rng(0)
    base = NoiseModel(sigma=0.1, outlier_prob=0.0)
    heavy = NoiseModel(sigma=0.1, outlier_prob=0.05, outlier_scale=5.0)
    f_base = base.factors(rng, 20_000)
    f_heavy = heavy.factors(np.random.default_rng(0), 20_000)
    assert f_heavy.max() > 4 * f_base.max()
    # Bodies remain comparable.
    assert np.median(f_heavy) == pytest.approx(np.median(f_base), rel=0.05)


def test_outlier_scale_sets_minimum_outlier_multiplier():
    rng = np.random.default_rng(1)
    nm = NoiseModel(sigma=0.0, outlier_prob=1.0, outlier_scale=3.0, outlier_shape=2.0)
    f = nm.factors(rng, 1000)
    assert np.all(f >= 3.0)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_registry_determinism_property(seed, key):
    a = StreamRegistry(seed).stream(key).random(4)
    b = StreamRegistry(seed).stream(key).random(4)
    assert np.array_equal(a, b)


@given(
    st.floats(min_value=0.0, max_value=1.5),
    st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=50, deadline=None)
def test_noise_factor_always_positive_property(sigma, outlier_prob):
    nm = NoiseModel(sigma=sigma, outlier_prob=outlier_prob)
    rng = np.random.default_rng(0)
    f = nm.factors(rng, 256)
    assert np.all(f > 0)
    assert np.all(np.isfinite(f))
