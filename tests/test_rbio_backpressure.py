"""Tests for rbIO worker flow control (the measurable-lambda extension)."""

import pytest

from repro.ckpt import ReducedBlockingIO
from repro.experiments import run_checkpoint_steps, scaled_problem
from repro.topology import intrepid

QUIET = intrepid().quiet()
N = 64
DATA = scaled_problem(N).data()


def test_validation():
    with pytest.raises(ValueError):
        ReducedBlockingIO(workers_per_writer=8, max_outstanding=0)


def test_describe_includes_flow_control():
    s = ReducedBlockingIO(workers_per_writer=8, max_outstanding=2)
    assert s.describe()["max_outstanding"] == 2


def test_unbounded_buffering_never_blocks_workers():
    """The paper's setup: back-to-back checkpoints, workers still ~free."""
    strategy = ReducedBlockingIO(workers_per_writer=8)
    run = run_checkpoint_steps(strategy, N, DATA, n_steps=3, config=QUIET)
    for res in run.results:
        assert res.blocking_time < 1e-2


def test_backpressure_blocks_workers_when_writers_saturated():
    """max_outstanding=1 with zero compute gap: from step 2 on, workers
    wait for the previous commit (lambda ~ 1)."""
    strategy = ReducedBlockingIO(workers_per_writer=8, max_outstanding=1)
    run = run_checkpoint_steps(strategy, N, DATA, n_steps=3, config=QUIET,
                               barrier_each_step=False)
    first, later = run.results[0], run.results[-1]
    # Step 0 has no backlog.
    assert first.blocking_time < 1e-2
    # Later steps block roughly a writer-commit time.
    writer_commit = first.overall_time
    assert later.blocking_time > 0.3 * writer_commit


def test_compute_gap_restores_reduced_blocking():
    """With enough computation between checkpoints the writers drain and
    lambda returns to ~0 — the paper's NekCEM operating point."""
    strategy = ReducedBlockingIO(workers_per_writer=8, max_outstanding=1)
    probe = run_checkpoint_steps(
        ReducedBlockingIO(workers_per_writer=8), N, DATA, config=QUIET
    ).result
    gap = 3.0 * probe.overall_time
    run = run_checkpoint_steps(strategy, N, DATA, n_steps=3, config=QUIET,
                               gap_seconds=gap, barrier_each_step=False)
    for res in run.results:
        assert res.blocking_time < 1e-2


def test_backpressure_data_still_correct():
    """Flow control must not corrupt the checkpoint contents."""
    from repro.ckpt import CheckpointData, Field
    from repro.mpi import Job
    from repro.storage import attach_storage

    n = 8
    strategy = ReducedBlockingIO(workers_per_writer=4, max_outstanding=1)

    def data_for(rank, step):
        body = bytes([rank * 16 + step]) * 512
        return CheckpointData([Field("f", 512, body)], header_bytes=64)

    job = Job(n, QUIET)
    attach_storage(job)

    def main(ctx):
        oks = []
        for step in range(3):
            d = data_for(ctx.rank, step)
            yield from ctx.comm.barrier()
            yield from strategy.checkpoint(ctx, d, step, "/ckpt")
        yield from ctx.comm.barrier()
        for step in range(3):
            d = data_for(ctx.rank, step)
            fields = yield from strategy.restore(ctx, d, step, "/ckpt")
            oks.append(fields == [f.payload for f in d.fields])
        return all(oks)

    job.spawn(main)
    assert all(job.run().values())
