"""Tests for CheckpointData, FileLayout, and RankReport/CheckpointResult."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import CheckpointData, CheckpointResult, Field, FileLayout, RankReport


# ---------------------------------------------------------------------------
# Field / CheckpointData
# ---------------------------------------------------------------------------

def test_field_validation():
    with pytest.raises(ValueError):
        Field("x", -1)
    with pytest.raises(ValueError):
        Field("x", 4, b"too long")
    Field("x", 4, b"1234")  # ok


def test_data_totals_and_flags():
    d = CheckpointData([Field("a", 10, b"x" * 10), Field("b", 5, b"y" * 5)],
                       header_bytes=100)
    assert d.total_bytes == 15
    assert d.n_fields == 2
    assert d.field_sizes == (10, 5)
    assert d.has_payload
    assert d.concatenated_payload() == b"x" * 10 + b"y" * 5


def test_data_missing_payload():
    d = CheckpointData([Field("a", 10), Field("b", 5, b"y" * 5)])
    assert not d.has_payload
    assert d.concatenated_payload() is None


def test_data_duplicate_names_rejected():
    with pytest.raises(ValueError):
        CheckpointData([Field("a", 1), Field("a", 1)])


def test_data_negative_header_rejected():
    with pytest.raises(ValueError):
        CheckpointData([Field("a", 1)], header_bytes=-1)


def test_synthetic_builder():
    d = CheckpointData.synthetic([100, 200], names=["u", "v"])
    assert d.field_sizes == (100, 200)
    assert [f.name for f in d.fields] == ["u", "v"]


def test_nekcem_like_shape():
    d = CheckpointData.nekcem_like(1000)
    assert d.n_fields == 7
    assert [f.name for f in d.fields][0] == "geometry"
    # ~142 bytes per point total.
    assert d.total_bytes == 94 * 1000 + 6 * 8 * 1000


# ---------------------------------------------------------------------------
# FileLayout
# ---------------------------------------------------------------------------

def test_layout_uniform_offsets():
    lo = FileLayout.uniform(100, [10, 20], 3)
    # Section 0 (size 10 each): members at 100, 110, 120.
    assert [lo.block_offset(0, m) for m in range(3)] == [100, 110, 120]
    # Section 1 starts after section 0 (30 bytes).
    assert lo.section_range(1) == (130, 190)
    assert [lo.block_offset(1, m) for m in range(3)] == [130, 150, 170]
    assert lo.total_size == 100 + 30 + 60


def test_layout_ragged_members():
    lo = FileLayout(0, [[5, 1], [10, 2], [15, 3]])
    assert lo.block_offset(0, 0) == 0
    assert lo.block_offset(0, 1) == 5
    assert lo.block_offset(0, 2) == 15
    assert lo.section_range(0) == (0, 30)
    assert lo.block_offset(1, 0) == 30
    assert lo.member_total(1) == 12


def test_layout_validation():
    with pytest.raises(ValueError):
        FileLayout(-1, [[1]])
    with pytest.raises(ValueError):
        FileLayout(0, [])
    with pytest.raises(ValueError):
        FileLayout(0, [[1, 2], [3]])  # ragged field counts
    with pytest.raises(ValueError):
        FileLayout(0, [[-1]])
    lo = FileLayout(0, [[1]])
    with pytest.raises(ValueError):
        lo.block_offset(1, 0)
    with pytest.raises(ValueError):
        lo.block_offset(0, 1)
    with pytest.raises(ValueError):
        lo.member_total(5)


@given(
    st.integers(min_value=0, max_value=1000),
    st.lists(st.lists(st.integers(min_value=0, max_value=100),
                      min_size=2, max_size=4),
             min_size=1, max_size=6).filter(
        lambda ls: len({len(x) for x in ls}) == 1),
)
@settings(max_examples=100, deadline=None)
def test_layout_blocks_tile_file_property(header, sizes):
    """Blocks are disjoint, ordered, and exactly cover [header, total)."""
    lo = FileLayout(header, sizes)
    spans = []
    for f in range(lo.n_fields):
        for m in range(lo.n_members):
            o = lo.block_offset(f, m)
            s = lo.block_size(f, m)
            if s:
                spans.append((o, o + s))
    spans.sort()
    pos = header
    for a, b in spans:
        assert a == pos
        pos = b
    assert pos == lo.total_size


# ---------------------------------------------------------------------------
# RankReport / CheckpointResult
# ---------------------------------------------------------------------------

def reports_fixture():
    return {
        0: RankReport(0, "writer", 1.0, 5.0, 5.0, 100),
        1: RankReport(1, "worker", 1.0, 1.1, 1.1, 100, isend_seconds=0.1),
        2: RankReport(2, "worker", 1.0, 1.2, 1.2, 100, isend_seconds=0.2),
    }


def test_result_metrics():
    res = CheckpointResult("rbio", reports_fixture())
    assert res.total_bytes == 300
    assert res.overall_time == pytest.approx(4.0)
    assert res.write_bandwidth == pytest.approx(300 / 4.0)
    # Blocking excludes the dedicated writer.
    assert res.blocking_time == pytest.approx(0.2)
    assert res.writer_ranks == [0]
    assert sorted(res.worker_ranks) == [1, 2]


def test_result_perceived_metrics():
    res = CheckpointResult("rbio", reports_fixture())
    assert res.perceived_time == pytest.approx(0.2)
    assert res.perceived_bandwidth == pytest.approx(200 / 0.2)


def test_result_all_writers_blocking_fallback():
    reports = {0: RankReport(0, "writer", 0.0, 3.0, 3.0, 10)}
    res = CheckpointResult("x", reports)
    assert res.blocking_time == 3.0
    assert res.perceived_time == 0.0
    assert res.perceived_bandwidth == 0.0


def test_result_empty_rejected():
    with pytest.raises(ValueError):
        CheckpointResult("x", {})


def test_rank_report_properties():
    r = RankReport(3, "collective", 1.0, 2.5, 4.0, 42)
    assert r.io_time == pytest.approx(3.0)
    assert r.blocked_seconds == pytest.approx(1.5)


def test_result_per_rank_io_time():
    res = CheckpointResult("rbio", reports_fixture())
    io = res.per_rank_io_time
    assert io[0] == pytest.approx(4.0)
    assert io[1] == pytest.approx(0.1)


def test_result_summary_keys():
    s = CheckpointResult("rbio", reports_fixture()).summary()
    for key in ("approach", "n_ranks", "total_gb", "overall_time_s",
                "bandwidth_gbps", "blocking_time_s", "n_writers"):
        assert key in s
