"""Tests for the campaign DSL: parsing, validation, expansion, shim parity."""

import json

import pytest

from repro.campaign import CampaignSpec, SpecError, expand, run_point
from repro.campaign.shim import (
    failover_campaign,
    failover_metrics,
    faults_sweep_campaign,
    figure_campaign,
    prefetch_campaign,
    rate_rows,
)
from repro.ckpt import CheckpointRule, ReducedBlockingIO, checkpoint_instants
from repro.experiments import (
    clear_cache,
    get_run,
    resilience_sweep,
    run_resilient_campaign,
    scaled_problem,
)
from repro.faults import FaultSchedule, FaultSpec


TINY = {
    "name": "tiny",
    "seed": 5,
    "grid": {"approaches": ["rbio_ng", "coio_64"], "np": [128, 256]},
}


# ---------------------------------------------------------------------------
# Checkpoint rules (muscle3-style every/at/start/stop)
# ---------------------------------------------------------------------------

def test_checkpoint_rule_every_and_at():
    # Periodic rules fire from 'start' (inclusive, default 0) onwards.
    assert CheckpointRule(every=2.0).instants(7.0) == [0.0, 2.0, 4.0, 6.0]
    assert CheckpointRule(every=2.0, start=1.0, stop=5.0).instants(9.0) == \
        [1.0, 3.0, 5.0]
    assert CheckpointRule(at=(3.0, 1.0)).instants(2.0) == [1.0]


def test_checkpoint_rule_validation():
    with pytest.raises(ValueError):
        CheckpointRule()  # neither every nor at
    with pytest.raises(ValueError):
        CheckpointRule(every=1.0, at=(2.0,))  # both
    with pytest.raises(ValueError):
        CheckpointRule(every=-1.0)


def test_checkpoint_instants_merges_and_scales():
    rules = (CheckpointRule(every=2.0), CheckpointRule(at=(2.0, 5.0)))
    assert checkpoint_instants(rules, 6.0) == (0.0, 2.0, 4.0, 5.0, 6.0)
    # Step-axis rules: instants in steps, scaled to seconds (0.5 s/step).
    assert checkpoint_instants((CheckpointRule(at=(2.0, 4.0)),), 6.0,
                               scale=0.5) == (1.0, 2.0)
    assert checkpoint_instants((), 4.0, at_end=True) == (4.0,)


# ---------------------------------------------------------------------------
# Spec parsing and validation
# ---------------------------------------------------------------------------

def test_round_trip_dict_spec_dict():
    spec = CampaignSpec.from_dict(TINY)
    again = CampaignSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.to_dict() == spec.to_dict()
    assert again.campaign_id == spec.campaign_id


def test_round_trip_full_featured_spec():
    d = {
        "name": "full",
        "seed": 11,
        "machine": {"preset": "intrepid_quiet",
                    "overrides": {"server_disk_bandwidth": 2.0e9}},
        "grid": {"approaches": ["rbio_ng"], "np": [128],
                 "fault_rates": [0.0, 2.0]},
        "checkpoint": {"horizon": 6.0, "at_end": True,
                       "wallclock_time": [{"every": 2.0, "start": 1.0}],
                       "solver_steps": [{"at": [4]}]},
        "faults": {"generate": {"horizon": 6.0, "stall_seconds": 0.25}},
        "resume": {"enabled": True},
        "fs_type": "lustre",
        "basedir": "/scratch/ckpt",
    }
    spec = CampaignSpec.from_dict(d)
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


def test_unknown_key_suggests_fix():
    with pytest.raises(SpecError, match="aproaches.*did you mean.*approaches"):
        CampaignSpec.from_dict({"name": "x",
                                "grid": {"aproaches": ["rbio_ng"],
                                         "np": [128]}})


def test_error_messages_name_the_path():
    with pytest.raises(SpecError, match=r"grid\.np\[1\]"):
        CampaignSpec.from_dict({"name": "x",
                                "grid": {"approaches": ["rbio_ng"],
                                         "np": [128, "lots"]}})
    with pytest.raises(SpecError, match=r"grid\.approaches\[0\].*unknown"):
        CampaignSpec.from_dict({"name": "x",
                                "grid": {"approaches": ["rbioo"],
                                         "np": [128]}})
    with pytest.raises(SpecError, match=r"checkpoint\.horizon"):
        CampaignSpec.from_dict({"name": "x", "grid": TINY["grid"],
                                "checkpoint": {"at_end": True}})
    with pytest.raises(SpecError, match=r"faults\.specs\[0\].*rank_crash"):
        CampaignSpec.from_dict({"name": "x", "grid": TINY["grid"],
                                "faults": {"specs": [{"kind": "rank_crash"}]}})
    with pytest.raises(SpecError, match="fs_type.*nfs"):
        CampaignSpec.from_dict({"name": "x", "grid": TINY["grid"],
                                "fs_type": "nfs"})
    with pytest.raises(SpecError, match=r"machine\.overrides.*did you mean"):
        CampaignSpec.from_dict({"name": "x", "grid": TINY["grid"],
                                "machine": {
                                    "overrides": {"server_disk_bandwith": 1}}})


def test_mutually_exclusive_sections_rejected():
    with pytest.raises(SpecError, match="not both"):
        CampaignSpec.from_dict({"name": "x", "grid": TINY["grid"],
                                "steps": {"n_steps": 2},
                                "checkpoint": {"horizon": 4.0,
                                               "at_end": True}})
    with pytest.raises(SpecError, match="fault_rates"):
        CampaignSpec.from_dict({
            "name": "x",
            "grid": {"approaches": ["rbio_ng"], "np": [128],
                     "fault_rates": [1.0]},
            "faults": {"specs": [{"kind": "fs_stall", "time": 1.0}]}})


def test_checkpoint_rules_compile_to_steps_and_gaps():
    spec = CampaignSpec.from_dict({
        "name": "x", "grid": TINY["grid"],
        "checkpoint": {"horizon": 10.0, "at_end": True,
                       "wallclock_time": [{"every": 4.0}],
                       "solver_steps": [{"at": [6]}], "t_step": 1.0}})
    # wallclock every 4 -> 0, 4, 8; solver at 6 (t_step 1) -> 6; end -> 10.
    n_steps, gaps = spec.steps_and_gaps()
    assert n_steps == 5
    assert gaps == (4.0, 2.0, 2.0, 2.0)
    # No rules within the horizon is an error, not a silent no-op.
    empty = CampaignSpec.from_dict({
        "name": "x", "grid": TINY["grid"],
        "checkpoint": {"horizon": 1.0,
                       "wallclock_time": [{"every": 5.0, "start": 5.0}]}})
    with pytest.raises(SpecError, match="no checkpoints"):
        empty.steps_and_gaps()


def test_from_yaml_round_trip():
    yaml = pytest.importorskip("yaml")
    spec = CampaignSpec.from_dict(TINY)
    again = CampaignSpec.from_yaml(yaml.safe_dump(spec.to_dict()))
    assert again == spec


def test_from_file_json(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps(TINY))
    assert CampaignSpec.from_file(str(path)) == CampaignSpec.from_dict(TINY)


# ---------------------------------------------------------------------------
# Deterministic expansion and content hashes
# ---------------------------------------------------------------------------

def test_expansion_deterministic_and_ordered():
    spec = CampaignSpec.from_dict(TINY)
    a, b = expand(spec), expand(spec)
    assert a.hashes() == b.hashes()
    assert [(p.approach, p.n_ranks) for p in a.points] == [
        ("rbio_ng", 128), ("rbio_ng", 256),
        ("coio_64", 128), ("coio_64", 256)]
    assert len(set(a.hashes())) == 4  # every point distinct


def test_content_hash_sensitive_to_inputs():
    base = expand(CampaignSpec.from_dict(TINY)).hashes()
    reseeded = expand(CampaignSpec.from_dict({**TINY, "seed": 6})).hashes()
    quiet = expand(CampaignSpec.from_dict(
        {**TINY, "machine": {"preset": "intrepid_quiet"}})).hashes()
    assert set(base).isdisjoint(reseeded)
    assert set(base).isdisjoint(quiet)


def test_expansion_skips_infeasible_file_counts():
    spec = figure_campaign("f8", ["rbio_nf64", "rbio_nf512"], [128, 1024])
    expanded = expand(spec)
    assert [(p.approach, p.n_ranks) for p in expanded.points] == [
        ("rbio_nf64", 128), ("rbio_nf64", 1024), ("rbio_nf512", 1024)]
    assert [(s.approach, s.n_ranks) for s in expanded.skipped] == [
        ("rbio_nf512", 128)]
    assert "nf=512" in expanded.skipped[0].reason


def test_tam_axis_parses_validates_and_round_trips():
    spec = CampaignSpec.from_dict(
        {**TINY, "grid": {**TINY["grid"], "tam": ["off", "auto"]}})
    assert spec.grid.tam == ("off", "auto")
    assert CampaignSpec.from_dict(spec.to_dict()) == spec
    assert spec.to_dict()["grid"]["tam"] == ["off", "auto"]
    # Off-only axes still round-trip; an absent axis stays absent.
    assert "tam" not in CampaignSpec.from_dict(TINY).to_dict()["grid"]
    with pytest.raises(SpecError, match=r"grid\.tam\[0\].*always"):
        CampaignSpec.from_dict(
            {**TINY, "grid": {**TINY["grid"], "tam": ["always"]}})
    with pytest.raises(SpecError, match="tamm.*did you mean.*tam"):
        CampaignSpec.from_dict(
            {**TINY, "grid": {**TINY["grid"], "tamm": ["auto"]}})


def test_tam_axis_expansion_order_and_hashes():
    spec = CampaignSpec.from_dict(
        {**TINY, "grid": {**TINY["grid"], "tam": ["off", "require"]}})
    points = expand(spec).points
    # tam is the innermost grid axis: approach-major, then np, then tam.
    assert [(p.approach, p.n_ranks, p.tam) for p in points] == [
        ("rbio_ng", 128, "off"), ("rbio_ng", 128, "require"),
        ("rbio_ng", 256, "off"), ("rbio_ng", 256, "require"),
        ("coio_64", 128, "off"), ("coio_64", 128, "require"),
        ("coio_64", 256, "off"), ("coio_64", 256, "require")]
    hashes = expand(spec).hashes()
    assert len(set(hashes)) == 8  # tam participates in the content hash
    # tam="off" points hash identically to a spec without the axis at all,
    # so figure caches stay shared.
    base = expand(CampaignSpec.from_dict(TINY)).hashes()
    assert set(base) < set(hashes)
    assert not points[0].is_figure_point or points[0].tam == "off"
    assert not points[1].is_figure_point  # tam points never reuse fig caches


def test_tam_point_reports_fabric_counters():
    spec = CampaignSpec.from_dict({
        "name": "tam-smoke", "seed": 5,
        "grid": {"approaches": ["rbio_ng"], "np": [128],
                 "tam": ["require"]}})
    (point,) = expand(spec).points
    assert point.tam == "require" and not point.is_figure_point
    out = run_point(point)
    assert out["tam"] == "require"
    assert out["tam_msgs"] > 0
    assert out["tam_coalesce_ratio"] > 1.0
    assert out["fabric_msgs_intra"] > 0 and out["fabric_msgs_inter"] > 0
    assert out["fabric_bytes_inter"] > 0


def test_rate_axis_expansion_matches_resilience_convention():
    spec = faults_sweep_campaign("r", 128, (0.0, 4.0), 2, 1.0, horizon=2.0)
    points = expand(spec).points
    assert [p.fault_rate for p in points] == [0.0, 4.0]
    assert not points[0].faults  # rate 0 -> empty schedule
    assert len(points[1].faults) > 0
    # Schedules are drawn per rate index, deterministically.
    again = expand(spec).points
    assert again[1].faults == points[1].faults


# ---------------------------------------------------------------------------
# Byte-compatibility with the legacy sweeps (the shim contract)
# ---------------------------------------------------------------------------

def test_figure_point_matches_get_run():
    clear_cache()
    spec = figure_campaign("f", ["rbio_ng"], [128], seed=5)
    (point,) = expand(spec).points
    assert point.is_figure_point
    out = run_point(point)
    res = get_run("rbio_ng", 128, seed=5).result
    assert out["overall_time"] == res.overall_time
    assert out["write_bandwidth"] == res.write_bandwidth
    clear_cache()


def test_prefetch_campaign_warms_figure_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "c"))
    clear_cache()
    spec = figure_campaign("f", ["rbio_ng"], [128], seed=5)
    prefetch_campaign(spec, n_workers=1)
    entries = list((tmp_path / "c").iterdir())
    assert len(entries) == 1
    # get_run is now a warm hit: same disk entry, no new files.
    get_run("rbio_ng", 128, seed=5)
    assert list((tmp_path / "c").iterdir()) == entries
    clear_cache()


def test_rate_rows_bit_identical_to_resilience_sweep():
    rates = (0.0, 2.0)
    legacy = resilience_sweep(
        ReducedBlockingIO(workers_per_writer=64), 128,
        scaled_problem(128).data(), rates, n_steps=2, gap_seconds=1.0,
        horizon=2.0)
    spec = faults_sweep_campaign("r", 128, rates, 2, 1.0, horizon=2.0)
    assert rate_rows(spec, n_workers=1) == legacy


def test_failover_metrics_bit_identical_to_legacy_campaign():
    faults = FaultSchedule((FaultSpec(kind="rank_crash", time=1.0, rank=0),))
    campaign = run_resilient_campaign(
        ReducedBlockingIO(workers_per_writer=64), 128,
        scaled_problem(128).data(), n_steps=2, faults=faults,
        gap_seconds=1.0)
    spec = failover_campaign("f", 128, 2, 1.0)
    out = failover_metrics(spec, n_workers=1)
    assert out == {
        "restored_step": campaign.restored_step,
        "failovers": campaign.fault_report["by_kind"].get(
            "writer_failover", 0),
        "overall_time": campaign.results[-1].overall_time,
        "crashed_roles": campaign.results[-1].roles.count("crashed"),
    }


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------

def test_cli_expand_and_run(tmp_path, capsys):
    from repro.campaign.cli import main

    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "name": "cli-tiny", "seed": 5,
        "grid": {"approaches": ["rbio_ng"], "np": [128]}}))
    assert main(["expand", str(path)]) == 0
    out = capsys.readouterr().out
    assert "cli-tiny" in out and "rbio_ng" in out
    assert main(["run", str(path), "-w", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "cli-tiny"
    assert len(payload["results"]) == 1
    assert payload["results"][0]["approach"] == "rbio_ng"


def test_report_cli_delegates_campaign_subcommand(tmp_path, capsys):
    from repro.report import main

    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "name": "via-report",
        "grid": {"approaches": ["rbio_ng"], "np": [128]}}))
    assert main(["campaign", "expand", str(path)]) == 0
    assert "via-report" in capsys.readouterr().out


def test_cli_rejects_bad_spec(tmp_path):
    from repro.campaign.cli import main

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"name": "x"}))
    with pytest.raises(SystemExit, match="grid"):
        main(["expand", str(path)])
