"""Differential harness for incremental (delta) checkpointing.

Every strategy × fault-matrix cell runs twice on an evolving workload —
once with ``delta="off"`` (the paper-fidelity full write) and once with
the content-defined-chunking delta path — and the two runs must agree
bit for bit on everything observable by the application:

- the generation the coordinated resilient restore picks,
- the restored field bytes on every rank (also checked against the
  workload's ground-truth state at that step),
- the logical ``RunResult`` figures (``ranks``, ``roles``,
  ``bytes_local``) — time-derived figures legitimately differ, because
  the delta path ships fewer physical bytes.

On top of the differential contract, every manifest the delta run left
on the PFS is audited: each chunk's CRC32 recomputed from the stored
file bytes must equal the manifest-declared CRC.  A seeded mutation
sweep then flips one chunk of one generation on disk and asserts the
corruption is caught by CRC verification and recovered by falling back
along the parent chain — never served silently.
"""

import re

import numpy as np
import pytest

from repro.buffers import as_bytes
from repro.ckpt import (
    BurstBufferIO,
    ChunkingParams,
    CollectiveIO,
    EvolvingData,
    Manifest,
    ManifestError,
    OneFilePerProcess,
    ReducedBlockingIO,
    UnrecoverableCheckpointError,
    delta_stats,
)
from repro.experiments import run_resilient_campaign
from repro.faults import FaultSchedule, FaultSpec
from repro.staging import StagingConfig
from repro.topology import intrepid

QUIET = intrepid().quiet()
NP = 16          # 2 groups of 8 for the grouped strategies
GROUP = 8
N_STEPS = 3
GAP = 2.0        # step 1 starts ~2 s in, after any time<=1 fault lands
PPR = 300        # evolving workload points per rank

#: Small chunks so a ~20 KB rank image still yields a real chunk stream.
CHUNKING = ChunkingParams(min_size=256, avg_size=1024, max_size=4096)

#: A quarter of each rank's state mutates per step (contiguous region).
#: Small header so per-file fixed costs don't swamp the tiny delta scale.
DATA = EvolvingData.mutating(PPR, mutated_fraction=0.25, seed=5,
                             header_bytes=256)

STRATEGIES = ["1pfpp", "coio", "coio_nf1", "rbio", "rbio_nf1", "bbio"]


def make_strategy(name: str, delta: str):
    if name == "1pfpp":
        s = OneFilePerProcess(arrival_jitter=0.0)
    elif name == "coio":
        s = CollectiveIO(ranks_per_file=GROUP)
    elif name == "coio_nf1":
        s = CollectiveIO(ranks_per_file=None)
    elif name == "rbio":
        s = ReducedBlockingIO(workers_per_writer=GROUP)
    elif name == "rbio_nf1":
        s = ReducedBlockingIO(workers_per_writer=GROUP, single_file=True)
    elif name == "bbio":
        s = BurstBufferIO(workers_per_writer=GROUP,
                          staging=StagingConfig(replicate=True))
    else:
        raise AssertionError(name)
    if delta != "off":
        s.configure_delta(delta, chunking=CHUNKING)
    return s


FAULT_CELLS = {
    "none": FaultSchedule(),
    # Two transient write errors: absorbed by bounded retry everywhere.
    "transient_fs": FaultSchedule((
        FaultSpec(kind="fs_error", time=0.0, op="write", count=2,
                  transient=True),
    )),
    # Writer of group 1 (rank 8) dies between the generations.
    "writer_crash": FaultSchedule((
        FaultSpec(kind="rank_crash", time=1.0, rank=8),
    )),
    # Group 0's burst buffer device is lost mid-campaign.
    "buffer_loss": FaultSchedule((
        FaultSpec(kind="buffer_loss", time=1.0, rank=0),
    )),
    # Group 1's partner replica of the newest generation is corrupted
    # after the campaign settles, before the restart.
    "replica_corrupt": FaultSchedule((
        FaultSpec(kind="replica_corrupt", time=50.0, group=1,
                  step=N_STEPS - 1),
    )),
}


def run_cell(strategy_name: str, fault_name: str, delta: str):
    return run_resilient_campaign(
        make_strategy(strategy_name, delta), NP, DATA,
        n_steps=N_STEPS, faults=FAULT_CELLS[fault_name],
        config=QUIET, gap_seconds=GAP,
    )


def expected_fields(rank: int, step: int) -> list[bytes]:
    return [f.payload for f in DATA.bind(rank).at_step(step).fields]


_STEP_DIR = re.compile(r"/step\d{6}/")


def audit_manifests(job, strict: bool) -> int:
    """Recompute every manifest-declared chunk CRC from the stored bytes.

    Returns the number of chunks checked.  ``strict=False`` skips
    manifests a fault left unparseable (the restore path votes those
    generations down through the same :class:`ManifestError`).
    """
    fs = job.services["fs"]
    checked = 0
    for path in sorted(fs.files):
        if not path.endswith(".manifest"):
            continue
        blob = as_bytes(fs.files[path].read_extents(0, fs.files[path].size))
        try:
            manifest = Manifest.from_bytes(blob)
        except ManifestError:
            if strict:
                raise
            continue
        data_path = path[: -len(".manifest")]
        for section in manifest.sections:
            for chunk in section.chunks:
                src = _STEP_DIR.sub(f"/step{chunk.src_step:06d}/", data_path)
                piece = fs.files[src].read_extents(chunk.src_offset,
                                                   chunk.length)
                assert piece.crc32() == chunk.crc, (
                    f"{path}: chunk at {chunk.offset} fails its CRC")
                checked += 1
    return checked


# ---------------------------------------------------------------------------
# The strategy × fault differential matrix
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fault_name", sorted(FAULT_CELLS))
@pytest.mark.parametrize("strategy_name", STRATEGIES)
def test_matrix_cell_differential(strategy_name, fault_name):
    try:
        off = run_cell(strategy_name, fault_name, "off")
    except UnrecoverableCheckpointError:
        off = None
    delta_stats.reset()
    try:
        on = run_cell(strategy_name, fault_name, "auto")
    except UnrecoverableCheckpointError:
        on = None

    # Same outcome class: both restore, or both refuse loudly.
    assert (off is None) == (on is None)
    if off is None:
        return

    # Same generation, bit-identical restored state, matching ground truth.
    assert off.restored_step == on.restored_step
    step = off.restored_step
    for rank in range(NP):
        step_off, fields_off = off.restored[rank]
        step_on, fields_on = on.restored[rank]
        assert step_off == step_on == step
        want = expected_fields(rank, step)
        assert [as_bytes(f) for f in fields_off] == want
        assert [as_bytes(f) for f in fields_on] == want

    # Logical RunResult figures agree (delta changes physics, not logic).
    for a, b in zip(off.results, on.results):
        assert a.roles == b.roles
        assert np.array_equal(a.ranks, b.ranks)
        assert np.array_equal(a.bytes_local, b.bytes_local)

    # Every surviving manifest's declared CRCs match the stored bytes,
    # and the delta run actually deduplicated (or at least chunked).
    audit_manifests(on.run.job, strict=(fault_name == "none"))
    snap = delta_stats.snapshot()
    assert snap["chunk_misses"] > 0
    if fault_name in ("none", "transient_fs"):
        # Unfaulted chains dedup every generation after the first.
        assert snap["chunk_hits"] > 0
    if snap["chunk_hits"]:
        # Whenever any delta generation committed, it paid off: a fault
        # that skips later generations (e.g. a dead collective member)
        # leaves only the full gen-0 write plus manifest overhead.
        assert snap["bytes_to_pfs"] < snap["bytes_logical"]


def test_delta_off_leaves_counters_untouched():
    delta_stats.reset()
    run_cell("1pfpp", "none", "off")
    assert delta_stats.snapshot() == {
        "bytes_logical": 0, "bytes_to_pfs": 0,
        "chunk_hits": 0, "chunk_misses": 0,
    }


def test_dedup_beats_full_write_in_steady_state():
    delta_stats.reset()
    run_resilient_campaign(
        make_strategy("rbio", "require"), NP, DATA, n_steps=6,
        config=QUIET, gap_seconds=GAP, restore=False,
    )
    snap = delta_stats.snapshot()
    # Generations 1..5 reuse the ~75% untouched chunks of their parent,
    # so across the chain hits overtake the full gen-0 misses.
    assert snap["chunk_hits"] > snap["chunk_misses"]
    assert snap["bytes_to_pfs"] < 0.7 * snap["bytes_logical"]


def test_delta_runs_are_deterministic():
    """Two identical delta campaigns: bit-identical figures and PFS image."""

    def image(campaign):
        fs = campaign.run.job.services["fs"]
        return {
            path: (f.size, as_bytes(f.read_extents(0, f.size)))
            for path, f in sorted(fs.files.items())
        }

    a = run_cell("coio", "none", "require")
    b = run_cell("coio", "none", "require")
    for ra, rb in zip(a.results, b.results):
        for attr in ("t_start", "t_blocked_end", "t_complete", "bytes_local",
                     "isend_seconds"):
            assert np.array_equal(getattr(ra, attr), getattr(rb, attr)), attr
    assert image(a) == image(b)
    assert a.restored == b.restored


# ---------------------------------------------------------------------------
# Seeded mutation sweep: on-disk chunk flips are caught and recovered
# ---------------------------------------------------------------------------

def _restore_main(ctx, strategy, steps, basedir):
    template = DATA.bind(ctx.rank).template()
    yield from ctx.comm.barrier()
    step, fields = yield from strategy.restore_resilient(
        ctx, template, steps, basedir=basedir)
    return step, fields


@pytest.mark.parametrize("seed", range(5))
def test_mutated_chunk_is_caught_and_parent_chain_recovers(seed):
    """Flip one stored chunk of generation 1; CRC must catch it and the
    restore must fall back along the chain, never serving the flipped
    bytes."""
    strategy = make_strategy("1pfpp", "require")
    campaign = run_resilient_campaign(
        strategy, NP, DATA, n_steps=N_STEPS, config=QUIET,
        gap_seconds=GAP, restore=False,
    )
    fs = campaign.run.job.services["fs"]

    # Pick a victim chunk stored in generation 1 that generation 2 still
    # deduplicates against (src_step == 1 in gen 2's manifest), seeded,
    # and corrupt its stored bytes: both generations now depend on it.
    rng = np.random.default_rng((901, seed))
    chunks = []
    for rank in rng.permutation(NP):
        path = strategy.rank_path("/ckpt", 1, int(rank))
        newest = strategy.rank_path("/ckpt", 2, int(rank)) + ".manifest"
        blob = as_bytes(fs.files[newest].read_extents(
            0, fs.files[newest].size))
        manifest = Manifest.from_bytes(blob)
        chunks = [c for s in manifest.sections for c in s.chunks
                  if c.src_step == 1]
        if chunks:  # gen 2 may have re-mutated all of this rank's gen-1 run
            break
    assert chunks, "no rank deduplicates gen 2 against gen 1"
    victim = chunks[int(rng.integers(0, len(chunks)))]
    fobj = fs.files[path]
    stored = as_bytes(fobj.read_extents(victim.src_offset, victim.length))
    flipped = bytes([stored[0] ^ 0xFF]) + stored[1:]
    # A later extent shadows earlier ones — this is on-disk bit damage.
    fobj.extents.append((victim.src_offset, flipped))

    campaign.run.job.spawn(_restore_main, strategy,
                           list(range(N_STEPS - 1, -1, -1)), "/ckpt")
    restored = campaign.run.job.run()

    # Generations 2 and 1 both reference the damaged generation-1 file
    # (gen 2 deduplicates against it), so the vote must land on gen 0.
    steps = {s for s, _ in restored.values()}
    assert steps == {0}, "corruption was not fenced to the parent chain"
    for r in range(NP):
        _step, fields = restored[r]
        assert [as_bytes(f) for f in fields] == expected_fields(r, 0)
