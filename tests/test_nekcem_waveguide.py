"""Tests for the TE10 waveguide mode (the production workload's physics)."""

import numpy as np
import pytest

from repro.nekcem import MaxwellSolver, run_parallel_solver, waveguide_mesh
from repro.nekcem.maxwell import waveguide_te10_fields, waveguide_te10_omega
from repro.topology import intrepid

QUIET = intrepid().quiet()


def small_guide():
    return waveguide_mesh(cross_elements=2, axial_elements=4,
                          width=1.0, height=0.5, length=2.0)


def test_dispersion_relation():
    w = waveguide_te10_omega(width=1.0, length=2.0, n_periods=1)
    beta = 2 * np.pi / 2.0
    assert w == pytest.approx(np.sqrt(beta**2 + np.pi**2))
    # Above the cutoff frequency of the guide.
    assert w > np.pi / 1.0


def test_omega_validation():
    with pytest.raises(ValueError):
        waveguide_te10_omega(0.0, 1.0)
    with pytest.raises(ValueError):
        waveguide_te10_omega(1.0, 1.0, n_periods=0)


def test_te10_satisfies_discrete_maxwell():
    """rhs(exact TE10) ~ d/dt(exact TE10) spectrally."""
    mesh = small_guide()
    s = MaxwellSolver(mesh, order=7)
    X, Y, Z = s.coordinates()
    t0, eps = 0.2, 1e-6
    state = waveguide_te10_fields(mesh.bounds, X, Y, Z, t0)
    dstate = [
        (p - m) / (2 * eps)
        for p, m in zip(
            waveguide_te10_fields(mesh.bounds, X, Y, Z, t0 + eps),
            waveguide_te10_fields(mesh.bounds, X, Y, Z, t0 - eps),
        )
    ]
    r = s.rhs(state, t0)
    err = max(np.abs(a - b).max() for a, b in zip(r, dstate))
    assert err < 1e-4


def test_te10_boundary_conditions():
    """Tangential E vanishes on PEC walls, normal H too."""
    mesh = small_guide()
    s = MaxwellSolver(mesh, order=5)
    X, Y, Z = s.coordinates()
    state = waveguide_te10_fields(mesh.bounds, X, Y, Z, 0.3)
    Ex, Ey, Ez, Hx, Hy, Hz = state
    # y walls (width axis): Ez tangential -> 0; Hy normal -> 0.
    wall = np.isclose(Y, 0.0) | np.isclose(Y, 1.0)
    assert np.abs(Ez[wall]).max() < 1e-12
    assert np.abs(Hy[wall]).max() < 1e-12
    # z walls: tangential E = (Ex, Ey) = 0; Hz normal = 0 identically.
    assert np.abs(Ex).max() == 0 and np.abs(Ey).max() == 0
    assert np.abs(Hz).max() == 0


def test_te10_propagates_one_period():
    mesh = small_guide()
    s = MaxwellSolver(mesh, order=6)
    X, Y, Z = s.coordinates()
    state = waveguide_te10_fields(mesh.bounds, X, Y, Z, 0.0)
    e0 = s.energy(state)
    w = waveguide_te10_omega(1.0, 2.0)
    dt = s.max_dt()
    n = int(round((2 * np.pi / w) / dt))
    state, t = s.run(state, 0.0, dt, n)
    err = s.l2_error(state, waveguide_te10_fields(mesh.bounds, X, Y, Z, t))
    assert err < 1e-5
    assert abs(s.energy(state) - e0) / e0 < 1e-6


def test_te10_parallel_slabs_match_serial():
    mesh = waveguide_mesh(cross_elements=2, axial_elements=4,
                          width=1.0, height=0.5, length=2.0)
    order = 4
    s = MaxwellSolver(mesh, order)
    dt = s.max_dt()
    X, Y, Z = s.coordinates()
    state = waveguide_te10_fields(mesh.bounds, X, Y, Z, 0.0)
    state, _ = s.run(state, 0.0, dt, 6)
    res = run_parallel_solver(2, mesh, order, 6, dt=dt, config=QUIET,
                              init="te10")
    glob = res.global_state()
    for a, b in zip(state, glob):
        assert np.array_equal(a, b)


def test_unknown_init_rejected():
    mesh = small_guide()
    with pytest.raises(ValueError, match="unknown init"):
        run_parallel_solver(2, mesh, 2, 1, config=QUIET, init="bogus")
