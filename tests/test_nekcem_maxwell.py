"""Tests for the SEDG Maxwell solver: convergence, conservation, stability."""

import numpy as np
import pytest

from repro.nekcem import MaxwellSolver, box_mesh
from repro.nekcem.maxwell import cavity_fields


@pytest.fixture(scope="module")
def small_mesh():
    return box_mesh((2, 2, 2))


def test_coordinates_cover_domain(small_mesh):
    s = MaxwellSolver(small_mesh, 4)
    X, Y, Z = s.coordinates()
    assert X.min() == 0.0 and X.max() == 1.0
    assert Y.min() == 0.0 and Y.max() == 1.0
    assert Z.min() == 0.0 and Z.max() == 1.0


def test_derivative_exact_on_polynomials(small_mesh):
    s = MaxwellSolver(small_mesh, 5)
    X, Y, Z = s.coordinates()
    assert np.allclose(s._deriv(X**3, 0), 3 * X**2, atol=1e-10)
    assert np.allclose(s._deriv(Y**2, 1), 2 * Y, atol=1e-10)
    assert np.allclose(s._deriv(Z**4, 2), 4 * Z**3, atol=1e-10)


def test_rhs_consistent_with_exact_mode(small_mesh):
    """rhs(exact cavity state) ~ d/dt(exact cavity state), spectrally."""
    errs = []
    for order in (4, 8):
        s = MaxwellSolver(small_mesh, order)
        t0, eps = 0.3, 1e-6
        state = s.cavity_mode(t0)
        dstate = [(p - m) / (2 * eps)
                  for p, m in zip(s.cavity_mode(t0 + eps), s.cavity_mode(t0 - eps))]
        r = s.rhs(state, t0)
        errs.append(max(np.abs(a - b).max() for a, b in zip(r, dstate)))
    assert errs[0] < 0.2
    assert errs[1] < errs[0] / 100  # spectral decay


def test_central_flux_energy_conserving_semidiscrete(small_mesh):
    s = MaxwellSolver(small_mesh, 6, alpha=0.0)
    rng = np.random.default_rng(3)
    state = [rng.standard_normal((2, 2, 2, 7, 7, 7)) for _ in range(6)]
    r = s.rhs(state, 0.0)
    W = s._quad_weights()
    rate = sum(float(np.einsum("abcijk,ijk->", a * b, W)) for a, b in zip(state, r))
    norm = sum(float(np.einsum("abcijk,ijk->", a * a, W)) for a in state)
    assert abs(rate) < 1e-10 * norm * 100


def test_upwind_flux_dissipative_semidiscrete(small_mesh):
    s = MaxwellSolver(small_mesh, 6, alpha=1.0)
    rng = np.random.default_rng(3)
    state = [rng.standard_normal((2, 2, 2, 7, 7, 7)) for _ in range(6)]
    r = s.rhs(state, 0.0)
    W = s._quad_weights()
    rate = sum(float(np.einsum("abcijk,ijk->", a * b, W)) for a, b in zip(state, r))
    assert rate < 0


def test_cavity_mode_spectral_convergence(small_mesh):
    errors = {}
    for order in (2, 4, 6):
        s = MaxwellSolver(small_mesh, order)
        state = s.cavity_mode(0.0)
        dt = s.max_dt()
        n = int(round(0.5 / dt))
        state, t = s.run(state, 0.0, dt, n)
        errors[order] = s.l2_error(state, s.cavity_mode(t))
    assert errors[4] < errors[2] / 20
    assert errors[6] < errors[4] / 20
    assert errors[6] < 1e-5


def test_long_run_stability_upwind(small_mesh):
    """Energy must not grow over a long integration (stability)."""
    s = MaxwellSolver(small_mesh, 5, alpha=1.0)
    state = s.cavity_mode(0.0)
    e0 = s.energy(state)
    dt = s.max_dt()
    state, _ = s.run(state, 0.0, dt, int(round(4.0 / dt)))
    e1 = s.energy(state)
    assert e1 <= e0 * (1 + 1e-9)
    assert e1 > 0.5 * e0  # and not over-dissipated


def test_central_flux_conserves_energy_fully_discrete(small_mesh):
    s = MaxwellSolver(small_mesh, 5, alpha=0.0)
    state = s.cavity_mode(0.0)
    e0 = s.energy(state)
    dt = s.max_dt(0.5)
    state, _ = s.run(state, 0.0, dt, int(round(2.0 / dt)))
    assert abs(s.energy(state) - e0) / e0 < 1e-6


def test_cavity_energy_constant_in_exact_solution(small_mesh):
    s = MaxwellSolver(small_mesh, 8)
    energies = [s.energy(s.cavity_mode(t)) for t in (0.0, 0.2, 0.5, 0.9)]
    assert np.allclose(energies, energies[0], rtol=1e-8)


def test_cavity_fields_global_vs_local_slab(small_mesh):
    """cavity_fields with global bounds on a slab matches the restriction."""
    full = MaxwellSolver(small_mesh, 4)
    X, Y, Z = full.coordinates()
    ref = cavity_fields(small_mesh.bounds, X, Y, Z, 0.2)
    # Right half slab.
    slab = box_mesh((1, 2, 2), ((0.5, 1.0), (0, 1), (0, 1)))
    s2 = MaxwellSolver(slab, 4)
    Xs, Ys, Zs = s2.coordinates()
    got = cavity_fields(small_mesh.bounds, Xs, Ys, Zs, 0.2)
    for c in range(6):
        assert np.allclose(got[c], ref[c][1:], atol=1e-12)


def test_periodic_boundary_plane_wave():
    """A z-polarized plane wave travels through a periodic x box."""
    mesh = box_mesh((4, 1, 1), ((0, 2), (0, 1), (0, 1)),
                    ("periodic", "periodic", "periodic", "periodic",
                     "periodic", "periodic"))
    order = 8
    s = MaxwellSolver(mesh, order, alpha=1.0)
    X, _, _ = s.coordinates()
    k = 2 * np.pi / 2.0  # one wavelength over the box
    state = s.zero_fields()
    state[2] = np.cos(k * X)        # Ez
    state[4] = -np.cos(k * X)       # Hy: rightward-travelling wave
    e0 = s.energy(state)
    dt = s.max_dt()
    period = 2.0  # time to cross the (c=1) box once
    n = int(round(period / dt))
    state, t = s.run(state, 0.0, dt, n)
    exact_Ez = np.cos(k * (X - t))
    err = np.abs(state[2] - exact_Ez).max()
    assert err < 5e-3
    assert abs(s.energy(state) - e0) / e0 < 1e-3


def test_max_dt_shrinks_with_order(small_mesh):
    dts = [MaxwellSolver(small_mesh, order).max_dt() for order in (2, 4, 8)]
    assert dts[0] > dts[1] > dts[2]


def test_solver_validation(small_mesh):
    with pytest.raises(ValueError):
        MaxwellSolver(small_mesh, 0)
    with pytest.raises(ValueError):
        MaxwellSolver(small_mesh, 4, alpha=2.0)


def test_n_dof(small_mesh):
    s = MaxwellSolver(small_mesh, 3)
    assert s.n_dof == 8 * 64
