"""Smoke-run every benchmark module at the minimal scale tier.

The benchmarks under ``benchmarks/`` are the repository's figure/table
regeneration harness and normally run under pytest-benchmark at paper or
small scale.  This test imports each module with
``REPRO_BENCH_SCALE=smoke`` and executes its test functions with a stub
``benchmark`` fixture, so a plain tier-1 run catches import errors, API
drift, and assertion rot in every bench without paying benchmark
runtimes.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))


class _BenchmarkStub:
    """Minimal stand-in for the pytest-benchmark fixture."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1,
                 warmup_rounds=0, setup=None):
        return fn(*args, **(kwargs or {}))


def _purge_bench_modules() -> None:
    for name in [m for m in sys.modules
                 if m == "_common" or m.startswith("bench_")]:
        del sys.modules[name]


@pytest.fixture()
def smoke_bench_env(monkeypatch):
    """Import benches fresh under the smoke scale tier, clean up after."""
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
    monkeypatch.syspath_prepend(str(BENCH_DIR))
    _purge_bench_modules()
    yield
    _purge_bench_modules()


def test_bench_modules_discovered():
    assert len(BENCH_MODULES) >= 16
    assert "bench_ext_staging" in BENCH_MODULES
    assert "bench_dataplane" in BENCH_MODULES


@pytest.mark.parametrize("module_name", BENCH_MODULES)
def test_bench_smoke(module_name, smoke_bench_env):
    mod = importlib.import_module(module_name)
    fns = [getattr(mod, name) for name in sorted(dir(mod))
           if name.startswith("test_") and callable(getattr(mod, name))]
    assert fns, f"{module_name} defines no test functions"
    for fn in fns:
        fn(_BenchmarkStub())
