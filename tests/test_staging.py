"""Unit tests for the staging subsystem (buffer, drain, replication, model)."""

import math

import pytest

from repro.sim import Engine, Pipe
from repro.staging import (
    BurstBuffer,
    DrainScheduler,
    MultiLevelModel,
    PartnerReplicator,
    StagedPackage,
    StagingConfig,
    StagingError,
    TierSpec,
    attach_staging,
    staging_of,
)


# ---------------------------------------------------------------------------
# StagingConfig
# ---------------------------------------------------------------------------

def test_config_defaults_valid():
    cfg = StagingConfig()
    assert cfg.placement == "ion"
    assert cfg.capacity_bytes == 4 * 1024**3
    assert not cfg.replicate


@pytest.mark.parametrize("kwargs", [
    {"placement": "pfs"},
    {"capacity_bytes": 0},
    {"device_bandwidth": 0.0},
    {"drain_bandwidth": -1.0},
    {"drain_chunk": 0},
    {"high_watermark": 0.0},
    {"high_watermark": 1.5},
    {"replica_shift": 0},
])
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        StagingConfig(**kwargs)


def test_config_none_watermark_is_hard_cap():
    cfg = StagingConfig(high_watermark=None)
    assert cfg.high_watermark is None


# ---------------------------------------------------------------------------
# BurstBuffer
# ---------------------------------------------------------------------------

def test_buffer_reserve_and_free_accounting():
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=100, device_bandwidth=1e9)

    def proc():
        yield from buf.reserve(60)
        assert buf.used == 60
        assert buf.free_bytes == 40
        buf.free(60)
        assert buf.used == 0

    eng.process(proc())
    eng.run()
    assert buf.stalls == 0


def test_buffer_reserve_blocks_until_free():
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=100, device_bandwidth=1e9)
    admitted = []

    def first():
        yield from buf.reserve(80)
        yield eng.timeout(5.0)
        buf.free(80)

    def second():
        yield eng.timeout(1.0)
        yield from buf.reserve(50)
        admitted.append(eng.now)

    eng.process(first())
    eng.process(second())
    eng.run()
    assert admitted == [5.0]
    assert buf.stalls == 1
    assert buf.stall_seconds == pytest.approx(4.0)


def test_buffer_reserve_fifo_no_small_bypass():
    """A small request queued behind a big one must not jump the queue."""
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=100, device_bandwidth=1e9)
    order = []

    def holder():
        yield from buf.reserve(90)
        yield eng.timeout(10.0)
        buf.free(90)

    def want(name, nbytes, arrive):
        yield eng.timeout(arrive)
        yield from buf.reserve(nbytes)
        order.append(name)

    eng.process(holder())
    eng.process(want("big", 60, 1.0))
    eng.process(want("small", 5, 2.0))
    eng.run()
    assert order == ["big", "small"]


def test_buffer_rejects_oversized_package():
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=100, device_bandwidth=1e9)
    with pytest.raises(StagingError):
        # Oversized reservation raises before the generator ever yields.
        list(buf.reserve(101))


def test_buffer_bad_free_raises():
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=100, device_bandwidth=1e9)
    with pytest.raises(StagingError):
        buf.free(1)


def test_buffer_write_takes_device_time():
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=1 << 30,
                      device_bandwidth=100.0)

    def proc():
        yield buf.write(200)

    eng.process(proc())
    eng.run()
    assert eng.now == pytest.approx(2.0)


def test_buffer_link_is_pipelined_with_device():
    """Ingest over a slower link is bound by the link, not the sum."""
    eng = Engine()
    link = Pipe(eng, 50.0)
    buf = BurstBuffer(eng, "bb", capacity_bytes=1 << 30,
                      device_bandwidth=100.0, link=link)

    def proc():
        yield buf.write(200)

    eng.process(proc())
    eng.run()
    assert eng.now == pytest.approx(4.0)  # 200 B / 50 B/s, not 2 + 4


def test_buffer_drain_read_skips_link():
    eng = Engine()
    link = Pipe(eng, 50.0)
    buf = BurstBuffer(eng, "bb", capacity_bytes=1 << 30,
                      device_bandwidth=100.0, link=link)

    def proc():
        yield buf.read(200, via_link=False)

    eng.process(proc())
    eng.run()
    assert eng.now == pytest.approx(2.0)  # device only


def test_buffer_stage_unstage_residency():
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=1 << 20,
                      device_bandwidth=1e9)
    pkg = StagedPackage(eng, step=3, group=1, path="/ckpt/x", nbytes=64)
    buf.stage(pkg)
    assert buf.resident[(3, 1)] is pkg
    buf.unstage(pkg)
    assert (3, 1) not in buf.resident


# ---------------------------------------------------------------------------
# DrainScheduler
# ---------------------------------------------------------------------------

class _FakeFSClient:
    """Records write calls; completes instantly."""

    def __init__(self, engine):
        self.engine = engine
        self.writes = []
        self.created = []
        self.closed = []

    def create(self, path):
        self.created.append(path)
        return iter(())  # empty generator: completes immediately
        yield  # pragma: no cover

    def write(self, handle, pos, nbytes, payload=None):
        self.writes.append((pos, nbytes))
        return
        yield  # pragma: no cover

    def close(self, handle):
        self.closed.append(handle)
        return
        yield  # pragma: no cover


def test_drain_frees_buffer_and_triggers_event():
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=1 << 20,
                      device_bandwidth=1e9)
    fsc = _FakeFSClient(eng)
    cfg = StagingConfig(drain_chunk=256)
    drain = DrainScheduler(eng, lambda rank: fsc, cfg)

    def producer():
        yield from buf.reserve(1000)
        yield buf.write(1000)
        pkg = StagedPackage(eng, 0, 0, "/ckpt/step000000/writer00000.vtk",
                            1000)
        buf.stage(pkg)
        drain.enqueue(0, buf, pkg)
        yield pkg.drained
        assert buf.used == 0
        assert (0, 0) not in buf.resident

    eng.process(producer())
    eng.run()
    assert drain.packages_drained == 1
    assert drain.bytes_drained == 1000
    # 1000 B in 256 B chunks -> 4 bursts.
    assert [n for _, n in fsc.writes] == [256, 256, 256, 232]
    assert fsc.created == ["/ckpt/step000000/writer00000.vtk"]


def test_drain_trickle_paces_to_target_rate():
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=1 << 20,
                      device_bandwidth=1e12)
    fsc = _FakeFSClient(eng)
    cfg = StagingConfig(drain_bandwidth=100.0, drain_chunk=100,
                        high_watermark=None)
    drain = DrainScheduler(eng, lambda rank: fsc, cfg)

    def producer():
        yield from buf.reserve(1000)
        pkg = StagedPackage(eng, 0, 0, "/x", 1000)
        buf.stage(pkg)
        drain.enqueue(0, buf, pkg)
        yield pkg.drained

    eng.process(producer())
    eng.run()
    # 1000 B at 100 B/s hard trickle cap -> ~10 s.
    assert eng.now == pytest.approx(10.0, rel=0.05)


def test_drain_parked_process_does_not_block_run():
    """After the queue empties, engine.run() terminates."""
    eng = Engine()
    buf = BurstBuffer(eng, "bb", capacity_bytes=1 << 20,
                      device_bandwidth=1e9)
    drain = DrainScheduler(eng, lambda rank: _FakeFSClient(eng),
                           StagingConfig())

    def producer():
        yield from buf.reserve(10)
        pkg = StagedPackage(eng, 0, 0, "/x", 10)
        drain.enqueue(0, buf, pkg)
        yield pkg.drained

    eng.process(producer())
    eng.run()  # would hang if the parked drain held a live timer
    assert drain.backlog == 0


# ---------------------------------------------------------------------------
# PartnerReplicator
# ---------------------------------------------------------------------------

class _FakeFabric:
    def __init__(self, engine):
        self.engine = engine
        self.transfers = []

    def transfer(self, src, dst, nbytes):
        self.transfers.append((src, dst, nbytes))
        return self.engine.timeout(0.0)


def test_partner_group_wraps_around():
    eng = Engine()
    rep = PartnerReplicator(eng, _FakeFabric(eng), lambda r: None, shift=1)
    assert rep.partner_group(0, 4) == 1
    assert rep.partner_group(3, 4) == 0


def test_partner_group_requires_two_groups():
    eng = Engine()
    rep = PartnerReplicator(eng, _FakeFabric(eng), lambda r: None)
    with pytest.raises(StagingError):
        rep.partner_group(0, 1)


def test_replicate_stores_and_evicts_old_replica():
    eng = Engine()
    partner = BurstBuffer(eng, "bb", capacity_bytes=1000,
                          device_bandwidth=1e9)
    fabric = _FakeFabric(eng)
    rep = PartnerReplicator(eng, fabric, lambda rank: partner)

    def proc():
        old = StagedPackage(eng, 0, 2, "/a", 600)
        yield from rep.replicate(old, src_rank=0, partner_rank=64)
        assert partner.replicas[2].step == 0
        assert partner.used == 600
        # Replicating step 1 for the same group evicts step 0's copy
        # first, so both fit in a 1000 B device.
        new = StagedPackage(eng, 1, 2, "/b", 600)
        yield from rep.replicate(new, src_rank=0, partner_rank=64)
        assert partner.replicas[2].step == 1
        assert partner.used == 600

    eng.process(proc())
    eng.run()
    assert [(s, d) for s, d, _ in fabric.transfers] == [(0, 64), (0, 64)]
    assert rep.find_replica(64, group=2, step=1) is not None
    assert rep.find_replica(64, group=2, step=0) is None


# ---------------------------------------------------------------------------
# MultiLevelModel
# ---------------------------------------------------------------------------

def test_tier_spec_young_interval():
    t = TierSpec("pfs", write_seconds=50.0, read_seconds=50.0,
                 failure_rate=1 / 86400)
    assert t.young_interval() == pytest.approx(math.sqrt(2 * 50.0 * 86400))
    assert t.mtbf == pytest.approx(86400)


def test_tier_spec_zero_rate_never_checkpoints():
    t = TierSpec("pfs", write_seconds=50.0, read_seconds=50.0,
                 failure_rate=0.0)
    assert t.young_interval() == math.inf


def test_single_tier_matches_young_efficiency():
    w, r, lam = 50.0, 50.0, 1 / 86400
    m = MultiLevelModel.single_tier(w, r, lam)
    tau = math.sqrt(2 * w / lam)
    expected = 1.0 / (1.0 + w / tau + lam * (r + tau / 2))
    assert m.efficiency() == pytest.approx(expected)
    assert 0.9 < m.efficiency() < 1.0


def test_staged_model_beats_flat_pfs():
    """Absorbing frequent node failures in a fast tier wins."""
    lam_node, lam_sys = 1 / 21600, 1 / 604800
    flat = MultiLevelModel.single_tier(50.0, 50.0, lam_node + lam_sys)
    staged = MultiLevelModel.staged(
        buffer_write=2.0, buffer_read=2.0,
        pfs_write=50.0, pfs_read=50.0,
        node_failure_rate=lam_node, system_failure_rate=lam_sys,
    )
    assert staged.efficiency() > flat.efficiency()
    assert staged.improvement_over(flat) > 1.0


def test_model_expected_runtime_scales_solve_time():
    m = MultiLevelModel.single_tier(10.0, 10.0, 1 / 3600)
    assert m.expected_runtime(1000.0) == pytest.approx(1000.0 / m.efficiency())


def test_model_tier_lookup():
    m = MultiLevelModel.staged(2.0, 2.0, 50.0, 50.0, 1 / 21600, 1 / 604800)
    assert m.tier("pfs").write_seconds == 50.0
    with pytest.raises(KeyError):
        m.tier("nope")


# ---------------------------------------------------------------------------
# StagingService
# ---------------------------------------------------------------------------

def test_attach_staging_and_lookup():
    from repro.mpi import Job
    from repro.storage import attach_storage
    from repro.topology import intrepid

    job = Job(8, intrepid().quiet())
    attach_storage(job)
    assert staging_of(job) is None
    svc = attach_staging(job, StagingConfig())
    assert staging_of(job) is svc
    # One ION buffer shared by the whole (single-pset) job.
    b0 = svc.buffer_for(0)
    b7 = svc.buffer_for(7)
    assert b0 is b7
    assert svc.stats()["stalls"] == 0


def test_node_placement_gives_private_buffers():
    from repro.mpi import Job
    from repro.storage import attach_storage
    from repro.topology import intrepid

    config = intrepid().quiet()
    job = Job(8, config)
    attach_storage(job)
    svc = attach_staging(job, StagingConfig(placement="node"))
    per_node = config.cores_per_node
    assert svc.buffer_for(0) is svc.buffer_for(per_node - 1)
    assert svc.buffer_for(0) is not svc.buffer_for(per_node)
    # Node-local buffers have no collective-network link stage.
    assert svc.buffer_for(0).link is None
