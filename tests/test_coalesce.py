"""Symmetry-aware rank coalescing must be *exact*, not approximate.

Every test runs the same experiment twice — ``coalesce="off"`` (full SPMD)
and ``coalesce="require"`` (plan mandatory) — and asserts bit-identical
results: per-rank report arrays, roles, file-system statistics.  Runs use
the default (noisy) GPFS model on purpose: any divergence in event ordering
would desynchronize the noise RNG draw sequence and show up here.

Strategies without a valid plan (1PFPP's per-rank jitter, coIO's per-member
offsets, flow-controlled rbIO/bbIO) must fall back to the uncoalesced path
under ``coalesce="auto"``.
"""

import numpy as np
import pytest

from repro.ckpt import (
    BurstBufferIO,
    CheckpointData,
    CollectiveIO,
    Field,
    OneFilePerProcess,
    ReducedBlockingIO,
)
from repro.experiments import run_checkpoint_step, run_checkpoint_steps

PER_FIELD = 4096


def shared_data(n_fields: int = 3, payload: bool = True) -> CheckpointData:
    """One CheckpointData object shared by every rank (the symmetric case)."""
    rng = np.random.default_rng(7)
    fields = []
    for i in range(n_fields):
        body = (rng.integers(0, 256, size=PER_FIELD, dtype=np.uint8).tobytes()
                if payload else None)
        fields.append(Field(f"f{i}", PER_FIELD, body))
    return CheckpointData(fields, header_bytes=512)


def run_pair(strategy, n_ranks, data, **kwargs):
    off = run_checkpoint_steps(strategy, n_ranks, data, seed=11,
                               coalesce="off", **kwargs)
    on = run_checkpoint_steps(strategy, n_ranks, data, seed=11,
                              coalesce="require", **kwargs)
    return off, on


def assert_identical(off, on):
    assert len(off.results) == len(on.results)
    for a, b in zip(off.results, on.results):
        assert a.roles == b.roles
        assert np.array_equal(a.ranks, b.ranks)
        # Bit-compatibility: exact float equality, no tolerance.
        for attr in ("t_start", "t_blocked_end", "t_complete", "bytes_local",
                     "isend_seconds"):
            assert np.array_equal(getattr(a, attr), getattr(b, attr)), attr
        assert a.fs_stats == b.fs_stats
    assert sorted(off.fs.files) == sorted(on.fs.files)


# ---------------------------------------------------------------------------
# rbIO / bbIO: coalescible (workers in a group are symmetric)
# ---------------------------------------------------------------------------

def test_rbio_single_step_exact():
    strategy = ReducedBlockingIO(workers_per_writer=8)
    off, on = run_pair(strategy, 32, shared_data())
    assert_identical(off, on)


def test_rbio_multi_step_with_gap_exact():
    strategy = ReducedBlockingIO(workers_per_writer=8)
    off, on = run_pair(strategy, 32, shared_data(), n_steps=3,
                       gap_seconds=0.5)
    assert_identical(off, on)


def test_rbio_no_per_step_barrier_exact():
    strategy = ReducedBlockingIO(workers_per_writer=8)
    off, on = run_pair(strategy, 32, shared_data(), n_steps=3,
                       gap_seconds=0.5, barrier_each_step=False)
    assert_identical(off, on)


def test_rbio_shared_file_exact():
    strategy = ReducedBlockingIO(workers_per_writer=8, single_file=True)
    off, on = run_pair(strategy, 32, shared_data())
    assert_identical(off, on)


def test_rbio_ragged_last_group_exact():
    # 32 ranks, groups of 12: last group is writer 24 + workers 25..31.
    strategy = ReducedBlockingIO(workers_per_writer=12)
    off, on = run_pair(strategy, 32, shared_data())
    assert_identical(off, on)


def test_rbio_file_bytes_identical():
    strategy = ReducedBlockingIO(workers_per_writer=4)
    off, on = run_pair(strategy, 16, shared_data())
    for path, fobj in off.fs.files.items():
        other = on.fs.files[path]
        assert fobj.size == other.size, path
        assert fobj.read_extents(0, fobj.size) == \
            other.read_extents(0, other.size), path


def test_bbio_exact_without_flow_control():
    strategy = BurstBufferIO(workers_per_writer=8, max_outstanding=None)
    off, on = run_pair(strategy, 32, shared_data(payload=False), n_steps=2,
                       gap_seconds=0.5)
    assert_identical(off, on)


def test_coalesce_spawns_fewer_processes():
    strategy = ReducedBlockingIO(workers_per_writer=8)
    plan = strategy.coalesce_plan(64)
    assert plan is not None
    # 8 groups of 7 workers each -> 6 replayed per group eliminated.
    assert plan.n_replayed == 8 * 6
    assert plan.replayed_ranks().isdisjoint(plan.rep_members())


# ---------------------------------------------------------------------------
# Auto-disable: configurations that would diverge fall back, exactly
# ---------------------------------------------------------------------------

def test_flow_control_disables_plan():
    assert ReducedBlockingIO(workers_per_writer=8,
                             max_outstanding=2).coalesce_plan(32) is None
    assert BurstBufferIO(workers_per_writer=8).coalesce_plan(32) is None


def test_flow_control_require_raises():
    strategy = ReducedBlockingIO(workers_per_writer=8, max_outstanding=2)
    with pytest.raises(ValueError, match="no plan"):
        run_checkpoint_step(strategy, 32, shared_data(), coalesce="require")


def test_per_rank_data_builder_disables_coalescing():
    # A callable builder may hand each rank different data: never coalesce.
    strategy = ReducedBlockingIO(workers_per_writer=8)
    builder = lambda rank: shared_data()  # noqa: E731
    with pytest.raises(ValueError, match="no plan"):
        run_checkpoint_step(strategy, 32, builder, coalesce="require")


def test_1pfpp_and_coio_offer_no_plan():
    assert OneFilePerProcess().coalesce_plan(32) is None
    assert CollectiveIO().coalesce_plan(32) is None


@pytest.mark.parametrize("strategy", [
    OneFilePerProcess(),
    CollectiveIO(),
    ReducedBlockingIO(workers_per_writer=8, max_outstanding=2),
])
def test_auto_equals_off_when_no_plan(strategy):
    data = shared_data(payload=False)
    off = run_checkpoint_step(strategy, 16, data, seed=3, coalesce="off")
    auto = run_checkpoint_step(strategy, 16, data, seed=3, coalesce="auto")
    assert_identical(off, auto)


def test_bad_coalesce_value_rejected():
    with pytest.raises(ValueError, match="auto/off/require"):
        run_checkpoint_step(ReducedBlockingIO(workers_per_writer=8), 16,
                            shared_data(), coalesce="yes")
