#!/usr/bin/env python
"""Perf-regression gate: compare BENCH_*.json records against baselines.

Every benchmark writes its headline metrics to ``BENCH_<name>.json`` (see
``benchmarks/_common.bench_record``).  This gate compares a fresh set of
records against the committed baselines in ``benchmarks/baselines/`` and
fails (exit 1) when any gated metric drifts outside the tolerance band
(default +/-25%), turning perf regressions into hard CI failures instead
of slow drift.

Metric classes
--------------
*Deterministic* metrics — event counts, bytes copied/checkpointed, buffer
allocations, copies-per-byte ratios, reduction factors, simulated
bandwidths and virtual times — are pure functions of the code and the
scale tier, so they are gated unconditionally: on identical code they
match the baseline exactly, and a drift beyond tolerance in *either*
direction means behavior changed and the baseline must be re-examined
(regenerate with ``--update`` when the change is intended).

*Wall-clock* metrics (``wall_seconds``, ``events_per_second``,
``recorded_at``-adjacent timings) depend on the host and are skipped by
default; set ``PERF_GATE_WALL=1`` (or pass ``--wall``) on quiet, dedicated
runners to gate them too.  Wall metrics are gated *one-sided*: only a
regression fails (throughput below the band for ``*_per_second``, time
above the band for ``wall``/``elapsed``) — getting faster is never a
violation, so speedups don't demand a synchronized baseline refresh.

Usage
-----
    python tools/perf_gate.py [--baseline-dir benchmarks/baselines]
                              [--current-dir .] [--tolerance 0.25]
                              [--wall] [--update] [names...]

With no ``names``, every ``BENCH_<name>.json`` present in the baseline
directory is checked; a missing current record is a failure (the bench
stopped running).  ``--update`` copies the current records over the
baselines instead of checking (for intentional perf changes).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path

#: Leaf-key substrings marking host-dependent (wall-clock) metrics.
WALL_MARKERS = ("wall", "per_second", "elapsed", "host_seconds")

#: Wall-metric substrings where *larger* is better (throughput rates);
#: every other wall metric is a duration, where smaller is better.
HIGHER_BETTER_MARKERS = ("per_second",)


def is_wall_metric(key: str) -> bool:
    """Whether a leaf metric key names a host-time-dependent value."""
    k = key.lower()
    return any(m in k for m in WALL_MARKERS)


def is_higher_better(key: str) -> bool:
    """Whether a wall metric improves upward (rate) vs downward (duration)."""
    k = key.lower()
    return any(m in k for m in HIGHER_BETTER_MARKERS)


def iter_leaves(node, prefix=""):
    """Yield ``(dotted_path, value)`` for every numeric leaf in a record."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from iter_leaves(node[key], f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield prefix, float(node)


def compare_record(name: str, baseline: dict, current: dict,
                   tolerance: float, gate_wall: bool) -> list[str]:
    """All tolerance violations between one baseline/current record pair."""
    problems = []
    if baseline.get("scale") != current.get("scale"):
        return [f"{name}: scale mismatch — baseline {baseline.get('scale')!r}"
                f" vs current {current.get('scale')!r} (set REPRO_BENCH_SCALE"
                " to the baseline tier before benching)"]
    base_leaves = dict(iter_leaves(baseline.get("metrics", {})))
    cur_leaves = dict(iter_leaves(current.get("metrics", {})))
    for path, base in base_leaves.items():
        leaf = path.rsplit(".", 1)[-1]
        wall = is_wall_metric(leaf)
        if wall and not gate_wall:
            continue
        if path not in cur_leaves:
            problems.append(f"{name}: metric {path} vanished from current record")
            continue
        cur = cur_leaves[path]
        if base == 0.0:
            if abs(cur) > 1e-9:
                problems.append(f"{name}: {path} moved off zero to {cur:g}")
            continue
        drift = (cur - base) / abs(base)
        if wall:
            # One-sided: only a regression counts.  Rates regress downward,
            # durations regress upward.
            regressed = (drift < -tolerance if is_higher_better(leaf)
                         else drift > tolerance)
            if regressed:
                problems.append(
                    f"{name}: {path} regressed {drift:+.1%} past the "
                    f"{tolerance:.0%} band (baseline {base:g}, current {cur:g})"
                )
        elif abs(drift) > tolerance:
            problems.append(
                f"{name}: {path} drifted {drift:+.1%} past the "
                f"{tolerance:.0%} band (baseline {base:g}, current {cur:g})"
            )
    return problems


def load_record(path: Path) -> dict:
    with open(path) as f:
        return json.load(f)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("names", nargs="*",
                    help="bench names to gate (default: every baseline)")
    ap.add_argument("--baseline-dir", default="benchmarks/baselines",
                    type=Path)
    ap.add_argument("--current-dir", default=".", type=Path,
                    help="where the fresh BENCH_*.json records were written")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative drift band (default 0.25 = +/-25%%)")
    ap.add_argument("--wall", action="store_true",
                    help="also gate wall-clock metrics "
                         "(default: only with PERF_GATE_WALL=1)")
    ap.add_argument("--update", action="store_true",
                    help="refresh baselines from current records and exit")
    args = ap.parse_args(argv)
    gate_wall = args.wall or os.environ.get("PERF_GATE_WALL") == "1"

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if args.names:
        wanted = {f"BENCH_{n}.json" for n in args.names}
        baselines = [p for p in baselines if p.name in wanted]
        missing = wanted - {p.name for p in baselines}
        if missing and not args.update:
            print(f"perf-gate: no baseline for {sorted(missing)} in "
                  f"{args.baseline_dir}", file=sys.stderr)
            return 2

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        names = (args.names or
                 [p.name[len("BENCH_"):-len(".json")]
                  for p in sorted(args.current_dir.glob("BENCH_*.json"))])
        for n in names:
            src = args.current_dir / f"BENCH_{n}.json"
            if not src.exists():
                print(f"perf-gate: cannot update {n}: {src} not found",
                      file=sys.stderr)
                return 2
            shutil.copy(src, args.baseline_dir / src.name)
            print(f"perf-gate: baseline {src.name} updated")
        return 0

    if not baselines:
        print(f"perf-gate: no baselines under {args.baseline_dir}",
              file=sys.stderr)
        return 2

    problems = []
    checked = 0
    for base_path in baselines:
        name = base_path.name[len("BENCH_"):-len(".json")]
        cur_path = args.current_dir / base_path.name
        if not cur_path.exists():
            problems.append(f"{name}: current record {cur_path} missing "
                            "(did the bench run?)")
            continue
        problems.extend(compare_record(name, load_record(base_path),
                                       load_record(cur_path),
                                       args.tolerance, gate_wall))
        checked += 1

    for p in problems:
        print(f"perf-gate: FAIL {p}")
    if problems:
        print(f"perf-gate: {len(problems)} violation(s) across "
              f"{len(baselines)} baseline(s)")
        return 1
    wall_note = "incl. wall-clock" if gate_wall else "deterministic only"
    print(f"perf-gate: OK — {checked} record(s) within "
          f"{args.tolerance:.0%} ({wall_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
