"""CI campaign smoke: drive the sweep service over HTTP, check parity.

Starts the sharded sweep service with its stdlib HTTP API, submits a tiny
campaign (2 strategies x 2 processor counts, one fault rule, one
checkpoint rule) from two concurrent clients, polls to completion, and
asserts:

1. the HTTP results are bit-identical to a direct
   :func:`repro.experiments.run_sweep` over the same expanded points;
2. the duplicate submission was deduped to one execution (counters);
3. the ``/healthz`` liveness probe answers and ``/metrics`` serves valid
   Prometheus text exposition with the service counters in it.

Exit code 0 on success; any mismatch raises.  Run from the repo root::

    PYTHONPATH=src python tools/campaign_smoke.py
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.request

from repro.campaign import CampaignSpec, SweepService, expand, run_point
from repro.campaign.http import start_server
from repro.experiments import run_sweep

SPEC = {
    "name": "ci-campaign-smoke",
    "seed": 5,
    "grid": {"approaches": ["rbio_ng", "coio_64"], "np": [128, 256]},
    "checkpoint": {"horizon": 2.0, "wallclock_time": [{"every": 1.0}]},
    "faults": {"specs": [{"kind": "fs_stall", "time": 0.5, "delay": 0.1}]},
}


def _get(url: str):
    with urllib.request.urlopen(url) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def main() -> int:
    spec = CampaignSpec.from_dict(SPEC)
    points = expand(spec).points
    print(f"campaign {spec.name} ({spec.campaign_id[:12]}): "
          f"{len(points)} points; computing direct baseline ...")
    direct = json.loads(json.dumps(
        run_sweep(run_point, points, n_workers=1), default=str))

    service = SweepService(n_workers=2, cache=False)
    server, _thread = start_server(service)
    host, port = server.server_address
    base = f"http://{host}:{port}"
    print(f"service on {base}")

    barrier = threading.Barrier(2)

    def submit():
        barrier.wait()
        _post(f"{base}/campaigns", {"spec": SPEC})

    clients = [threading.Thread(target=submit) for _ in range(2)]
    for t in clients:
        t.start()
    for t in clients:
        t.join()

    cid = spec.campaign_id
    deadline = time.monotonic() + 600
    while True:
        status = _get(f"{base}/campaigns/{cid}")
        print(f"  {status['state']}: {status['completed']}/{status['total']}")
        if status["state"] != "running":
            break
        if time.monotonic() > deadline:
            raise SystemExit("campaign did not finish within 600 s")
        time.sleep(1.0)
    assert status["state"] == "done", status

    counters = _get(f"{base}/status")["counters"]
    print(f"counters: {counters}")
    assert counters["campaigns_submitted"] == 2, counters
    assert counters["campaigns_deduped"] == 1, counters
    assert counters["points_executed"] == len(points), counters

    health = _get(f"{base}/healthz")
    assert health == {"status": "ok", "workers": 2}, health
    with urllib.request.urlopen(f"{base}/metrics") as resp:
        assert resp.headers["Content-Type"].startswith("text/plain"), \
            resp.headers["Content-Type"]
        metrics = resp.read().decode()
    print("metrics sample:",
          [ln for ln in metrics.splitlines() if "points_executed" in ln])
    assert ("# TYPE repro_campaign_points_executed counter" in metrics
            and f"repro_campaign_points_executed {len(points)}" in metrics
            and "repro_campaign_n_workers 2" in metrics
            and "repro_campaign_campaigns_deduped 1" in metrics), \
        "Prometheus exposition missing expected series"

    results = _get(f"{base}/campaigns/{cid}/results")
    assert results == direct, "HTTP results diverge from direct run_sweep"
    print(f"OK: {len(results)} points bit-identical to direct run_sweep, "
          f"duplicate submission deduped")

    server.shutdown()
    service.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
