"""Exporters: Chrome ``trace_event`` JSON and interval reconstruction.

:func:`chrome_trace` renders a :class:`~repro.trace.SpanTracer` into
the Chrome trace-event format (the JSON dialect both
``chrome://tracing`` and Perfetto's legacy importer load): spans become
``"ph": "X"`` complete events, retries/failovers become ``"ph": "i"``
instants, and per-node attribution rides on ``pid`` (node index,
``rank // cores_per_node``) with ``tid`` = world rank.  Coalesce
representatives are expanded to one event per symmetry-group member,
so the timeline shows the run as every rank experienced it.

:func:`write_intervals_from_spans` and
:func:`phase_intervals_from_spans` rebuild the
:class:`~repro.sim.monitor.IntervalRecorder` views that the figure
pipeline derives from Darshan records — spans are forwarded from the
same call sites in the same order, so the reconstruction is
row-identical to the legacy path (asserted by ``bench_fig12`` and
``tests/test_trace.py``).
"""

from __future__ import annotations

import json
from typing import Optional

from ..sim.monitor import IntervalRecorder

__all__ = ["chrome_trace", "write_chrome_trace",
           "write_intervals_from_spans", "phase_intervals_from_spans",
           "fs_totals"]

#: Sim seconds -> trace-event microseconds.
_US = 1e6


def chrome_trace(tracer, cores_per_node: Optional[int] = None,
                 label: str = "repro") -> dict:
    """Render the tracer as a Chrome/Perfetto-loadable trace dict.

    ``cores_per_node`` controls node attribution (``pid``); it defaults
    to the tracer's topology hint (set by the experiment runner) and
    falls back to one rank per node.
    """
    cpn = cores_per_node or tracer.cores_per_node or 1
    events: list[dict] = []
    nodes: set[int] = set()
    for span in tracer.spans:
        args = dict(span.args or {})
        args["nbytes"] = span.nbytes
        if span.members is not None:
            args["coalesced_group"] = len(span.members)
            args["representative"] = span.rank
        for rank in span.expand():
            node = rank // cpn
            nodes.add(node)
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": span.cat,
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "pid": node,
                "tid": rank,
                "args": args,
            })
    for ev in tracer.events:
        rank = max(ev["rank"], 0)
        node = rank // cpn
        nodes.add(node)
        events.append({
            "ph": "i",
            "name": ev["name"],
            "cat": ev["cat"],
            "ts": ev["time"] * _US,
            "pid": node,
            "tid": rank,
            "s": "t",
            "args": ev["args"],
        })
    meta = [{"ph": "M", "name": "process_name", "pid": node, "tid": 0,
             "args": {"name": f"node{node}"}}
            for node in sorted(nodes)]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.trace",
            "label": label,
            "mode": tracer.mode,
            "cores_per_node": cpn,
            "time_unit": "sim-microseconds",
        },
    }


def write_chrome_trace(tracer, path: str,
                       cores_per_node: Optional[int] = None,
                       label: str = "repro") -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the dict."""
    trace = chrome_trace(tracer, cores_per_node=cores_per_node, label=label)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace


def write_intervals_from_spans(tracer) -> IntervalRecorder:
    """Per-rank PFS write intervals, rebuilt from ``fs:write`` spans.

    Mirrors ``DarshanProfiler.write_intervals()`` — same call sites,
    same insertion order — so ``activity()`` binning is row-identical.
    """
    rec = IntervalRecorder()
    for span in tracer.spans:
        if span.cat == "fs" and span.name == "write":
            rec.record(span.start, span.end, span.rank)
    return rec


def phase_intervals_from_spans(tracer, phase: str) -> IntervalRecorder:
    """Application-phase intervals (``isend``, ``stage``, ``drain``, ...).

    Coalesce-representative spans contribute one interval per member,
    matching the per-member records the profiler path emits.
    """
    rec = IntervalRecorder()
    for span in tracer.spans:
        if span.cat == "phase" and span.name == phase:
            for rank in span.expand():
                rec.record(span.start, span.end, rank)
    return rec


def fs_totals(tracer) -> dict:
    """Aggregate filesystem-op spans: ``{op: {count, seconds, bytes}}``.

    These are the numbers the reconciliation tests compare against
    ``DarshanProfiler.summary()`` and ``Engine.counters()``.
    """
    out: dict[str, dict] = {}
    for phase, agg in tracer.phase_totals().items():
        cat, _, name = phase.partition(":")
        if cat == "fs":
            out[name] = dict(agg)
    return out
