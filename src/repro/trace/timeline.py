"""Terminal renderings of a span store: per-rank Gantt + critical path.

``repro-report timeline`` uses these to answer "where did the time go"
without leaving the terminal — the ASCII equivalent of opening the
Chrome trace in Perfetto.  Each rank is one row; each span paints its
category's glyph over the row, later (finer) layers over earlier ones,
so a checkpoint bar shows through as ``#`` except where an actual PFS
write (``W``) or application phase (``=``) was in flight.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["render_timeline", "critical_path", "render_critical_path",
           "CAT_GLYPHS"]

#: Paint order: later entries overwrite earlier ones in the Gantt rows.
CAT_GLYPHS = (
    ("ckpt", "#"),      # whole checkpoint/restore envelope
    ("phase", "="),     # application phases (isend, stage, drain, pack...)
    ("mpiio", "x"),     # collective exchange / commit windows
    ("fs", "W"),        # actual PFS operations
)


def _span_bounds(tracer) -> tuple[float, float]:
    t0 = min((s.start for s in tracer.spans), default=0.0)
    t1 = max((s.end for s in tracer.spans), default=0.0)
    return t0, t1


def render_timeline(tracer, width: int = 72, max_rows: int = 32,
                    cores_per_node: Optional[int] = None) -> str:
    """Per-rank ASCII Gantt chart of every span in the store."""
    if not tracer.spans:
        return "(no spans recorded — run with configure_trace('full'))\n"
    t0, t1 = _span_bounds(tracer)
    extent = max(t1 - t0, 1e-12)
    cpn = cores_per_node or tracer.cores_per_node or 1

    ranks = sorted({r for s in tracer.spans for r in s.expand()})
    elided = 0
    if len(ranks) > max_rows:
        stride = -(-len(ranks) // max_rows)  # ceil
        shown = ranks[::stride]
        elided = len(ranks) - len(shown)
        ranks = shown
    rows = {r: [" "] * width for r in ranks}

    order = {cat: i for i, (cat, _g) in enumerate(CAT_GLYPHS)}
    glyph = dict(CAT_GLYPHS)
    for span in sorted(tracer.spans, key=lambda s: order.get(s.cat, 0)):
        ch = glyph.get(span.cat)
        if ch is None:
            continue
        i0 = int((span.start - t0) / extent * width)
        i1 = int((span.end - t0) / extent * width)
        i1 = max(i1, i0 + 1)  # zero-length spans still paint one cell
        for rank in span.expand():
            row = rows.get(rank)
            if row is None:
                continue
            for i in range(i0, min(i1, width)):
                row[i] = ch

    label_w = max(len(str(r)) for r in ranks) + 6
    lines = [f"{'rank':>{label_w}} |{'sim time':-^{width}}|"]
    for rank in ranks:
        tag = f"r{rank}/n{rank // cpn}"
        lines.append(f"{tag:>{label_w}} |{''.join(rows[rank])}|")
    if elided:
        lines.append(f"{'':>{label_w}}  ... {elided} more ranks elided ...")
    lines.append(f"{'':>{label_w}}  {t0:.4f}s{'':{width - 16}}{t1:.4f}s")
    legend = "  ".join(f"{g}={c}" for c, g in CAT_GLYPHS)
    lines.append(f"{'':>{label_w}}  legend: {legend}")
    for ev in tracer.events:
        lines.append(f"{'':>{label_w}}  ! {ev['cat']}:{ev['name']} "
                     f"@ {ev['time']:.4f}s rank={ev['rank']} {ev['args']}")
    return "\n".join(lines) + "\n"


def critical_path(tracer) -> dict:
    """The slowest rank's span chain plus per-phase totals.

    The "critical path" of a blocking checkpoint is the rank whose
    top-level span finishes last; its constituent spans, in time order,
    explain the makespan.
    """
    if not tracer.spans:
        return {"makespan": 0.0, "slowest_rank": None, "chain": [],
                "phases": []}
    t0, t1 = _span_bounds(tracer)
    ends: dict[int, float] = {}
    for span in tracer.spans:
        for rank in span.expand():
            if span.end > ends.get(rank, float("-inf")):
                ends[rank] = span.end
    slowest = max(ends, key=lambda r: (ends[r], -r))
    chain = sorted(
        ({"name": s.name, "cat": s.cat, "start": s.start, "end": s.end,
          "seconds": s.duration, "nbytes": s.nbytes}
         for s in tracer.spans if slowest in set(s.expand())),
        key=lambda d: (d["start"], d["end"]))
    phases = sorted(
        ({"phase": k, **v} for k, v in tracer.phase_totals().items()),
        key=lambda d: d["seconds"], reverse=True)
    return {"makespan": t1 - t0, "slowest_rank": slowest, "chain": chain,
            "phases": phases}


def render_critical_path(tracer, top: int = 8) -> str:
    """Human-readable summary of :func:`critical_path`."""
    cp = critical_path(tracer)
    if cp["slowest_rank"] is None:
        return "(no spans recorded)\n"
    lines = [f"makespan: {cp['makespan']:.6f}s "
             f"(slowest rank {cp['slowest_rank']})",
             "critical-path chain:"]
    for step in cp["chain"]:
        lines.append(f"  {step['cat']:>6}:{step['name']:<12} "
                     f"[{step['start']:.6f} .. {step['end']:.6f}] "
                     f"{step['seconds']:.6f}s  {step['nbytes']} B")
    lines.append(f"per-phase totals (top {top}, rank-seconds):")
    for row in cp["phases"][:top]:
        lines.append(f"  {row['phase']:<24} count={row['count']:<8} "
                     f"seconds={row['seconds']:.6f}  bytes={row['bytes']}")
    return "\n".join(lines) + "\n"
