"""Namespaced metrics schema and registry.

Before this module, every telemetry producer invented its own flat key
names — ``Engine.counters()`` said ``events_processed`` next to
``bytes_copied`` next to ``fabric_msgs_intra`` with no indication of
which subsystem owned what, and bench JSON columns drifted whenever a
counter was renamed.  :data:`SCHEMA` is now the single source of truth:
every canonical dotted name maps to its legacy flat key, the engine
publishes both for one release, and ``tests/test_trace.py`` pins the
full key set so shape changes are loud.

:class:`MetricsRegistry` is the aggregation point: counters, gauges and
pow2-histograms registered under canonical names, exportable as a plain
dict or Prometheus text exposition (served by the campaign service's
``/metrics`` endpoint).
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

__all__ = ["SCHEMA", "LEGACY_KEYS", "MetricsRegistry"]

#: Canonical dotted metric name -> legacy flat key as emitted by
#: ``Engine.counters()`` (and mirrored into bench JSON).  The engine
#: emits **both** spellings for one release; new code should read the
#: canonical names.  Fabric *instance* stats additionally expose the
#: pre-TAM aliases ``messages_sent``/``bytes_sent`` for the combined
#: intra+inter totals — those are per-``Fabric`` diagnostics, not part
#: of the process-wide counter schema, and keep their old names.
SCHEMA: dict[str, str] = {
    # simulator core
    "sim.events_processed": "events_processed",
    "sim.dispatched_events": "dispatched_events",
    "sim.batched_events": "batched_events",
    "sim.absorbed_events": "absorbed_events",
    "sim.batches": "batches",
    "sim.batch_hist": "batch_hist",
    "sim.drain_hist": "drain_hist",
    "sim.wall_seconds": "wall_seconds",
    "sim.events_per_second": "events_per_second",
    "sim.virtual_time": "virtual_time",
    # copy/buffer accounting
    "copy.bytes_copied": "bytes_copied",
    "copy.buffer_allocs": "buffer_allocs",
    # incremental (delta) checkpointing
    "delta.bytes_logical": "bytes_logical",
    "delta.bytes_to_pfs": "bytes_to_pfs",
    "delta.chunk_hits": "chunk_hits",
    "delta.chunk_misses": "chunk_misses",
    # fabric traffic (process-wide snapshot)
    "fabric.msgs_intra": "fabric_msgs_intra",
    "fabric.msgs_inter": "fabric_msgs_inter",
    "fabric.bytes_intra": "fabric_bytes_intra",
    "fabric.bytes_inter": "fabric_bytes_inter",
    "fabric.tam_msgs": "tam_msgs",
    "fabric.tam_packages": "tam_packages",
    "fabric.tam_coalesce_ratio": "tam_coalesce_ratio",
}

#: Reverse view: legacy flat key -> canonical dotted name.
LEGACY_KEYS: dict[str, str] = {v: k for k, v in SCHEMA.items()}

Number = Union[int, float]


class MetricsRegistry:
    """Counters, gauges and pow2-histograms under one namespace.

    Values are plain numbers (histograms are ``{bucket_label: count}``
    dicts as produced by :func:`repro.sim.monitor.pow2_histogram`);
    registering an existing name overwrites it, so the registry can be
    refreshed from live sources before every scrape.
    """

    _KINDS = ("counter", "gauge", "histogram")

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: dict[str, tuple[str, object, str]] = {}

    # -- registration --------------------------------------------------------
    def _set(self, kind: str, name: str, value, help: str) -> None:
        if not name or name.startswith(".") or name.endswith("."):
            raise ValueError(f"bad metric name: {name!r}")
        self._metrics[name] = (kind, value, help)

    def counter(self, name: str, value: Number = 0, help: str = "") -> None:
        """A monotonically-meaningful count (events, bytes, retries)."""
        self._set("counter", name, value, help)

    def gauge(self, name: str, value: Number = 0, help: str = "") -> None:
        """A point-in-time level (backlog, inflight points, ratios)."""
        self._set("gauge", name, value, help)

    def histogram(self, name: str, buckets: Mapping[str, int],
                  help: str = "") -> None:
        """A pow2-bucketed distribution, ``{label: count}``."""
        self._set("histogram", name, dict(buckets), help)

    def update_counters(self, prefix: str, values: Mapping[str, Number],
                        help: str = "") -> None:
        """Bulk-register ``values`` as counters under ``prefix.``."""
        for key, value in values.items():
            if isinstance(value, Mapping):
                self.histogram(f"{prefix}.{key}", value, help)
            else:
                self.counter(f"{prefix}.{key}", value, help)

    # -- ingestion from live sources ----------------------------------------
    def collect_engine(self, counters: Mapping[str, object]) -> None:
        """Register an ``Engine.counters()`` dict under canonical names."""
        for canonical, legacy in SCHEMA.items():
            if legacy not in counters:
                continue
            value = counters[legacy]
            if isinstance(value, Mapping):
                self.histogram(canonical, value)
            else:
                self.counter(canonical, value)

    def collect_tracer(self, tracer) -> None:
        """Register a :class:`~repro.trace.SpanTracer`'s phase totals."""
        for phase, agg in tracer.phase_totals().items():
            slug = phase.replace(":", ".")
            self.counter(f"trace.{slug}.count", agg["count"])
            self.counter(f"trace.{slug}.seconds", agg["seconds"])
            self.counter(f"trace.{slug}.bytes", agg["bytes"])
        self.counter("trace.spans", len(tracer.spans))
        self.counter("trace.events", len(tracer.events))

    def collect_profiler(self, profiler) -> None:
        """Register a ``DarshanProfiler.summary()`` under ``profile.``."""
        self.update_counters("profile", profiler.summary())

    # -- export --------------------------------------------------------------
    def snapshot(self) -> dict:
        """Flat ``{name: value}`` dict (histograms stay nested dicts)."""
        return {name: (dict(v) if isinstance(v, dict) else v)
                for name, (_k, v, _h) in sorted(self._metrics.items())}

    def to_prometheus(self) -> str:
        """Text exposition (one scrape) in the Prometheus 0.0.4 format."""
        lines: list[str] = []
        for name, (kind, value, help_text) in sorted(self._metrics.items()):
            metric = self._prom_name(name)
            if help_text:
                lines.append(f"# HELP {metric} {help_text}")
            if kind == "histogram":
                lines.append(f"# TYPE {metric} gauge")
                for bucket, count in value.items():
                    lines.append(f'{metric}{{bin="{bucket}"}} {count}')
            else:
                lines.append(f"# TYPE {metric} {kind}")
                lines.append(f"{metric} {self._prom_value(value)}")
        return "\n".join(lines) + "\n"

    def _prom_name(self, name: str) -> str:
        slug = name.replace(".", "_").replace("-", "_")
        return f"{self.namespace}_{slug}"

    @staticmethod
    def _prom_value(value) -> str:
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, float):
            return repr(value)
        return str(value)

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[object]:
        entry = self._metrics.get(name)
        return None if entry is None else entry[1]
