"""Unified observability plane: sim-time spans, metrics, exporters.

This package is the single place the simulator's scattered telemetry —
``Engine.counters()``, fabric intra/inter + TAM counters, buffer/delta
stats, Darshan-style op records — comes together:

- :class:`SpanTracer` records hierarchical *sim-time* spans (checkpoint
  → pack / chunk / tam-gather / exchange / write / drain / restore)
  with per-rank and per-node attribution, plus instant events for
  retries and writer failovers;
- :class:`~repro.trace.registry.MetricsRegistry` and
  :data:`~repro.trace.registry.SCHEMA` give every counter a stable,
  namespaced name (Prometheus-exportable);
- :mod:`repro.trace.export` renders Chrome ``trace_event`` JSON that
  loads in ``chrome://tracing`` / Perfetto, and rebuilds
  :class:`~repro.sim.monitor.IntervalRecorder` views from the span
  store so figure pipelines and traces can never disagree;
- :mod:`repro.trace.timeline` renders per-rank ASCII Gantt charts and a
  critical-path summary for ``repro-report timeline``.

Tracing follows the repo's zero-cost off-switch idiom (see
``repro.faults``): the module global :data:`tracer` is ``None`` unless
:func:`configure_trace` enabled it, and every instrumented call site
guards with a single ``is not None`` test.  Spans never schedule engine
events and never touch simulation state, so ``off`` is bit-identical to
pre-trace behaviour *by construction* — the differential tests in
``tests/test_trace.py`` enforce it across strategies × delta × tam ×
coalesce, and the perf gate bounds the residual wall cost.

Call sites must access the switch through the module object
(``from .. import trace as _trace`` then ``_trace.tracer``), never
``from ..trace import tracer`` — the latter copies the binding at
import time and goes stale when the mode changes.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

__all__ = ["MODES", "Span", "SpanTracer", "tracer", "configure_trace",
           "trace_mode", "MetricsRegistry", "SCHEMA"]

#: Recognised trace modes, mirroring ``repro.faults`` / delta / tam:
#: ``off`` removes every cost, ``summary`` keeps only per-phase
#: aggregates, ``full`` additionally retains every span for export.
MODES = ("off", "summary", "full")


class Span:
    """One closed sim-time interval attributed to a rank and a phase.

    ``cat`` is the span's layer (``ckpt``, ``phase``, ``fs``,
    ``mpiio``); ``name`` the phase within it (``checkpoint``, ``pack``,
    ``write``, ...).  ``members`` marks a *coalesce-representative*
    span: one rank did the simulated work on behalf of the whole
    symmetry group, and exporters expand the span to every member.
    """

    __slots__ = ("rank", "name", "cat", "start", "end", "nbytes",
                 "members", "args")

    def __init__(self, rank: int, name: str, cat: str, start: float,
                 end: float, nbytes: int = 0,
                 members: Optional[Sequence[int]] = None,
                 args: Optional[dict] = None) -> None:
        self.rank = rank
        self.name = name
        self.cat = cat
        self.start = float(start)
        self.end = float(end)
        self.nbytes = int(nbytes)
        self.members = None if members is None else tuple(members)
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def expand(self) -> Iterator[int]:
        """Ranks this span stands for (the symmetry group, or just one)."""
        if self.members is None:
            yield self.rank
        else:
            yield from self.members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grp = "" if self.members is None else f" x{len(self.members)}"
        return (f"Span({self.cat}:{self.name} rank={self.rank}{grp} "
                f"[{self.start:.6f},{self.end:.6f}] {self.nbytes}B)")


class SpanTracer:
    """Collects spans and instant events; aggregates per-phase totals.

    In ``summary`` mode only the ``(cat, name)`` → (count, seconds,
    bytes) aggregates are kept; ``full`` mode additionally retains the
    span list for Chrome-trace export and interval reconstruction.
    Coalesce-representative spans count once per member in the
    aggregates, so summary totals match what an uncoalesced run of the
    same workload would report.
    """

    def __init__(self, mode: str = "full") -> None:
        if mode not in ("summary", "full"):
            raise ValueError(f"tracer mode must be 'summary' or 'full', "
                             f"got {mode!r}")
        self.mode = mode
        self.spans: list[Span] = []
        self.events: list[dict] = []
        #: Ranks per node, set by the runner from ``MachineConfig`` so
        #: exporters can attribute spans to nodes (pid = rank // cpn).
        self.cores_per_node: Optional[int] = None
        self._totals: dict[tuple[str, str], list] = {}

    # -- recording -----------------------------------------------------------
    def span(self, rank: int, name: str, cat: str, start: float, end: float,
             nbytes: int = 0, members: Optional[Sequence[int]] = None,
             args: Optional[dict] = None) -> None:
        """Record one closed span (optionally a coalesce representative)."""
        n = 1 if members is None else len(members)
        key = (cat, name)
        agg = self._totals.get(key)
        if agg is None:
            agg = self._totals[key] = [0, 0.0, 0]
        agg[0] += n
        agg[1] += (float(end) - float(start)) * n
        agg[2] += int(nbytes) * n
        if self.mode == "full":
            self.spans.append(Span(rank, name, cat, start, end, nbytes,
                                   members, args))

    def instant(self, name: str, cat: str, t: float, rank: int = -1,
                args: Optional[dict[str, Any]] = None) -> None:
        """Record a zero-duration annotation (retry, failover, ...)."""
        self.events.append({"name": name, "cat": cat, "time": float(t),
                            "rank": rank, "args": dict(args or {})})

    # -- views ---------------------------------------------------------------
    def phase_totals(self) -> dict[str, dict]:
        """Per-phase aggregates: ``"cat:name" -> {count, seconds, bytes}``."""
        return {f"{cat}:{name}": {"count": agg[0], "seconds": agg[1],
                                  "bytes": agg[2]}
                for (cat, name), agg in sorted(self._totals.items())}

    def summary(self) -> dict:
        """JSON-clean rollup of everything this tracer holds."""
        return {
            "mode": self.mode,
            "n_spans": len(self.spans),
            "n_events": len(self.events),
            "phases": self.phase_totals(),
        }

    def reset(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._totals.clear()


#: Module-level switch.  ``None`` (the default) disables tracing; call
#: sites guard every record with ``_trace.tracer is not None``.
tracer: Optional[SpanTracer] = None


def configure_trace(mode: str = "off") -> Optional[SpanTracer]:
    """Select the tracing mode for subsequent runs; returns the tracer.

    ``off`` restores the zero-cost default (and drops any collected
    data); ``summary`` keeps per-phase aggregates only; ``full`` also
    retains every span for timeline export.
    """
    global tracer
    if mode not in MODES:
        raise ValueError(f"trace mode must be one of {MODES}, got {mode!r}")
    tracer = None if mode == "off" else SpanTracer(mode)
    return tracer


def trace_mode() -> str:
    """The currently configured mode (``off`` when tracing is disabled)."""
    return "off" if tracer is None else tracer.mode


from .registry import SCHEMA, MetricsRegistry  # noqa: E402  (re-export)
