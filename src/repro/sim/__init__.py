"""Discrete-event simulation kernel used by the whole reproduction.

Public surface:

- :class:`~repro.sim.engine.Engine`, :class:`~repro.sim.engine.Event`,
  :class:`~repro.sim.engine.Process`, :func:`~repro.sim.engine.all_of`,
  :func:`~repro.sim.engine.any_of` — the process/event core.
- :class:`~repro.sim.engine.BatchTimeout`, :class:`~repro.sim.engine.Cohort`
  — batched events: one calendar entry standing for N homogeneous ones.
- :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Pipe` — shared-resource primitives.
- :class:`~repro.sim.randomness.StreamRegistry`,
  :class:`~repro.sim.randomness.NoiseModel` — deterministic noise.
- :class:`~repro.sim.monitor.Tally`, :class:`~repro.sim.monitor.TimeSeries`,
  :class:`~repro.sim.monitor.IntervalRecorder` — measurement helpers.
- :class:`~repro.sim.coalesce.CoalescePlan`,
  :class:`~repro.sim.coalesce.GroupPlan` — symmetry-aware rank coalescing.
"""

from .coalesce import CoalescePlan, GroupPlan
from .engine import (
    AllOf,
    AnyOf,
    BatchTimeout,
    Cohort,
    Engine,
    Event,
    Process,
    SimulationError,
    StopEngine,
    Timeout,
    all_of,
    any_of,
)
from .monitor import IntervalRecorder, Tally, TimeSeries, pow2_histogram
from .randomness import NoiseModel, StreamRegistry
from .resources import Pipe, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchTimeout",
    "Cohort",
    "CoalescePlan",
    "GroupPlan",
    "Engine",
    "Event",
    "Process",
    "SimulationError",
    "StopEngine",
    "Timeout",
    "all_of",
    "any_of",
    "IntervalRecorder",
    "Tally",
    "TimeSeries",
    "pow2_histogram",
    "NoiseModel",
    "StreamRegistry",
    "Pipe",
    "Resource",
    "Store",
]
