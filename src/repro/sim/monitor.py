"""Lightweight measurement helpers for simulation experiments.

:class:`Tally`
    Streaming summary statistics (count / sum / min / max / mean / variance)
    via Welford's algorithm — used for per-rank I/O-time summaries.
:class:`TimeSeries`
    Append-only ``(time, value)`` trace with binning helpers — used for the
    Darshan-style write-activity timelines of Fig. 12.
:class:`IntervalRecorder`
    Records ``(start, end, tag)`` activity intervals and can rasterise the
    number of concurrently active intervals over time.
:func:`pow2_histogram`
    Formats the engine's power-of-two binned size histograms (batch sizes,
    per-instant drain sizes) as human-readable range labels.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

import numpy as np

__all__ = ["Tally", "TimeSeries", "IntervalRecorder", "pow2_histogram"]


def pow2_histogram(counts: dict) -> dict:
    """Format a ``bit_length``-binned histogram with power-of-two labels.

    The engine's hot loops bin sizes by ``size.bit_length()`` (one int op);
    this turns ``{bl: count}`` into ``{"1": c, "2-3": c, "4-7": c, ...}``
    for counters output and benchmark records.  Bin 0 (size-zero drains)
    is labelled ``"0"``.
    """
    out: dict = {}
    for bl in sorted(counts):
        if bl <= 0:
            label = "0"
        else:
            lo = 1 << (bl - 1)
            hi = (1 << bl) - 1
            label = str(lo) if lo == hi else f"{lo}-{hi}"
        out[label] = counts[bl]
    return out


class Tally:
    """Streaming univariate summary statistics (Welford)."""

    __slots__ = ("count", "total", "min", "max", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        """Record one observation."""
        x = float(x)
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    def extend(self, xs: Iterable[float]) -> None:
        """Record many observations."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with <2 observations)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return self.variance**0.5

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.count:
            return "<Tally empty>"
        return (
            f"<Tally n={self.count} mean={self.mean:.4g} "
            f"min={self.min:.4g} max={self.max:.4g}>"
        )


class TimeSeries:
    """Append-only time-stamped samples with binning utilities."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, t: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and t < self.times[-1]:
            raise ValueError(f"time went backwards: {t} < {self.times[-1]}")
        self.times.append(float(t))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as numpy arrays."""
        return np.asarray(self.times), np.asarray(self.values)

    def binned_sum(self, bin_width: float, t_end: Optional[float] = None) -> tuple[np.ndarray, np.ndarray]:
        """Sum samples into fixed-width bins; returns (bin_starts, sums)."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        t, v = self.as_arrays()
        if len(t) == 0:
            return np.array([]), np.array([])
        end = t_end if t_end is not None else float(t[-1]) + bin_width
        edges = np.arange(0.0, end + bin_width, bin_width)
        idx = np.clip(np.digitize(t, edges) - 1, 0, len(edges) - 2)
        sums = np.zeros(len(edges) - 1)
        np.add.at(sums, idx, v)
        return edges[:-1], sums


class IntervalRecorder:
    """Records activity intervals and rasterises concurrent activity.

    Used to reconstruct "how many writers were actively writing at time t",
    the quantity plotted in the paper's Darshan analysis (Fig. 12).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.intervals: list[tuple[float, float, Any]] = []

    def record(self, start: float, end: float, tag: Any = None) -> None:
        """Record one ``[start, end]`` activity interval."""
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start}, {end}]")
        self.intervals.append((float(start), float(end), tag))

    def __len__(self) -> int:
        return len(self.intervals)

    @property
    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all intervals."""
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(s for s, _, _ in self.intervals),
            max(e for _, e, _ in self.intervals),
        )

    def activity(self, bin_width: float) -> tuple[np.ndarray, np.ndarray]:
        """Concurrent-activity histogram.

        Returns ``(bin_starts, active_counts)`` where ``active_counts[i]``
        is the number of intervals overlapping bin ``i`` at any point.
        """
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if not self.intervals:
            return np.array([]), np.array([])
        t0, t1 = self.span
        n_bins = max(1, int(np.ceil((t1 - t0) / bin_width)))
        counts = np.zeros(n_bins, dtype=np.int64)
        for s, e, _ in self.intervals:
            i0 = int((s - t0) / bin_width)
            i1 = int(np.ceil((e - t0) / bin_width))
            i1 = max(i1, i0 + 1)
            counts[i0 : min(i1, n_bins)] += 1
        starts = t0 + bin_width * np.arange(n_bins)
        return starts, counts

    def total_busy_time(self) -> float:
        """Sum of interval durations (double-counts overlaps)."""
        return sum(e - s for s, e, _ in self.intervals)
