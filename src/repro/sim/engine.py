"""Discrete-event simulation kernel.

This module implements the minimal generator-based process engine that the
whole reproduction runs on: simulated MPI ranks, network transfers, GPFS
servers, and lock managers are all :class:`Process` instances scheduled by a
single :class:`Engine` in virtual time.

The design follows the classic event-list paradigm (as popularised by SimPy)
but is deliberately small and fast: the figure-scale experiments in this
repository run 65,536 rank processes, so every event carries as little state
as possible and hot paths avoid allocation where practical.

Core concepts
-------------
:class:`Engine`
    Owns the virtual clock and the pending-event heap.  ``engine.process(gen)``
    turns a generator into a running simulation process.
:class:`Event`
    A one-shot occurrence.  Processes wait on events by ``yield``-ing them.
:class:`Timeout`
    An event that triggers after a fixed delay of virtual time.
:class:`Process`
    Wraps a generator; it is itself an event that triggers when the generator
    returns, so processes can wait on each other.
:func:`all_of` / :func:`any_of`
    Condition events for fork/join patterns.

Example
-------
>>> eng = Engine()
>>> log = []
>>> def worker(name, delay):
...     yield eng.timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.process(worker("a", 2.0))
>>> _ = eng.process(worker("b", 1.0))
>>> eng.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "all_of",
    "any_of",
    "SimulationError",
    "StopEngine",
]


class SimulationError(RuntimeError):
    """Raised for structural errors in the simulation (double trigger, etc.)."""


class StopEngine(Exception):
    """Raise inside a process to halt the engine immediately."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Event:
    """A one-shot occurrence that processes can wait for.

    An event goes through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled on the engine's event list with a
    value), and *processed* (its callbacks have run).  Waiting on an already
    processed event resumes the waiter immediately at the current time.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "triggered", "processed")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: bool = True
        self.triggered = False
        self.processed = False

    @property
    def value(self) -> Any:
        """The value the event was triggered with (or the failure exception)."""
        return self._value

    @property
    def ok(self) -> bool:
        """``True`` unless the event was failed with an exception."""
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._value = value
        self.engine._push(0.0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exc`` thrown into them."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._ok = False
        self._value = exc
        self.engine._push(0.0, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously).
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` units of virtual time in the future."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Timeouts dominate event traffic; flatten the Event.__init__ call.
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self.triggered = True
        self.processed = False
        self.delay = delay
        engine._push(delay, self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator may ``yield`` any :class:`Event`; the process suspends
    until that event is processed and then resumes with the event's value
    (or has the failure exception thrown into it).  The process is itself
    an event which triggers with the generator's return value.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(engine)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {type(generator)!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume at the current time via an immediate event.
        init = Event(engine)
        init.triggered = True
        init.callbacks.append(self._resume)
        engine._push(0.0, init)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        gen = self.generator
        while True:
            try:
                if event._ok:
                    target = gen.send(event._value)
                else:
                    target = gen.throw(event._value)
            except StopIteration as stop:
                if not self.triggered:
                    self.succeed(stop.value)
                return
            except StopEngine:
                raise
            except BaseException as exc:
                # Unhandled failure in the process body: propagate to waiters
                # if any, otherwise crash the simulation loudly.
                if not self.triggered:
                    if self.callbacks:
                        self.fail(exc)
                        return
                    raise
                raise
            if not isinstance(target, Event):
                gen.throw(
                    SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                )
                continue
            cbs = target.callbacks
            if cbs is None:
                # Already processed: resume synchronously with its value.
                event = target
                continue
            self._waiting_on = target
            cbs.append(self._resume)
            return


class Condition(Event):
    """Base for :func:`all_of` / :func:`any_of` join events.

    ``_pending`` starts at the total child count so that children that were
    already processed before the condition was created are accounted for
    identically to ones that complete later.

    A condition whose outcome is already decided at construction time (all
    children processed for :class:`AllOf`, some child processed for
    :class:`AnyOf`) completes *synchronously*: it is born in the processed
    state and costs no heap event, so waiting on it resumes the waiter
    immediately.  No other waiter can exist during construction, so this is
    observationally identical apart from skipping one zero-delay event hop.
    """

    __slots__ = ("events", "_pending", "_constructing")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._pending = len(self.events)
        self._constructing = True
        self._init_hook()
        for ev in self.events:
            if self.triggered:
                break
            cbs = ev.callbacks
            if cbs is None:
                self._on_child(ev)
            else:
                cbs.append(self._on_child)
        self._constructing = False

    def _complete(self, value: Any, ok: bool = True) -> None:
        if self._constructing:
            self.triggered = True
            self.processed = True
            self.callbacks = None
            self._value = value
            self._ok = ok
        elif ok:
            self.succeed(value)
        else:
            self.fail(value)

    def _init_hook(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when all child events have been processed.

    The value is the list of child values in the original order.  Fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _init_hook(self) -> None:
        if self._pending == 0:
            self._complete([])

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self._complete(event._value, ok=False)
            return
        self._pending -= 1
        if self._pending == 0:
            self._complete([ev._value for ev in self.events])


class AnyOf(Condition):
    """Triggers when the first child event is processed (value = its value)."""

    __slots__ = ()

    def _init_hook(self) -> None:
        if not self.events:
            raise ValueError("any_of requires at least one event")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        self._complete(event._value, ok=event._ok)


def all_of(engine: "Engine", events: Iterable[Event]) -> AllOf:
    """Return an event that triggers once every event in ``events`` has."""
    return AllOf(engine, events)


def any_of(engine: "Engine", events: Iterable[Event]) -> AnyOf:
    """Return an event that triggers when the first of ``events`` does."""
    return AnyOf(engine, events)


class Engine:
    """The simulation engine: virtual clock plus pending-event heap.

    Time is a ``float`` in arbitrary units; this repository uses seconds
    throughout.  Events scheduled for the same instant are processed in
    FIFO order of scheduling (stable via a monotonically increasing
    sequence number).
    """

    __slots__ = ("now", "_heap", "_seq", "_event_count", "_wall_seconds")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._event_count: int = 0
        self._wall_seconds: float = 0.0

    # -- scheduling ------------------------------------------------------
    def _push(self, delay: float, event: Event) -> None:
        seq = self._seq + 1
        self._seq = seq
        _heappush(self._heap, (self.now + delay, seq, event))

    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Shorthand for :func:`all_of` bound to this engine."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Shorthand for :func:`any_of` bound to this engine."""
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (diagnostics)."""
        return self._event_count

    @property
    def wall_seconds(self) -> float:
        """Real time spent inside :meth:`run` so far."""
        return self._wall_seconds

    @property
    def events_per_second(self) -> float:
        """Simulator throughput: events processed per wall-clock second."""
        if self._wall_seconds <= 0:
            return 0.0
        return self._event_count / self._wall_seconds

    def counters(self) -> dict:
        """Machine-readable performance counters for benchmark records.

        ``bytes_copied`` / ``buffer_allocs`` are the process-wide data-plane
        copy counters (:data:`repro.buffers.stats`): how many payload bytes
        were physically materialized, and into how many buffers, since the
        last ``stats.reset()`` — they ride along so benchmark records can
        report copy volume next to event throughput.
        """
        from ..buffers import stats as buffer_stats

        return {
            "events_processed": self._event_count,
            "wall_seconds": self._wall_seconds,
            "events_per_second": self.events_per_second,
            "virtual_time": self.now,
            "bytes_copied": buffer_stats.bytes_copied,
            "buffer_allocs": buffer_stats.buffer_allocs,
        }

    def step(self) -> None:
        """Process the single next event, advancing the clock."""
        t, _seq, event = _heappop(self._heap)
        self.now = t
        callbacks = event.callbacks
        event.callbacks = None
        event.processed = True
        self._event_count += 1
        if callbacks:
            for cb in callbacks:
                cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event list drains or the clock passes ``until``.

        When stopped by ``until``, the clock is set exactly to ``until`` and
        any event scheduled at or before that instant has been processed.
        """
        # The pop/dispatch loop is inlined (rather than calling step()) —
        # at 65K ranks the per-event call overhead is measurable.
        heap = self._heap
        pop = _heappop
        count = 0
        t_wall = perf_counter()
        try:
            if until is None:
                while heap:
                    t, _seq, event = pop(heap)
                    self.now = t
                    callbacks = event.callbacks
                    event.callbacks = None
                    event.processed = True
                    count += 1
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
            else:
                if until < self.now:
                    raise ValueError(
                        f"until={until} is in the past (now={self.now})"
                    )
                while heap and heap[0][0] <= until:
                    t, _seq, event = pop(heap)
                    self.now = t
                    callbacks = event.callbacks
                    event.callbacks = None
                    event.processed = True
                    count += 1
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                self.now = until
        except StopEngine:
            return
        finally:
            self._event_count += count
            self._wall_seconds += perf_counter() - t_wall

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
