"""Discrete-event simulation kernel.

This module implements the minimal generator-based process engine that the
whole reproduction runs on: simulated MPI ranks, network transfers, GPFS
servers, and lock managers are all :class:`Process` instances scheduled by a
single :class:`Engine` in virtual time.

The design follows the classic event-list paradigm (as popularised by SimPy)
but is deliberately small and fast: the figure-scale experiments in this
repository run 65,536 rank processes, so every event carries as little state
as possible and hot paths avoid allocation where practical.

Scheduling structure
--------------------
The pending-event list is a *bucketed calendar queue*: a heap of distinct
timestamps plus a dict mapping each timestamp to the FIFO list of events
scheduled at that instant.  Scheduling into an existing instant is a dict
lookup and a list append (no heap sift), and :meth:`Engine.run` drains each
instant's bucket in one pass — a zero-delay cascade (event storms, barrier
fan-outs, eager-send completions) costs no heap operations at all.  Events
appended to the live bucket while it drains are picked up in the same pass,
which reproduces exactly the FIFO tie-break the classic ``(time, seq)``
heap gave: within one instant, events fire in the order they were scheduled.

Batched events
--------------
Three engine-level batch primitives let homogeneous event cohorts cost one
heap entry instead of N:

- :meth:`Engine.timeout_batch` — one timer standing for a whole vector of
  timeouts (fires at the max delay; numpy arrays welcome).
- :meth:`Engine.cohort` — a counted event standing for N identical
  completions (a barrier's release fan-out, a coalesced group's wave).
- :meth:`Engine.succeed_many` — bulk-trigger a list of pending events in
  FIFO order with one bucket extend.

Each credits the events it absorbs to :attr:`Engine.events_processed` as
*logical* events and records the batch size in the histograms exposed by
:meth:`Engine.counters`, so throughput numbers remain auditable: the
``dispatched`` / ``batched`` / ``absorbed`` split shows exactly where the
events/sec figure comes from.

Core concepts
-------------
:class:`Engine`
    Owns the virtual clock and the pending-event calendar.  ``engine.process(gen)``
    turns a generator into a running simulation process.
:class:`Event`
    A one-shot occurrence.  Processes wait on events by ``yield``-ing them.
:class:`Timeout`
    An event that triggers after a fixed delay of virtual time.
:class:`Process`
    Wraps a generator; it is itself an event that triggers when the generator
    returns, so processes can wait on each other.
:func:`all_of` / :func:`any_of`
    Condition events for fork/join patterns.

Example
-------
>>> eng = Engine()
>>> log = []
>>> def worker(name, delay):
...     yield eng.timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.process(worker("a", 2.0))
>>> _ = eng.process(worker("b", 1.0))
>>> eng.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

from .monitor import pow2_histogram

_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "BatchTimeout",
    "Cohort",
    "Process",
    "Condition",
    "all_of",
    "any_of",
    "SimulationError",
    "StopEngine",
]

#: Compact the live bucket once this many entries of a zero-delay cascade
#: have been dispatched, so unbounded same-instant churn (ping-pong loops)
#: runs in constant memory instead of growing the bucket without limit.
_BUCKET_COMPACT = 8192


class SimulationError(RuntimeError):
    """Raised for structural errors in the simulation (double trigger, etc.)."""


class StopEngine(Exception):
    """Raise inside a process to halt the engine immediately."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Event:
    """A one-shot occurrence that processes can wait for.

    An event goes through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled on the engine's event list with a
    value), and *processed* (its callbacks have run).  Waiting on an already
    processed event resumes the waiter immediately at the current time.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "triggered", "processed")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: bool = True
        self.triggered = False
        self.processed = False

    @property
    def value(self) -> Any:
        """The value the event was triggered with (or the failure exception)."""
        return self._value

    @property
    def ok(self) -> bool:
        """``True`` unless the event was failed with an exception."""
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._value = value
        # Immediate triggers dominate event traffic; inline the bucket insert.
        engine = self.engine
        t = engine.now
        buckets = engine._buckets
        bucket = buckets.get(t)
        if bucket is None:
            buckets[t] = [self]
            _heappush(engine._times, t)
        else:
            bucket.append(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exc`` thrown into them."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._ok = False
        self._value = exc
        self.engine._push(0.0, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously).
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` units of virtual time in the future."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Timeouts dominate event traffic; flatten the Event.__init__ call
        # and inline the calendar insert.
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self.triggered = True
        self.processed = False
        self.delay = delay
        t = engine.now + delay
        buckets = engine._buckets
        bucket = buckets.get(t)
        if bucket is None:
            buckets[t] = [self]
            _heappush(engine._times, t)
        else:
            bucket.append(self)


class BatchTimeout(Event):
    """One timer event standing for a whole vector of homogeneous timeouts.

    Fires once at ``now + max(delays)`` — the instant the *last* member of
    the batch would have fired — and credits ``len(delays)`` logical events
    to the engine (the batch-size histogram in :meth:`Engine.counters`
    records the cohort).  Use it when a process issues many timeouts and
    only ever observes the last one to complete (drain pacing waves,
    symmetric per-member service delays): the simulation outcome is
    identical and the calendar holds one entry instead of N.

    ``delays`` may be any non-empty sequence; numpy arrays take the
    vectorized ``min``/``max`` path.
    """

    __slots__ = ("delay", "batch_size")

    def __init__(self, engine: "Engine", delays, value: Any = None) -> None:
        n = len(delays)
        if n == 0:
            raise ValueError("timeout_batch requires at least one delay")
        if isinstance(delays, np.ndarray):
            dmin = float(delays.min())
            dmax = float(delays.max())
        else:
            dmin = min(delays)
            dmax = max(delays)
        if dmin < 0:
            raise ValueError(f"negative timeout delay in batch: {dmin}")
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self.triggered = True
        self.processed = False
        self.delay = dmax
        self.batch_size = n
        engine._record_batch(n)
        engine._push(dmax, self)


class Cohort(Event):
    """A counted event standing for ``size`` identical completions.

    Behaves exactly like :class:`Event`, but when it succeeds it credits
    ``size`` logical events to the engine: one for its own dispatch plus
    ``size - 1`` absorbed members.  Collective release fan-outs use this —
    a barrier completion notionally delivers one release message per rank,
    but all ranks synchronise on the same event, so the cohort keeps the
    accounting honest (each release is a modeled event) without paying N
    calendar entries.  Failure (:meth:`Event.fail`) credits nothing.
    """

    __slots__ = ("batch_size",)

    def __init__(self, engine: "Engine", size: int) -> None:
        if size < 1:
            raise ValueError(f"cohort size must be >= 1, got {size}")
        super().__init__(engine)
        self.batch_size = size

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the cohort, crediting its members as logical events."""
        self.engine._record_batch(self.batch_size)
        return Event.succeed(self, value)


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator may ``yield`` any :class:`Event`; the process suspends
    until that event is processed and then resumes with the event's value
    (or has the failure exception thrown into it).  The process is itself
    an event which triggers with the generator's return value.
    """

    __slots__ = ("generator", "name", "_resume_cb")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(engine)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {type(generator)!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bind the resume callback once: every suspension appends the same
        # object instead of allocating a fresh bound method per event.
        resume = self._resume
        self._resume_cb = resume
        # Bootstrap: resume at the current time via an immediate event.
        init = Event(engine)
        init.triggered = True
        init.callbacks.append(resume)
        engine._push(0.0, init)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        gen = self.generator
        while True:
            try:
                if event._ok:
                    target = gen.send(event._value)
                else:
                    target = gen.throw(event._value)
            except StopIteration as stop:
                if not self.triggered:
                    self.succeed(stop.value)
                return
            except StopEngine:
                raise
            except BaseException as exc:
                # Unhandled failure in the process body: propagate to waiters
                # if any, otherwise crash the simulation loudly.
                if not self.triggered:
                    if self.callbacks:
                        self.fail(exc)
                        return
                    raise
                raise
            try:
                cbs = target.callbacks
            except AttributeError:
                gen.throw(
                    SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                )
                continue
            if cbs is None:
                # Already processed: resume synchronously with its value.
                event = target
                continue
            cbs.append(self._resume_cb)
            return


class Condition(Event):
    """Base for :func:`all_of` / :func:`any_of` join events.

    ``_pending`` starts at the total child count so that children that were
    already processed before the condition was created are accounted for
    identically to ones that complete later.

    A condition whose outcome is already decided at construction time (all
    children processed for :class:`AllOf`, some child processed for
    :class:`AnyOf`) completes *synchronously*: it is born in the processed
    state and costs no heap event, so waiting on it resumes the waiter
    immediately.  No other waiter can exist during construction, so this is
    observationally identical apart from skipping one zero-delay event hop.
    """

    __slots__ = ("events", "_pending", "_constructing")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._pending = len(self.events)
        self._constructing = True
        self._init_hook()
        # One bound callback shared by every child: the counted trigger in
        # _on_child makes per-child closures unnecessary.
        on_child = self._on_child
        for ev in self.events:
            if self.triggered:
                break
            cbs = ev.callbacks
            if cbs is None:
                on_child(ev)
            else:
                cbs.append(on_child)
        self._constructing = False

    def _complete(self, value: Any, ok: bool = True) -> None:
        if self._constructing:
            self.triggered = True
            self.processed = True
            self.callbacks = None
            self._value = value
            self._ok = ok
        elif ok:
            self.succeed(value)
        else:
            self.fail(value)

    def _init_hook(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when all child events have been processed.

    The value is the list of child values in the original order.  Fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _init_hook(self) -> None:
        if self._pending == 0:
            self._complete([])

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self._complete(event._value, ok=False)
            return
        self._pending -= 1
        if self._pending == 0:
            self._complete([ev._value for ev in self.events])


class AnyOf(Condition):
    """Triggers when the first child event is processed (value = its value)."""

    __slots__ = ()

    def _init_hook(self) -> None:
        if not self.events:
            raise ValueError("any_of requires at least one event")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        self._complete(event._value, ok=event._ok)


def all_of(engine: "Engine", events: Iterable[Event]) -> AllOf:
    """Return an event that triggers once every event in ``events`` has."""
    return AllOf(engine, events)


def any_of(engine: "Engine", events: Iterable[Event]) -> AnyOf:
    """Return an event that triggers when the first of ``events`` does."""
    return AnyOf(engine, events)


class Engine:
    """The simulation engine: virtual clock plus bucketed event calendar.

    Time is a ``float`` in arbitrary units; this repository uses seconds
    throughout.  Events scheduled for the same instant are processed in
    FIFO order of scheduling: each instant owns one append-ordered bucket,
    drained front to back, which is observationally identical to the
    classic ``(time, seq)`` heap tie-break.

    Event accounting distinguishes three populations (all visible in
    :meth:`counters`):

    - *dispatched* — events popped from the calendar and fired (including
      each batch's representative event);
    - *batched* — the *extra* members a :class:`BatchTimeout` /
      :class:`Cohort` stands for beyond its dispatched representative
      (batch size minus one per batch);
    - *absorbed* — logical events credited via :meth:`count_events` with no
      calendar entry at all (e.g. per-rank collective arrivals, which the
      analytic collective model folds into shared bookkeeping).

    ``events_processed`` is exactly their sum — the logical event count of
    the modeled system, which is what throughput figures report.
    """

    __slots__ = (
        "now",
        "_times",
        "_buckets",
        "_event_count",
        "_dispatched",
        "_absorbed",
        "_batched",
        "_batch_count",
        "_batch_hist",
        "_drain_hist",
        "_wall_seconds",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._times: list = []  # heap of distinct pending timestamps
        self._buckets: dict = {}  # timestamp -> FIFO list of events
        self._event_count: int = 0
        self._dispatched: int = 0
        self._absorbed: int = 0
        self._batched: int = 0
        self._batch_count: int = 0
        self._batch_hist: dict = {}  # batch_size.bit_length() -> count
        self._drain_hist: dict = {}  # drained bucket size bit_length -> count
        self._wall_seconds: float = 0.0

    # -- scheduling ------------------------------------------------------
    def _push(self, delay: float, event: Event) -> None:
        t = self.now + delay
        buckets = self._buckets
        bucket = buckets.get(t)
        if bucket is None:
            buckets[t] = [event]
            _heappush(self._times, t)
        else:
            bucket.append(event)

    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timeout_batch(self, delays, value: Any = None) -> BatchTimeout:
        """One timer for a whole vector of timeouts (fires at the max).

        Equivalent to issuing ``timeout(d)`` for every ``d`` in ``delays``
        and waiting for the last one, at the cost of a single calendar
        entry; the batch members are credited as logical events.  Accepts
        any non-empty sequence, including numpy arrays.
        """
        return BatchTimeout(self, delays, value)

    def cohort(self, size: int) -> Cohort:
        """A counted event standing for ``size`` identical completions."""
        return Cohort(self, size)

    def succeed_many(self, events: Iterable[Event], value: Any = None) -> None:
        """Trigger many pending events with one bucket insert.

        Identical to calling ``ev.succeed(value)`` on each event in
        iteration order (FIFO at the current instant), but resolves the
        calendar bucket once.  Raises :class:`SimulationError` on the first
        already-triggered event; events before it are left triggered,
        matching the sequential-call semantics.
        """
        t = self.now
        buckets = self._buckets
        bucket = buckets.get(t)
        if bucket is None:
            bucket = buckets[t] = []
            _heappush(self._times, t)
        append = bucket.append
        for ev in events:
            if ev.triggered:
                raise SimulationError(f"{ev!r} already triggered")
            ev.triggered = True
            ev._value = value
            append(ev)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Shorthand for :func:`all_of` bound to this engine."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Shorthand for :func:`any_of` bound to this engine."""
        return AnyOf(self, events)

    # -- accounting ------------------------------------------------------
    def _record_batch(self, n: int) -> None:
        """Credit an ``n``-member batch.

        The representative event itself is counted by calendar dispatch, so
        only the ``n - 1`` members it stands for are credited here; the
        batch-size histogram records the full cohort size ``n``.  This keeps
        the :meth:`counters` breakdown exact::

            events_processed == dispatched + batched + absorbed
        """
        self._event_count += n - 1
        self._batched += n - 1
        self._batch_count += 1
        bl = n.bit_length()
        hist = self._batch_hist
        hist[bl] = hist.get(bl, 0) + 1

    def count_events(self, n: int = 1) -> None:
        """Credit ``n`` logical events absorbed without a calendar entry.

        Model layers call this when they fold per-entity work into shared
        bookkeeping (e.g. a collective arrival per rank): the modeled
        system performed the event even though the simulator didn't pay a
        heap entry for it.  Shows up as ``absorbed_events`` in
        :meth:`counters`.
        """
        self._event_count += n
        self._absorbed += n

    @property
    def events_processed(self) -> int:
        """Total logical events so far: dispatched + batched + absorbed."""
        return self._event_count

    @property
    def wall_seconds(self) -> float:
        """Real time spent inside :meth:`run` / :meth:`step` dispatch so far.

        Setup work between engine construction and the first ``run()`` call
        (building ranks, fabrics, payloads) is excluded, so
        :attr:`events_per_second` measures the dispatch loop itself.
        """
        return self._wall_seconds

    @property
    def events_per_second(self) -> float:
        """Simulator throughput: logical events per wall-clock second."""
        if self._wall_seconds <= 0:
            return 0.0
        return self._event_count / self._wall_seconds

    def counters(self) -> dict:
        """Machine-readable performance counters for benchmark records.

        ``dispatched_events`` / ``batched_events`` / ``absorbed_events``
        break ``events_processed`` down by how each event was paid for
        (calendar dispatch, batch membership, synchronous credit), and the
        two histograms show batch sizes and per-instant drain sizes in
        power-of-two bins — together they make the events/sec figure
        auditable.  ``bytes_copied`` / ``buffer_allocs`` are the
        process-wide data-plane copy counters (:data:`repro.buffers.stats`):
        how many payload bytes were physically materialized, and into how
        many buffers, since the last ``stats.reset()`` — they ride along so
        benchmark records can report copy volume next to event throughput.
        The incremental-checkpointing counters
        (:data:`repro.ckpt.incremental.stats`) ride along the same way:
        ``bytes_logical`` vs ``bytes_to_pfs`` and the chunk-dedup hit/miss
        counts — all zero while ``delta="off"``.  The fabric counters
        (:data:`repro.network.stats`) split message/byte traffic into
        intra-node (shared memory) vs inter-node (torus) and report the
        two-level-aggregation coalescing ratio (``tam_*`` — zero unless a
        strategy ran with ``tam`` enabled).
        """
        from ..buffers import stats as buffer_stats
        from ..ckpt.incremental import stats as delta_stats
        from ..network.fabric import stats as fabric_stats

        out = fabric_stats.snapshot()
        out.update({
            "events_processed": self._event_count,
            "dispatched_events": self._dispatched,
            "batched_events": self._batched,
            "absorbed_events": self._absorbed,
            "batches": self._batch_count,
            "batch_hist": pow2_histogram(self._batch_hist),
            "drain_hist": pow2_histogram(self._drain_hist),
            "wall_seconds": self._wall_seconds,
            "events_per_second": self.events_per_second,
            "virtual_time": self.now,
            "bytes_copied": buffer_stats.bytes_copied,
            "buffer_allocs": buffer_stats.buffer_allocs,
            "bytes_logical": delta_stats.bytes_logical,
            "bytes_to_pfs": delta_stats.bytes_to_pfs,
            "chunk_hits": delta_stats.chunk_hits,
            "chunk_misses": delta_stats.chunk_misses,
        })
        # Canonical namespaced spellings (repro.trace.SCHEMA).  The flat
        # legacy keys above stay for one release as aliases; new readers
        # should use the dotted names.
        from ..trace import SCHEMA
        for canonical, legacy in SCHEMA.items():
            out[canonical] = out[legacy]
        return out

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Process the single next event, advancing the clock."""
        t = self._times[0]
        self.now = t
        bucket = self._buckets[t]
        event = bucket.pop(0)
        t_wall = perf_counter()
        try:
            callbacks = event.callbacks
            event.callbacks = None
            event.processed = True
            if callbacks:
                for cb in callbacks:
                    cb(event)
        finally:
            self._event_count += 1
            self._dispatched += 1
            self._wall_seconds += perf_counter() - t_wall
            if not bucket:
                del self._buckets[t]
                _heappop(self._times)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event list drains or the clock passes ``until``.

        When stopped by ``until``, the clock is set exactly to ``until`` and
        any event scheduled at or before that instant has been processed.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        times = self._times
        buckets = self._buckets
        drain_hist = self._drain_hist
        pop = _heappop
        dispatched = 0
        t_wall = perf_counter()
        try:
            while times:
                t = times[0]
                if until is not None and t > until:
                    break
                pop(times)
                self.now = t
                bucket = buckets[t]
                i = 0
                drained = 0
                try:
                    n = len(bucket)
                    while i < n:
                        # Drain the instant front to back; events appended
                        # to the live bucket during dispatch (zero-delay
                        # cascades) are picked up by the outer re-check, in
                        # FIFO order, without touching the heap.
                        while i < n:
                            event = bucket[i]
                            i += 1
                            callbacks = event.callbacks
                            event.callbacks = None
                            event.processed = True
                            if callbacks:
                                for cb in callbacks:
                                    cb(event)
                        if i >= _BUCKET_COMPACT:
                            del bucket[:i]
                            drained += i
                            i = 0
                        n = len(bucket)
                finally:
                    drained += i
                    dispatched += drained
                    bl = drained.bit_length()
                    drain_hist[bl] = drain_hist.get(bl, 0) + 1
                    if i < len(bucket):
                        # Aborted mid-instant (StopEngine, process error):
                        # keep the unprocessed remainder schedulable.
                        del bucket[:i]
                        _heappush(times, t)
                    else:
                        del buckets[t]
            if until is not None:
                self.now = until
        except StopEngine:
            return
        finally:
            self._event_count += dispatched
            self._dispatched += dispatched
            self._wall_seconds += perf_counter() - t_wall

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        times = self._times
        return times[0] if times else float("inf")
