"""Shared-resource primitives for the DES kernel.

Three primitives cover everything the Blue Gene/P + GPFS model needs:

:class:`Resource`
    A counted semaphore with a FIFO wait queue — used for metadata-server
    service slots, directory tokens, and per-file allocation managers.
:class:`Store`
    An unbounded buffer with *filtered* gets — used for MPI mailboxes
    (matching on ``(source, tag)``) and writer aggregation queues.
:class:`Pipe`
    A bandwidth-serialized FIFO channel with fixed latency — used for torus
    injection/ejection links, ION uplinks, and file-server disk streams.
    Transfers are modelled analytically (one event per transfer), which is
    what makes 65,536-rank experiments tractable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Optional

from .engine import Engine, Event

__all__ = ["Resource", "Store", "Pipe"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.engine)
        self.resource = resource


class Resource:
    """A counted semaphore with FIFO granting.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release()
    """

    __slots__ = ("engine", "capacity", "in_use", "_queue")

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._queue: deque = deque()

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        req = Request(self)
        if self.in_use < self.capacity:
            self.in_use += 1
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self) -> None:
        """Return a slot, granting the next queued request if any."""
        if self.in_use <= 0:
            raise RuntimeError("release() without matching request()")
        if self._queue:
            self._queue.popleft().succeed()
        else:
            self.in_use -= 1

    def release_many(self, n: int) -> None:
        """Return ``n`` slots at once, bulk-granting queued requests in FIFO.

        Identical to calling :meth:`release` ``n`` times, but the granted
        requests are triggered with one calendar insert
        (:meth:`~repro.sim.engine.Engine.succeed_many`).
        """
        if n < 0:
            raise ValueError(f"cannot release {n} slots")
        if n == 0:
            return
        if n > self.in_use:
            raise RuntimeError("release_many() without matching request()s")
        queue = self._queue
        granted = min(n, len(queue))
        if granted:
            batch = [queue.popleft() for _ in range(granted)]
            self.engine.succeed_many(batch)
        self.in_use -= n - granted

    def acquire(self):
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request()


class Store:
    """Unbounded item buffer with optional filtered retrieval.

    ``get()`` without a filter returns items in FIFO order.  With a filter,
    the oldest matching item is returned; non-matching items stay queued.
    Pending getters are served in arrival order whenever a matching item is
    put.  This is exactly the matching discipline MPI mailboxes need.
    """

    __slots__ = ("engine", "items", "_getters")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.items: list = []
        self._getters: list = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the first pending getter it satisfies."""
        for i, (flt, ev) in enumerate(self._getters):
            if flt is None or flt(item):
                del self._getters[i]
                ev.succeed(item)
                return
        self.items.append(item)

    def put_many(self, items: Iterable[Any]) -> None:
        """Deposit many items in order, as if :meth:`put` were called per item.

        With no getters pending — the aggregation-queue common case — this
        is a single list extend instead of a per-item matching scan.
        """
        if not self._getters:
            self.items.extend(items)
            return
        for item in items:
            self.put(item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Return an event triggering with the first (matching) item."""
        items = self.items
        if filter is None:
            if items:
                ev = Event(self.engine)
                ev.succeed(items.pop(0))
                return ev
        else:
            for i, item in enumerate(items):
                if filter(item):
                    ev = Event(self.engine)
                    ev.succeed(items.pop(i))
                    return ev
        ev = Event(self.engine)
        self._getters.append((filter, ev))
        return ev

    def peek_all(self) -> list:
        """Snapshot of queued items (diagnostics; does not consume)."""
        return list(self.items)


class Pipe:
    """A FIFO bandwidth-serialized channel with fixed per-transfer latency.

    A transfer of ``nbytes`` occupies the pipe for ``nbytes / bandwidth``
    seconds, starting when all earlier transfers have drained; the
    completion event additionally waits ``latency`` seconds (latency does
    not occupy the pipe).  This analytic treatment costs exactly one timer
    event per transfer while still capturing head-of-line serialization —
    the effect behind writer incast and ION funneling.
    """

    __slots__ = ("engine", "bandwidth", "latency", "busy_until", "bytes_moved")

    def __init__(self, engine: Engine, bandwidth: float, latency: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.engine = engine
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.busy_until = 0.0
        self.bytes_moved = 0

    def transfer(self, nbytes: float, extra_delay: float = 0.0) -> Event:
        """Schedule a transfer; the event triggers when the data has arrived.

        ``extra_delay`` adds service time beyond the bandwidth term (e.g.
        a seek penalty) that *does* occupy the pipe.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        eng = self.engine
        start = self.busy_until if self.busy_until > eng.now else eng.now
        duration = nbytes / self.bandwidth + extra_delay
        self.busy_until = start + duration
        self.bytes_moved += int(nbytes)
        return eng.timeout(self.busy_until + self.latency - eng.now)

    def reserve(self, nbytes: float, extra_delay: float = 0.0) -> float:
        """Reserve capacity like :meth:`transfer` but return the completion
        *time* instead of an event.

        Composite transports (e.g. a message crossing injection and ejection
        links) use this to combine several pipe reservations into a single
        timer event, which keeps the event count per message at one.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        eng = self.engine
        start = self.busy_until if self.busy_until > eng.now else eng.now
        self.busy_until = start + nbytes / self.bandwidth + extra_delay
        self.bytes_moved += int(nbytes)
        return self.busy_until + self.latency

    def would_complete_at(self, nbytes: float) -> float:
        """Completion time a transfer issued now would see (no side effects)."""
        eng = self.engine
        start = self.busy_until if self.busy_until > eng.now else eng.now
        return start + nbytes / self.bandwidth + self.latency

    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued work ahead of a transfer issued right now."""
        b = self.busy_until - self.engine.now
        return b if b > 0 else 0.0
