"""Symmetry-aware rank coalescing for the DES engine.

At figure scale the simulator replays tens of thousands of rank processes,
but most of them are *identical by construction*: every rbIO worker in a
64:1 group contributes the same checkpoint data, resumes from the same
barrier at the same instant, and performs the same single buffered Isend.
Simulating each of those ranks as its own generator process buys nothing —
their timelines are copies of each other.

Coalescing replays each symmetric group **once**: a single *representative*
process stands in for every member, performing each member's externally
visible actions (fabric transfers, mailbox deliveries, collective arrivals)
in member order from one generator.  Because

- per-member transfers still make the same :class:`~repro.sim.Pipe`
  reservations in the same order (the 63-into-1 writer incast serializes on
  the writer node's ejection pipe exactly as before),
- collective operations are still entered once per member (the arrival
  count, contribution slots, and completion timing of
  ``Communicator._collective_enter`` are unchanged; contiguous member
  ranges take the bulk O(1)-per-wave arrival path of
  ``Communicator._barrier_arrive_members``, which bumps the same counters
  in one step), and
- member timelines are identical by symmetry (their reports are synthesized
  from the representative's observed times),

the coalesced run is *exact*: writers, the file system, and every
downstream metric see the identical event timeline, at a fraction of the
process/event count.

Validity limits (enforced by the strategy's ``coalesce_plan`` and the
experiment runner, documented in DESIGN.md):

- per-member checkpoint data must be identical — the runner only coalesces
  when every rank shares one :class:`~repro.ckpt.CheckpointData` object;
- members must never diverge: per-rank RNG draws (1PFPP's arrival jitter),
  per-member file offsets/FS handles (coIO aggregation), or flow-control
  acknowledgements (``max_outstanding``) desynchronize the group, so those
  configurations auto-disable coalescing and run uncoalesced.

Two-level aggregation (``tam``, rbIO) breaks *full* group symmetry — node
leaders block on their members' intra-node forwards before issuing the
combined inter-node message — but preserves it *per role*: all plain
members are symmetric, and leaders of equal-size node subgroups are
symmetric with each other.  rbIO therefore keeps its coalesce plan under
TAM and swaps in a role-aware replay
(:meth:`repro.ckpt.ReducedBlockingIO._coalesced_worker_tam`) that posts the
member traffic in bulk and replays each leader symmetry class from one
child process, so 64K-rank TAM sweeps stay as cheap as flat ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["GroupPlan", "CoalescePlan"]


@dataclass(frozen=True)
class GroupPlan:
    """One symmetric group: ``rep`` replays every rank in ``members``.

    ``members`` are world ranks with identical schedules (``rep`` is the
    first of them); ranks not covered by any group run uncoalesced.
    """

    rep: int
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a coalesce group needs at least one member")
        if self.rep != self.members[0]:
            raise ValueError(
                f"rep {self.rep} must be the first member {self.members[0]}"
            )

    @property
    def is_contiguous(self) -> bool:
        """Whether members form a contiguous ascending rank range.

        Contiguous groups (every plan the checkpoint strategies produce)
        take the engine's bulk O(1)-per-wave collective arrival path;
        other shapes fall back to per-member entry with identical
        semantics.
        """
        m = self.members
        return list(m) == list(range(m[0], m[0] + len(m)))


@dataclass(frozen=True)
class CoalescePlan:
    """A strategy's offer to replay symmetric ranks once.

    ``worker_main(ctx, members, data, steps, basedir, gaps,
    barrier_each_step)`` is a generator run on each group's representative
    rank; it must return ``{member_rank: [RankReport, ...]}`` covering every
    member of that group for every step.  ``gaps`` is the normalized
    per-step pre-gap tuple (``len(steps)`` entries, first always 0) from
    :func:`repro.experiments.runner.normalize_gaps`.
    """

    groups: tuple[GroupPlan, ...]
    worker_main: Callable

    def rep_members(self) -> dict[int, tuple[int, ...]]:
        """Mapping representative rank -> the members it replays."""
        return {g.rep: g.members for g in self.groups}

    def replayed_ranks(self) -> frozenset:
        """Ranks that must *not* be spawned (replayed by a representative)."""
        out = set()
        for g in self.groups:
            out.update(g.members)
            out.discard(g.rep)
        return frozenset(out)

    @property
    def n_replayed(self) -> int:
        """How many rank processes the plan eliminates."""
        return sum(len(g.members) - 1 for g in self.groups)
