"""Deterministic random-stream management and service-time noise models.

The paper's experiments ran "under normal load, where there might be noise
from other online users"; the coIO outliers of Fig. 10 and the triangular
1PFPP spread of Fig. 9 depend on that noise.  We reproduce it with seeded,
per-subsystem random streams so every run of the simulator is bit-for-bit
repeatable while different subsystems (metadata service, file servers,
network) draw from statistically independent streams.

:class:`StreamRegistry`
    Hands out independent :class:`numpy.random.Generator` instances keyed by
    a string name, derived from one root seed via ``SeedSequence.spawn``
    semantics (hashing the key into the entropy pool).
:class:`NoiseModel`
    Multiplicative heavy-tailed service-time noise: a lognormal body with a
    rare Pareto-like outlier mixture.  ``factor()`` multiplies a nominal
    service time.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["StreamRegistry", "NoiseModel"]


class StreamRegistry:
    """Deterministic registry of named, independent RNG streams.

    Two registries created with the same ``root_seed`` produce identical
    streams for identical keys; distinct keys produce independent streams.

    >>> r = StreamRegistry(42)
    >>> a = r.stream("metadata")
    >>> b = r.stream("servers")
    >>> a is r.stream("metadata")
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, key: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``key``."""
        gen = self._streams.get(key)
        if gen is None:
            # Mix the key into the seed material deterministically.
            mixed = zlib.crc32(key.encode("utf-8"))
            seq = np.random.SeedSequence([self.root_seed, mixed])
            gen = np.random.default_rng(seq)
            self._streams[key] = gen
        return gen

    def spawn(self, key: str) -> "StreamRegistry":
        """Derive a child registry whose streams are independent of ours."""
        mixed = zlib.crc32(key.encode("utf-8"))
        return StreamRegistry((self.root_seed * 1_000_003 + mixed) & 0x7FFF_FFFF)


@dataclass
class NoiseModel:
    """Heavy-tailed multiplicative noise on service times.

    ``factor()`` returns ``F >= floor`` where ``log F`` is normal with
    standard deviation ``sigma`` most of the time; with probability
    ``outlier_prob`` the draw is multiplied by an additional Pareto factor
    with shape ``outlier_shape`` and scale ``outlier_scale`` — this is the
    mixture that produces the rare very-slow aggregators the paper blames
    for the coIO performance drop at 65,536 processors.

    Parameters
    ----------
    sigma:
        Standard deviation of the lognormal body (0 disables body noise).
    outlier_prob:
        Per-draw probability of an outlier multiplier.
    outlier_scale:
        Minimum outlier multiplier (Pareto scale).
    outlier_shape:
        Pareto tail index; smaller = heavier tail.
    floor:
        Lower clamp applied to the final factor.
    """

    sigma: float = 0.15
    outlier_prob: float = 0.0
    outlier_scale: float = 3.0
    outlier_shape: float = 2.0
    floor: float = 0.05

    def factor(self, rng: np.random.Generator) -> float:
        """Draw one multiplicative noise factor."""
        f = float(np.exp(rng.normal(0.0, self.sigma))) if self.sigma > 0 else 1.0
        if self.outlier_prob > 0 and rng.random() < self.outlier_prob:
            # Pareto(shape) on [1, inf); scale shifts the minimum multiplier.
            u = rng.random()
            pareto = (1.0 - u) ** (-1.0 / self.outlier_shape)
            f *= self.outlier_scale * pareto
        return f if f > self.floor else self.floor

    def factors(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorised :meth:`factor` for ``n`` independent draws."""
        f = np.exp(rng.normal(0.0, self.sigma, size=n)) if self.sigma > 0 else np.ones(n)
        if self.outlier_prob > 0:
            mask = rng.random(n) < self.outlier_prob
            k = int(mask.sum())
            if k:
                u = rng.random(k)
                f[mask] *= self.outlier_scale * (1.0 - u) ** (-1.0 / self.outlier_shape)
        return np.maximum(f, self.floor)

    @classmethod
    def quiet(cls) -> "NoiseModel":
        """A noise-free model (for deterministic unit tests / ablations)."""
        return cls(sigma=0.0, outlier_prob=0.0)
