"""repro — reproduction of "Parallel I/O Performance for Application-Level
Checkpointing on the Blue Gene/P System" (Fu, Min, Latham, Carothers;
CLUSTER 2011).

The package implements the paper's contribution — the rbIO reduced-blocking
two-phase checkpointing approach, alongside tuned collective MPI-IO (coIO)
and the 1-POSIX-file-per-processor baseline — together with every substrate
the study depends on, built from scratch:

- :mod:`repro.sim` — discrete-event simulation kernel;
- :mod:`repro.topology` / :mod:`repro.network` — Blue Gene/P machine model
  (torus, psets/IONs, calibrated Intrepid constants);
- :mod:`repro.mpi` — simulated MPI (p2p, collectives, communicators);
- :mod:`repro.storage` — GPFS-like shared parallel file system (metadata
  service, block allocation, byte-range lock tokens, striped servers);
- :mod:`repro.mpiio` — ROMIO-like collective buffering (two-phase I/O,
  aggregators, aligned file domains, hints);
- :mod:`repro.ckpt` — the three checkpointing strategies + restart, plus
  the bbIO burst-buffer extension;
- :mod:`repro.staging` — multi-tier asynchronous checkpoint staging
  (burst buffers, background drain, partner replication);
- :mod:`repro.nekcem` — a NekCEM-like SEDG Maxwell solver (GLL bases,
  low-storage RK4, hex meshes, .rea/.map inputs, vtk outputs) with a
  slab-parallel driver on the simulated machine;
- :mod:`repro.buffers` — zero-copy scatter-gather payload buffers
  (:class:`~repro.buffers.ByteRope`) with data-plane copy accounting;
- :mod:`repro.profiling` — Darshan-style I/O instrumentation;
- :mod:`repro.model` — the paper's analytic models (Eqs. 1-7);
- :mod:`repro.experiments` — per-figure/table experiment harness.

Quickstart::

    from repro.ckpt import ReducedBlockingIO
    from repro.experiments import paper_data, run_checkpoint_step

    run = run_checkpoint_step(ReducedBlockingIO(workers_per_writer=64),
                              n_ranks=16384, data=paper_data(16384))
    print(run.result.write_bandwidth / 1e9, "GB/s")
"""

from .buffers import ByteRope, SegmentList
from .buffers import stats as buffer_stats
from .ckpt import (
    BurstBufferIO,
    CheckpointData,
    CheckpointResult,
    CheckpointSchedule,
    CheckpointStrategy,
    CollectiveIO,
    Field,
    OneFilePerProcess,
    RankReport,
    ReducedBlockingIO,
)
from .topology import MachineConfig, intrepid

__version__ = "1.1.0"

__all__ = [
    "BurstBufferIO",
    "ByteRope",
    "SegmentList",
    "buffer_stats",
    "CheckpointData",
    "CheckpointResult",
    "CheckpointSchedule",
    "CheckpointStrategy",
    "CollectiveIO",
    "Field",
    "OneFilePerProcess",
    "RankReport",
    "ReducedBlockingIO",
    "MachineConfig",
    "intrepid",
    "__version__",
]
