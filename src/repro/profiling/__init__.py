"""Darshan-style I/O instrumentation and figure analyses."""

from .analysis import (
    distribution_summary,
    drain_activity,
    io_time_distribution,
    write_activity,
    writer_worker_split,
)
from .darshan import DarshanProfiler, OpRecord

__all__ = [
    "DarshanProfiler",
    "OpRecord",
    "distribution_summary",
    "drain_activity",
    "io_time_distribution",
    "write_activity",
    "writer_worker_split",
]
