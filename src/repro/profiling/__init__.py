"""Darshan-style I/O instrumentation and figure analyses.

Profiling follows the same module-level off-switch idiom as
``repro.faults`` and ``repro.trace``: :func:`configure_profiling`
selects the mode, :func:`make_profiler` returns either a live
:class:`DarshanProfiler` or ``None``.  Every hot-path producer
(``FSClient._record``, strategy ``record_phase`` calls, the staging
drainer) already guards with ``profiler is not None``, so ``off`` costs
one attribute test per op — nothing is allocated or appended.  Sweeps
that never read profiles (the campaign runner's non-figure points) run
with profiling off; figure pipelines keep it on because their summaries
read ``run.profiler`` directly.
"""

from __future__ import annotations

from typing import Optional

from .analysis import (
    distribution_summary,
    drain_activity,
    io_time_distribution,
    write_activity,
    writer_worker_split,
)
from .darshan import DarshanProfiler, OpRecord

__all__ = [
    "DarshanProfiler",
    "OpRecord",
    "PROFILING_MODES",
    "configure_profiling",
    "distribution_summary",
    "drain_activity",
    "io_time_distribution",
    "make_profiler",
    "profiling_mode",
    "write_activity",
    "writer_worker_split",
]

PROFILING_MODES = ("on", "off")

_mode = "on"


def configure_profiling(mode: str = "on") -> str:
    """Set the profiling mode; returns the previous one (for restore)."""
    global _mode
    if mode not in PROFILING_MODES:
        raise ValueError(
            f"profiling mode must be one of {PROFILING_MODES}, got {mode!r}")
    previous = _mode
    _mode = mode
    return previous


def profiling_mode() -> str:
    """The currently configured profiling mode."""
    return _mode


def make_profiler() -> Optional[DarshanProfiler]:
    """A profiler per the current mode, or ``None`` when switched off.

    An active span tracer forces a live profiler regardless of the
    profiling mode: fs/phase spans are *forwarded* from profiler
    records (one event, two views), so tracing without a profiler would
    silently drop them.
    """
    from .. import trace
    if _mode == "on" or trace.tracer is not None:
        return DarshanProfiler()
    return None
