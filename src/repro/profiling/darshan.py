"""Darshan-style I/O instrumentation.

The paper verifies its tuning with two kinds of profile data:

- **per-rank I/O time distributions** (Figs. 9-11): for every processor, the
  wall-clock time it spent blocked on checkpoint I/O in one step;
- **Darshan log analysis** (Fig. 12): write-activity timelines showing when
  each writer/aggregator was actually committing data, which exposes the
  lock-contention gaps of coIO versus the tight synchronized band of rbIO.

:class:`DarshanProfiler` collects per-operation records from the file-system
clients (create/open/write/read/close with timestamps, sizes, and paths) and
app-level *phase* records from the checkpoint strategies (e.g. a worker's
``isend`` window).  :mod:`repro.profiling.analysis` turns these into the
figures' data series.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

import numpy as np

from .. import trace as _trace
from ..sim import IntervalRecorder

__all__ = ["OpRecord", "DarshanProfiler"]


class OpRecord:
    """One instrumented operation (file op or app-level phase)."""

    __slots__ = ("rank", "op", "start", "end", "nbytes", "path")

    def __init__(self, rank: int, op: str, start: float, end: float,
                 nbytes: int, path: str) -> None:
        self.rank = rank
        self.op = op
        self.start = start
        self.end = end
        self.nbytes = nbytes
        self.path = path

    @property
    def duration(self) -> float:
        """Wall-clock duration of the operation."""
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Op {self.op} rank={self.rank} [{self.start:.4f},{self.end:.4f}] "
            f"{self.nbytes}B {self.path!r}>"
        )


class DarshanProfiler:
    """Collects I/O operation records for one job.

    File-system clients call :meth:`record_op`; checkpoint strategies call
    :meth:`record_phase` for application-level blocking windows (phases are
    stored with an ``app:`` prefix on the op name).  ``reset()`` between
    checkpoint steps isolates per-step analyses.
    """

    def __init__(self) -> None:
        self.records: list[OpRecord] = []

    # -- recording -----------------------------------------------------------
    def record_op(self, rank: int, op: str, start: float, end: float,
                  nbytes: int, path: str) -> None:
        """Record a file-system operation (called by FSClient)."""
        self.records.append(OpRecord(rank, op, start, end, nbytes, path))
        tr = _trace.tracer
        if tr is not None:
            # Forwarded, not duplicated at the call site: op records and
            # fs spans come from the same event, so they cannot disagree.
            tr.span(rank, op, "fs", start, end, nbytes,
                    args={"path": path})

    def record_phase(self, rank: int, phase: str, start: float, end: float,
                     nbytes: int = 0) -> None:
        """Record an application-level phase (e.g. 'ckpt', 'isend')."""
        self.records.append(OpRecord(rank, f"app:{phase}", start, end, nbytes, ""))
        tr = _trace.tracer
        if tr is not None:
            tr.span(rank, phase, "phase", start, end, nbytes)

    def reset(self) -> None:
        """Drop all records (between checkpoint steps)."""
        self.records.clear()

    # -- queries --------------------------------------------------------------
    def select(self, ops: Optional[Iterable[str]] = None,
               path_prefix: Optional[str] = None) -> list[OpRecord]:
        """Records filtered by op name(s) and/or path prefix."""
        out = self.records
        if ops is not None:
            opset = set(ops)
            out = [r for r in out if r.op in opset]
        if path_prefix is not None:
            out = [r for r in out if r.path.startswith(path_prefix)]
        return list(out) if out is self.records else out

    def op_counts(self) -> Counter:
        """Darshan-like counter table: number of ops per type."""
        return Counter(r.op for r in self.records)

    def bytes_by_op(self) -> dict[str, int]:
        """Total bytes moved per op type."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.op] = out.get(r.op, 0) + r.nbytes
        return out

    def per_rank_io_time(self, ops: Optional[Iterable[str]] = None) -> dict[int, float]:
        """Total time each rank spent inside the selected operations."""
        out: dict[int, float] = {}
        for r in self.select(ops):
            out[r.rank] = out.get(r.rank, 0.0) + r.duration
        return out

    def per_rank_span(self, ops: Optional[Iterable[str]] = None) -> dict[int, tuple[float, float]]:
        """(first start, last end) of the selected ops, per rank."""
        out: dict[int, tuple[float, float]] = {}
        for r in self.select(ops):
            cur = out.get(r.rank)
            if cur is None:
                out[r.rank] = (r.start, r.end)
            else:
                out[r.rank] = (min(cur[0], r.start), max(cur[1], r.end))
        return out

    def write_intervals(self) -> IntervalRecorder:
        """Activity intervals of all 'write' operations (Fig. 12 input)."""
        rec = IntervalRecorder("writes")
        for r in self.records:
            if r.op == "write":
                rec.record(r.start, r.end, r.rank)
        return rec

    def phase_intervals(self, phase: str) -> IntervalRecorder:
        """Activity intervals of one application-level phase.

        ``phase`` is the name passed to :meth:`record_phase` (e.g.
        ``"isend"``, ``"stage"``, ``"drain"``) — the ``app:`` prefix is
        added here.
        """
        op = f"app:{phase}"
        rec = IntervalRecorder(phase)
        for r in self.records:
            if r.op == op:
                rec.record(r.start, r.end, r.rank)
        return rec

    def file_counters(self) -> dict[str, dict[str, float]]:
        """Per-file Darshan-style counters.

        Keys mirror Darshan's POSIX module: ``WRITES``, ``BYTES_WRITTEN``,
        ``READS``, ``BYTES_READ``, ``F_WRITE_TIME``, ``F_READ_TIME``,
        ``OPENS``.
        """
        out: dict[str, dict[str, float]] = {}
        for r in self.records:
            if not r.path:
                continue
            c = out.setdefault(r.path, {
                "WRITES": 0, "BYTES_WRITTEN": 0, "READS": 0, "BYTES_READ": 0,
                "F_WRITE_TIME": 0.0, "F_READ_TIME": 0.0, "OPENS": 0,
            })
            if r.op == "write":
                c["WRITES"] += 1
                c["BYTES_WRITTEN"] += r.nbytes
                c["F_WRITE_TIME"] += r.duration
            elif r.op == "read":
                c["READS"] += 1
                c["BYTES_READ"] += r.nbytes
                c["F_READ_TIME"] += r.duration
            elif r.op in ("open", "create"):
                c["OPENS"] += 1
        return out

    def summary(self) -> dict[str, float]:
        """One-line job summary (total ops, bytes, busiest rank).

        Includes the process-wide data-plane copy counters
        (:data:`repro.buffers.stats`) so a profile shows host copy volume
        next to the I/O it produced, and the incremental-checkpointing
        counters (:data:`repro.ckpt.incremental.stats`) — logical vs
        PFS-shipped bytes and chunk-dedup hits/misses, zero unless a
        strategy ran with ``delta`` enabled — and the fabric traffic split
        (:data:`repro.network.stats`): intra-node vs inter-node messages
        and bytes plus the TAM coalescing ratio.
        """
        from ..buffers import stats as buffer_stats
        from ..ckpt.incremental import stats as delta_stats
        from ..network.fabric import stats as fabric_stats

        writes = self.select(["write"])
        per_rank = self.per_rank_io_time()
        out = {k: float(v) for k, v in fabric_stats.snapshot().items()}
        out.update({
            "n_records": len(self.records),
            "n_writes": len(writes),
            "bytes_written": float(sum(r.nbytes for r in writes)),
            "max_rank_io_time": max(per_rank.values()) if per_rank else 0.0,
            "mean_rank_io_time": float(np.mean(list(per_rank.values()))) if per_rank else 0.0,
            "bytes_copied": float(buffer_stats.bytes_copied),
            "buffer_allocs": float(buffer_stats.buffer_allocs),
            "bytes_logical": float(delta_stats.bytes_logical),
            "bytes_to_pfs": float(delta_stats.bytes_to_pfs),
            "chunk_hits": float(delta_stats.chunk_hits),
            "chunk_misses": float(delta_stats.chunk_misses),
        })
        return out
