"""Analyses over profiler records: the data series behind Figs. 9-12.

These functions transform a :class:`~repro.profiling.darshan.DarshanProfiler`
(or raw per-rank timing dicts from a checkpoint run) into exactly the series
the paper plots:

- :func:`io_time_distribution` — per-rank scatter of I/O time for one
  checkpoint step (Figs. 9, 10, 11).
- :func:`distribution_summary` — median/percentile/outlier statistics used
  in the paper's prose ("most of the processors finish within 10 seconds").
- :func:`write_activity` — concurrent-writer timeline, the Darshan write
  activity analysis of Fig. 12.
- :func:`drain_activity` — the same timeline for the staging tier's
  background drain (bbIO): how many drain processes were committing to the
  PFS at each instant, the Fig. 12 analogue for asynchronous staging.
- :func:`writer_worker_split` — separates the two "lines" of Fig. 11
  (writers vs workers in rbIO).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from .darshan import DarshanProfiler

__all__ = [
    "io_time_distribution",
    "distribution_summary",
    "write_activity",
    "drain_activity",
    "writer_worker_split",
]


def io_time_distribution(per_rank_time: Mapping[int, float],
                         n_ranks: Optional[int] = None) -> tuple[np.ndarray, np.ndarray]:
    """Per-rank I/O-time scatter series: (rank ids, times).

    Missing ranks (no I/O at all) appear with 0.0 when ``n_ranks`` is given,
    matching the paper's plots where every processor has a point.
    """
    if n_ranks is None:
        ranks = np.array(sorted(per_rank_time), dtype=np.int64)
        times = np.array([per_rank_time[r] for r in ranks])
        return ranks, times
    ranks = np.arange(n_ranks, dtype=np.int64)
    times = np.zeros(n_ranks)
    for r, t in per_rank_time.items():
        if 0 <= r < n_ranks:
            times[r] = t
    return ranks, times


def distribution_summary(times: Iterable[float]) -> dict[str, float]:
    """Summary statistics of a per-rank time distribution.

    ``outlier_fraction`` counts ranks beyond 3x the median — the quantity
    the paper points at in Fig. 10's discussion.
    """
    arr = np.asarray(list(times), dtype=float)
    if arr.size == 0:
        return {"count": 0, "median": 0.0, "p95": 0.0, "max": 0.0,
                "mean": 0.0, "outlier_fraction": 0.0}
    med = float(np.median(arr))
    return {
        "count": int(arr.size),
        "median": med,
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "outlier_fraction": float(np.mean(arr > 3 * med)) if med > 0 else 0.0,
    }


def write_activity(profiler: DarshanProfiler, bin_width: float = 0.5
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Concurrent write activity over time (Fig. 12 series).

    Returns ``(bin_start_times, active_writer_counts)``: how many
    processes were inside a file-system write at each instant.
    """
    return profiler.write_intervals().activity(bin_width)


def drain_activity(profiler: DarshanProfiler, bin_width: float = 0.5
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Concurrent background-drain activity over time (bbIO timeline).

    Returns ``(bin_start_times, active_drain_counts)``: how many staging
    drain processes were committing data to the PFS at each instant.
    Non-empty only for runs whose strategy stages through
    :mod:`repro.staging` (the drain records ``app:drain`` phases).
    """
    return profiler.phase_intervals("drain").activity(bin_width)


def writer_worker_split(per_rank_time: Mapping[int, float],
                        writer_ranks: Iterable[int]) -> dict[str, dict[str, float]]:
    """Split a per-rank distribution into writer and worker populations.

    Fig. 11 shows two horizontal "lines": the upper is the rbIO writers'
    commit time, the lower is the workers' Isend time.  This returns
    :func:`distribution_summary` for each population.
    """
    writers = set(writer_ranks)
    w_times = [t for r, t in per_rank_time.items() if r in writers]
    k_times = [t for r, t in per_rank_time.items() if r not in writers]
    return {
        "writers": distribution_summary(w_times),
        "workers": distribution_summary(k_times),
    }
