"""Machine configuration for the simulated Blue Gene/P ("Intrepid") system.

All hardware constants live here so experiments, calibration sweeps, and
ablations can vary one machine aspect without touching mechanism code.
Values follow the paper's Section V-A and the cited Blue Gene/P references:

- quad-core 850 MHz PowerPC 450 compute nodes, 4 ranks/node in VN mode;
- 3-D torus, 425 MB/s per link per direction, six links per node;
- one dedicated I/O node (ION) per pset of 64 compute nodes, connected to
  storage over 10 Gigabit Ethernet;
- GPFS backed by 16 DDN 9900 arrays / 128 file servers with a ~47 GB/s
  aggregate write peak (Lang et al., SC'09).

Effective (as opposed to theoretical) bandwidth parameters are calibrated so
the five checkpointing configurations land on the paper's measured curves;
see ``DESIGN.md`` sections 6-7; the benchmarks assert the resulting shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .torus import TorusTopology

__all__ = ["MachineConfig", "NodeGroups", "intrepid", "PsetMap"]


@dataclass(frozen=True)
class PsetMap:
    """Mapping between ranks, compute nodes, and psets/IONs.

    A *pset* is one ION plus the ``nodes_per_pset`` compute nodes it serves;
    every file-system call from a compute node is proxied through its pset's
    ION.  Ranks are laid out block-wise over nodes (ranks ``0..c-1`` on node
    0, etc.), matching CNK's default in virtual-node mode.
    """

    n_ranks: int
    cores_per_node: int
    nodes_per_pset: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1 or self.cores_per_node < 1 or self.nodes_per_pset < 1:
            raise ValueError("PsetMap parameters must be positive")

    @property
    def n_nodes(self) -> int:
        """Number of compute nodes in the partition (last node may be partial)."""
        return -(-self.n_ranks // self.cores_per_node)

    @property
    def n_psets(self) -> int:
        """Number of psets (= IONs) in the partition (at least one)."""
        return max(1, self.n_nodes // self.nodes_per_pset)

    def node_of_rank(self, rank: int) -> int:
        """Compute node hosting ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return rank // self.cores_per_node

    def pset_of_rank(self, rank: int) -> int:
        """Pset (== ION index) serving ``rank``."""
        return min(self.node_of_rank(rank) // self.nodes_per_pset, self.n_psets - 1)

    def ranks_per_pset(self) -> int:
        """Ranks served by one full pset."""
        return self.cores_per_node * self.nodes_per_pset

    def ranks_of_node(self, node: int) -> range:
        """World ranks hosted by compute node ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        lo = node * self.cores_per_node
        return range(lo, min(lo + self.cores_per_node, self.n_ranks))


class NodeGroups:
    """Node co-residency structure of a communicator's ranks.

    Groups the *local* ranks of a communicator by the compute node their
    world rank lives on (block placement: node = world rank //
    ``cores_per_node``, CNK's VN-mode default).  This is the geometry the
    two-level aggregation (TAM) paths consult: each node's first local
    rank is its **leader** (node-local aggregator), and only leaders take
    part in inter-node exchanges.

    Attributes
    ----------
    leaders:
        Tuple of leader local ranks, in ascending node order.  The
        communicator's rank 0 is always ``leaders[0]``.
    members_of:
        ``{leader local rank: (members...)}`` — each node's local ranks in
        ascending order, leader first.
    leader_of:
        ``{local rank: leader local rank}`` for every member.
    max_group:
        Largest co-resident group size; 1 means no two ranks share a node
        (TAM has nothing to coalesce).
    """

    __slots__ = ("leaders", "members_of", "leader_of", "max_group")

    def __init__(self, world_ranks, cores_per_node: int) -> None:
        if cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        by_node: dict[int, list[int]] = {}
        for local, world in enumerate(world_ranks):
            by_node.setdefault(world // cores_per_node, []).append(local)
        leaders = []
        members_of = {}
        leader_of = {}
        max_group = 0
        for node in sorted(by_node):
            members = by_node[node]
            lead = members[0]
            leaders.append(lead)
            members_of[lead] = tuple(members)
            for m in members:
                leader_of[m] = lead
            if len(members) > max_group:
                max_group = len(members)
        self.leaders = tuple(leaders)
        self.members_of = members_of
        self.leader_of = leader_of
        self.max_group = max_group

    @property
    def n_nodes(self) -> int:
        """Number of distinct compute nodes represented."""
        return len(self.leaders)

    @property
    def nontrivial(self) -> bool:
        """Whether at least one node hosts two or more ranks."""
        return self.max_group >= 2


@dataclass(frozen=True)
class MachineConfig:
    """Every tunable hardware/software constant of the simulated system.

    Units: bytes, seconds, bytes/second.  See module docstring for sources.
    """

    # --- compute nodes ---------------------------------------------------
    cores_per_node: int = 4
    cpu_hz: float = 850e6               # PowerPC 450 clock
    memory_bandwidth: float = 13.6e9    # per-node DDR2 stream bandwidth

    # --- torus network ---------------------------------------------------
    torus_link_bandwidth: float = 425e6   # per link per direction
    torus_links_per_node: int = 6
    torus_hop_latency: float = 0.1e-6     # per-hop router latency
    mpi_overhead: float = 2.0e-6          # per-message software overhead
    eager_threshold: int = 1200           # CNK default eager/rendezvous cutoff

    # --- I/O nodes (psets) ----------------------------------------------
    nodes_per_pset: int = 64
    # Effective GPFS throughput of one ION's 10 GbE uplink.  10 GbE is
    # 1.25 GB/s raw; ~350 MB/s is what GPFS traffic achieved in practice
    # (shared with metadata/proxy traffic).
    ion_uplink_bandwidth: float = 350e6
    ion_latency: float = 40e-6            # compute node <-> ION round trip
    collective_net_bandwidth: float = 700e6  # compute node -> ION tree link

    # --- GPFS / storage ---------------------------------------------------
    n_file_servers: int = 128
    server_disk_bandwidth: float = 367e6  # 47 GB/s aggregate / 128 servers
    fs_block_size: int = 4 * 1024 * 1024  # GPFS block size on Intrepid
    # Backend stream-concurrency model.  Per-block service at a file server
    # is inflated by two opposing terms:
    #   - a queue-depth term ~ (server_queue_knee / active_streams): with few
    #     concurrent streams the DDN back-ends run at low queue depth and
    #     aggregate throughput grows roughly linearly with stream count;
    #   - a seek/stream-management term ~ seek_penalty_per_stream *
    #     active_streams: past saturation, more streams thrash.
    # Together they produce the concurrency optimum near 1,024 concurrent
    # writer streams that Fig. 8 measures on Intrepid's GPFS.
    seek_penalty_per_stream: float = 10.7e-6
    server_queue_knee: float = 1000.0
    server_queue_max_factor: float = 8.0
    server_queue_service_fraction: float = 0.8
    # Disk-head thrash reflects the streams multiplexed over a recent
    # window, not the instantaneous count: the concurrency estimate decays
    # from its peak with this time constant (seconds).
    stream_window: float = 2.0
    # Effective per-client single-stream write bandwidth (GPFS client
    # overhead; a single stream cannot saturate the backend).
    client_stream_bandwidth: float = 80e6
    # Metadata service times.  Directory inserts serialize through the
    # directory's metanode and slow down steeply as the directory grows
    # (block splits, metanode cache pressure, longer lock holds):
    #   t_create = meta_create_service
    #              * (1 + min((entries/knee)^3, max_factor))
    # With the defaults, step directories of <= ~1,024 files (rbIO/coIO)
    # pay ~1 ms per create, while 16,384+ creates in one directory (1PFPP)
    # sum to the ~300 s metadata storm of Fig. 9.
    meta_create_service: float = 1.0e-3
    meta_create_dir_knee: float = 4000.0
    meta_create_dir_max_factor: float = 40.0
    meta_open_service: float = 1.5e-3     # open existing / second opener
    meta_close_service: float = 0.8e-3
    # Per-extent block-allocation service for files with >1 concurrent
    # writer (serialized through the file's allocation manager).
    alloc_service: float = 0.7e-3
    alloc_batch_blocks: int = 64          # sole writers allocate in segments
    # Byte-range lock tokens.
    token_acquire: float = 0.3e-3
    token_revoke: float = 2.0e-3
    # Token-manager congestion storms.  A write burst on a *shared* file
    # (more than one concurrent writer client) risks a pathological token
    # revocation storm whose probability rises steeply once the global
    # number of active writer streams passes the token manager's saturation
    # knee:  p = storm_probability * (streams / storm_knee) ** storm_beta.
    # Severity is Pareto(storm_shape) scaled by storm_scale seconds.  This
    # is the model of the paper's "outliers (caused by noise and/or other
    # factors under normal user load)" behind Fig. 10 and the coIO drop at
    # 65,536 processors; rbIO with nf=ng writes sole-owner files and is
    # therefore immune (the flat writer line of Fig. 11).
    storm_probability: float = 0.002
    storm_knee: float = 2000.0
    storm_beta: float = 12.0
    storm_scale: float = 4.0
    storm_shape: float = 2.0
    storm_probability_max: float = 0.35

    # --- noise ------------------------------------------------------------
    noise_sigma: float = 0.10             # lognormal body on service times
    seed: int = 20110926                  # CLUSTER'11 conference date

    def pset_map(self, n_ranks: int) -> PsetMap:
        """Rank/node/pset layout for an ``n_ranks`` partition."""
        return PsetMap(n_ranks, self.cores_per_node, self.nodes_per_pset)

    def torus(self, n_ranks: int) -> TorusTopology:
        """Torus geometry for an ``n_ranks`` partition."""
        return TorusTopology.for_nodes(self.pset_map(n_ranks).n_nodes)

    @property
    def aggregate_disk_bandwidth(self) -> float:
        """Theoretical backend write peak (47 GB/s on Intrepid)."""
        return self.n_file_servers * self.server_disk_bandwidth

    def with_(self, **changes) -> "MachineConfig":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)

    def quiet(self) -> "MachineConfig":
        """Copy with all stochastic noise disabled (deterministic tests)."""
        return replace(self, noise_sigma=0.0, storm_probability=0.0)


def intrepid() -> MachineConfig:
    """The default calibrated Intrepid (ALCF Blue Gene/P) configuration."""
    return MachineConfig()
