"""Blue Gene/P machine model: torus geometry, pset layout, hardware constants."""

from .machine import MachineConfig, PsetMap, intrepid
from .torus import TorusTopology, torus_dims_for

__all__ = ["MachineConfig", "PsetMap", "intrepid", "TorusTopology", "torus_dims_for"]
