"""Blue Gene/P machine model: torus geometry, pset layout, hardware constants."""

from .machine import MachineConfig, NodeGroups, PsetMap, intrepid
from .torus import TorusTopology, torus_dims_for

__all__ = ["MachineConfig", "NodeGroups", "PsetMap", "intrepid",
           "TorusTopology", "torus_dims_for"]
