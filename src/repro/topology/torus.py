"""3-D torus topology of the Blue Gene/P compute fabric.

Intrepid's compute nodes are wired in a 3-D torus (425 MB/s per link per
direction, six links per node).  For the I/O experiments the torus matters in
two ways: rbIO workers ship checkpoint data to their group's writer across
it, and message latency is proportional to hop count.  We model geometry and
dimension-ordered routing exactly; link-level contention is captured at the
endpoints (injection/ejection) by :mod:`repro.network.fabric`, which is where
checkpoint traffic actually queues (63-into-1 writer incast).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TorusTopology", "torus_dims_for"]


def torus_dims_for(n_nodes: int) -> tuple[int, int, int]:
    """Choose a near-balanced ``(X, Y, Z)`` torus shape for ``n_nodes``.

    Blue Gene partitions come in power-of-two node counts with shapes close
    to cubic (e.g. a 4096-node partition is 16x16x16).  We factor the node
    count into three powers of two as evenly as possible, matching how ALCF
    partitions were wired.

    >>> torus_dims_for(4096)
    (16, 16, 16)
    >>> torus_dims_for(512)
    (8, 8, 8)
    """
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    if n_nodes & (n_nodes - 1):
        raise ValueError(f"node count must be a power of two, got {n_nodes}")
    exp = n_nodes.bit_length() - 1
    ex = (exp + 2) // 3
    ey = (exp - ex + 1) // 2
    ez = exp - ex - ey
    return (1 << ex, 1 << ey, 1 << ez)


@dataclass(frozen=True)
class TorusTopology:
    """Geometry and routing of a 3-D torus partition.

    Node ids are assigned in row-major (Z fastest) order over the coordinate
    grid, which is how CNK enumerates nodes within a partition.
    """

    dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.dims) != 3 or any(d < 1 for d in self.dims):
            raise ValueError(f"dims must be three positive ints, got {self.dims}")

    @classmethod
    def for_nodes(cls, n_nodes: int) -> "TorusTopology":
        """Build the default near-cubic torus for a partition size."""
        return cls(torus_dims_for(n_nodes))

    @property
    def n_nodes(self) -> int:
        """Total node count of the partition."""
        x, y, z = self.dims
        return x * y * z

    def coords(self, node: int) -> tuple[int, int, int]:
        """Map a node id to its ``(x, y, z)`` torus coordinates."""
        x_dim, y_dim, z_dim = self.dims
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range for {self.dims} torus")
        z = node % z_dim
        y = (node // z_dim) % y_dim
        x = node // (z_dim * y_dim)
        return (x, y, z)

    def node_at(self, coords: tuple[int, int, int]) -> int:
        """Inverse of :meth:`coords`."""
        x, y, z = coords
        x_dim, y_dim, z_dim = self.dims
        if not (0 <= x < x_dim and 0 <= y < y_dim and 0 <= z < z_dim):
            raise ValueError(f"coords {coords} out of range for {self.dims} torus")
        return (x * y_dim + y) * z_dim + z

    @staticmethod
    def _axis_hops(a: int, b: int, dim: int) -> int:
        """Shortest wrap-aware distance along one torus axis."""
        d = abs(a - b)
        return min(d, dim - d)

    def hops(self, src: int, dst: int) -> int:
        """Dimension-ordered shortest hop count between two nodes."""
        if src == dst:
            return 0
        sa = self.coords(src)
        sb = self.coords(dst)
        return sum(self._axis_hops(a, b, d) for a, b, d in zip(sa, sb, self.dims))

    def neighbors(self, node: int) -> list[int]:
        """The (up to six) distinct torus neighbours of ``node``."""
        c = self.coords(node)
        out = []
        for axis in range(3):
            d = self.dims[axis]
            if d == 1:
                continue
            for step in (-1, 1):
                nc = list(c)
                nc[axis] = (nc[axis] + step) % d
                n = self.node_at(tuple(nc))
                if n != node and n not in out:
                    out.append(n)
        return out

    def max_hops(self) -> int:
        """Torus diameter (worst-case shortest path)."""
        return sum(d // 2 for d in self.dims)
