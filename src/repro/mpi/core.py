"""Simulated MPI: messages, requests, communicators.

This module provides the MPI subset that NekCEM-style checkpointing needs —
point-to-point with nonblocking sends (the heart of rbIO), communicator
splitting (the heart of split-collective coIO), and the control-plane
collectives (barrier / bcast / gather / allgather / reduce / allreduce).

Programming model
-----------------
Rank code is written as Python generators driven by the DES engine.  Each
blocking MPI call is a generator used with ``yield from``; nonblocking calls
return a :class:`Request` whose ``.event`` can be yielded::

    def rank_main(ctx):
        req = ctx.comm.isend(dest=0, nbytes=1 << 20, tag=7)
        yield req.event                       # send buffer reusable
        msg = yield from ctx.comm.recv(source=ANY_SOURCE, tag=7)
        yield from ctx.comm.barrier()

Semantics and costs
-------------------
- **Eager sends** (``nbytes <= eager_threshold`` or ``buffered=True``)
  complete locally after a memory-bandwidth copy into the send buffer; the
  data then moves through the fabric in the background.  This is the
  mechanism rbIO exploits: ``MPI_Isend`` of a ~2.4 MB checkpoint block
  returns in ~0.2 ms while the torus delivers it to the writer.
- **Rendezvous sends** complete locally only when the transport has
  delivered the data (receiver-not-ready stalls are not modelled; the
  checkpoint protocols studied here always pre-post receivers).
- **Collectives** are modelled analytically as binomial trees over the
  partition topology rather than as explicit message storms: every rank
  still synchronises on the same completion event (so *blocking structure*
  is exact), but a 65,536-rank barrier costs O(np) simulator events instead
  of O(np log np).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from ..network import Fabric
from ..sim import Cohort, Engine, Event, Store

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "Request",
    "Communicator",
    "CommView",
    "MPIError",
]

ANY_SOURCE = -1
ANY_TAG = -1


class MPIError(RuntimeError):
    """Raised on misuse of the simulated MPI interface."""


class Message:
    """A delivered point-to-point message."""

    __slots__ = ("source", "tag", "nbytes", "payload", "sent_at", "delivered_at")

    def __init__(self, source: int, tag: int, nbytes: int, payload: Any,
                 sent_at: float, delivered_at: float) -> None:
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Message src={self.source} tag={self.tag} "
            f"nbytes={self.nbytes} t={self.delivered_at:.6f}>"
        )


class Request:
    """Handle for a nonblocking operation.

    ``event`` triggers when the operation is locally complete (send buffer
    reusable for sends; message available for receives).  ``issued_at``
    records when the operation started, so callers can compute the paper's
    *perceived* (Isend-completion) timings.
    """

    __slots__ = ("event", "issued_at", "kind")

    def __init__(self, event: Event, issued_at: float, kind: str) -> None:
        self.event = event
        self.issued_at = issued_at
        self.kind = kind

    def wait(self):
        """Generator: wait for completion, returning the event value."""
        value = yield self.event
        return value

    @property
    def complete(self) -> bool:
        """Whether the operation has locally completed."""
        return self.event.processed


class _CollectiveOp:
    """Shared state of one in-flight collective call on a communicator."""

    __slots__ = ("name", "event", "arrived", "contrib", "root")

    def __init__(self, name: str, size: int, event: Event, root: int) -> None:
        self.name = name
        self.event = event
        self.arrived = 0
        self.contrib: list = [None] * size
        self.root = root


class Communicator:
    """Shared state of one MPI communicator (all member ranks).

    User code interacts through per-rank :class:`CommView` objects; the
    communicator owns mailboxes, collective-op bookkeeping, and the mapping
    from communicator-local ranks to world ranks (used for routing).
    """

    _next_id = 0

    def __init__(self, engine: Engine, fabric: Fabric, world_ranks: list[int]) -> None:
        if not world_ranks:
            raise MPIError("communicator needs at least one rank")
        self.engine = engine
        self.fabric = fabric
        self.world_ranks = list(world_ranks)
        self.size = len(world_ranks)
        self._local_of_world = {w: i for i, w in enumerate(self.world_ranks)}
        self.mailboxes = [Store(engine) for _ in range(self.size)]
        self._coll_ops: dict[int, _CollectiveOp] = {}
        self._coll_seq = [0] * self.size
        self.id = Communicator._next_id
        Communicator._next_id += 1
        # Binomial-tree depth and an effective per-stage latency for the
        # analytic collective model.
        self._depth = max(1, math.ceil(math.log2(self.size))) if self.size > 1 else 0
        cfg = fabric.config
        self._stage_latency = cfg.mpi_overhead + (
            cfg.torus_hop_latency * max(1, fabric.topology.max_hops() // 2)
        )
        self._link_bw = cfg.torus_link_bandwidth * cfg.torus_links_per_node
        # Barrier completion delay is a constant of the communicator; cache
        # it so the per-rank arrival fast path does no float math.
        self._sync_time = 2 * self.tree_time()

    def view(self, local_rank: int) -> "CommView":
        """The per-rank handle for ``local_rank`` on this communicator."""
        if not 0 <= local_rank < self.size:
            raise MPIError(f"rank {local_rank} out of range for size {self.size}")
        return CommView(self, local_rank)

    def local_rank_of(self, world_rank: int) -> int:
        """Translate a world rank to this communicator's numbering."""
        try:
            return self._local_of_world[world_rank]
        except KeyError:
            raise MPIError(f"world rank {world_rank} not in communicator") from None

    # -- collective machinery (called from CommView) ------------------------
    #
    # Each arrival is credited to the engine as one absorbed logical event:
    # the analytic model folds the rank's tree-stage message into shared
    # bookkeeping, but the modeled system did send it (see the module
    # docstring — a barrier is O(np) events, np up + np down).  The "down"
    # half is the completion fan-out, which is why every op completes on a
    # :class:`~repro.sim.Cohort` sized to the communicator.

    def _collective_enter(self, name: str, local_rank: int, contrib: Any,
                          root: int) -> tuple[_CollectiveOp, bool]:
        """Register a rank's arrival at its next collective call.

        Returns ``(op, is_last)``.  Raises if ranks disagree about which
        collective is being called (SPMD ordering violation).
        """
        seq = self._coll_seq[local_rank]
        self._coll_seq[local_rank] = seq + 1
        op = self._coll_ops.get(seq)
        if op is None:
            op = _CollectiveOp(name, self.size, Cohort(self.engine, self.size),
                               root)
            self._coll_ops[seq] = op
        elif op.name != name or op.root != root:
            raise MPIError(
                f"collective mismatch at seq {seq}: rank {local_rank} called "
                f"{name}(root={root}) but op is {op.name}(root={op.root})"
            )
        op.contrib[local_rank] = contrib
        op.arrived += 1
        self.engine.count_events()
        is_last = op.arrived == self.size
        if is_last:
            del self._coll_ops[seq]
        return op, is_last

    def _barrier_arrive(self, local_rank: int) -> _CollectiveOp:
        """Barrier-specialised :meth:`_collective_enter` + completion.

        The barrier is the hottest collective (every checkpoint wave runs
        one per step per rank), and it carries no contribution and a
        constant completion delay — so the generic path's contribution
        write, tuple return, and tree-time recomputation are pure overhead.
        Semantics are identical to ``_collective_enter("barrier", rank,
        None, 0)`` followed by ``_finish_after(op, 2 * tree_time(), None)``
        on the last arrival.
        """
        seqs = self._coll_seq
        seq = seqs[local_rank]
        seqs[local_rank] = seq + 1
        ops = self._coll_ops
        op = ops.get(seq)
        if op is None:
            op = _CollectiveOp("barrier", self.size,
                               Cohort(self.engine, self.size), 0)
            ops[seq] = op
        elif op.name != "barrier" or op.root != 0:
            raise MPIError(
                f"collective mismatch at seq {seq}: rank {local_rank} called "
                f"barrier(root=0) but op is {op.name}(root={op.root})"
            )
        arrived = op.arrived + 1
        op.arrived = arrived
        # Inlined engine.count_events(): one absorbed arrival, on the
        # hottest per-rank path in the simulator.
        engine = self.engine
        engine._event_count += 1
        engine._absorbed += 1
        if arrived == self.size:
            del ops[seq]
            self._finish_after(op, self._sync_time, None)
        return op

    def _barrier_arrive_members(self, local_ranks) -> _CollectiveOp:
        """Enter the next barrier for a whole symmetric member group.

        For the contiguous ascending ranges coalescing plans produce, the
        per-member loop collapses to two list-slice compares/assigns and a
        single arrival-count bump — O(1) interpreted operations per wave
        regardless of group size (the slices are C-level).  Any other
        membership shape, or members out of collective lockstep, falls back
        to per-member arrival with identical semantics.
        """
        members = list(local_ranks)
        k = len(members)
        if k == 0:
            raise MPIError("barrier_members requires at least one member")
        lo = members[0]
        seqs = self._coll_seq
        seq = seqs[lo]
        if members != list(range(lo, lo + k)) or seqs[lo:lo + k] != [seq] * k:
            op = None
            for lr in members:
                op = self._barrier_arrive(lr)
            return op
        seqs[lo:lo + k] = [seq + 1] * k
        ops = self._coll_ops
        op = ops.get(seq)
        if op is None:
            op = _CollectiveOp("barrier", self.size,
                               Cohort(self.engine, self.size), 0)
            ops[seq] = op
        elif op.name != "barrier" or op.root != 0:
            raise MPIError(
                f"collective mismatch at seq {seq}: members {lo}..{lo + k - 1} "
                f"called barrier(root=0) but op is {op.name}(root={op.root})"
            )
        op.arrived += k
        self.engine.count_events(k)
        if op.arrived == self.size:
            del ops[seq]
            self._finish_after(op, self._sync_time, None)
        return op

    def _complete_split(self, op: _CollectiveOp) -> None:
        """Build the sub-communicators of a completed MPI_Comm_split."""
        groups: dict[int, list[tuple[int, int]]] = {}
        for c, k, r in op.contrib:
            groups.setdefault(c, []).append((k, r))
        member_view: dict[int, CommView] = {}
        for c, members in groups.items():
            members.sort()
            world = [self.world_ranks[r] for _k, r in members]
            sub = Communicator(self.engine, self.fabric, world)
            for local, (_k, r) in enumerate(members):
                member_view[r] = sub.view(local)
        self._finish_after(op, 2 * self.tree_time(), member_view)

    def _finish_after(self, op: _CollectiveOp, delay: float, result: Any) -> None:
        """Trigger a collective's completion event after ``delay``."""
        if delay <= 0:
            op.event.succeed(result)
        else:
            self.engine.timeout(delay).add_callback(
                lambda _ev, op=op, result=result: op.event.succeed(result)
            )

    def tree_time(self, nbytes_per_stage: float = 0.0, stages: Optional[int] = None) -> float:
        """Analytic binomial-tree traversal time for the collective model."""
        depth = self._depth if stages is None else stages
        per_stage = self._stage_latency + nbytes_per_stage / self._link_bw
        return depth * per_stage


class CommView:
    """Per-rank handle to a :class:`Communicator` — the user-facing MPI API."""

    __slots__ = ("comm", "rank")

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.comm.size

    @property
    def world_rank(self) -> int:
        """This rank's id in the world communicator (used for routing)."""
        return self.comm.world_ranks[self.rank]

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def isend(self, dest: int, nbytes: int, tag: int = 0, payload: Any = None,
              buffered: bool = False) -> Request:
        """Nonblocking send of ``nbytes`` to communicator rank ``dest``.

        With ``buffered=True`` (or small messages) the returned request
        completes after a local memory copy — the rbIO fast path.
        """
        comm = self.comm
        if not 0 <= dest < comm.size:
            raise MPIError(f"isend dest {dest} out of range (size {comm.size})")
        if nbytes < 0:
            raise MPIError(f"negative message size {nbytes}")
        eng = comm.engine
        fabric = comm.fabric
        cfg = fabric.config
        issued_at = eng.now
        src_world = comm.world_ranks[self.rank]
        dst_world = comm.world_ranks[dest]
        eager = buffered or nbytes <= cfg.eager_threshold

        transport = fabric.transfer(src_world, dst_world, nbytes)
        mailbox = comm.mailboxes[dest]
        source_local = self.rank

        def deliver(_ev, mailbox=mailbox, source_local=source_local, tag=tag,
                    nbytes=nbytes, payload=payload, issued_at=issued_at, eng=eng):
            mailbox.put(Message(source_local, tag, nbytes, payload, issued_at, eng.now))

        transport.add_callback(deliver)

        if eager:
            # Local completion: buffer copy at memory bandwidth plus the
            # per-message software overhead.
            copy = cfg.mpi_overhead + fabric.local_copy_time(nbytes)
            local_done = eng.timeout(copy)
        else:
            local_done = transport
        return Request(local_done, issued_at, "isend")

    def post(self, dest: int, nbytes: int, tag: int = 0, payload: Any = None) -> None:
        """Fire-and-forget buffered send (coalescing replay).

        Moves the data through the fabric and delivers to ``dest``'s mailbox
        exactly like ``isend(..., buffered=True)``, but allocates no
        sender-side completion event: a coalesced representative replaying a
        symmetric member's Isend never waits on that member's local
        completion (it is identical to its own), so the event would be pure
        heap churn.
        """
        comm = self.comm
        if not 0 <= dest < comm.size:
            raise MPIError(f"post dest {dest} out of range (size {comm.size})")
        if nbytes < 0:
            raise MPIError(f"negative message size {nbytes}")
        eng = comm.engine
        issued_at = eng.now
        transport = comm.fabric.transfer(
            comm.world_ranks[self.rank], comm.world_ranks[dest], nbytes
        )
        mailbox = comm.mailboxes[dest]
        source_local = self.rank

        def deliver(_ev, mailbox=mailbox, source_local=source_local, tag=tag,
                    nbytes=nbytes, payload=payload, issued_at=issued_at, eng=eng):
            mailbox.put(Message(source_local, tag, nbytes, payload, issued_at, eng.now))

        transport.callbacks.append(deliver)

    def post_members(self, sources_local, dest: int, nbytes: int,
                     tag: int = 0, payload: Any = None) -> None:
        """Bulk :meth:`post`: one buffered send per represented member.

        A coalesced representative replaying a symmetric group's sends
        issues one per member; this keeps the per-member fabric transfers
        (each member's message reserves injection/ejection capacity on its
        own, so the writer-side incast stays bit-identical to uncoalesced
        execution) while hoisting the per-call lookups out of the loop.
        ``sources_local`` gives the member source ranks on this
        communicator, in issue order.
        """
        comm = self.comm
        if not 0 <= dest < comm.size:
            raise MPIError(f"post dest {dest} out of range (size {comm.size})")
        if nbytes < 0:
            raise MPIError(f"negative message size {nbytes}")
        eng = comm.engine
        issued_at = eng.now
        transfer = comm.fabric.transfer
        world = comm.world_ranks
        dst_world = world[dest]
        put = comm.mailboxes[dest].put
        for src in sources_local:
            def deliver(_ev, put=put, src=src, tag=tag, nbytes=nbytes,
                        payload=payload, issued_at=issued_at, eng=eng):
                put(Message(src, tag, nbytes, payload, issued_at, eng.now))

            transfer(world[src], dst_world, nbytes).callbacks.append(deliver)

    def send(self, dest: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Blocking send (generator): returns when send buffer is reusable."""
        req = self.isend(dest, nbytes, tag=tag, payload=payload)
        yield req.event

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; the request completes with a :class:`Message`."""
        comm = self.comm
        if source != ANY_SOURCE and not 0 <= source < comm.size:
            raise MPIError(f"irecv source {source} out of range")
        if source == ANY_SOURCE and tag == ANY_TAG:
            flt = None
        else:
            def flt(m, source=source, tag=tag):
                return (source == ANY_SOURCE or m.source == source) and (
                    tag == ANY_TAG or m.tag == tag
                )
        ev = comm.mailboxes[self.rank].get(flt)
        return Request(ev, comm.engine.now, "irecv")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator): returns the matched :class:`Message`.

        Includes the receiver-side copy of the message body at memory
        bandwidth.
        """
        comm = self.comm
        msg = yield self.irecv(source, tag).event
        copy = comm.fabric.local_copy_time(msg.nbytes)
        if copy > 0:
            yield comm.engine.timeout(copy)
        return msg

    def waitall(self, requests: list[Request]):
        """Generator: wait for all requests; returns their values in order."""
        if not requests:
            return []
        if len(requests) == 1:
            value = yield requests[0].event
            return [value]
        values = yield self.comm.engine.all_of([r.event for r in requests])
        return values

    # ------------------------------------------------------------------
    # Collectives (analytic-cost, exact blocking structure)
    # ------------------------------------------------------------------
    def barrier(self):
        """Generator: block until every rank of the communicator arrives."""
        op = self.comm._barrier_arrive(self.rank)
        yield op.event

    def bcast(self, value: Any = None, root: int = 0, nbytes: int = 0):
        """Generator: broadcast ``value`` (and ``nbytes`` of data) from root."""
        comm = self.comm
        contrib = value if self.rank == root else None
        op, is_last = comm._collective_enter("bcast", self.rank, contrib, root)
        if is_last:
            comm._finish_after(op, comm.tree_time(nbytes), op.contrib[root])
        result = yield op.event
        return result

    def gather(self, value: Any, root: int = 0, nbytes: int = 0):
        """Generator: gather per-rank ``value``s to root (others get None)."""
        comm = self.comm
        op, is_last = comm._collective_enter("gather", self.rank, value, root)
        if is_last:
            delay = comm.tree_time() + (comm.size - 1) * nbytes / comm._link_bw
            comm._finish_after(op, delay, list(op.contrib))
        result = yield op.event
        return result if self.rank == root else None

    def allgather(self, value: Any, nbytes: int = 0,
                  map_fn: Optional[Callable[[list], Any]] = None):
        """Generator: gather per-rank ``value``s to every rank.

        ``map_fn``, if given, transforms the gathered list exactly once (at
        completion); every rank receives the same transformed object.  Large
        collectives use this to build shared index structures without
        per-rank rework.
        """
        comm = self.comm
        op, is_last = comm._collective_enter("allgather", self.rank, value, 0)
        if is_last:
            delay = 2 * comm.tree_time(nbytes)
            result = list(op.contrib)
            if map_fn is not None:
                result = map_fn(result)
            comm._finish_after(op, delay, result)
        result = yield op.event
        return result

    def reduce(self, value: Any, op: Callable[[Any, Any], Any] = None, root: int = 0):
        """Generator: reduce per-rank values to root with binary ``op`` (default +)."""
        comm = self.comm
        cop, is_last = comm._collective_enter("reduce", self.rank, value, root)
        if is_last:
            fn = op if op is not None else (lambda a, b: a + b)
            acc = cop.contrib[0]
            for v in cop.contrib[1:]:
                acc = fn(acc, v)
            comm._finish_after(cop, comm.tree_time(), acc)
        result = yield cop.event
        return result if self.rank == root else None

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None):
        """Generator: reduce per-rank values and distribute the result."""
        comm = self.comm
        cop, is_last = comm._collective_enter("allreduce", self.rank, value, 0)
        if is_last:
            fn = op if op is not None else (lambda a, b: a + b)
            acc = cop.contrib[0]
            for v in cop.contrib[1:]:
                acc = fn(acc, v)
            comm._finish_after(cop, 2 * comm.tree_time(), acc)
        result = yield cop.event
        return result

    def split(self, color: int, key: Optional[int] = None):
        """Generator: partition the communicator by ``color`` (MPI_Comm_split).

        Returns this rank's :class:`CommView` on its new sub-communicator.
        Ranks within a colour are ordered by ``key`` (default: current rank).
        """
        comm = self.comm
        key = self.rank if key is None else key
        contrib = (color, key, self.rank)
        op, is_last = comm._collective_enter("split", self.rank, contrib, 0)
        if is_last:
            comm._complete_split(op)
        views = yield op.event
        return views[self.rank]

    # ------------------------------------------------------------------
    # Coalescing replay (multi-member collective entry)
    # ------------------------------------------------------------------
    def barrier_members(self, local_ranks):
        """Generator: enter the next barrier once per represented member.

        Used by a coalescing representative to stand in for every symmetric
        member of its group: arrival counting and completion timing are
        identical to each member entering on its own, but a contiguous
        member range costs O(1) interpreted work per wave
        (:meth:`Communicator._barrier_arrive_members`).
        """
        op = self.comm._barrier_arrive_members(local_ranks)
        yield op.event

    def split_members(self, entries):
        """Generator: enter the next MPI_Comm_split once per member.

        ``entries`` is a list of ``(local_rank, color)`` pairs (the member's
        current rank doubles as its ordering key, matching ``split`` with
        ``key=None``).  Returns ``{local_rank: sub CommView}`` so the
        representative holds every member's view on its sub-communicator.
        """
        comm = self.comm
        op = None
        for lr, color in entries:
            op, is_last = comm._collective_enter("split", lr, (color, lr, lr), 0)
            if is_last:
                comm._complete_split(op)
        views = yield op.event
        return {lr: views[lr] for lr, _color in entries}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CommView rank {self.rank}/{self.size} comm #{self.comm.id}>"
