"""Simulated MPI runtime (communicators, p2p, collectives, job launcher)."""

from .core import (
    ANY_SOURCE,
    ANY_TAG,
    CommView,
    Communicator,
    Message,
    MPIError,
    Request,
)
from .job import Job, RankContext, run_spmd

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommView",
    "Communicator",
    "Message",
    "MPIError",
    "Request",
    "Job",
    "RankContext",
    "run_spmd",
]
