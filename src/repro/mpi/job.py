"""Job launcher: assembles a partition and runs SPMD rank generators.

A :class:`Job` owns one DES engine, the torus fabric for the partition, and
the world communicator.  ``spawn`` starts one generator per rank (the SPMD
program); ``run`` drives the engine until every rank finishes and returns
the per-rank results.

Higher layers (storage, profiling, the NekCEM driver) attach their per-job
services to the job and their per-rank clients to each :class:`RankContext`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..network import Fabric
from ..sim import Engine, StreamRegistry
from ..topology import MachineConfig, intrepid
from .core import Communicator, CommView

__all__ = ["Job", "RankContext", "run_spmd"]


class RankContext:
    """Everything one simulated MPI rank can see.

    Attributes
    ----------
    rank:
        World rank id.
    comm:
        :class:`~repro.mpi.core.CommView` on the world communicator.
    job:
        The owning :class:`Job` (engine, fabric, machine config).
    fs:
        Per-rank file-system client, attached by :mod:`repro.storage`.
    profiler:
        Per-rank I/O profiler, attached by :mod:`repro.profiling`.
    """

    __slots__ = ("rank", "comm", "job", "fs", "profiler", "user")

    def __init__(self, rank: int, comm: CommView, job: "Job") -> None:
        self.rank = rank
        self.comm = comm
        self.job = job
        self.fs = None
        self.profiler = None
        self.user: dict[str, Any] = {}

    @property
    def engine(self) -> Engine:
        """The job's simulation engine (for ``ctx.engine.now`` etc.)."""
        return self.job.engine

    @property
    def config(self) -> MachineConfig:
        """The machine configuration."""
        return self.job.config

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RankContext rank={self.rank}/{self.comm.size}>"


class Job:
    """One simulated parallel job on a partition of the machine.

    Parameters
    ----------
    n_ranks:
        Partition size in MPI ranks (cores).
    config:
        Machine constants; defaults to the calibrated Intrepid preset.
    seed:
        Overrides ``config.seed`` for the job's random streams.
    """

    def __init__(self, n_ranks: int, config: Optional[MachineConfig] = None,
                 seed: Optional[int] = None) -> None:
        if n_ranks < 1:
            raise ValueError(f"need at least one rank, got {n_ranks}")
        self.config = config if config is not None else intrepid()
        self.n_ranks = n_ranks
        self.engine = Engine()
        self.fabric = Fabric(self.engine, self.config, n_ranks)
        self.streams = StreamRegistry(self.config.seed if seed is None else seed)
        self.world = Communicator(self.engine, self.fabric, list(range(n_ranks)))
        self.contexts = [
            RankContext(r, self.world.view(r), self) for r in range(n_ranks)
        ]
        self._rank_procs: list = []
        self.services: dict[str, Any] = {}

    def spawn(self, rank_fn: Callable, *args, ranks: Optional[list[int]] = None) -> None:
        """Start ``rank_fn(ctx, *args)`` as a process on each rank.

        ``rank_fn`` must be a generator function (the SPMD program).  By
        default every rank runs it; pass ``ranks`` to restrict.
        """
        targets = range(self.n_ranks) if ranks is None else ranks
        for r in targets:
            ctx = self.contexts[r]
            proc = self.engine.process(rank_fn(ctx, *args), name=f"rank{r}")
            self._rank_procs.append((r, proc))

    def run(self, until: Optional[float] = None) -> dict[int, Any]:
        """Drive the simulation to completion; return per-rank results.

        Raises if any rank process failed (its exception propagates) or, for
        ``until=None``, if some rank never finished (deadlock diagnosis).
        """
        self.engine.run(until=until)
        results: dict[int, Any] = {}
        stuck = []
        # Later spawns for the same rank overwrite earlier results, so a
        # two-wave campaign (checkpoint, then restore on the same job) reads
        # the latest wave's values.
        for r, proc in self._rank_procs:
            if proc.is_alive:
                stuck.append(r)
            elif not proc.ok:
                # The process failed but had observers (so the engine did
                # not crash at fire time); surface its exception here
                # instead of returning it as a result value.
                raise proc.value
            else:
                results[r] = proc.value
        if stuck and until is None:
            preview = ", ".join(map(str, stuck[:8]))
            raise RuntimeError(
                f"{len(stuck)} rank(s) never finished (deadlock?): ranks {preview}..."
            )
        return results

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.engine.now


def run_spmd(rank_fn: Callable, n_ranks: int,
             config: Optional[MachineConfig] = None, *args,
             seed: Optional[int] = None) -> dict[int, Any]:
    """Convenience: build a :class:`Job`, run ``rank_fn`` on all ranks.

    Returns the per-rank return values.
    """
    job = Job(n_ranks, config=config, seed=seed)
    job.spawn(rank_fn, *args)
    return job.run()
