"""Hexahedral spectral-element meshes and the ``.rea`` input format.

NekCEM reads its global mesh from an ``.rea`` file (Fig. 1 of the paper)
produced by meshing tools such as ``prex``; data is kept in global format so
users need not pre-partition.  This module provides:

- :class:`HexMesh` — a structured rectilinear hexahedral mesh (element
  vertices, neighbour topology, boundary tags);
- :func:`box_mesh` / :func:`waveguide_mesh` — generators for the test
  geometries.  The paper's production case is a *cylindrical* waveguide
  with body-fitted elements; we substitute a rectangular waveguide, which
  exercises the same SEDG code path (hex elements, face flux exchange,
  PEC walls, guided modes) while keeping element Jacobians diagonal —
  see DESIGN.md's substitution table.
- :func:`write_rea` / :func:`read_rea` — a faithful-in-spirit ASCII
  ``.rea`` writer/reader (header with run parameters, then per-element
  vertex coordinates and boundary conditions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["HexMesh", "box_mesh", "waveguide_mesh", "write_rea", "read_rea"]

#: Face index convention: -x, +x, -y, +y, -z, +z.
FACE_AXES = [(0, -1), (0, +1), (1, -1), (1, +1), (2, -1), (2, +1)]


@dataclass
class HexMesh:
    """A structured rectilinear hexahedral mesh.

    Elements are indexed lexicographically over ``shape = (nex, ney, nez)``
    (z fastest).  ``bounds`` is ``((x0, x1), (y0, y1), (z0, z1))``.
    ``boundary`` maps each of the six outer faces (-x, +x, -y, +y, -z, +z)
    to a condition tag: ``"PEC"`` (perfect electric conductor) or
    ``"periodic"``.
    """

    shape: tuple[int, int, int]
    bounds: tuple[tuple[float, float], ...]
    boundary: tuple[str, ...] = ("PEC",) * 6
    params: Optional[dict] = None

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(n < 1 for n in self.shape):
            raise ValueError(f"bad element shape {self.shape}")
        if len(self.bounds) != 3 or any(b[1] <= b[0] for b in self.bounds):
            raise ValueError(f"bad bounds {self.bounds}")
        if len(self.boundary) != 6:
            raise ValueError("need six boundary tags")
        for tag in self.boundary:
            if tag not in ("PEC", "periodic"):
                raise ValueError(f"unknown boundary tag {tag!r}")
        # Periodicity must be paired.
        for lo in (0, 2, 4):
            a, b = self.boundary[lo], self.boundary[lo + 1]
            if ("periodic" in (a, b)) and a != b:
                raise ValueError("periodic boundaries must be paired per axis")
        if self.params is None:
            self.params = {}

    # -- sizes -----------------------------------------------------------
    @property
    def n_elements(self) -> int:
        """Total element count E."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def element_sizes(self) -> tuple[float, float, float]:
        """(hx, hy, hz) edge lengths of each (uniform) element."""
        return tuple(
            (b[1] - b[0]) / n for b, n in zip(self.bounds, self.shape)
        )

    def n_gridpoints(self, order: int) -> int:
        """Total grid points n = E * (order+1)^3."""
        return self.n_elements * (order + 1) ** 3

    # -- indexing ------------------------------------------------------------
    def element_index(self, e: int) -> tuple[int, int, int]:
        """Lexicographic id -> (ix, iy, iz)."""
        nx, ny, nz = self.shape
        if not 0 <= e < self.n_elements:
            raise ValueError(f"element {e} out of range")
        iz = e % nz
        iy = (e // nz) % ny
        ix = e // (nz * ny)
        return ix, iy, iz

    def element_id(self, ix: int, iy: int, iz: int) -> int:
        """(ix, iy, iz) -> lexicographic id."""
        nx, ny, nz = self.shape
        if not (0 <= ix < nx and 0 <= iy < ny and 0 <= iz < nz):
            raise ValueError(f"element index ({ix},{iy},{iz}) out of range")
        return (ix * ny + iy) * nz + iz

    def element_origin(self, e: int) -> tuple[float, float, float]:
        """Coordinates of the element's low corner."""
        idx = self.element_index(e)
        h = self.element_sizes
        return tuple(self.bounds[a][0] + idx[a] * h[a] for a in range(3))

    def element_vertices(self, e: int) -> np.ndarray:
        """The eight vertex coordinates, shape (8, 3), z-fastest order."""
        ox, oy, oz = self.element_origin(e)
        hx, hy, hz = self.element_sizes
        verts = []
        for dx in (0, 1):
            for dy in (0, 1):
                for dz in (0, 1):
                    verts.append((ox + dx * hx, oy + dy * hy, oz + dz * hz))
        return np.array(verts)

    def neighbor(self, e: int, face: int) -> Optional[int]:
        """Element across ``face`` (0..5 = -x,+x,-y,+y,-z,+z).

        Returns ``None`` on a non-periodic physical boundary; wraps on
        periodic axes.
        """
        if not 0 <= face < 6:
            raise ValueError(f"face {face} out of range")
        axis, sign = FACE_AXES[face]
        idx = list(self.element_index(e))
        idx[axis] += sign
        n = self.shape[axis]
        if 0 <= idx[axis] < n:
            return self.element_id(*idx)
        if self.boundary[face] == "periodic":
            idx[axis] %= n
            return self.element_id(*idx)
        return None


def box_mesh(shape: tuple[int, int, int],
             bounds: tuple[tuple[float, float], ...] = ((0, 1), (0, 1), (0, 1)),
             boundary: tuple[str, ...] = ("PEC",) * 6,
             **params) -> HexMesh:
    """A rectilinear box of hex elements (cavity test geometry)."""
    return HexMesh(tuple(shape), tuple(tuple(b) for b in bounds),
                   tuple(boundary), dict(params))


def waveguide_mesh(cross_elements: int = 2, axial_elements: int = 8,
                   width: float = 1.0, height: float = 0.5,
                   length: float = 4.0, **params) -> HexMesh:
    """A rectangular waveguide: PEC walls, periodic along the guide axis.

    Stands in for the paper's 3-D cylindrical waveguide production runs;
    the TE10 mode of a rectangular guide has a closed-form dispersion
    relation used by the solver tests.
    """
    return HexMesh(
        (axial_elements, cross_elements, cross_elements),
        ((0.0, length), (0.0, width), (0.0, height)),
        ("periodic", "periodic", "PEC", "PEC", "PEC", "PEC"),
        dict(params),
    )


# ---------------------------------------------------------------------------
# .rea input files
# ---------------------------------------------------------------------------

_REA_MAGIC = "**NEKCEM-REPRO REA v1**"


def write_rea(mesh: HexMesh, path_or_file) -> None:
    """Write a mesh as an ASCII ``.rea`` input file.

    Format (simplified NekCEM): magic line, parameter block, mesh block
    with shape/bounds/boundary tags, then one line of 8 vertex coordinates
    per element (global format, as the paper describes — no partitioning).
    """
    own = isinstance(path_or_file, (str, bytes))
    f = open(path_or_file, "w") if own else path_or_file
    try:
        f.write(_REA_MAGIC + "\n")
        f.write(f"{len(mesh.params)} PARAMETERS\n")
        for k, v in sorted(mesh.params.items()):
            f.write(f"  {k} = {v}\n")
        f.write("MESH DATA\n")
        f.write(f"  shape {mesh.shape[0]} {mesh.shape[1]} {mesh.shape[2]}\n")
        for (lo, hi) in mesh.bounds:
            f.write(f"  bounds {lo!r} {hi!r}\n")
        f.write("  boundary " + " ".join(mesh.boundary) + "\n")
        f.write(f"  elements {mesh.n_elements}\n")
        for e in range(mesh.n_elements):
            verts = mesh.element_vertices(e)
            f.write(" ".join(repr(float(x)) for x in verts.ravel()) + "\n")
    finally:
        if own:
            f.close()


def read_rea(path_or_file) -> HexMesh:
    """Read a mesh back from :func:`write_rea` output (with validation)."""
    own = isinstance(path_or_file, (str, bytes))
    f = open(path_or_file) if own else path_or_file
    try:
        magic = f.readline().strip()
        if magic != _REA_MAGIC:
            raise ValueError(f"not a rea file (magic {magic!r})")
        n_params = int(f.readline().split()[0])
        params = {}
        for _ in range(n_params):
            key, _, value = f.readline().partition("=")
            value = value.strip()
            try:
                parsed = int(value)
            except ValueError:
                try:
                    parsed = float(value)
                except ValueError:
                    parsed = value
            params[key.strip()] = parsed
        if f.readline().strip() != "MESH DATA":
            raise ValueError("missing MESH DATA block")
        shape = tuple(int(x) for x in f.readline().split()[1:4])
        bounds = []
        for _ in range(3):
            parts = f.readline().split()
            bounds.append((float(parts[1]), float(parts[2])))
        boundary = tuple(f.readline().split()[1:7])
        n_elements = int(f.readline().split()[1])
        mesh = HexMesh(shape, tuple(bounds), boundary, params)
        if mesh.n_elements != n_elements:
            raise ValueError(
                f"element count {n_elements} inconsistent with shape {shape}"
            )
        # Validate a sample of element vertex lines.
        for e in range(n_elements):
            line = f.readline()
            if not line:
                raise ValueError(f"truncated rea file at element {e}")
            coords = np.array([float(x) for x in line.split()]).reshape(8, 3)
            if e in (0, n_elements - 1) and not np.allclose(
                coords, mesh.element_vertices(e)
            ):
                raise ValueError(f"vertex data mismatch at element {e}")
        return mesh
    finally:
        if own:
            f.close()
