"""Krylov exponential time integration (Gallopoulos & Saad).

NekCEM's second time-advancing option (paper Section III-A, ref. [12]):
for the linear semi-discrete Maxwell system ``du/dt = A u`` one step is the
matrix exponential ``u(t + dt) = exp(dt A) u``, approximated in a Krylov
subspace built by Arnoldi iteration:

    u(t + dt) ~ beta * V_m  exp(dt H_m) e_1,

with ``V_m`` an orthonormal Krylov basis of dimension ``m`` and ``H_m`` the
projected (Hessenberg) operator.  The scheme is not CFL-bound — accuracy,
not stability, limits the step — which is why spectral codes carry it next
to explicit RK4.

Only matrix-vector products with ``A`` are needed; the DG right-hand side
itself serves as the matvec, so this integrator drives the exact same
spatial operator (and therefore the same checkpoint state) as
:class:`~repro.nekcem.rk4.LSRK4`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.linalg import expm

__all__ = ["KrylovExpIntegrator"]


class KrylovExpIntegrator:
    """Arnoldi-based exponential integrator for a linear ``rhs``.

    Parameters
    ----------
    rhs:
        ``rhs(state, t)`` returning ``A @ state`` per component; must be
        linear and autonomous (the Maxwell curl operator is).
    krylov_dim:
        Subspace dimension ``m``; 20-40 is typical.  Larger m permits
        larger steps at higher per-step cost.
    breakdown_tol:
        Arnoldi happy-breakdown threshold (the subspace became invariant —
        the approximation is then exact).
    """

    def __init__(self, rhs: Callable[[list, float], list], krylov_dim: int = 30,
                 breakdown_tol: float = 1e-12) -> None:
        if krylov_dim < 2:
            raise ValueError("krylov_dim must be >= 2")
        self.rhs = rhs
        self.m = krylov_dim
        self.breakdown_tol = breakdown_tol
        self._shapes: list[tuple] | None = None

    # -- state <-> vector -------------------------------------------------
    def _flatten(self, state: list[np.ndarray]) -> np.ndarray:
        self._shapes = [c.shape for c in state]
        return np.concatenate([c.ravel() for c in state])

    def _unflatten(self, v: np.ndarray) -> list[np.ndarray]:
        out = []
        pos = 0
        for shape in self._shapes:
            size = int(np.prod(shape))
            out.append(v[pos : pos + size].reshape(shape).copy())
            pos += size
        return out

    def _matvec(self, v: np.ndarray, t: float) -> np.ndarray:
        state = self._unflatten(v)
        k = self.rhs(state, t)
        return np.concatenate([c.ravel() for c in k])

    # -- stepping -----------------------------------------------------------
    def step(self, state: list[np.ndarray], t: float, dt: float) -> list[np.ndarray]:
        """Advance ``state`` by ``dt``; returns the new state (copy)."""
        v = self._flatten(state)
        beta = float(np.linalg.norm(v))
        if beta == 0.0:
            return [c.copy() for c in state]
        m = self.m
        n = len(v)
        V = np.zeros((m + 1, n))
        H = np.zeros((m + 1, m))
        V[0] = v / beta
        used = m
        for j in range(m):
            w = self._matvec(V[j], t)
            # Modified Gram-Schmidt.
            for i in range(j + 1):
                H[i, j] = float(np.dot(w, V[i]))
                w -= H[i, j] * V[i]
            h = float(np.linalg.norm(w))
            H[j + 1, j] = h
            if h < self.breakdown_tol:
                used = j + 1  # happy breakdown: subspace is invariant
                break
            V[j + 1] = w / h
        Hm = H[:used, :used]
        phi = expm(dt * Hm)[:, 0]
        u_next = beta * (V[:used].T @ phi)
        return self._unflatten(u_next)

    def integrate(self, state: list[np.ndarray], t0: float, dt: float,
                  n_steps: int,
                  callback: Callable | None = None) -> tuple[list[np.ndarray], float]:
        """Take ``n_steps`` exponential steps (interface mirrors LSRK4)."""
        if n_steps < 0:
            raise ValueError("negative step count")
        t = t0
        for i in range(n_steps):
            state = self.step(state, t, dt)
            t = t0 + (i + 1) * dt
            if callback is not None:
                callback(state, t, i + 1)
        return state, t
