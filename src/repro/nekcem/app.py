"""NekCEM application drivers: presetup, solver, checkpointing.

Mirrors the run-time structure the paper describes (Section III-A): a
*presetup* phase reads the global ``.rea``/``.map`` inputs and distributes
mesh data, the *solver* phase runs SEDG time stepping, and the
*checkpointing* phase dumps the global field data for restart and
visualization.

Two drivers are provided:

- :class:`NekCEMApp` — a serial driver writing real vtk files to the local
  file system (the examples use it);
- :func:`run_parallel_solver` — the full pipeline on the simulated Blue
  Gene/P: slab-decomposed SEDG ranks exchanging ghost faces over simulated
  MPI each RK stage, checkpointing coordinately through any
  :class:`~repro.ckpt.CheckpointStrategy`, with optional failure injection
  and restart.  Field payloads are real numpy data end-to-end, so a
  post-restart state is bit-exact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..ckpt import CheckpointData, CheckpointResult, CheckpointStrategy, Field
from ..mpi import Job, RankContext
from ..profiling import DarshanProfiler
from ..storage import attach_storage
from ..topology import MachineConfig, intrepid
from .maxwell import (GhostFaces, MaxwellSolver, cavity_fields,
                      waveguide_te10_fields)
from .mesh import HexMesh, read_rea
from .rk4 import RK4A, RK4B, RK4C
from .vtk import write_vtk

__all__ = [
    "NekCEMApp",
    "SOLVER_FLOPS_PER_POINT_STEP",
    "compute_seconds_per_step",
    "fields_to_checkpoint_data",
    "checkpoint_data_to_fields",
    "run_parallel_solver",
    "ParallelRunResult",
    "gather_slab_states",
]

#: Effective floating-point work per grid point per time step (all five RK
#: stages, all six components, flux and curl terms).  Calibrated so the
#: paper's weak-scaling point (~16.8K points/rank on 850 MHz cores) costs
#: ~0.26 s per step, consistent with the reported 0.13 s at n/P = 8,530.
SOLVER_FLOPS_PER_POINT_STEP = 13400.0


def compute_seconds_per_step(points_per_rank: int, config: MachineConfig) -> float:
    """Virtual computation time per SEDG step on one BG/P core."""
    return points_per_rank * SOLVER_FLOPS_PER_POINT_STEP / config.cpu_hz


# ---------------------------------------------------------------------------
# Field <-> checkpoint conversion
# ---------------------------------------------------------------------------

def fields_to_checkpoint_data(solver: MaxwellSolver, state: list[np.ndarray],
                              header_bytes: int = 4096,
                              include_geometry: bool = True) -> CheckpointData:
    """Package a solver state as checkpoint fields with real payloads.

    Layout matches the paper's output file: an optional geometry block
    (nodal coordinates) followed by the six field components.
    """
    fields = []
    if include_geometry:
        X, Y, Z = solver.coordinates()
        geom = np.stack([X, Y, Z]).tobytes()
        fields.append(Field("geometry", len(geom), geom))
    for name, comp in zip(MaxwellSolver.COMPONENTS, state):
        body = np.ascontiguousarray(comp).tobytes()
        fields.append(Field(name, len(body), body))
    return CheckpointData(fields, header_bytes=header_bytes)


def checkpoint_data_to_fields(solver: MaxwellSolver,
                              payloads: list,
                              template: CheckpointData) -> list[np.ndarray]:
    """Rebuild the six solver component arrays from restored payloads.

    Restored payloads arrive as zero-copy ropes over the PFS extents; this
    is the reader boundary where they materialize into contiguous memory
    for ``np.frombuffer`` (see :func:`repro.buffers.as_bytes`).
    """
    from ..buffers import as_bytes

    shape = (*solver.mesh.shape, solver.p, solver.p, solver.p)
    by_name = {f.name: p for f, p in zip(template.fields, payloads)}
    out = []
    for name in MaxwellSolver.COMPONENTS:
        buf = as_bytes(by_name[name])
        out.append(np.frombuffer(buf, dtype=np.float64).reshape(shape).copy())
    return out


# ---------------------------------------------------------------------------
# Serial driver
# ---------------------------------------------------------------------------

class NekCEMApp:
    """Serial NekCEM driver writing real vtk checkpoints to local disk."""

    def __init__(self, mesh: HexMesh, order: int, alpha: float = 1.0,
                 init: Optional[Callable] = None) -> None:
        self.mesh = mesh
        self.order = order
        self.solver = MaxwellSolver(mesh, order, alpha=alpha)
        self._init = init

    @classmethod
    def from_input_files(cls, rea_path: str, order: int, **kwargs) -> "NekCEMApp":
        """Presetup from a ``.rea`` input file (as production runs do)."""
        mesh = read_rea(rea_path)
        return cls(mesh, order, **kwargs)

    def initial_state(self) -> list[np.ndarray]:
        """Initial fields: custom initializer or the TM110 cavity mode."""
        if self._init is not None:
            X, Y, Z = self.solver.coordinates()
            return self._init(X, Y, Z, 0.0)
        return self.solver.cavity_mode(0.0)

    def checkpoint_path(self, outdir: str, step: int) -> str:
        """vtk dump path for one step."""
        return os.path.join(outdir, f"nekcem{step:06d}.vtk")

    def write_checkpoint(self, state: list[np.ndarray], path: str,
                         binary: bool = True) -> None:
        """Dump the state as a vtk legacy file (header, grid, field blocks)."""
        X, Y, Z = self.solver.coordinates()
        p3 = self.solver.p**3
        pts = np.column_stack([
            c.reshape(self.mesh.n_elements, p3).ravel() for c in (X, Y, Z)
        ]).reshape(-1, 3)
        fields = {
            name: comp.reshape(self.mesh.n_elements, p3).ravel()
            for name, comp in zip(MaxwellSolver.COMPONENTS, state)
        }
        write_vtk(path, pts, self.order, fields, binary=binary)

    def run(self, n_steps: int, dt: Optional[float] = None,
            checkpoint_every: int = 0, outdir: Optional[str] = None,
            binary: bool = True) -> dict:
        """Presetup + solve + checkpoint; returns a run summary."""
        solver = self.solver
        dt = solver.max_dt() if dt is None else dt
        state = self.initial_state()
        written: list[str] = []
        if outdir:
            os.makedirs(outdir, exist_ok=True)

        def callback(st, t, step):
            if checkpoint_every and outdir and step % checkpoint_every == 0:
                path = self.checkpoint_path(outdir, step)
                self.write_checkpoint(st, path, binary=binary)
                written.append(path)

        state, t = solver.run(state, 0.0, dt, n_steps, callback)
        return {
            "state": state,
            "t_final": t,
            "dt": dt,
            "energy": solver.energy(state),
            "checkpoints": written,
            "gridpoints": solver.n_dof,
        }


# ---------------------------------------------------------------------------
# Parallel (simulated-machine) driver
# ---------------------------------------------------------------------------

def _slab_ranges(nex: int, n_ranks: int) -> list[tuple[int, int]]:
    """Contiguous x-layer ranges per rank (balanced to within one layer)."""
    if n_ranks > nex:
        raise ValueError(f"more ranks ({n_ranks}) than x element layers ({nex})")
    base, extra = divmod(nex, n_ranks)
    out = []
    pos = 0
    for r in range(n_ranks):
        count = base + (1 if r < extra else 0)
        out.append((pos, pos + count))
        pos += count
    return out


def _local_mesh(mesh: HexMesh, lo: int, hi: int) -> HexMesh:
    """The slab sub-mesh of x layers [lo, hi)."""
    hx = mesh.element_sizes[0]
    (x0, _x1), by, bz = mesh.bounds
    return HexMesh(
        (hi - lo, mesh.shape[1], mesh.shape[2]),
        ((x0 + lo * hx, x0 + hi * hx), by, bz),
        mesh.boundary,
        dict(mesh.params or {}),
    )


@dataclass
class ParallelRunResult:
    """Outcome of a parallel NekCEM run on the simulated machine."""

    mesh: HexMesh
    order: int
    n_ranks: int
    states: dict[int, list[np.ndarray]]
    t_final: float
    dt: float
    n_steps: int
    checkpoint_results: list[CheckpointResult] = field(default_factory=list)
    job: Optional[Job] = None
    profiler: Optional[DarshanProfiler] = None
    compute_seconds_per_step: float = 0.0
    restored_at_step: Optional[int] = None

    def global_state(self) -> list[np.ndarray]:
        """Reassemble the global component arrays from the rank slabs."""
        return gather_slab_states(self.states, self.mesh, self.order,
                                  self.n_ranks)


def gather_slab_states(states: dict[int, list[np.ndarray]], mesh: HexMesh,
                       order: int, n_ranks: int) -> list[np.ndarray]:
    """Concatenate per-rank slab fields back into global arrays."""
    ranges = _slab_ranges(mesh.shape[0], n_ranks)
    out = []
    for c in range(6):
        out.append(np.concatenate([states[r][c] for r in range(n_ranks)], axis=0))
    # Sanity: total x layers must match.
    assert out[0].shape[0] == mesh.shape[0], (out[0].shape, mesh.shape, ranges)
    return out


def _exchange_ghosts(ctx: RankContext, state: list[np.ndarray], tag: int,
                     left: Optional[int], right: Optional[int]):
    """Generator: swap x-face data with slab neighbours.

    Sends my boundary-layer face values and returns a
    :class:`~repro.nekcem.maxwell.GhostFaces` with the neighbours' data.
    All six components travel in one message per direction, matching the
    paper's description of NekCEM's single-array face exchange.
    """
    comm = ctx.comm
    reqs = []
    if left is not None:
        # My low-x minus-faces (layer 0, node index 0).
        face = np.ascontiguousarray(
            np.stack([c[0, :, :, 0, :, :] for c in state])
        )
        reqs.append(comm.isend(left, face.nbytes, tag=tag * 2,
                               payload=face, buffered=True))
    if right is not None:
        face = np.ascontiguousarray(
            np.stack([c[-1, :, :, -1, :, :] for c in state])
        )
        reqs.append(comm.isend(right, face.nbytes, tag=tag * 2 + 1,
                               payload=face, buffered=True))
    lo = hi = None
    if left is not None:
        msg = yield from comm.recv(source=left, tag=tag * 2 + 1)
        lo = msg.payload
    if right is not None:
        msg = yield from comm.recv(source=right, tag=tag * 2)
        hi = msg.payload
    if reqs:
        yield from comm.waitall(reqs)
    return GhostFaces(lo, hi)


def run_parallel_solver(
    n_ranks: int,
    mesh: HexMesh,
    order: int,
    n_steps: int,
    *,
    alpha: float = 1.0,
    dt: Optional[float] = None,
    strategy: Optional[CheckpointStrategy] = None,
    checkpoint_every: int = 0,
    simulate_failure_at: Optional[int] = None,
    config: Optional[MachineConfig] = None,
    seed: Optional[int] = None,
    basedir: str = "/ckpt",
    init: str = "cavity",
) -> ParallelRunResult:
    """Run the slab-decomposed SEDG solver on the simulated machine.

    Each rank owns a contiguous block of x element layers, exchanges ghost
    faces with its neighbours every RK stage, and (optionally) checkpoints
    every ``checkpoint_every`` steps through ``strategy``.  With
    ``simulate_failure_at = k`` the in-memory state is destroyed right
    after step ``k`` and restored from the most recent checkpoint — the
    restart path the checkpoints exist for.
    """
    if checkpoint_every and strategy is None:
        raise ValueError("checkpoint_every requires a strategy")
    if simulate_failure_at is not None:
        if not checkpoint_every:
            raise ValueError("failure injection requires checkpointing")
        if simulate_failure_at < checkpoint_every:
            raise ValueError("failure before the first checkpoint loses work")
    config = config if config is not None else intrepid()
    ranges = _slab_ranges(mesh.shape[0], n_ranks)
    periodic_x = mesh.boundary[0] == "periodic"
    probe = MaxwellSolver(_local_mesh(mesh, *ranges[0]), order, alpha=alpha)
    dt = probe.max_dt() if dt is None else dt
    points_per_rank = max(
        MaxwellSolver(_local_mesh(mesh, lo, hi), order, alpha).n_dof
        for lo, hi in ranges
    )
    t_compute = compute_seconds_per_step(points_per_rank, config)

    job = Job(n_ranks, config, seed=seed)
    profiler = DarshanProfiler()
    attach_storage(job, profiler=profiler)
    for c in job.contexts:
        c.profiler = profiler
    restored_at: dict[int, Optional[int]] = {}

    def rank_main(ctx: RankContext):
        rank = ctx.rank
        lo, hi = ranges[rank]
        solver = MaxwellSolver(_local_mesh(mesh, lo, hi), order, alpha=alpha)
        if init == "cavity":
            # Initialize from the *global* cavity mode evaluated on the
            # local slab's coordinates.
            state = cavity_fields(mesh.bounds, *solver.coordinates(), 0.0)
        elif init == "te10":
            # The guided TE10 mode (the waveguide production workload).
            state = waveguide_te10_fields(mesh.bounds, *solver.coordinates(), 0.0)
        elif init == "zero":
            state = solver.zero_fields()
        else:
            raise ValueError(f"unknown init {init!r}")
        if n_ranks > 1:
            left = rank - 1 if rank > 0 or periodic_x else None
            right = rank + 1 if rank < n_ranks - 1 or periodic_x else None
            if left is not None:
                left %= n_ranks
            if right is not None:
                right %= n_ranks
        else:
            left = right = None
        res = [np.zeros_like(c) for c in state]
        tag_counter = 0
        ckpt_results = []
        last_ckpt_step = None
        last_template = None
        restored_at[rank] = None
        stage_time = t_compute / len(RK4A)

        failure_pending = simulate_failure_at is not None
        step = 1
        while step <= n_steps:
            t = (step - 1) * dt
            for stage in range(len(RK4A)):
                if left is not None or right is not None:
                    ghosts = yield from _exchange_ghosts(
                        ctx, state, tag_counter, left, right
                    )
                    solver.set_ghosts(ghosts)
                    tag_counter += 1
                k = solver.rhs(state, t + RK4C[stage] * dt)
                # Charge the virtual cost of the stage's floating-point work.
                yield ctx.engine.timeout(stage_time)
                a, b = RK4A[stage], RK4B[stage]
                for r_acc, s_arr, k_arr in zip(res, state, k):
                    r_acc *= a
                    r_acc += dt * k_arr
                    s_arr += b * r_acc

            if checkpoint_every and step % checkpoint_every == 0:
                data = fields_to_checkpoint_data(solver, state)
                yield from ctx.comm.barrier()
                report = yield from strategy.checkpoint(ctx, data, step, basedir)
                ckpt_results.append((step, report))
                last_ckpt_step = step
                last_template = data

            if failure_pending and step == simulate_failure_at:
                # Node failure: volatile state is lost; roll back to the
                # most recent checkpoint and re-execute the lost steps
                # (coordinated restart).
                failure_pending = False
                state = None
                yield from ctx.comm.barrier()
                payloads = yield from strategy.restore(
                    ctx, last_template, last_ckpt_step, basedir
                )
                state = checkpoint_data_to_fields(solver, payloads, last_template)
                res = [np.zeros_like(c) for c in state]
                restored_at[rank] = last_ckpt_step
                step = last_ckpt_step + 1
                continue
            step += 1

        return {"state": state, "reports": ckpt_results}

    job.spawn(rank_main)
    per_rank = job.run()
    states = {r: out["state"] for r, out in per_rank.items()}
    # Assemble per-step CheckpointResults across ranks.
    ckpt_results = []
    if checkpoint_every and strategy is not None:
        n_ckpts = len(per_rank[0]["reports"])
        for i in range(n_ckpts):
            reports = {r: out["reports"][i][1] for r, out in per_rank.items()}
            ckpt_results.append(
                CheckpointResult(strategy.name, reports,
                                 params=strategy.describe())
            )
    return ParallelRunResult(
        mesh=mesh,
        order=order,
        n_ranks=n_ranks,
        states=states,
        t_final=n_steps * dt,
        dt=dt,
        n_steps=n_steps,
        checkpoint_results=ckpt_results,
        job=job,
        profiler=profiler,
        compute_seconds_per_step=t_compute,
        restored_at_step=restored_at.get(0),
    )
