"""Spectral-element basis: Gauss-Lobatto-Legendre nodes, weights, operators.

NekCEM discretizes each hexahedral element with tensor products of 1-D
Lagrange interpolation polynomials on the Gauss-Lobatto-Legendre (GLL)
points.  GLL quadrature makes the mass matrix diagonal (no inversion cost)
and the stiffness matrix a tensor product of the 1-D differentiation matrix
— the structure this module provides:

- :func:`gll_points_weights` — nodes/weights on [-1, 1];
- :func:`differentiation_matrix` — the nodal derivative operator ``D``;
- :func:`lagrange_interpolation_matrix` — evaluation at arbitrary points.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "gll_points_weights",
    "differentiation_matrix",
    "lagrange_interpolation_matrix",
]


def _legendre(n: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Legendre polynomial P_n and derivative P'_n by the usual recurrence."""
    p0 = np.ones_like(x)
    if n == 0:
        return p0, np.zeros_like(x)
    p1 = x.copy()
    for k in range(1, n):
        p0, p1 = p1, ((2 * k + 1) * x * p1 - k * p0) / (k + 1)
    # P'_n from P_n (=p1) and P_{n-1} (=p0); the formula is singular at
    # x = +-1 where P'_n = +-n(n+1)/2 * (+-1)^n is substituted directly.
    with np.errstate(divide="ignore", invalid="ignore"):
        dp = n * (x * p1 - p0) / (x**2 - 1.0)
    at_end = np.isclose(np.abs(x), 1.0)
    if at_end.any():
        endval = 0.5 * n * (n + 1)
        dp = np.where(at_end, np.sign(x) ** (n + 1) * endval, dp)
    return p1, dp


@lru_cache(maxsize=64)
def _gll_cached(order: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
    n = order
    if n == 1:
        return ((-1.0, 1.0), (1.0, 1.0))
    # Initial guess: Chebyshev-Gauss-Lobatto points, refined by Newton on
    # (1 - x^2) P'_N(x) = 0 for interior nodes.
    x = -np.cos(np.pi * np.arange(n + 1) / n)
    xi = x[1:-1]
    for _ in range(100):
        p, dp = _legendre(n, xi)
        # f = P'_N; f' = P''_N computed from the Legendre ODE:
        # (1-x^2) P'' - 2x P' + N(N+1) P = 0  =>  P'' = (2x P' - N(N+1) P)/(1-x^2)
        d2p = (2 * xi * dp - n * (n + 1) * p) / (1 - xi**2)
        step = dp / d2p
        xi = xi - step
        if np.max(np.abs(step)) < 1e-15:
            break
    x[1:-1] = xi
    p, _ = _legendre(n, x)
    w = 2.0 / (n * (n + 1) * p**2)
    return tuple(x), tuple(w)


def gll_points_weights(order: int) -> tuple[np.ndarray, np.ndarray]:
    """GLL nodes and quadrature weights on [-1, 1] for polynomial ``order``.

    Returns ``order + 1`` points including both endpoints.  Exact for
    polynomials up to degree ``2*order - 1``.

    >>> x, w = gll_points_weights(2)
    >>> np.allclose(x, [-1, 0, 1]) and np.allclose(w, [1/3, 4/3, 1/3])
    True
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    x, w = _gll_cached(order)
    return np.array(x), np.array(w)


def differentiation_matrix(order: int) -> np.ndarray:
    """Nodal differentiation matrix ``D`` on the GLL points.

    ``(D @ u)[i]`` is the derivative at node ``i`` of the interpolant of
    ``u``.  Uses the standard barycentric formula with the analytically
    known diagonal.
    """
    x, _ = gll_points_weights(order)
    n = order
    p_at, _ = _legendre(n, x)
    m = order + 1
    d = np.zeros((m, m))
    for i in range(m):
        for j in range(m):
            if i != j:
                d[i, j] = (p_at[i] / p_at[j]) / (x[i] - x[j])
    d[0, 0] = -n * (n + 1) / 4.0
    d[-1, -1] = n * (n + 1) / 4.0
    return d


def lagrange_interpolation_matrix(order: int, targets: np.ndarray) -> np.ndarray:
    """Matrix evaluating the GLL nodal interpolant at ``targets``.

    ``(L @ u)[k]`` is the interpolant of nodal values ``u`` at
    ``targets[k]``.  Used for solution probing and error measurement.
    """
    x, _ = gll_points_weights(order)
    targets = np.asarray(targets, dtype=float)
    m = len(x)
    # Barycentric weights.
    bw = np.ones(m)
    for i in range(m):
        for j in range(m):
            if i != j:
                bw[i] /= x[i] - x[j]
    out = np.zeros((len(targets), m))
    for k, t in enumerate(targets):
        diff = t - x
        exact = np.isclose(diff, 0.0, atol=1e-14)
        if exact.any():
            out[k, np.argmax(exact)] = 1.0
        else:
            terms = bw / diff
            out[k] = terms / terms.sum()
    return out
