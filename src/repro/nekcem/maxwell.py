"""SEDG Maxwell solver: the NekCEM computation this paper checkpoints.

Solves the three-dimensional Maxwell curl equations in the time domain,

    dE/dt =  curl H,        dH/dt = -curl E        (vacuum units),

with a spectral-element discontinuous Galerkin discretization on
rectilinear hexahedral meshes: tensor-product Gauss-Lobatto-Legendre
Lagrange bases (diagonal mass matrix), per-element stiffness as tensor
products of the 1-D differentiation matrix, and upwind (or central)
numerical fluxes coupling neighbouring elements only through face values —
the communication structure the paper describes (one exchange per
neighbour per evaluation, all six components batched).

Field storage is ``(nex, ney, nez, p, p, p)`` per component with
``p = order + 1``, vectorized over all elements.  Domain decomposition for
the parallel driver slices the first (x) element axis; :meth:`rhs` accepts
ghost faces for that axis so a rank can compute with neighbour data
received over (simulated) MPI.

Verification: the closed-form TM110 cavity mode (:meth:`cavity_mode`)
drives convergence and energy-conservation tests.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from .basis import differentiation_matrix, gll_points_weights
from .mesh import HexMesh
from .rk4 import LSRK4

__all__ = ["MaxwellSolver", "GhostFaces", "cavity_fields", "waveguide_te10_fields",
           "waveguide_te10_omega"]


def waveguide_te10_omega(width: float, length: float, n_periods: int = 1) -> float:
    """Angular frequency of the TE10-like guided mode.

    Dispersion relation ``w^2 = beta^2 + (pi/width)^2`` with propagation
    wavenumber ``beta = 2 pi n / length`` (periodic guide axis).
    """
    if width <= 0 or length <= 0 or n_periods < 1:
        raise ValueError("width/length must be positive, n_periods >= 1")
    beta = 2.0 * math.pi * n_periods / length
    return math.sqrt(beta**2 + (math.pi / width) ** 2)


def waveguide_te10_fields(bounds, X: np.ndarray, Y: np.ndarray, Z: np.ndarray,
                          t: float, n_periods: int = 1) -> list[np.ndarray]:
    """Exact TE10-like travelling mode of the rectangular waveguide.

    The guide propagates along the (periodic) x axis with PEC side walls;
    with mode wavenumber ``ky = pi / width`` and ``beta = 2 pi n / L``:

        Ez =  sin(ky y) cos(beta x - w t)
        Hx =  (ky/w)  cos(ky y) sin(beta x - w t)
        Hy = -(beta/w) sin(ky y) cos(beta x - w t)

    which satisfies the curl equations with ``w^2 = beta^2 + ky^2`` and the
    PEC conditions on the y and z walls.  This is the guided-wave physics
    of the paper's 3-D waveguide production runs (cylindrical there,
    rectangular here — see DESIGN.md's substitution table).
    """
    (ax0, ax1), (ay0, ay1), _ = bounds
    length = ax1 - ax0
    width = ay1 - ay0
    ky = math.pi / width
    beta = 2.0 * math.pi * n_periods / length
    w = waveguide_te10_omega(width, length, n_periods)
    phase = beta * (X - ax0) - w * t
    sy = np.sin(ky * (Y - ay0))
    cy = np.cos(ky * (Y - ay0))
    zero = np.zeros_like(X)
    Ez = sy * np.cos(phase)
    Hx = (ky / w) * cy * np.sin(phase)
    Hy = -(beta / w) * sy * np.cos(phase)
    return [zero.copy(), zero.copy(), Ez, Hx, Hy, zero.copy()]


def cavity_fields(bounds, X: np.ndarray, Y: np.ndarray, Z: np.ndarray,
                  t: float) -> list[np.ndarray]:
    """Exact TM110 standing mode of the PEC box ``bounds`` at time ``t``.

    ``bounds`` are the *global* domain bounds — pass the full mesh's bounds
    when evaluating on a rank-local slab, or the initial condition (and its
    frequency) would wrongly be that of the slab.
    """
    (ax0, ax1), (ay0, ay1), _ = bounds
    a = ax1 - ax0
    b = ay1 - ay0
    w = math.pi * math.sqrt(1.0 / a**2 + 1.0 / b**2)
    sx = np.sin(math.pi * (X - ax0) / a)
    cx = np.cos(math.pi * (X - ax0) / a)
    sy = np.sin(math.pi * (Y - ay0) / b)
    cy = np.cos(math.pi * (Y - ay0) / b)
    zero = np.zeros_like(X)
    Ez = sx * sy * math.cos(w * t)
    Hx = -(math.pi / (b * w)) * sx * cy * math.sin(w * t)
    Hy = (math.pi / (a * w)) * cx * sy * math.sin(w * t)
    return [zero.copy(), zero.copy(), Ez, Hx, Hy, zero.copy()]


def _cross_unit(axis: int, sign: int, v: list[np.ndarray]) -> list[np.ndarray]:
    """Cross product (sign * e_axis) x v for axis-aligned unit normals."""
    vx, vy, vz = v
    if axis == 0:
        out = [np.zeros_like(vx), -vz, vy]
    elif axis == 1:
        out = [vz, np.zeros_like(vy), -vx]
    else:
        out = [-vy, vx, np.zeros_like(vz)]
    if sign < 0:
        out = [-c for c in out]
    return out


def _normal_part(axis: int, v: list[np.ndarray]) -> list[np.ndarray]:
    """n (n . v) for n = +-e_axis (sign squared drops out)."""
    out = [np.zeros_like(c) for c in v]
    out[axis] = v[axis]
    return out


class GhostFaces:
    """Neighbour face data for the decomposed x-axis.

    ``lo``/``hi`` are ``(6, ney, nez, p, p)`` arrays holding all six field
    components on the exterior side of this rank's low/high x faces.
    ``None`` means "use the mesh's physical boundary condition".
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[np.ndarray] = None,
                 hi: Optional[np.ndarray] = None) -> None:
        self.lo = lo
        self.hi = hi


class MaxwellSolver:
    """SEDG Maxwell solver on one (possibly rank-local) hex mesh block.

    Parameters
    ----------
    mesh:
        Rectilinear hex mesh (the rank-local block for parallel runs).
    order:
        Polynomial order N (paper uses N=15 in production, smaller in
        tests).
    alpha:
        Flux upwinding parameter: 1 = upwind (dissipative, robust),
        0 = central (energy conserving).
    """

    #: Field component order (matches the checkpoint file layout).
    COMPONENTS = ("Ex", "Ey", "Ez", "Hx", "Hy", "Hz")

    def __init__(self, mesh: HexMesh, order: int, alpha: float = 1.0) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.mesh = mesh
        self.order = order
        self.alpha = alpha
        self.p = order + 1
        self.D = differentiation_matrix(order)
        self.xi, self.w = gll_points_weights(order)
        self.h = mesh.element_sizes
        # Metric factors: d/dx_phys = (2/h) d/dxi; LIFT = 2 / (w_end * h).
        self.scale = tuple(2.0 / h for h in self.h)
        self.lift = tuple(2.0 / (self.w[0] * h) for h in self.h)
        self._integrator = LSRK4(self.rhs)
        self._ghosts: GhostFaces = GhostFaces()

    # ------------------------------------------------------------------
    # Fields and geometry
    # ------------------------------------------------------------------
    def zero_fields(self) -> list[np.ndarray]:
        """Six zero-initialized component arrays [Ex, Ey, Ez, Hx, Hy, Hz]."""
        shape = (*self.mesh.shape, self.p, self.p, self.p)
        return [np.zeros(shape) for _ in range(6)]

    def coordinates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Physical (X, Y, Z) coordinates of every nodal point."""
        nx, ny, nz = self.mesh.shape
        hx, hy, hz = self.h
        (x0, _), (y0, _), (z0, _) = self.mesh.bounds
        node = (self.xi + 1.0) / 2.0  # [0, 1] within an element
        ex = x0 + (np.arange(nx)[:, None] + node[None, :]) * hx
        ey = y0 + (np.arange(ny)[:, None] + node[None, :]) * hy
        ez = z0 + (np.arange(nz)[:, None] + node[None, :]) * hz
        X = ex[:, None, None, :, None, None]
        Y = ey[None, :, None, None, :, None]
        Z = ez[None, None, :, None, None, :]
        shape = (nx, ny, nz, self.p, self.p, self.p)
        return (
            np.broadcast_to(X, shape).copy(),
            np.broadcast_to(Y, shape).copy(),
            np.broadcast_to(Z, shape).copy(),
        )

    @property
    def n_dof(self) -> int:
        """Degrees of freedom per component."""
        return self.mesh.n_elements * self.p**3

    # ------------------------------------------------------------------
    # Spatial operator
    # ------------------------------------------------------------------
    def _deriv(self, u: np.ndarray, axis: int) -> np.ndarray:
        """Physical derivative of a field along axis (0=x, 1=y, 2=z)."""
        D = self.D
        if axis == 0:
            out = np.einsum("il,abcljk->abcijk", D, u)
        elif axis == 1:
            out = np.einsum("jl,abcilk->abcijk", D, u)
        else:
            out = np.einsum("kl,abcijl->abcijk", D, u)
        return out * self.scale[axis]

    def _curl(self, fx: np.ndarray, fy: np.ndarray, fz: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Curl of a vector field (volume term)."""
        return (
            self._deriv(fz, 1) - self._deriv(fy, 2),
            self._deriv(fx, 2) - self._deriv(fz, 0),
            self._deriv(fy, 0) - self._deriv(fx, 1),
        )

    def set_ghosts(self, ghosts: GhostFaces) -> None:
        """Install neighbour x-face data for the next RHS evaluations."""
        self._ghosts = ghosts

    def _face(self, u: np.ndarray, axis: int, side: int) -> np.ndarray:
        """Interior face values of one component on all elements."""
        idx = 0 if side < 0 else self.p - 1
        if axis == 0:
            return u[:, :, :, idx, :, :]
        if axis == 1:
            return u[:, :, :, :, idx, :]
        return u[:, :, :, :, :, idx]

    def _exterior(self, minus_faces: list[np.ndarray],
                  plus_faces: list[np.ndarray], axis: int, side: int,
                  comp_base: int, ghost: Optional[np.ndarray]
                  ) -> list[np.ndarray]:
        """Exterior (neighbour) values seen across ``(axis, side)`` faces.

        For interior element interfaces this is a roll of the neighbouring
        elements' opposite faces; the boundary layer is then overwritten
        with ghost data (decomposed axis) or left to the caller's
        boundary-condition treatment (physical boundaries handled in
        :meth:`rhs`).
        """
        if side < 0:
            # Exterior of my -axis face = neighbour's +axis face.
            ext = [np.roll(f, 1, axis=axis) for f in plus_faces]
        else:
            ext = [np.roll(f, -1, axis=axis) for f in minus_faces]
        if ghost is not None and axis == 0:
            layer = 0 if side < 0 else -1
            for c in range(3):
                ext[c] = ext[c].copy()
                ext[c][layer, :, :] = ghost[comp_base + c]
        return ext

    def rhs(self, state: list[np.ndarray], t: float = 0.0) -> list[np.ndarray]:
        """Right-hand side dE/dt, dH/dt including flux terms."""
        E = state[0:3]
        H = state[3:6]
        cHx, cHy, cHz = self._curl(*H)
        cEx, cEy, cEz = self._curl(*E)
        out = [cHx, cHy, cHz, -cEx, -cEy, -cEz]

        alpha = self.alpha
        mesh = self.mesh
        for axis in range(3):
            if mesh.shape[axis] == 0:
                continue
            E_minus = [self._face(c, axis, -1) for c in E]
            E_plus = [self._face(c, axis, +1) for c in E]
            H_minus = [self._face(c, axis, -1) for c in H]
            H_plus = [self._face(c, axis, +1) for c in H]
            for side in (-1, +1):
                my_E = E_minus if side < 0 else E_plus
                my_H = H_minus if side < 0 else H_plus
                ghost = None
                if axis == 0:
                    ghost = self._ghosts.lo if side < 0 else self._ghosts.hi
                ext_E = self._exterior(E_minus, E_plus, axis, side, 0, ghost)
                ext_H = self._exterior(H_minus, H_plus, axis, side, 3, ghost)
                # Physical boundary treatment on the outer layer (unless a
                # ghost covered it).
                face = (axis * 2) if side < 0 else (axis * 2 + 1)
                bc = mesh.boundary[face]
                needs_bc = ghost is None and bc != "periodic"
                if needs_bc:
                    layer = 0 if side < 0 else -1
                    sl = [slice(None)] * 3
                    sl[axis] = layer
                    sl = tuple(sl)
                    # PEC: E+ = 2n(n.E-) - E-;  H+ = H- - 2n(n.H-).
                    for c in range(3):
                        ext_E[c] = ext_E[c].copy()
                        ext_H[c] = ext_H[c].copy()
                        if c == axis:
                            ext_E[c][sl] = my_E[c][sl]
                            ext_H[c][sl] = -my_H[c][sl]
                        else:
                            ext_E[c][sl] = -my_E[c][sl]
                            ext_H[c][sl] = my_H[c][sl]
                dE = [m - e for m, e in zip(my_E, ext_E)]
                dH = [m - e for m, e in zip(my_H, ext_H)]
                n_cross_dH = _cross_unit(axis, side, dH)
                n_cross_dE = _cross_unit(axis, side, dE)
                nn_dE = _normal_part(axis, dE)
                nn_dH = _normal_part(axis, dH)
                lift = self.lift[axis]
                idx = 0 if side < 0 else self.p - 1
                for c in range(3):
                    # Upwind fluxes from the Maxwell Riemann problem
                    # (Z = Y = 1), strong-form DG:
                    #   fluxE = n x (H* - H-) = -(n x dH + alpha dE_tan)/2
                    #   fluxH = -n x (E* - E-) = (n x dE - alpha dH_tan)/2
                    # where dU = U- - U+ and dU_tan = dU - n(n.dU).
                    flux_E = -0.5 * (n_cross_dH[c] + alpha * (dE[c] - nn_dE[c]))
                    flux_H = 0.5 * (n_cross_dE[c] - alpha * (dH[c] - nn_dH[c]))
                    tgt_E = out[c]
                    tgt_H = out[3 + c]
                    if axis == 0:
                        tgt_E[:, :, :, idx, :, :] += lift * flux_E
                        tgt_H[:, :, :, idx, :, :] += lift * flux_H
                    elif axis == 1:
                        tgt_E[:, :, :, :, idx, :] += lift * flux_E
                        tgt_H[:, :, :, :, idx, :] += lift * flux_H
                    else:
                        tgt_E[:, :, :, :, :, idx] += lift * flux_E
                        tgt_H[:, :, :, :, :, idx] += lift * flux_H
        return out

    # ------------------------------------------------------------------
    # Time integration
    # ------------------------------------------------------------------
    def max_dt(self, cfl: float = 0.7) -> float:
        """Stable time step for the five-stage RK4.

        The DG spatial operator's spectral radius scales like
        ``C / dmin`` with ``dmin`` the minimum physical GLL node spacing
        and ``C ~ 10`` for the upwind flux (measured by power iteration);
        against the RK4 stability limit (~2.5 on the negative real /
        imaginary axes) that gives ``dt <= 0.25 * dmin``.  ``cfl`` scales
        within that bound.
        """
        dxi_min = float(np.min(np.diff(self.xi)))
        dmin = min(h * dxi_min / 2.0 for h in self.h)
        return cfl * 0.25 * dmin

    def run(self, state: list[np.ndarray], t0: float, dt: float, n_steps: int,
            callback: Optional[Callable] = None) -> tuple[list[np.ndarray], float]:
        """Advance ``n_steps`` with the five-stage low-storage RK4."""
        return self._integrator.integrate(state, t0, dt, n_steps, callback)

    # ------------------------------------------------------------------
    # Diagnostics and exact solutions
    # ------------------------------------------------------------------
    def _quad_weights(self) -> np.ndarray:
        hx, hy, hz = self.h
        w = self.w
        W = (w[:, None, None] * w[None, :, None] * w[None, None, :])
        return W * (hx * hy * hz / 8.0)

    def energy(self, state: list[np.ndarray]) -> float:
        """Electromagnetic energy 0.5 * integral(|E|^2 + |H|^2)."""
        W = self._quad_weights()
        total = 0.0
        for comp in state:
            total += float(np.einsum("abcijk,ijk->", comp**2, W))
        return 0.5 * total

    def l2_error(self, state: list[np.ndarray],
                 exact: list[np.ndarray]) -> float:
        """Combined L2 error over all six components."""
        W = self._quad_weights()
        total = 0.0
        for num, ref in zip(state, exact):
            total += float(np.einsum("abcijk,ijk->", (num - ref) ** 2, W))
        return math.sqrt(total)

    def cavity_mode(self, t: float) -> list[np.ndarray]:
        """Exact TM110 standing mode of this solver's PEC box at time ``t``.

        ``Ez = sin(pi x/a) sin(pi y/b) cos(w t)`` with
        ``w = pi sqrt(1/a^2 + 1/b^2)``; requires PEC walls.  For rank-local
        slabs use :func:`cavity_fields` with the *global* bounds instead.
        """
        X, Y, Z = self.coordinates()
        return cavity_fields(self.mesh.bounds, X, Y, Z, t)

    @staticmethod
    def cavity_frequency(a: float, b: float) -> float:
        """Angular frequency of the TM110 mode."""
        return math.pi * math.sqrt(1.0 / a**2 + 1.0 / b**2)
