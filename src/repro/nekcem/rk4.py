"""Five-stage, fourth-order low-storage Runge-Kutta (Carpenter & Kennedy).

NekCEM's default explicit time integrator: the 2N-storage RK4(3)5 scheme of
Carpenter & Kennedy (NASA TM 109112, 1994).  Only two register sets (the
solution and one residual accumulator) are needed regardless of stage count,
which is why production spectral codes favour it.
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

__all__ = ["LSRK4", "RK4A", "RK4B", "RK4C"]

# Carpenter-Kennedy 5-stage 4th-order coefficients.
RK4A = np.array([
    0.0,
    -567301805773.0 / 1357537059087.0,
    -2404267990393.0 / 2016746695238.0,
    -3550918686646.0 / 2091501179385.0,
    -1275806237668.0 / 842570457699.0,
])
RK4B = np.array([
    1432997174477.0 / 9575080441755.0,
    5161836677717.0 / 13612068292357.0,
    1720146321549.0 / 2090206949498.0,
    3134564353537.0 / 4481467310338.0,
    2277821191437.0 / 14882151754819.0,
])
RK4C = np.array([
    0.0,
    1432997174477.0 / 9575080441755.0,
    2526269341429.0 / 6820363962896.0,
    2006345519317.0 / 3224310063776.0,
    2802321613138.0 / 2924317926251.0,
])

State = TypeVar("State")


class LSRK4:
    """Driver for the low-storage scheme over a list-of-arrays state.

    The state is a list of ``numpy`` arrays (e.g. ``[Ex, Ey, Ez, Hx, Hy,
    Hz]``); ``rhs(state, t)`` must return same-shaped arrays.  Residual
    registers are allocated once and reused (the "2N" property).
    """

    def __init__(self, rhs: Callable[[list, float], list]) -> None:
        self.rhs = rhs
        self._res: list | None = None

    @property
    def n_stages(self) -> int:
        """Number of stages per step (five)."""
        return len(RK4A)

    def step(self, state: list, t: float, dt: float) -> list:
        """Advance ``state`` from ``t`` by ``dt`` in place; returns it."""
        if self._res is None or any(
            r.shape != s.shape for r, s in zip(self._res, state)
        ):
            self._res = [np.zeros_like(s) for s in state]
        res = self._res
        for stage in range(self.n_stages):
            k = self.rhs(state, t + RK4C[stage] * dt)
            a, b = RK4A[stage], RK4B[stage]
            for r, s, ki in zip(res, state, k):
                r *= a
                r += dt * ki
                s += b * r
        return state

    def integrate(self, state: list, t0: float, dt: float, n_steps: int,
                  callback: Callable[[list, float, int], None] | None = None
                  ) -> tuple[list, float]:
        """Take ``n_steps`` steps; optional per-step callback.

        Returns ``(state, final_time)``.
        """
        if n_steps < 0:
            raise ValueError("negative step count")
        t = t0
        for i in range(n_steps):
            self.step(state, t, dt)
            t = t0 + (i + 1) * dt
            if callback is not None:
                callback(state, t, i + 1)
        return state, t
