"""Mesh partitioning and the ``.map`` input format.

NekCEM's second input file (Fig. 1) is the global mapping produced by
``genmap``: which rank owns each element (plus vertex numbering).  Data
stays global so runs at any processor count share the same inputs.

Two partitioners are provided:

- :func:`partition_linear` — contiguous blocks of lexicographic element
  ids (what a slab decomposition of a structured mesh gives);
- :func:`partition_rcb` — recursive coordinate bisection over element
  centroids, the classic geometric partitioner for unstructured meshes.

Both balance element counts to within one element and keep every rank
non-empty (when ``n_elements >= n_ranks``).
"""

from __future__ import annotations

import numpy as np

from .mesh import HexMesh

__all__ = ["partition_linear", "partition_rcb", "write_map", "read_map",
           "partition_stats"]


def partition_linear(mesh: HexMesh, n_ranks: int) -> np.ndarray:
    """Contiguous block partition of lexicographic element ids.

    Returns an int array of length ``n_elements`` with the owning rank of
    each element.
    """
    n = mesh.n_elements
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks > n:
        raise ValueError(f"more ranks ({n_ranks}) than elements ({n})")
    # Balanced blocks: first (n % n_ranks) ranks get one extra element.
    base, extra = divmod(n, n_ranks)
    owners = np.empty(n, dtype=np.int64)
    pos = 0
    for r in range(n_ranks):
        count = base + (1 if r < extra else 0)
        owners[pos : pos + count] = r
        pos += count
    return owners


def partition_rcb(mesh: HexMesh, n_ranks: int) -> np.ndarray:
    """Recursive coordinate bisection over element centroids."""
    n = mesh.n_elements
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks > n:
        raise ValueError(f"more ranks ({n_ranks}) than elements ({n})")
    h = mesh.element_sizes
    centroids = np.array([
        [o + 0.5 * s for o, s in zip(mesh.element_origin(e), h)]
        for e in range(n)
    ])
    owners = np.zeros(n, dtype=np.int64)

    def recurse(ids: np.ndarray, ranks_lo: int, ranks_hi: int) -> None:
        n_ranks_here = ranks_hi - ranks_lo
        if n_ranks_here == 1:
            owners[ids] = ranks_lo
            return
        # Split proportionally to the rank counts on each side, along the
        # longest extent of this subdomain.
        pts = centroids[ids]
        extents = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(extents))
        order = ids[np.argsort(pts[:, axis], kind="stable")]
        half_ranks = n_ranks_here // 2
        cut = len(order) * half_ranks // n_ranks_here
        recurse(order[:cut], ranks_lo, ranks_lo + half_ranks)
        recurse(order[cut:], ranks_lo + half_ranks, ranks_hi)

    recurse(np.arange(n), 0, n_ranks)
    return owners


def partition_stats(owners: np.ndarray, n_ranks: int) -> dict:
    """Balance diagnostics for a partition vector."""
    counts = np.bincount(owners, minlength=n_ranks)
    return {
        "min": int(counts.min()),
        "max": int(counts.max()),
        "imbalance": float(counts.max() / counts.mean()) if counts.mean() else 0.0,
        "empty_ranks": int((counts == 0).sum()),
    }


_MAP_MAGIC = "**NEKCEM-REPRO MAP v1**"


def write_map(owners: np.ndarray, n_ranks: int, path_or_file) -> None:
    """Write a ``.map`` file: element count, rank count, one owner per line."""
    own = isinstance(path_or_file, (str, bytes))
    f = open(path_or_file, "w") if own else path_or_file
    try:
        f.write(_MAP_MAGIC + "\n")
        f.write(f"{len(owners)} {n_ranks}\n")
        for owner in owners:
            f.write(f"{int(owner)}\n")
    finally:
        if own:
            f.close()


def read_map(path_or_file) -> tuple[np.ndarray, int]:
    """Read a ``.map`` file; returns ``(owners, n_ranks)`` with validation."""
    own = isinstance(path_or_file, (str, bytes))
    f = open(path_or_file) if own else path_or_file
    try:
        magic = f.readline().strip()
        if magic != _MAP_MAGIC:
            raise ValueError(f"not a map file (magic {magic!r})")
        n_elements, n_ranks = (int(x) for x in f.readline().split())
        owners = np.empty(n_elements, dtype=np.int64)
        for i in range(n_elements):
            line = f.readline()
            if not line:
                raise ValueError(f"truncated map file at element {i}")
            owners[i] = int(line)
        if owners.min() < 0 or owners.max() >= n_ranks:
            raise ValueError("owner rank out of range")
        return owners, n_ranks
    finally:
        if own:
            f.close()
