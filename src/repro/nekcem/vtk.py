"""vtk legacy checkpoint files (Fig. 2's output format, real bytes on disk).

NekCEM writes its checkpoint/visualization dumps in the open vtk legacy
format so ParaView/VisIt can read them directly: a master header
(application name, file type, application type), the grid-point
coordinates, cell numbering and cell type, then one data block per field
with its own header.  This module writes and reads that format for the SEDG
solution: every element's GLL subgrid becomes ``order^3`` hexahedral cells.

Binary mode follows the vtk legacy specification (big-endian IEEE doubles
after ASCII section headers).
"""

from __future__ import annotations

import io
from typing import Mapping

import numpy as np

__all__ = ["write_vtk", "read_vtk", "gll_hex_cells", "VtkReadError"]

_HEADER = "# vtk DataFile Version 3.0"


class VtkReadError(ValueError):
    """A vtk checkpoint file is truncated or structurally corrupt.

    Restart reads raise this instead of returning short arrays (silent
    garbage) or looping on a truncated ASCII block.  Subclasses
    :class:`ValueError`, so existing ``except ValueError`` callers keep
    working.
    """


def gll_hex_cells(n_elements: int, order: int) -> np.ndarray:
    """Connectivity of the GLL subgrid: one row of 8 point ids per subcell.

    Point ids are element-major with z fastest (matching
    ``field.ravel()`` of ``(nex, ney, nez, p, p, p)`` arrays after
    reshaping each element block to ``p*p*p``).
    """
    p = order + 1
    base = np.arange(order)
    i, j, k = np.meshgrid(base, base, base, indexing="ij")
    corner = (i * p + j) * p + k
    offsets = np.array([
        0, p * p, p * p + p, p,           # (i,j,k),(i+1,j,k),(i+1,j+1,k),(i,j+1,k)
        1, p * p + 1, p * p + p + 1, p + 1,
    ])
    cells_one = corner.ravel()[:, None] + offsets[None, :]
    out = np.concatenate([
        cells_one + e * p**3 for e in range(n_elements)
    ])
    return out.astype(np.int64)


def write_vtk(path: str, points: np.ndarray, order: int,
              fields: Mapping[str, np.ndarray], binary: bool = True,
              title: str = "NekCEM-repro checkpoint") -> None:
    """Write an unstructured-grid vtk legacy file.

    Parameters
    ----------
    points:
        ``(n_points, 3)`` nodal coordinates, element-major GLL ordering.
    order:
        Polynomial order (defines the subcell connectivity).
    fields:
        Name -> flat ``(n_points,)`` array per component.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {points.shape}")
    n_points = len(points)
    p3 = (order + 1) ** 3
    if n_points % p3:
        raise ValueError(f"{n_points} points not a multiple of (order+1)^3")
    n_elements = n_points // p3
    for name, arr in fields.items():
        if np.asarray(arr).size != n_points:
            raise ValueError(f"field {name!r} has wrong size")
    cells = gll_hex_cells(n_elements, order)
    mode = "BINARY" if binary else "ASCII"
    with open(path, "wb") as f:
        def line(s: str) -> None:
            f.write(s.encode("ascii") + b"\n")

        line(_HEADER)
        line(title)
        line(mode)
        line("DATASET UNSTRUCTURED_GRID")
        line(f"POINTS {n_points} double")
        _write_doubles(f, points.ravel(), binary)
        line(f"CELLS {len(cells)} {len(cells) * 9}")
        conn = np.hstack([np.full((len(cells), 1), 8, dtype=np.int64), cells])
        _write_ints(f, conn.ravel(), binary)
        line(f"CELL_TYPES {len(cells)}")
        _write_ints(f, np.full(len(cells), 12, dtype=np.int64), binary)  # VTK_HEXAHEDRON
        line(f"POINT_DATA {n_points}")
        for name, arr in fields.items():
            line(f"SCALARS {name} double 1")
            line("LOOKUP_TABLE default")
            _write_doubles(f, np.asarray(arr, dtype=np.float64).ravel(), binary)


def _write_doubles(f, arr: np.ndarray, binary: bool) -> None:
    if binary:
        f.write(arr.astype(">f8").tobytes())
        f.write(b"\n")
    else:
        for row in np.array_split(arr, max(1, len(arr) // 6)):
            f.write((" ".join(f"{x:.17g}" for x in row) + "\n").encode())


def _write_ints(f, arr: np.ndarray, binary: bool) -> None:
    if binary:
        f.write(arr.astype(">i4").tobytes())
        f.write(b"\n")
    else:
        f.write(("\n".join(" ".join(str(x) for x in row.tolist())
                           for row in arr.reshape(-1, 9 if arr.size % 9 == 0 else 1))
                 + "\n").encode())


def read_vtk(path: str) -> dict:
    """Read back a file written by :func:`write_vtk`.

    Returns ``{"points": (n,3), "cells": (m,8), "fields": {name: (n,)}}``.
    Supports the binary flavour this module writes plus ASCII points/fields.
    """
    with open(path, "rb") as f:
        data = f.read()
    stream = io.BytesIO(data)

    def readline() -> str:
        return stream.readline().decode("ascii", errors="replace").strip()

    if readline() != _HEADER:
        raise VtkReadError("not a vtk legacy file")
    _title = readline()
    mode = readline()
    binary = mode == "BINARY"
    if readline() != "DATASET UNSTRUCTURED_GRID":
        raise VtkReadError("unsupported vtk dataset")

    def read_doubles(count: int) -> np.ndarray:
        if binary:
            buf = stream.read(count * 8)
            if len(buf) != count * 8:
                raise VtkReadError(
                    f"truncated data block: wanted {count} doubles, "
                    f"got {len(buf)} bytes"
                )
            stream.readline()  # trailing newline
            return np.frombuffer(buf, dtype=">f8").astype(np.float64)
        vals: list[float] = []
        while len(vals) < count:
            raw = stream.readline()
            if not raw:
                raise VtkReadError(
                    f"truncated data block: wanted {count} doubles, "
                    f"got {len(vals)}"
                )
            try:
                vals.extend(float(x) for x in raw.split())
            except ValueError as exc:
                raise VtkReadError(f"corrupt value in data block: {exc}") from exc
        return np.array(vals[:count])

    def read_ints(count: int) -> np.ndarray:
        if binary:
            buf = stream.read(count * 4)
            if len(buf) != count * 4:
                raise VtkReadError(
                    f"truncated data block: wanted {count} ints, "
                    f"got {len(buf)} bytes"
                )
            stream.readline()
            return np.frombuffer(buf, dtype=">i4").astype(np.int64)
        vals: list[int] = []
        while len(vals) < count:
            raw = stream.readline()
            if not raw:
                raise VtkReadError(
                    f"truncated data block: wanted {count} ints, "
                    f"got {len(vals)}"
                )
            try:
                vals.extend(int(x) for x in raw.split())
            except ValueError as exc:
                raise VtkReadError(f"corrupt value in data block: {exc}") from exc
        return np.array(vals[:count], dtype=np.int64)

    parts = readline().split()
    if not parts or parts[0] != "POINTS":
        raise VtkReadError("missing POINTS block")
    n_points = int(parts[1])
    points = read_doubles(3 * n_points).reshape(n_points, 3)
    parts = readline().split()
    if not parts or parts[0] != "CELLS":
        raise VtkReadError("missing CELLS block")
    n_cells = int(parts[1])
    if int(parts[2]) != 9 * n_cells:
        raise VtkReadError("inconsistent CELLS header for hexahedral grid")
    conn = read_ints(9 * n_cells).reshape(n_cells, 9)
    if not (conn[:, 0] == 8).all():
        raise VtkReadError("non-hexahedral cell in file")
    cells = conn[:, 1:]
    parts = readline().split()
    if not parts or parts[0] != "CELL_TYPES":
        raise VtkReadError("missing CELL_TYPES block")
    types = read_ints(n_cells)
    if not (types == 12).all():
        raise VtkReadError("unexpected cell types")
    fields: dict[str, np.ndarray] = {}
    header = readline()
    if header:
        parts = header.split()
        if parts[0] != "POINT_DATA":
            raise VtkReadError("missing POINT_DATA block")
        while True:
            line = readline()
            if not line:
                break
            parts = line.split()
            if parts[0] != "SCALARS":
                break
            name = parts[1]
            readline()  # LOOKUP_TABLE default
            fields[name] = read_doubles(n_points)
    return {"points": points, "cells": cells, "fields": fields}
