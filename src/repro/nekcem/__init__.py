"""NekCEM-like SEDG Maxwell application: basis, mesh, solver, I/O, drivers."""

from .app import (
    NekCEMApp,
    ParallelRunResult,
    SOLVER_FLOPS_PER_POINT_STEP,
    checkpoint_data_to_fields,
    compute_seconds_per_step,
    fields_to_checkpoint_data,
    gather_slab_states,
    run_parallel_solver,
)
from .basis import (
    differentiation_matrix,
    gll_points_weights,
    lagrange_interpolation_matrix,
)
from .expint import KrylovExpIntegrator
from .genmap import (
    partition_linear,
    partition_rcb,
    partition_stats,
    read_map,
    write_map,
)
from .maxwell import GhostFaces, MaxwellSolver
from .mesh import HexMesh, box_mesh, read_rea, waveguide_mesh, write_rea
from .rk4 import LSRK4, RK4A, RK4B, RK4C
from .vtk import VtkReadError, gll_hex_cells, read_vtk, write_vtk

__all__ = [
    "NekCEMApp",
    "ParallelRunResult",
    "SOLVER_FLOPS_PER_POINT_STEP",
    "checkpoint_data_to_fields",
    "compute_seconds_per_step",
    "fields_to_checkpoint_data",
    "gather_slab_states",
    "run_parallel_solver",
    "differentiation_matrix",
    "gll_points_weights",
    "lagrange_interpolation_matrix",
    "partition_linear",
    "partition_rcb",
    "partition_stats",
    "read_map",
    "write_map",
    "GhostFaces",
    "MaxwellSolver",
    "HexMesh",
    "box_mesh",
    "read_rea",
    "waveguide_mesh",
    "write_rea",
    "KrylovExpIntegrator",
    "LSRK4",
    "RK4A",
    "RK4B",
    "RK4C",
    "gll_hex_cells",
    "read_vtk",
    "write_vtk",
    "VtkReadError",
]
