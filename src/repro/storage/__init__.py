"""GPFS-like shared parallel file-system substrate."""

from typing import Any

from ..mpi import Job
from .gpfs import FSClient, FSError, FileHandle, FileObject, GPFS
from .lustre import LustreFS
from .pvfs import PVFS

__all__ = [
    "GPFS",
    "LustreFS",
    "PVFS",
    "FSClient",
    "FSError",
    "FileHandle",
    "FileObject",
    "attach_storage",
]


def attach_storage(job: Job, profiler: Any = None, fs_type: str = "gpfs",
                   **fs_kwargs) -> GPFS:
    """Create a file system for ``job`` and attach per-rank clients.

    ``fs_type`` selects ``"gpfs"`` (the paper's Intrepid setup),
    ``"lustre"`` (the future-work variant), or ``"pvfs"`` (the lock-free
    comparison the paper wanted).  After this call every
    :class:`~repro.mpi.RankContext` in the job has ``ctx.fs`` set to its
    :class:`FSClient`.  Returns the file system (also stored as
    ``job.services["fs"]``).
    """
    cls = {"gpfs": GPFS, "lustre": LustreFS, "pvfs": PVFS}.get(fs_type)
    if cls is None:
        raise ValueError(f"unknown fs_type {fs_type!r}")
    fs = cls(job.engine, job.config, job.config.pset_map(job.n_ranks),
             job.streams, profiler=profiler, **fs_kwargs)
    for ctx in job.contexts:
        ctx.fs = fs.client(ctx.rank)
    job.services["fs"] = fs
    return fs
