"""PVFS-like (lock-free) storage variant.

Intrepid's storage servers were shared between GPFS and PVFS; the paper
"initially investigated ... PVFS as well and intended to compare GPFS
performance with lock-free PVFS", but hardware configuration differences
(client caching disabled on PVFS) made the comparison "weak and pointless"
at the time.  In simulation both systems run on identical hardware, so the
comparison the paper wanted is possible:

- **lock-free**: no byte-range tokens, no revocations, no whole-block
  read-modify-write, and — crucially — no token-manager congestion storms
  on shared files;
- **handle-based distributed metadata/allocation**: multi-writer files do
  not serialize extent allocation through a per-file manager (the nf = 1
  ceiling disappears), and creates go through a constant-cost metadata
  server rather than a growing directory metanode;
- **no client write-back caching** (matching Intrepid's deployment):
  server-side service is inflated by ``no_cache_factor``.
"""

from __future__ import annotations

from typing import Any

from ..sim import Engine, Resource, StreamRegistry
from ..topology import MachineConfig, PsetMap
from .gpfs import GPFS

__all__ = ["PVFS"]


class PVFS(GPFS):
    """PVFS-flavoured shared file system (lock-free, cache-less)."""

    whole_block_locks = False
    byte_range_locks = False
    serialized_shared_allocation = False

    def __init__(self, engine: Engine, config: MachineConfig, psets: PsetMap,
                 streams: StreamRegistry, profiler: Any = None,
                 no_cache_factor: float = 1.3,
                 mds_service: float = 1.2e-3) -> None:
        super().__init__(engine, config, psets, streams, profiler=profiler)
        if no_cache_factor < 1.0:
            raise ValueError("no_cache_factor must be >= 1")
        self.server_service_factor = no_cache_factor
        self.mds_service = mds_service
        self._mds = Resource(engine, capacity=1)

    def create_token(self, dirname: str) -> Resource:
        """Creates serialize through the (single) PVFS metadata server."""
        return self._mds

    def create_service_time(self, dirname: str) -> float:
        """Constant metadata service: no directory-growth pathologies."""
        return self.mds_service
