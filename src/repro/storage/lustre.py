"""Lustre-like storage variant (the paper's future work).

The paper closes by asking "how rbIO performs on platforms such as the
Cray XT with other file systems such as Lustre".  This variant swaps the
GPFS semantics for Lustre's, keeping the same client interface so every
checkpoint strategy runs unchanged:

- **Object striping**: a file is striped over a fixed ``stripe_count`` of
  OSTs (default 4), not over every server.  A single shared file can
  therefore drive at most ``stripe_count`` servers — the mechanism behind
  the poor shared-file MPI-IO performance Dickens & Logan reported on
  Lustre, and the reason the optimal number of checkpoint files differs
  per file system (the paper's Fig. 8 point).
- **Single MDS**: creates serialize through one metadata server with a
  constant service time (no GPFS directory-metanode growth).
- **Extent locks**: byte-range (not whole-block) server-side locks — no
  read-modify-write penalty for unaligned boundaries; revocation costs
  remain.
"""

from __future__ import annotations

from typing import Any

from ..sim import Engine, Resource, StreamRegistry
from ..topology import MachineConfig, PsetMap
from .gpfs import GPFS, FileObject

__all__ = ["LustreFS"]


class LustreFS(GPFS):
    """Lustre-flavoured shared file system.

    Parameters as :class:`~repro.storage.gpfs.GPFS`, plus:

    stripe_count:
        OSTs per file (Lustre default stripe count; 4 here).
    mds_service:
        Constant metadata-create service time through the single MDS.
    """

    #: Extent (byte-range) locks: unaligned boundaries need no RMW.
    whole_block_locks = False

    def __init__(self, engine: Engine, config: MachineConfig, psets: PsetMap,
                 streams: StreamRegistry, profiler: Any = None,
                 stripe_count: int = 4, mds_service: float = 1.0e-3) -> None:
        super().__init__(engine, config, psets, streams, profiler=profiler)
        if stripe_count < 1 or stripe_count > config.n_file_servers:
            raise ValueError(f"bad stripe count {stripe_count}")
        self.stripe_count = stripe_count
        self.mds_service = mds_service
        self._mds = Resource(engine, capacity=1)

    def server_of_block(self, file: FileObject, block: int) -> int:
        """Stripe file blocks over the file's ``stripe_count`` OSTs only."""
        ost_index = block % self.stripe_count
        # The file's OST set starts at a per-file offset (round-robin OST
        # allocation at create time).
        return (file.file_id * self.stripe_count + ost_index) % self.config.n_file_servers

    def mds_token(self) -> Resource:
        """The single metadata server (creates serialize through it)."""
        return self._mds

    def create_service_time(self, dirname: str) -> float:
        """Constant MDS service (no directory-growth factor)."""
        return self.mds_service
