"""GPFS-like shared parallel file system model.

This is the storage substrate under every experiment in the paper.  It
reproduces the *mechanisms* that shape the measured curves:

Metadata service (1PFPP's killer)
    File creation inserts an entry into the parent directory, which in GPFS
    serializes through the directory's metanode.  16,384 simultaneous
    creates in one directory therefore queue behind a single token —
    producing the 0–300 s triangular spread of Fig. 9 and 1PFPP's ~0.1 GB/s
    effective bandwidth.

Block allocation (the nf=1 ceiling)
    Every file has an allocation manager.  With more than one concurrent
    writer client, extent allocations serialize through it per block; a
    sole writer allocates in batched segments.  A single 156 GB shared file
    is ~39,000 extents — a hard ~27 s floor no matter how many writers, the
    reason coIO/rbIO with nf=1 plateau at a few GB/s.

Byte-range lock tokens (shared-file overhead and storms)
    Writing blocks whose token is owned by another client costs revocation
    round-trips.  Under heavy global stream concurrency the token manager
    congests: shared-file write bursts then risk heavy-tailed "storms"
    (see :class:`~repro.topology.MachineConfig` ``storm_*``), the outliers
    of Fig. 10 that sink coIO at 65,536 processors.  Sole-owner files
    (rbIO nf=ng, 1PFPP) are immune.

Data path (the Fig. 8 optimum)
    A write burst moves through three serialized stages, each a
    :class:`~repro.sim.Pipe`: the client's GPFS stream (per-stream cap),
    the pset's ION uplink (10 GbE shared by 256 ranks), and the striped
    file servers whose per-block service grows with the number of
    concurrently active writer streams (seek/stream-management thrash).
    Aggregate throughput therefore *rises* with writer count while streams
    are client-bound and *falls* once server thrash dominates — peaking
    near 1,024 concurrent files on the calibrated Intrepid configuration,
    exactly the Fig. 8 shape.

Data fidelity
    Writes may carry real payload bytes; the file stores extents so reads
    return bit-exact data.  Figure-scale runs pass ``payload=None`` and
    only sizes move.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from ..buffers import ByteRope, as_bytes, overlay
from ..sim import Engine, Pipe, Resource, StreamRegistry
from ..topology import MachineConfig, PsetMap

__all__ = ["GPFS", "FSClient", "FileHandle", "FileObject", "FSError"]


class FSError(RuntimeError):
    """Raised on invalid file-system usage or an injected I/O failure.

    Carries the failing operation, path, and simulated timestamp so retry
    and fallback logic can discriminate errors.  ``transient`` marks
    retryable failures (see :func:`repro.faults.retry_fs`); usage errors
    and fatal injected faults leave it ``False``.
    """

    def __init__(self, message: str, *, op: Optional[str] = None,
                 path: Optional[str] = None, time: Optional[float] = None,
                 transient: bool = False) -> None:
        super().__init__(message)
        self.op = op
        self.path = path
        self.time = time
        self.transient = transient


def _parent_dir(path: str) -> str:
    """Directory component of a path ('' for bare names)."""
    i = path.rfind("/")
    return path[:i] if i > 0 else "/"


class FileObject:
    """Server-side state of one file."""

    __slots__ = (
        "path",
        "file_id",
        "size",
        "allocated_blocks",
        "allocator",
        "lock_owner",
        "writer_clients",
        "extents",
        "created_at",
    )

    def __init__(self, path: str, file_id: int, engine: Engine, created_at: float) -> None:
        self.path = path
        self.file_id = file_id
        self.size = 0
        self.allocated_blocks: set[int] = set()
        self.allocator = Resource(engine, capacity=1)
        self.lock_owner: dict[int, int] = {}
        self.writer_clients: set[int] = set()
        self.extents: list[tuple[int, bytes]] = []
        self.created_at = created_at

    def read_extents(self, offset: int, nbytes: int) -> ByteRope:
        """Stored payload for ``[offset, offset+nbytes)`` as a zero-copy rope.

        The rope references the extent buffers in place; a later extent
        shadows an earlier one where they overlap (write order wins), and
        bytes never written come back as zeros (sparse-file semantics).
        Consumers needing contiguous memory cross through
        :func:`repro.buffers.as_bytes` — that is the read-side copy
        boundary.
        """
        return overlay(self.extents, offset, offset + nbytes)


class FileHandle:
    """A client's open descriptor on a file."""

    __slots__ = ("file", "client", "writable", "stream", "open_at", "closed")

    def __init__(self, file: FileObject, client: "FSClient", writable: bool,
                 stream: Pipe, open_at: float) -> None:
        self.file = file
        self.client = client
        self.writable = writable
        self.stream = stream
        self.open_at = open_at
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else "open"
        return f"<FileHandle {self.file.path!r} {state} rank={self.client.rank}>"


class GPFS:
    """The shared file-system instance for one simulated job.

    Create one per :class:`~repro.mpi.Job` via :func:`attach_storage` (or
    directly) and hand per-rank clients to rank code with :meth:`client`.
    """

    def __init__(self, engine: Engine, config: MachineConfig, psets: PsetMap,
                 streams: StreamRegistry, profiler: Any = None) -> None:
        self.engine = engine
        self.config = config
        self.psets = psets
        self.profiler = profiler
        self.files: dict[str, FileObject] = {}
        self._dir_entries: dict[str, int] = {}
        self._dir_tokens: dict[str, Resource] = {}
        self._servers: dict[int, Pipe] = {}
        self._ions: dict[int, Pipe] = {}
        self._next_file_id = 0
        self.active_streams = 0
        self._peak_streams = 0.0
        self._peak_time = 0.0
        self._noise_rng = streams.stream("fs.noise")
        self._storm_rng = streams.stream("fs.storms")
        self._sigma = config.noise_sigma
        #: Optional :class:`~repro.faults.FaultInjector`; ``None`` keeps
        #: every operation on the zero-cost fast path.
        self.injector = None
        # Counters (diagnostics / tests).
        self.creates = 0
        self.opens = 0
        self.writes = 0
        self.reads = 0
        self.storms = 0
        self.revocations = 0
        self.rmw_reads = 0

    # -- infrastructure accessors ------------------------------------------
    def server_pipe(self, idx: int) -> Pipe:
        """Disk pipe of file server ``idx`` (created lazily)."""
        pipe = self._servers.get(idx)
        if pipe is None:
            pipe = Pipe(self.engine, self.config.server_disk_bandwidth)
            self._servers[idx] = pipe
        return pipe

    def ion_pipe(self, pset: int) -> Pipe:
        """10 GbE uplink pipe of pset ``pset``'s I/O node."""
        pipe = self._ions.get(pset)
        if pipe is None:
            pipe = Pipe(self.engine, self.config.ion_uplink_bandwidth,
                        latency=self.config.ion_latency)
            self._ions[pset] = pipe
        return pipe

    #: Whole-block lock tokens (GPFS): unaligned shared writes to a block
    #: owned by another client pay a read-modify-write.  File systems with
    #: extent locks (Lustre variant) override this.
    whole_block_locks = True
    #: Byte-range lock tokens at all (PVFS is lock-free and skips token
    #: acquisition, revocation, and congestion storms entirely).
    byte_range_locks = True
    #: Whether multi-writer files serialize extent allocation through a
    #: per-file allocation manager (GPFS); object/handle-based stores
    #: allocate per data server instead.
    serialized_shared_allocation = True
    #: Server-side service inflation (e.g. no client write-back caching).
    server_service_factor = 1.0

    def dir_token(self, dirname: str) -> Resource:
        """Directory metanode token (serializes entry inserts)."""
        res = self._dir_tokens.get(dirname)
        if res is None:
            res = Resource(self.engine, capacity=1)
            self._dir_tokens[dirname] = res
        return res

    def create_token(self, dirname: str) -> Resource:
        """The resource serializing file creation for this directory.

        GPFS serializes through the parent directory's metanode; variants
        (e.g. Lustre's single MDS) override.
        """
        return self.dir_token(dirname)

    def create_service_time(self, dirname: str) -> float:
        """Metadata service time of one create (directory-growth model)."""
        entries = self._dir_entries.get(dirname, 0)
        growth = min((entries / self.config.meta_create_dir_knee) ** 3,
                     self.config.meta_create_dir_max_factor)
        return self.config.meta_create_service * (1.0 + growth)

    def server_of_block(self, file: FileObject, block: int) -> int:
        """Round-robin striping of file blocks over the servers."""
        return (file.file_id + block) % self.config.n_file_servers

    def client(self, rank: int) -> "FSClient":
        """A per-rank client bound to that rank's pset/ION."""
        return FSClient(self, rank)

    def effective_streams(self) -> float:
        """Writer-stream concurrency over the recent window.

        The maximum of the instantaneous count and an exponentially
        decaying record of the recent peak (time constant
        ``config.stream_window``).  Disk seek/queue behaviour reflects the
        streams a server has been multiplexing, not only the ones holding
        a burst open at this exact instant.
        """
        now = self.engine.now
        decayed = self._peak_streams * math.exp(
            -(now - self._peak_time) / self.config.stream_window
        )
        eff = max(float(self.active_streams), decayed, 1.0)
        if eff >= decayed:
            self._peak_streams = eff
            self._peak_time = now
        return eff

    # -- noise ---------------------------------------------------------------
    def noise(self) -> float:
        """Multiplicative lognormal service-time noise factor."""
        if self._sigma <= 0:
            return 1.0
        return float(np.exp(self._noise_rng.normal(0.0, self._sigma)))

    def storm_delay(self) -> float:
        """Draw a token-storm delay (0.0 most of the time).

        Probability scales with global active writer streams past the token
        manager's congestion knee; severity is Pareto-tailed.  Callers only
        invoke this for bursts on *shared* files.
        """
        cfg = self.config
        if cfg.storm_probability <= 0:
            return 0.0
        load = self.effective_streams() / cfg.storm_knee
        p = min(cfg.storm_probability * load**cfg.storm_beta, cfg.storm_probability_max)
        if self._storm_rng.random() >= p:
            return 0.0
        self.storms += 1
        u = self._storm_rng.random()
        return cfg.storm_scale * (1.0 - u) ** (-1.0 / cfg.storm_shape)

    def preload_file(self, path: str, nbytes: int,
                     payload: Optional[bytes] = None) -> FileObject:
        """Install a file instantly (no simulated cost).

        Experiment fixture for pre-existing data such as the ``.rea`` input
        files that exist before the job starts.
        """
        if self.exists(path):
            raise FSError(f"file exists: {path!r}", op="preload", path=path,
                          time=self.engine.now)
        if payload is not None and len(payload) != nbytes:
            raise FSError("payload length mismatch", op="preload", path=path,
                          time=self.engine.now)
        fobj = FileObject(path, self._next_file_id, self.engine, self.engine.now)
        self._next_file_id += 1
        fobj.size = nbytes
        bs = self.config.fs_block_size
        if nbytes:
            fobj.allocated_blocks.update(range((nbytes - 1) // bs + 1))
        if payload is not None:
            fobj.extents.append((0, as_bytes(payload)))
        self.files[path] = fobj
        dirname = _parent_dir(path)
        self._dir_entries[dirname] = self._dir_entries.get(dirname, 0) + 1
        return fobj

    # -- metadata summary ----------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether ``path`` has been created."""
        return path in self.files

    def file(self, path: str) -> FileObject:
        """Look up a file, raising :class:`FSError` if absent."""
        try:
            return self.files[path]
        except KeyError:
            raise FSError(f"no such file: {path!r}", op="open", path=path,
                          time=self.engine.now) from None

    def stats(self) -> dict:
        """Operation counters (diagnostics)."""
        return {
            "files": len(self.files),
            "creates": self.creates,
            "opens": self.opens,
            "writes": self.writes,
            "reads": self.reads,
            "storms": self.storms,
            "revocations": self.revocations,
            "rmw_reads": self.rmw_reads,
            "bytes_stored": sum(f.size for f in self.files.values()),
        }


class FSClient:
    """Per-rank POSIX-like interface to the shared :class:`GPFS`.

    All methods are generators (DES blocking calls).  Every operation is
    reported to the attached profiler, which is how the Darshan-style
    analyses of Figs. 9-12 are produced.
    """

    __slots__ = ("fs", "rank", "pset")

    def __init__(self, fs: GPFS, rank: int) -> None:
        self.fs = fs
        self.rank = rank
        self.pset = fs.psets.pset_of_rank(rank)

    # -- helpers -------------------------------------------------------------
    def _record(self, op: str, t0: float, nbytes: int, path: str) -> None:
        prof = self.fs.profiler
        if prof is not None:
            prof.record_op(self.rank, op, t0, self.fs.engine.now, nbytes, path)

    # -- metadata operations ---------------------------------------------------
    def create(self, path: str, exclusive: bool = False):
        """Generator: create ``path`` and open it for writing.

        Creation inserts a directory entry, serializing through the parent
        directory's metanode token — the 1PFPP metadata storm.  Creating an
        existing file (``exclusive=False``) degrades to a plain open.
        """
        fs = self.fs
        eng = fs.engine
        t0 = eng.now
        if fs.injector is not None:
            yield from fs.injector.before_fs_op(self.rank, "create", path)
        if fs.exists(path):
            if exclusive:
                raise FSError(f"file exists: {path!r}", op="create",
                              path=path, time=eng.now)
            handle = yield from self.open(path, write=True)
            return handle
        dirname = _parent_dir(path)
        token = fs.create_token(dirname)
        yield token.request()
        try:
            # Insert cost grows with directory size (block splits, longer
            # lock holds): the mechanism behind the 1PFPP metadata storm.
            yield eng.timeout(fs.create_service_time(dirname) * fs.noise())
            if not fs.exists(path):
                fobj = FileObject(path, fs._next_file_id, eng, eng.now)
                fs._next_file_id += 1
                fs.files[path] = fobj
                fs._dir_entries[dirname] = fs._dir_entries.get(dirname, 0) + 1
                fs.creates += 1
        finally:
            token.release()
        handle = self._make_handle(fs.files[path], write=True)
        self._record("create", t0, 0, path)
        return handle

    def open(self, path: str, write: bool = False):
        """Generator: open an existing file."""
        fs = self.fs
        t0 = fs.engine.now
        if fs.injector is not None:
            yield from fs.injector.before_fs_op(self.rank, "open", path)
        fobj = fs.file(path)
        yield fs.engine.timeout(fs.config.meta_open_service * fs.noise())
        fs.opens += 1
        handle = self._make_handle(fobj, write)
        self._record("open", t0, 0, path)
        return handle

    def _make_handle(self, fobj: FileObject, write: bool) -> FileHandle:
        fs = self.fs
        stream = Pipe(fs.engine, fs.config.client_stream_bandwidth)
        if write:
            fobj.writer_clients.add(self.rank)
        return FileHandle(fobj, self, write, stream, fs.engine.now)

    def close(self, handle: FileHandle):
        """Generator: close a handle (releases writer registration)."""
        fs = self.fs
        t0 = fs.engine.now
        if fs.injector is not None:
            yield from fs.injector.before_fs_op(self.rank, "close",
                                                handle.file.path)
        if handle.closed:
            raise FSError(f"double close of {handle.file.path!r}", op="close",
                          path=handle.file.path, time=fs.engine.now)
        handle.closed = True
        if handle.writable:
            handle.file.writer_clients.discard(self.rank)
        yield fs.engine.timeout(fs.config.meta_close_service * fs.noise())
        self._record("close", t0, 0, handle.file.path)

    # -- data operations -------------------------------------------------------
    def write(self, handle: FileHandle, offset: int, nbytes: int,
              payload: Optional[Any] = None):
        """Generator: write ``nbytes`` at ``offset`` through this handle.

        ``payload`` accepts any bytes-like, including a zero-copy
        :class:`~repro.buffers.ByteRope`; it is materialized once, here,
        when the extent is committed.

        Sequencing: extent allocation (serialized on shared files) -> lock
        token acquisition/revocation (+ possible congestion storm on shared
        files) -> pipelined data movement through client stream, ION uplink
        and striped servers.  Returns when the burst is durably written.
        """
        fs = self.fs
        eng = fs.engine
        cfg = fs.config
        if fs.injector is not None:
            yield from fs.injector.before_fs_op(self.rank, "write",
                                                handle.file.path)
        if handle.closed or not handle.writable:
            raise FSError(f"write on closed/read-only handle {handle!r}",
                          op="write", path=handle.file.path, time=eng.now)
        if nbytes < 0 or offset < 0:
            raise FSError(f"bad write range offset={offset} nbytes={nbytes}",
                          op="write", path=handle.file.path, time=eng.now)
        if payload is not None and len(payload) != nbytes:
            raise FSError(f"payload length {len(payload)} != nbytes {nbytes}",
                          op="write", path=handle.file.path, time=eng.now)
        t0 = eng.now
        fobj = handle.file
        if nbytes == 0:
            self._record("write", t0, 0, fobj.path)
            return
        bs = cfg.fs_block_size
        first = offset // bs
        last = (offset + nbytes - 1) // bs
        blocks = range(first, last + 1)
        shared = len(fobj.writer_clients) > 1

        # --- extent allocation -------------------------------------------
        new_blocks = [b for b in blocks if b not in fobj.allocated_blocks]
        if new_blocks:
            if shared and fs.serialized_shared_allocation:
                yield fobj.allocator.request()
                try:
                    yield eng.timeout(cfg.alloc_service * len(new_blocks) * fs.noise())
                    fobj.allocated_blocks.update(new_blocks)
                finally:
                    fobj.allocator.release()
            else:
                segments = -(-len(new_blocks) // cfg.alloc_batch_blocks)
                yield eng.timeout(cfg.alloc_service * segments * fs.noise())
                fobj.allocated_blocks.update(new_blocks)

        # --- byte-range lock tokens ----------------------------------------
        if shared and fs.byte_range_locks:
            # Unaligned boundary blocks last written by another client
            # force a read-modify-write of the whole block (GPFS
            # whole-block tokens; the alignment optimization of Liao &
            # Choudhary, SC'08, exists to avoid exactly this).
            rmw_blocks = 0
            if fs.whole_block_locks:
                if offset % bs:
                    owner = fobj.lock_owner.get(first)
                    if owner is not None and owner != self.rank:
                        rmw_blocks += 1
                if (offset + nbytes) % bs and last != first:
                    owner = fobj.lock_owner.get(last)
                    if owner is not None and owner != self.rank:
                        rmw_blocks += 1
            acquire_runs = 0
            revoke_runs = 0
            prev_state = None  # "mine" / "free" / "theirs"
            for b in blocks:
                owner = fobj.lock_owner.get(b)
                state = "mine" if owner == self.rank else ("free" if owner is None else "theirs")
                if state != "mine" and state != prev_state:
                    acquire_runs += 1
                    if state == "theirs":
                        revoke_runs += 1
                prev_state = state
                fobj.lock_owner[b] = self.rank
            cost = (cfg.token_acquire * acquire_runs
                    + cfg.token_revoke * revoke_runs
                    + rmw_blocks * bs / cfg.server_disk_bandwidth)
            fs.revocations += revoke_runs
            fs.rmw_reads += rmw_blocks
            if cost > 0:
                yield eng.timeout(cost * fs.noise())
            storm = fs.storm_delay()
            if storm > 0:
                yield eng.timeout(storm)
        else:
            for b in blocks:
                fobj.lock_owner[b] = self.rank

        # --- data movement ---------------------------------------------------
        fs.active_streams += 1
        try:
            t_stream = handle.stream.reserve(nbytes)
            t_ion = fs.ion_pipe(self.pset).reserve(nbytes)
            t_done = max(t_stream, t_ion)
            active = fs.effective_streams()
            seek = cfg.seek_penalty_per_stream * active
            qd_factor = cfg.server_queue_service_fraction * min(
                cfg.server_queue_knee / active, cfg.server_queue_max_factor
            )
            for b in blocks:
                lo = max(offset, b * bs)
                hi = min(offset + nbytes, (b + 1) * bs)
                chunk = hi - lo
                base = chunk / cfg.server_disk_bandwidth
                extra = (seek + base * qd_factor + (fs.noise() - 1.0) * base
                         + base * (fs.server_service_factor - 1.0))
                t_srv = fs.server_pipe(fs.server_of_block(fobj, b)).reserve(
                    chunk, extra_delay=max(extra, 0.0)
                )
                if t_srv > t_done:
                    t_done = t_srv
            yield eng.timeout(t_done - eng.now)
        finally:
            fs.active_streams -= 1

        if offset + nbytes > fobj.size:
            fobj.size = offset + nbytes
        if payload is not None:
            # THE data-plane copy boundary: payload views/ropes rode the
            # whole pipeline by reference and materialize exactly here,
            # where the file system commits a durable byte image.
            fobj.extents.append((offset, as_bytes(payload)))
        fs.writes += 1
        self._record("write", t0, nbytes, fobj.path)

    def read(self, handle: FileHandle, offset: int, nbytes: int):
        """Generator: read ``nbytes`` at ``offset``; returns stored data.

        Payload-carrying files come back as a zero-copy
        :class:`~repro.buffers.ByteRope` over the stored extents (see
        :meth:`FileObject.read_extents`).  The time model mirrors the write
        data path (no allocation/locking — read tokens are shared).
        """
        fs = self.fs
        eng = fs.engine
        cfg = fs.config
        if fs.injector is not None:
            yield from fs.injector.before_fs_op(self.rank, "read",
                                                handle.file.path)
        if handle.closed:
            raise FSError(f"read on closed handle {handle!r}", op="read",
                          path=handle.file.path, time=eng.now)
        if nbytes < 0 or offset < 0:
            raise FSError(f"bad read range offset={offset} nbytes={nbytes}",
                          op="read", path=handle.file.path, time=eng.now)
        t0 = eng.now
        fobj = handle.file
        if nbytes == 0:
            self._record("read", t0, 0, fobj.path)
            return b""
        bs = cfg.fs_block_size
        t_stream = handle.stream.reserve(nbytes)
        t_ion = fs.ion_pipe(self.pset).reserve(nbytes)
        t_done = max(t_stream, t_ion)
        for b in range(offset // bs, (offset + nbytes - 1) // bs + 1):
            lo = max(offset, b * bs)
            hi = min(offset + nbytes, (b + 1) * bs)
            t_srv = fs.server_pipe(fs.server_of_block(fobj, b)).reserve(hi - lo)
            if t_srv > t_done:
                t_done = t_srv
        yield eng.timeout(t_done - eng.now)
        fs.reads += 1
        self._record("read", t0, nbytes, fobj.path)
        if not fobj.extents:
            # Size-only simulation mode (no payload was ever stored): do
            # not materialize gigabytes of zeros at figure scale.
            return None
        return fobj.read_extents(offset, nbytes)
