"""Checkpoint scheduling and the paper's production-time model (Eq. 1).

The paper quantifies end-to-end benefit with the ratio of production times
under two I/O approaches, checkpointing every ``nc`` computation steps:

    improvement = (Tc_a + nc * Tcomp) / (Tc_b + nc * Tcomp)
                = (Ratio_a + nc) / (Ratio_b + nc),          (Eq. 1)

where ``Ratio = Tc / Tcomp`` is the checkpoint-to-computation ratio plotted
in Fig. 7.  With ``nc = 20``, Ratio_1PFPP > 1000 and Ratio_rbIO < 20 give
the paper's ~25x production improvement.

:class:`CheckpointSchedule` also provides the classic Young interval as an
extension (not in the paper): the checkpoint frequency that minimises
expected lost work under a failure rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "checkpoint_ratio",
    "production_improvement",
    "CheckpointSchedule",
]


def checkpoint_ratio(t_checkpoint: float, t_computation_step: float) -> float:
    """Fig. 7 metric: checkpoint time per I/O step over compute time per step."""
    if t_computation_step <= 0:
        raise ValueError("computation step time must be positive")
    return t_checkpoint / t_computation_step


def production_improvement(t_ckpt_old: float, t_ckpt_new: float,
                           t_computation_step: float, nc: int) -> float:
    """Eq. 1: end-to-end production speedup of approach *new* over *old*.

    ``nc`` is the number of computation steps between checkpoints.
    """
    if nc < 1:
        raise ValueError("nc must be >= 1")
    r_old = checkpoint_ratio(t_ckpt_old, t_computation_step)
    r_new = checkpoint_ratio(t_ckpt_new, t_computation_step)
    return (r_old + nc) / (r_new + nc)


@dataclass(frozen=True)
class CheckpointSchedule:
    """A periodic checkpoint schedule for a time-stepping solver.

    Parameters
    ----------
    nc:
        Checkpoint every ``nc`` computation steps.
    t_computation_step:
        Wall-clock seconds per computation step.
    t_checkpoint:
        Wall-clock seconds the application is blocked per checkpoint.
    """

    nc: int
    t_computation_step: float
    t_checkpoint: float

    def __post_init__(self) -> None:
        if self.nc < 1:
            raise ValueError("nc must be >= 1")
        if self.t_computation_step <= 0:
            raise ValueError("computation step time must be positive")
        if self.t_checkpoint < 0:
            raise ValueError("negative checkpoint time")

    def is_checkpoint_step(self, step: int) -> bool:
        """Whether a checkpoint is taken after computation step ``step``.

        Steps are 1-based; a run of ``n`` steps checkpoints at
        ``nc, 2*nc, ...``.
        """
        if step < 1:
            raise ValueError("steps are 1-based")
        return step % self.nc == 0

    def production_time(self, n_steps: int) -> float:
        """Total wall-clock for ``n_steps`` steps including checkpoints."""
        if n_steps < 0:
            raise ValueError("negative step count")
        n_ckpts = n_steps // self.nc
        return n_steps * self.t_computation_step + n_ckpts * self.t_checkpoint

    @property
    def overhead_fraction(self) -> float:
        """Fraction of production time spent checkpointing (long-run)."""
        period = self.nc * self.t_computation_step + self.t_checkpoint
        return self.t_checkpoint / period

    @property
    def ratio(self) -> float:
        """The Fig. 7 ratio for this schedule."""
        return checkpoint_ratio(self.t_checkpoint, self.t_computation_step)

    @staticmethod
    def young_interval(t_checkpoint: float, mtbf: float) -> float:
        """Young's optimal checkpoint interval: sqrt(2 * Tc * MTBF) seconds.

        An extension beyond the paper for sizing ``nc`` on failure-prone
        systems.
        """
        if t_checkpoint <= 0 or mtbf <= 0:
            raise ValueError("checkpoint time and MTBF must be positive")
        return math.sqrt(2.0 * t_checkpoint * mtbf)

    @classmethod
    def young(cls, t_checkpoint: float, t_computation_step: float, mtbf: float
              ) -> "CheckpointSchedule":
        """Schedule with ``nc`` chosen by Young's formula (at least 1)."""
        interval = cls.young_interval(t_checkpoint, mtbf)
        nc = max(1, round(interval / t_computation_step))
        return cls(nc=nc, t_computation_step=t_computation_step,
                   t_checkpoint=t_checkpoint)
