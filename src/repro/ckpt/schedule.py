"""Checkpoint scheduling and the paper's production-time model (Eq. 1).

The paper quantifies end-to-end benefit with the ratio of production times
under two I/O approaches, checkpointing every ``nc`` computation steps:

    improvement = (Tc_a + nc * Tcomp) / (Tc_b + nc * Tcomp)
                = (Ratio_a + nc) / (Ratio_b + nc),          (Eq. 1)

where ``Ratio = Tc / Tcomp`` is the checkpoint-to-computation ratio plotted
in Fig. 7.  With ``nc = 20``, Ratio_1PFPP > 1000 and Ratio_rbIO < 20 give
the paper's ~25x production improvement.

:class:`CheckpointSchedule` also provides the classic Young interval as an
extension (not in the paper): the checkpoint frequency that minimises
expected lost work under a failure rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = [
    "checkpoint_ratio",
    "production_improvement",
    "CheckpointSchedule",
    "CheckpointRule",
    "checkpoint_instants",
]


def _check_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def checkpoint_ratio(t_checkpoint: float, t_computation_step: float) -> float:
    """Fig. 7 metric: checkpoint time per I/O step over compute time per step."""
    if t_computation_step <= 0:
        raise ValueError("computation step time must be positive")
    return t_checkpoint / t_computation_step


def production_improvement(t_ckpt_old: float, t_ckpt_new: float,
                           t_computation_step: float, nc: int) -> float:
    """Eq. 1: end-to-end production speedup of approach *new* over *old*.

    ``nc`` is the number of computation steps between checkpoints.
    """
    if nc < 1:
        raise ValueError("nc must be >= 1")
    r_old = checkpoint_ratio(t_ckpt_old, t_computation_step)
    r_new = checkpoint_ratio(t_ckpt_new, t_computation_step)
    return (r_old + nc) / (r_new + nc)


@dataclass(frozen=True)
class CheckpointRule:
    """One declarative checkpoint rule (yMMSL/muscle3-style).

    A rule either fires periodically (``every`` time units, from ``start``
    up to and including ``stop``) or at explicit instants (``at``).  Units
    are whatever axis the rule is attached to — simulated seconds for
    wall-clock rules, solver steps for step rules; the campaign compiler
    scales step rules by the per-step compute time.
    """

    every: Optional[float] = None
    at: tuple[float, ...] = ()
    start: float = 0.0
    stop: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", tuple(float(t) for t in self.at))
        if (self.every is None) == (not self.at):
            raise ValueError(
                "a checkpoint rule needs exactly one of 'every' or 'at'")
        if self.every is not None and self.every <= 0:
            raise ValueError(f"'every' must be positive, got {self.every}")
        if any(t < 0 for t in self.at):
            raise ValueError(f"'at' instants must be non-negative: {self.at}")
        if self.start < 0:
            raise ValueError(f"'start' must be non-negative, got {self.start}")
        if self.stop is not None and self.stop < self.start:
            raise ValueError(
                f"'stop' ({self.stop}) must be >= 'start' ({self.start})")

    def instants(self, horizon: float) -> list[float]:
        """The rule's firing instants within ``[0, horizon]``, sorted.

        Periodic rules fire at ``start, start+every, ...`` up to
        ``min(stop, horizon)``; explicit rules fire at each ``at`` instant
        that falls inside the horizon (and ``stop``, if given).
        """
        if horizon < 0:
            raise ValueError(f"negative horizon: {horizon}")
        end = horizon if self.stop is None else min(self.stop, horizon)
        if self.at:
            return sorted(t for t in self.at if self.start <= t <= end)
        out = []
        k = 0
        # Multiply rather than accumulate so long schedules don't drift.
        while (t := self.start + k * self.every) <= end + 1e-12:
            out.append(t)
            k += 1
        return out


def checkpoint_instants(rules: Iterable[CheckpointRule], horizon: float,
                        at_end: bool = False, scale: float = 1.0
                        ) -> tuple[float, ...]:
    """Merge rules into one sorted, deduplicated instant sequence.

    ``scale`` converts rule units into seconds (e.g. seconds-per-step for
    solver-step rules; the horizon stays in seconds).  ``at_end`` appends a
    final checkpoint at the horizon itself.  Instants closer together than
    1 µs collapse into one checkpoint.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    instants: list[float] = []
    for rule in rules:
        instants.extend(t * scale for t in rule.instants(horizon / scale))
    if at_end:
        instants.append(float(horizon))
    instants.sort()
    merged: list[float] = []
    for t in instants:
        if not merged or t - merged[-1] > 1e-6:
            merged.append(t)
    return tuple(merged)


@dataclass(frozen=True)
class CheckpointSchedule:
    """A periodic checkpoint schedule for a time-stepping solver.

    Parameters
    ----------
    nc:
        Checkpoint every ``nc`` computation steps.
    t_computation_step:
        Wall-clock seconds per computation step.
    t_checkpoint:
        Wall-clock seconds the application is blocked per checkpoint.
    """

    nc: int
    t_computation_step: float
    t_checkpoint: float

    def __post_init__(self) -> None:
        if self.nc < 1:
            raise ValueError("nc must be >= 1")
        if self.t_computation_step <= 0:
            raise ValueError("computation step time must be positive")
        if self.t_checkpoint < 0:
            raise ValueError("negative checkpoint time")

    def is_checkpoint_step(self, step: int) -> bool:
        """Whether a checkpoint is taken after computation step ``step``.

        Steps are 1-based; a run of ``n`` steps checkpoints at
        ``nc, 2*nc, ...``.
        """
        if step < 1:
            raise ValueError("steps are 1-based")
        return step % self.nc == 0

    def production_time(self, n_steps: int) -> float:
        """Total wall-clock for ``n_steps`` steps including checkpoints."""
        if n_steps < 0:
            raise ValueError("negative step count")
        n_ckpts = n_steps // self.nc
        return n_steps * self.t_computation_step + n_ckpts * self.t_checkpoint

    @property
    def overhead_fraction(self) -> float:
        """Fraction of production time spent checkpointing (long-run)."""
        period = self.nc * self.t_computation_step + self.t_checkpoint
        return self.t_checkpoint / period

    @property
    def ratio(self) -> float:
        """The Fig. 7 ratio for this schedule."""
        return checkpoint_ratio(self.t_checkpoint, self.t_computation_step)

    @staticmethod
    def young_interval(t_checkpoint: float, mtbf: float) -> float:
        """Young's optimal checkpoint interval: sqrt(2 * Tc * MTBF) seconds.

        An extension beyond the paper for sizing ``nc`` on failure-prone
        systems.
        """
        if t_checkpoint <= 0 or mtbf <= 0:
            raise ValueError("checkpoint time and MTBF must be positive")
        return math.sqrt(2.0 * t_checkpoint * mtbf)

    @classmethod
    def young(cls, t_checkpoint: float, t_computation_step: float, mtbf: float
              ) -> "CheckpointSchedule":
        """Schedule with ``nc`` chosen by Young's formula (at least 1)."""
        interval = cls.young_interval(t_checkpoint, mtbf)
        nc = max(1, round(interval / t_computation_step))
        return cls(nc=nc, t_computation_step=t_computation_step,
                   t_checkpoint=t_checkpoint)

    @staticmethod
    def daly_interval(t_checkpoint: float, mtbf: float) -> float:
        """Daly's higher-order optimum (reduces to Young for small Tc/MTBF).

        Uses Daly's perturbation solution
        ``sqrt(2 Tc M) * (1 + sqrt(Tc/(2M))/3 + Tc/(9*2M)) - Tc`` for
        ``Tc < 2M`` and the degenerate ``interval = M`` otherwise.
        """
        _check_positive(t_checkpoint=t_checkpoint, mtbf=mtbf)
        if t_checkpoint >= 2.0 * mtbf:
            return mtbf
        x = t_checkpoint / (2.0 * mtbf)
        return (math.sqrt(2.0 * t_checkpoint * mtbf)
                * (1.0 + math.sqrt(x) / 3.0 + x / 9.0) - t_checkpoint)

    @staticmethod
    def young_interval_incremental(t_full_checkpoint: float,
                                   delta_fraction: float, mtbf: float,
                                   manifest_overhead: float = 0.0) -> float:
        """Young's interval when checkpoints are delta-sized.

        With incremental checkpointing the per-checkpoint cost is no
        longer the full-image write time but
        ``t_full * delta_fraction + manifest_overhead`` — the fraction of
        chunks that actually changed (amplified by chunk granularity; see
        :func:`repro.model.effective_delta_fraction`) plus the fixed
        header/manifest cost.  A smaller cost shortens the optimal
        interval: checkpoint *more* often, lose less work per failure.
        """
        _check_positive(t_full_checkpoint=t_full_checkpoint, mtbf=mtbf)
        if not 0.0 < delta_fraction <= 1.0:
            raise ValueError(
                f"delta_fraction must be in (0, 1], got {delta_fraction}")
        if manifest_overhead < 0:
            raise ValueError("negative manifest_overhead")
        t_delta = t_full_checkpoint * delta_fraction + manifest_overhead
        return math.sqrt(2.0 * t_delta * mtbf)

    @classmethod
    def young_incremental(cls, t_full_checkpoint: float,
                          delta_fraction: float, t_computation_step: float,
                          mtbf: float, manifest_overhead: float = 0.0
                          ) -> "CheckpointSchedule":
        """Schedule sized for delta writes (Young's rule on the delta cost)."""
        t_delta = (t_full_checkpoint * delta_fraction + manifest_overhead)
        interval = cls.young_interval_incremental(
            t_full_checkpoint, delta_fraction, mtbf,
            manifest_overhead=manifest_overhead)
        nc = max(1, round(interval / t_computation_step))
        return cls(nc=nc, t_computation_step=t_computation_step,
                   t_checkpoint=t_delta)
