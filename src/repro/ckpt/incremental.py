"""Incremental content-addressed checkpointing over the ByteRope.

Checkpoint generations are highly redundant between steps: a solver that
mutates a quarter of its state per step still rewrites every byte of every
generation under the paper's strategies.  This module provides the shared
machinery that lets every strategy ship only the *changed* chunks:

- **Content-defined chunking** — a windowed Gear rolling hash computed
  vectorized over :class:`~repro.buffers.ByteRope` segments (carry-in of
  the previous window tail, no flat materialization), with min/avg/max
  chunk-size bounds.  Boundaries depend only on content, so an edit moves
  at most the chunks it touches: the suffix re-aligns after one window.
- **Content addressing** — each chunk carries a CRC32 and a 128-bit
  BLAKE2b digest, both computed segment-iteratively over the rope.
- **Versioned manifests** — every delta generation writes a canonical-JSON
  manifest next to its data file: the full chunk list (including where
  each chunk's bytes live — ``(src_step, src_offset)`` into that
  generation's file), the parent generation, the strategy, and the member
  layout.  Manifests are *self-contained*: restoring generation ``k``
  needs only ``k``'s manifest plus the data files it references.
- **Delta planning** — :func:`plan_section` chunks a member's payload,
  looks every chunk up in the parent manifest by ``(digest, length)``, and
  returns the fresh chunks packed as a zero-copy rope plus the manifest
  section describing the whole generation.
- **Delta-chain restore** — :func:`read_plan` merges a section's chunks
  into maximal contiguous read runs per source generation;
  :func:`assemble_section` reassembles the member payload from the run
  data and verifies every chunk's CRC32, rejecting any bit-flip.

Accounting lives in the module-level :data:`stats`
(``bytes_logical`` / ``bytes_to_pfs`` / ``chunk_hits`` / ``chunk_misses``),
surfaced through ``Engine.counters()`` and ``DarshanProfiler.summary()``.

Strategies expose all of this behind the ``delta="off"|"auto"|"require"``
knob (:meth:`~repro.ckpt.CheckpointStrategy.configure_delta`); full-write
stays the paper-fidelity default.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..buffers import ByteRope
from ..faults import UnrecoverableCheckpointError

__all__ = [
    "MANIFEST_VERSION",
    "GEAR_WINDOW",
    "ManifestError",
    "ChunkingParams",
    "ChunkRef",
    "ManifestSection",
    "Manifest",
    "SectionPlan",
    "ReadRun",
    "DeltaStats",
    "stats",
    "chunk_boundaries",
    "chunk_spans",
    "chunk_digest",
    "plan_section",
    "shift_fresh",
    "read_plan",
    "assemble_section",
    "manifest_path",
    "write_manifest",
    "read_manifest",
    "manifest_exists",
]

#: On-disk manifest schema version; unknown versions are rejected so a
#: future format change can never silently mis-restore old checkpoints.
MANIFEST_VERSION = 1

#: Rolling-hash window: a boundary decision looks at this many bytes, so
#: chunk boundaries re-align at most one window after any edit.
GEAR_WINDOW = 32

#: The Gear table: 256 pseudo-random 64-bit words, fixed forever (chunk
#: boundaries are part of the on-disk format's stability contract).
_GEAR = np.random.default_rng(0x47454152).integers(
    0, 1 << 64, size=256, dtype=np.uint64)


class ManifestError(UnrecoverableCheckpointError):
    """A manifest is unreadable, unparsable, or from an unknown schema.

    Subclasses :class:`~repro.faults.UnrecoverableCheckpointError` so the
    resilient restore's voting treats a damaged manifest exactly like a
    damaged data file: the generation is rejected and every rank falls
    back together.
    """


@dataclass(frozen=True)
class ChunkingParams:
    """Content-defined chunking bounds.

    ``avg_size`` must be a power of two (the boundary condition masks the
    rolling hash with ``avg_size - 1``); ``min_size`` suppresses boundary
    candidates too close to the previous cut, ``max_size`` forces one.
    """

    min_size: int = 2048
    avg_size: int = 8192
    max_size: int = 32768

    def __post_init__(self) -> None:
        if not (0 < self.min_size <= self.avg_size <= self.max_size):
            raise ValueError(
                f"need 0 < min <= avg <= max, got {self.min_size}/"
                f"{self.avg_size}/{self.max_size}")
        if self.avg_size & (self.avg_size - 1):
            raise ValueError(f"avg_size must be a power of two, "
                             f"got {self.avg_size}")

    @property
    def mask(self) -> int:
        return self.avg_size - 1

    def to_dict(self) -> dict:
        return {"min": self.min_size, "avg": self.avg_size,
                "max": self.max_size}

    @classmethod
    def from_dict(cls, d: dict) -> "ChunkingParams":
        return cls(min_size=d["min"], avg_size=d["avg"], max_size=d["max"])


# ---------------------------------------------------------------------------
# Content-defined chunking
# ---------------------------------------------------------------------------

def _candidate_positions(rope: ByteRope, mask: int) -> np.ndarray:
    """Boundary candidates: positions ``p`` where the windowed Gear hash of
    ``rope[:p]``'s last :data:`GEAR_WINDOW` bytes satisfies the mask.

    Processes the rope segment by segment; the previous segment's tail of
    Gear words carries in so positions near a segment seam hash exactly as
    they would in the flat byte stream.  No payload bytes are copied.
    """
    w = GEAR_WINDOW
    m = np.uint64(mask)
    out: list[np.ndarray] = []
    tail = np.zeros(w - 1, dtype=np.uint64)
    pos = 0
    for seg in rope.iter_segments():
        g = _GEAR[np.frombuffer(seg, dtype=np.uint8)]
        n = len(g)
        ext = np.concatenate([tail, g])
        acc = np.zeros(n, dtype=np.uint64)
        for j in range(w):
            # h[i] = sum_{j<w} GEAR[b[i-j]] << j  (uint64 wraparound)
            acc += ext[w - 1 - j : w - 1 - j + n] << np.uint64(j)
        hits = np.nonzero((acc & m) == m)[0]
        if len(hits):
            # A candidate *after* byte i cuts at absolute position i + 1.
            out.append(hits.astype(np.int64) + (pos + 1))
        tail = ext[n:]
        pos += n
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out)


def chunk_boundaries(rope: ByteRope, params: Optional[ChunkingParams] = None
                     ) -> list[int]:
    """Chunk cut positions (exclusive ends) for ``rope``, last == len.

    Candidates closer than ``min_size`` to the previous cut are skipped;
    a run longer than ``max_size`` without a candidate is cut at exactly
    ``max_size``.  The final (tail) chunk may be shorter than ``min_size``.
    """
    params = params or ChunkingParams()
    n = len(rope)
    if n == 0:
        return []
    cuts: list[int] = []
    start = 0
    for c in _candidate_positions(rope, params.mask).tolist():
        while c - start > params.max_size:
            start += params.max_size
            cuts.append(start)
        if c - start >= params.min_size:
            cuts.append(c)
            start = c
    while n - start > params.max_size:
        start += params.max_size
        cuts.append(start)
    if start < n:
        cuts.append(n)
    return cuts


def chunk_spans(rope: ByteRope, params: Optional[ChunkingParams] = None
                ) -> list[tuple[int, int]]:
    """``(lo, hi)`` spans of every chunk, tiling ``[0, len)`` exactly."""
    lo = 0
    spans = []
    for hi in chunk_boundaries(rope, params):
        spans.append((lo, hi))
        lo = hi
    return spans


def chunk_digest(rope: ByteRope) -> str:
    """128-bit BLAKE2b content digest, fed segment by segment (no copy)."""
    h = hashlib.blake2b(digest_size=16)
    for seg in rope.iter_segments():
        h.update(seg)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChunkRef:
    """One chunk of a member's payload and where its bytes live on disk.

    ``offset`` is the chunk's position within the member's *logical*
    payload; ``(src_step, src_offset)`` point into the data file of the
    generation that first wrote these bytes (``src_step == step`` for a
    fresh chunk, an ancestor for a deduplicated one).
    """

    offset: int
    length: int
    crc: int
    digest: str
    src_step: int
    src_offset: int

    def to_list(self) -> list:
        return [self.offset, self.length, self.crc, self.digest,
                self.src_step, self.src_offset]

    @classmethod
    def from_list(cls, v: Sequence) -> "ChunkRef":
        if len(v) != 6:
            raise ManifestError(f"malformed chunk entry: {v!r}")
        return cls(int(v[0]), int(v[1]), int(v[2]), str(v[3]),
                   int(v[4]), int(v[5]))


@dataclass(frozen=True)
class ManifestSection:
    """One member's chunk list within a generation's file.

    ``member`` is the member's index within the file's communicator
    (0 for 1PFPP's private files, the group rank for coIO/rbIO files,
    the world rank for nf=1 shared files).
    """

    member: int
    field_sizes: tuple[int, ...]
    chunks: tuple[ChunkRef, ...]

    @property
    def logical_bytes(self) -> int:
        return sum(c.length for c in self.chunks)

    def digest_index(self) -> dict[tuple[str, int], tuple[int, int]]:
        """``(digest, length) -> (src_step, src_offset)`` dedup lookup."""
        return {(c.digest, c.length): (c.src_step, c.src_offset)
                for c in self.chunks}

    def to_dict(self) -> dict:
        return {"member": self.member,
                "field_sizes": list(self.field_sizes),
                "chunks": [c.to_list() for c in self.chunks]}

    @classmethod
    def from_dict(cls, d: dict) -> "ManifestSection":
        try:
            return cls(
                member=int(d["member"]),
                field_sizes=tuple(int(s) for s in d["field_sizes"]),
                chunks=tuple(ChunkRef.from_list(c) for c in d["chunks"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest section: {exc}") from None


@dataclass(frozen=True)
class Manifest:
    """A delta generation's complete description (one per data file)."""

    strategy: str
    step: int
    parent: Optional[int]
    header_bytes: int
    chunking: ChunkingParams
    sections: tuple[ManifestSection, ...]
    version: int = MANIFEST_VERSION

    def section_for(self, member: int) -> ManifestSection:
        for s in self.sections:
            if s.member == member:
                return s
        raise ManifestError(
            f"manifest of step {self.step} has no section for member "
            f"{member} (members: {[s.member for s in self.sections]})")

    @property
    def fresh_bytes(self) -> int:
        """Bytes of chunk data this generation's file actually holds."""
        return sum(c.length for s in self.sections for c in s.chunks
                   if c.src_step == self.step)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "strategy": self.strategy,
            "step": self.step,
            "parent": self.parent,
            "header_bytes": self.header_bytes,
            "chunking": self.chunking.to_dict(),
            "sections": [s.to_dict() for s in self.sections],
        }

    def to_bytes(self) -> bytes:
        """Canonical serialization: key-sorted compact JSON + newline.

        Byte-stable across processes and Python versions — the golden
        manifest test pins it, so restore of old checkpoints survives
        refactors.
        """
        return (json.dumps(self.to_dict(), sort_keys=True,
                           separators=(",", ":")) + "\n").encode("ascii")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Manifest":
        try:
            d = json.loads(bytes(data))
        except (ValueError, TypeError) as exc:
            raise ManifestError(f"unparsable manifest: {exc}") from None
        if not isinstance(d, dict) or "version" not in d:
            raise ManifestError("manifest is not a versioned object")
        if d["version"] != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {d['version']!r} "
                f"(this build reads version {MANIFEST_VERSION})")
        try:
            return cls(
                strategy=str(d["strategy"]),
                step=int(d["step"]),
                parent=None if d["parent"] is None else int(d["parent"]),
                header_bytes=int(d["header_bytes"]),
                chunking=ChunkingParams.from_dict(d["chunking"]),
                sections=tuple(ManifestSection.from_dict(s)
                               for s in d["sections"]),
            )
        except ManifestError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest: {exc}") from None


def manifest_path(data_path: str) -> str:
    """The manifest written alongside a generation's data file."""
    return data_path + ".manifest"


# ---------------------------------------------------------------------------
# Delta planning (checkpoint side)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SectionPlan:
    """One member's delta plan: what to write, and how to describe it.

    Fresh chunks' ``src_offset`` values are relative to the start of this
    member's fresh region (base 0); the committer places the region in the
    file and rebases with :func:`shift_fresh` — independent committers use
    ``header_bytes``, collective committers a prefix sum over members.
    """

    section: ManifestSection
    fresh: ByteRope
    fresh_bytes: int
    hits: int
    misses: int

    @property
    def logical_bytes(self) -> int:
        return self.section.logical_bytes


def plan_section(payload: ByteRope, field_sizes: Sequence[int], member: int,
                 step: int, params: ChunkingParams,
                 parent_section: Optional[ManifestSection] = None
                 ) -> SectionPlan:
    """Chunk ``payload``, dedup against the parent section, pack the rest.

    Without a parent (generation 0, or the first delta generation after a
    restart) every chunk is fresh and the file carries the full payload —
    plus its manifest, which is what makes later generations cheap.
    """
    parent_index = (parent_section.digest_index()
                    if parent_section is not None else {})
    chunks: list[ChunkRef] = []
    fresh_parts: list[ByteRope] = []
    fresh_pos = 0
    hits = misses = 0
    for lo, hi in chunk_spans(payload, params):
        piece = payload.slice(lo, hi)
        digest = chunk_digest(piece)
        crc = piece.crc32()
        src = parent_index.get((digest, hi - lo))
        if src is not None:
            hits += 1
            chunks.append(ChunkRef(lo, hi - lo, crc, digest, src[0], src[1]))
        else:
            misses += 1
            chunks.append(ChunkRef(lo, hi - lo, crc, digest, step, fresh_pos))
            fresh_parts.append(piece)
            fresh_pos += hi - lo
    section = ManifestSection(member=member,
                              field_sizes=tuple(int(s) for s in field_sizes),
                              chunks=tuple(chunks))
    return SectionPlan(section=section, fresh=ByteRope.concat(fresh_parts),
                       fresh_bytes=fresh_pos, hits=hits, misses=misses)


def shift_fresh(section: ManifestSection, step: int, base: int
                ) -> ManifestSection:
    """Rebase the fresh chunks' file offsets by ``base`` (region placement)."""
    if base == 0:
        return section
    return ManifestSection(
        member=section.member,
        field_sizes=section.field_sizes,
        chunks=tuple(
            ChunkRef(c.offset, c.length, c.crc, c.digest, c.src_step,
                     c.src_offset + base) if c.src_step == step else c
            for c in section.chunks),
    )


# ---------------------------------------------------------------------------
# Delta-chain restore
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReadRun:
    """One maximal contiguous read from one source generation's file."""

    src_step: int
    offset: int
    length: int
    chunks: tuple[ChunkRef, ...]


def read_plan(section: ManifestSection) -> list[ReadRun]:
    """Merge a section's chunks into per-generation contiguous read runs.

    Chunks are grouped by source generation and sorted by file offset;
    adjacent spans merge, so a generation written as one packed fresh
    region reads back as one run regardless of how many chunks it holds.
    """
    by_step: dict[int, list[ChunkRef]] = {}
    for c in section.chunks:
        by_step.setdefault(c.src_step, []).append(c)
    runs: list[ReadRun] = []
    for src_step in sorted(by_step):
        group = sorted(by_step[src_step], key=lambda c: c.src_offset)
        cur: list[ChunkRef] = []
        for c in group:
            if cur and c.src_offset == cur[-1].src_offset + cur[-1].length:
                cur.append(c)
            else:
                if cur:
                    runs.append(ReadRun(src_step, cur[0].src_offset,
                                        sum(x.length for x in cur),
                                        tuple(cur)))
                cur = [c]
        if cur:
            runs.append(ReadRun(src_step, cur[0].src_offset,
                                sum(x.length for x in cur), tuple(cur)))
    return runs


def assemble_section(section: ManifestSection,
                     run_data: Sequence[tuple[ReadRun, ByteRope]],
                     step: int, path: str, rank: Optional[int] = None
                     ) -> ByteRope:
    """Reassemble a member's payload from read-run data, verifying CRCs.

    Every chunk's CRC32 is recomputed over the bytes actually read; any
    mismatch (bit-flip on disk, truncated source file) raises
    :class:`~repro.faults.UnrecoverableCheckpointError` so the resilient
    restore rejects the generation and falls back along the chain.
    """
    pieces: list[tuple[int, ByteRope]] = []
    for run, rope in run_data:
        if len(rope) != run.length:
            raise UnrecoverableCheckpointError(
                f"{path!r}: read {len(rope)} B of a {run.length} B chunk run "
                f"from generation {run.src_step}", step=step, path=path,
                rank=rank)
        rel = 0
        for c in run.chunks:
            piece = rope.slice(rel, rel + c.length)
            if piece.crc32() != c.crc:
                raise UnrecoverableCheckpointError(
                    f"{path!r}: chunk at payload offset {c.offset} "
                    f"(source generation {c.src_step}) failed its CRC32",
                    step=step, path=path, rank=rank)
            pieces.append((c.offset, piece))
            rel += c.length
    pieces.sort(key=lambda p: p[0])
    expected = sum(section.field_sizes)
    pos = 0
    parts = []
    for off, piece in pieces:
        if off != pos:
            raise UnrecoverableCheckpointError(
                f"{path!r}: manifest chunks do not tile the payload "
                f"(gap at offset {pos})", step=step, path=path, rank=rank)
        parts.append(piece)
        pos += len(piece)
    if pos != expected:
        raise UnrecoverableCheckpointError(
            f"{path!r}: manifest covers {pos} B, member payload is "
            f"{expected} B", step=step, path=path, rank=rank)
    return ByteRope.concat(parts)


# ---------------------------------------------------------------------------
# Manifest I/O (simulated file system)
# ---------------------------------------------------------------------------

def write_manifest(ctx, manifest: Manifest, data_path: str):
    """Generator: write a manifest next to its data file (with FS retry).

    Returns the number of bytes written (manifest overhead accounting).
    """
    from ..faults.retry import retry_fs

    blob = manifest.to_bytes()
    path = manifest_path(data_path)
    eng = ctx.engine
    handle = yield from retry_fs(eng, lambda: ctx.fs.create(path))
    yield from retry_fs(
        eng, lambda: ctx.fs.write(handle, 0, len(blob),
                                  payload=ByteRope.wrap(blob)))
    yield from ctx.fs.close(handle)
    return len(blob)


def manifest_exists(ctx, data_path: str) -> bool:
    """Whether a generation wrote a manifest (the delta-vs-full probe)."""
    return ctx.fs.fs.exists(manifest_path(data_path))


def read_manifest(ctx, data_path: str, step: int):
    """Generator: read and parse the manifest of ``data_path``.

    Raises :class:`ManifestError` (an
    :class:`~repro.faults.UnrecoverableCheckpointError`) when the blob is
    damaged, so resilient restores vote the generation down.
    """
    path = manifest_path(data_path)
    handle = yield from ctx.fs.open(path)
    blob = yield from ctx.fs.read(handle, 0, handle.file.size)
    yield from ctx.fs.close(handle)
    if blob is None:
        raise ManifestError(f"{path!r} holds no manifest payload",
                            step=step, path=path, rank=ctx.rank)
    manifest = Manifest.from_bytes(bytes(ByteRope.wrap(blob)))
    if manifest.step != step:
        raise ManifestError(
            f"{path!r} describes step {manifest.step}, expected {step}",
            step=step, path=path, rank=ctx.rank)
    return manifest


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------

class DeltaStats:
    """Process-wide incremental-checkpointing counters.

    ``bytes_logical`` counts the application state a delta commit covered;
    ``bytes_to_pfs`` the bytes it actually shipped (header + fresh chunks
    + manifest).  ``chunk_hits`` / ``chunk_misses`` count parent-manifest
    dedup outcomes.  Full-write (``delta="off"``) commits touch none of
    these — the counters isolate the incremental subsystem's effect.
    """

    __slots__ = ("bytes_logical", "bytes_to_pfs", "chunk_hits",
                 "chunk_misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.bytes_logical = 0
        self.bytes_to_pfs = 0
        self.chunk_hits = 0
        self.chunk_misses = 0

    def record_commit(self, logical: int, to_pfs: int, hits: int,
                      misses: int) -> None:
        self.bytes_logical += logical
        self.bytes_to_pfs += to_pfs
        self.chunk_hits += hits
        self.chunk_misses += misses

    def snapshot(self) -> dict:
        return {
            "bytes_logical": self.bytes_logical,
            "bytes_to_pfs": self.bytes_to_pfs,
            "chunk_hits": self.chunk_hits,
            "chunk_misses": self.chunk_misses,
        }


#: The module-wide counter instance every delta commit reports to.
stats = DeltaStats()


def crc32_concat(parts) -> int:
    """CRC32 over a sequence of bytes-likes without joining them."""
    value = 0
    for p in parts:
        if isinstance(p, ByteRope):
            value = p.crc32(value)
        else:
            value = zlib.crc32(p, value) & 0xFFFFFFFF
    return value & 0xFFFFFFFF
