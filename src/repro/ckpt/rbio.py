"""rbIO — reduced-blocking, application-level two-phase I/O (the paper's
contribution).

Ranks are partitioned into groups of ``workers_per_writer`` (the paper's
``np:ng`` ratio, 64:1 in production).  The first rank of each group is that
group's dedicated **writer**; the rest are **workers**:

- Workers ``MPI_Isend`` their entire checkpoint package (all fields) to
  their writer over the torus with *buffered* semantics and return as soon
  as the local copy completes — typically a few hundred microseconds for a
  ~2.4 MB package, which is what yields the perceived TB/s bandwidths of
  Table I.  Computation resumes immediately; I/O latency is hidden.
- The writer aggregates its group's packages, reorders them from
  member-major to the file's field-major layout, and commits:

  - ``nf = ng`` (default): each writer owns a private file opened with
    ``MPI_COMM_SELF`` (:meth:`~repro.mpiio.MPIFile.open_independent`) and
    flushes whenever its collective buffer fills — several fields per
    burst, no shared-file lock traffic, no collective synchronization.
  - ``nf = 1``: all writers collectively write one shared file
    (``MPI_File_write_at_all`` on the writers' communicator, every writer
    its own aggregator).  The field-major layout forces one commit per
    field, and extent allocation on the single file serializes — the 2x
    gap of Fig. 5.
"""

from __future__ import annotations

from typing import Optional

from ..buffers import ByteRope, zeros
from ..faults import UnrecoverableCheckpointError
from ..mpi import RankContext
from ..mpiio import Hints, MPIFile
from ..sim import CoalescePlan, GroupPlan
from .base import CheckpointStrategy
from .data import CheckpointData
from .layout import FileLayout
from .result import RankReport

__all__ = ["ReducedBlockingIO"]

_PKG_TAG_BASE = 1 << 24
_ACK_TAG = (1 << 24) - 1
#: Member -> node-leader forwards of the two-level (TAM) exchange; disjoint
#: from the package, ack and bbIO restore tag spaces.
_TAM_TAG_BASE = 3 << 24


class ReducedBlockingIO(CheckpointStrategy):
    """The rbIO strategy.

    Parameters
    ----------
    workers_per_writer:
        Group size (``np:ng`` ratio); the paper studies 64:1, 32:1, 16:1.
    single_file:
        ``False`` (default) = ``nf = ng`` (one file per writer);
        ``True`` = ``nf = 1`` (writers collectively share one file).
    writer_buffer:
        Writer-side aggregation buffer; with ``nf = ng`` a flush commits
        this many bytes (multiple fields) per burst.  Default matches the
        BG/P collective-buffer size (16 MB).
    max_outstanding:
        Optional worker-side flow control: the number of checkpoint
        packages a worker may have in flight before it must wait for the
        writer's acknowledgement.  ``None`` (the paper's setup) means
        unbounded send buffering — workers never block beyond the Isend.
        With a bound, workers block when writers cannot drain between
        checkpoints: this is exactly the paper's lambda (the fraction of
        writer write time workers are blocked, Eq. 4), made measurable.
    """

    name = "rbio"

    def __init__(self, workers_per_writer: int = 64, single_file: bool = False,
                 writer_buffer: int = 16 * 1024 * 1024,
                 max_outstanding: Optional[int] = None,
                 hints: Optional[Hints] = None) -> None:
        if workers_per_writer < 2:
            raise ValueError("workers_per_writer must be >= 2")
        if writer_buffer < 1:
            raise ValueError("writer_buffer must be >= 1")
        if max_outstanding is not None and max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1 or None")
        self.workers_per_writer = workers_per_writer
        self.single_file = single_file
        self.writer_buffer = writer_buffer
        self.max_outstanding = max_outstanding
        # Writers are their own aggregators: the application already did
        # the two-phase exchange, so ROMIO must not re-shuffle.
        self.hints = hints or Hints(ranks_per_aggregator=1)

    def describe(self) -> dict:
        out = {
            "name": self.name,
            "np:ng": f"{self.workers_per_writer}:1",
            "nf": 1 if self.single_file else "ng",
            "writer_buffer": self.writer_buffer,
            "max_outstanding": self.max_outstanding,
        }
        if self.tam != "off":
            out["tam"] = self.tam
        return out

    def group_of(self, rank: int) -> int:
        """Writer-group index of a world rank."""
        return rank // self.workers_per_writer

    def n_groups(self, n_ranks: int) -> int:
        """Number of writer groups (= ng = number of writers)."""
        return -(-n_ranks // self.workers_per_writer)

    def writer_ranks(self, n_ranks: int) -> list[int]:
        """World ranks acting as writers."""
        return [g * self.workers_per_writer for g in range(self.n_groups(n_ranks))]

    def file_path(self, basedir: str, step: int, group: int) -> str:
        """Output path for one writer's file (nf=ng mode)."""
        return f"{self.step_dir(basedir, step)}/writer{group:05d}.vtk"

    def shared_path(self, basedir: str, step: int) -> str:
        """Output path of the single shared file (nf=1 mode)."""
        return f"{self.step_dir(basedir, step)}/all.vtk"

    # -- coalescing --------------------------------------------------------
    def coalesce_plan(self, n_ranks: int):
        """Workers within a group are symmetric: replay each group once.

        Coalescing is only exact when workers never diverge; flow control
        (``max_outstanding``) makes a worker's timeline depend on how many
        acknowledgements it has already drained, so it disables the plan.
        """
        if self.max_outstanding is not None:
            return None
        groups = []
        for g in range(self.n_groups(n_ranks)):
            w = g * self.workers_per_writer
            members = tuple(range(w + 1, min(w + self.workers_per_writer, n_ranks)))
            if members:
                groups.append(GroupPlan(rep=members[0], members=members))
        if not groups:
            return None
        return CoalescePlan(groups=tuple(groups),
                            worker_main=self.coalesced_worker_main)

    def coalesced_worker_main(self, ctx: RankContext, members, data:
                              CheckpointData, steps, basedir: str,
                              gaps, barrier_each_step: bool):
        """Generator: replay every worker of one group from its representative.

        Mirrors ``runner._rank_main`` + :meth:`_worker` member by member:
        collective arrivals are entered once per member (same arrival
        counts, same completion timing), each member's package moves through
        the fabric as its own transfer (same pipe reservations, so the
        writer-side incast is bit-identical), and the single shared eager
        copy time stands in for every member's local Isend completion.

        With TAM engaged the worker roles split by node position, so the
        replay hands off to :meth:`_coalesced_worker_tam`.
        """
        if self.tam != "off":
            inj = ctx.job.services.get("faults")
            if inj is None or not inj.has_rank_faults:
                from ..topology import NodeGroups
                world = (members[0] - 1,) + tuple(members)
                groups = NodeGroups(list(world), ctx.config.cores_per_node)
                if groups.nontrivial:
                    return (yield from self._coalesced_worker_tam(
                        ctx, members, data, steps, basedir, gaps,
                        barrier_each_step, groups))
        eng = ctx.engine
        comm = ctx.comm
        fabric = ctx.job.fabric
        nbytes = data.total_bytes
        copy = ctx.config.mpi_overhead + fabric.local_copy_time(nbytes)
        gviews = None
        reports: dict[int, list] = {m: [] for m in members}
        for i, step in enumerate(steps):
            if gaps[i] > 0:
                yield eng.timeout(gaps[i])
            if i == 0 or barrier_each_step:
                yield from comm.barrier_members(members)
            if gviews is None:
                # First step: stand in for every member of the two setup
                # splits (group comm, then writers-vs-workers comm).
                gviews = yield from comm.split_members(
                    [(m, self.group_of(m)) for m in members]
                )
                yield from comm.split_members([(m, 1) for m in members])
            t0 = eng.now
            tag = _PKG_TAG_BASE + step
            package = (tuple(data.field_sizes), data.concatenated_payload())
            # One bulk call posts every member's package to the writer
            # (group-local rank 0); transfers are still issued per member in
            # member order, so the writer-side incast is bit-identical.
            gviews[members[0]].post_members(
                [gviews[m].rank for m in members], 0, nbytes, tag=tag,
                payload=package)
            yield eng.timeout(copy)
            t_done = eng.now
            if ctx.profiler is not None:
                for m in members:
                    ctx.profiler.record_phase(m, "isend", t0, t_done, nbytes)
            # One representative span stands for the whole symmetry group;
            # exporters expand it to every member.
            self._span(ctx, "checkpoint", t0, t_done, nbytes,
                       members=tuple(members), role="worker", coalesced=True)
            for m in members:
                reports[m].append(RankReport(
                    rank=m, role="worker", t_start=t0, t_blocked_end=t_done,
                    t_complete=t_done, bytes_local=nbytes,
                    isend_seconds=t_done - t0,
                ))
        return reports

    def _coalesced_worker_tam(self, ctx: RankContext, members,
                              data: CheckpointData, steps, basedir: str,
                              gaps, barrier_each_step: bool, groups):
        """Generator: TAM-aware coalesced replay of one group's workers.

        Worker roles under TAM are not fully symmetric, so the replay is
        role-aware.  Writer-node members and plain members are replayed by
        bulk fire-and-forget posts plus the shared eager-copy timeout
        (exactly the flat replay's discipline).  Node leaders — whose
        timelines depend on their members' intra-node arrivals — are
        replayed by one child process per *symmetry class* (leaders with
        equal member counts behave identically): the child faithfully
        receives the class representative's member messages, posts every
        same-class leader's combined inter-node message at that instant
        (with its TAM accounting), consumes the remaining leaders' member
        messages fire-and-forget, and completes after the combined local
        copy.  Message sources, tags, payloads and per-message fabric
        transfers match the uncoalesced TAM run, so the writer-side gather
        — and hence the file image — is bit-identical.
        """
        eng = ctx.engine
        comm = ctx.comm
        fabric = ctx.job.fabric
        nbytes = data.total_bytes
        copy = ctx.config.mpi_overhead + fabric.local_copy_time(nbytes)
        world = (members[0] - 1,) + tuple(members)
        co_located = list(groups.members_of[0][1:])
        leaders = [lead for lead in groups.leaders if lead != 0]
        classes: dict[int, list[int]] = {}
        for lead in leaders:
            classes.setdefault(len(groups.members_of[lead]), []).append(lead)
        class_list = list(classes.values())
        gviews = None
        reports: dict[int, list] = {m: [] for m in members}
        for i, step in enumerate(steps):
            if gaps[i] > 0:
                yield eng.timeout(gaps[i])
            if i == 0 or barrier_each_step:
                yield from comm.barrier_members(members)
            if gviews is None:
                gviews = yield from comm.split_members(
                    [(m, self.group_of(m)) for m in members]
                )
                yield from comm.split_members([(m, 1) for m in members])
            t0 = eng.now
            tag = _PKG_TAG_BASE + step
            ttag = _TAM_TAG_BASE + step
            package = (tuple(data.field_sizes), data.concatenated_payload())
            if co_located:
                gviews[members[0]].post_members(co_located, 0, nbytes,
                                                tag=tag, payload=package)
            for lead in leaders:
                for src in groups.members_of[lead][1:]:
                    gviews[world[src]].post(lead, nbytes, tag=ttag,
                                            payload=(src, package))

            def leader_replay(lead0, leads):
                parts0 = [(lead0, package)]
                for src in groups.members_of[lead0][1:]:
                    msg = yield from gviews[world[lead0]].recv(source=src,
                                                               tag=ttag)
                    parts0.append(msg.payload)
                total = sum(sum(sizes) for _, (sizes, _p) in parts0)
                for lead in leads:
                    parts = ([(lead, package)]
                             + [(src, package)
                                for src in groups.members_of[lead][1:]])
                    fabric.count_tam(len(parts))
                    gviews[world[lead]].post(0, total, tag=tag, payload=parts)
                    if lead != lead0:
                        for src in groups.members_of[lead][1:]:
                            gviews[world[lead]].irecv(source=src, tag=ttag)
                yield eng.timeout(ctx.config.mpi_overhead
                                  + fabric.local_copy_time(total))
                return eng.now

            children = [eng.process(leader_replay(leads[0], leads))
                        for leads in class_list]
            yield eng.timeout(copy)
            t_member = eng.now
            done = yield eng.all_of(children)
            t_leader: dict[int, float] = {}
            for leads, t in zip(class_list, done):
                for lead in leads:
                    t_leader[lead] = t
            by_end: dict[float, list[int]] = {}
            for m in members:
                t_done = t_leader.get(gviews[m].rank, t_member)
                by_end.setdefault(t_done, []).append(m)
                if ctx.profiler is not None:
                    ctx.profiler.record_phase(m, "isend", t0, t_done, nbytes)
                reports[m].append(RankReport(
                    rank=m, role="worker", t_start=t0, t_blocked_end=t_done,
                    t_complete=t_done, bytes_local=nbytes,
                    isend_seconds=t_done - t0,
                ))
            # One representative span per symmetry class (members sharing a
            # completion time); exporters expand to every class member.
            for t_done, cls_members in by_end.items():
                self._span(ctx, "checkpoint", t0, t_done, nbytes,
                           members=tuple(cls_members), role="worker",
                           coalesced=True, tam=True)
        return reports

    # -- setup -------------------------------------------------------------
    def _setup(self, ctx: RankContext):
        """Generator: split group comm (and writers' comm) once, cache."""
        cache = self._cache(ctx)
        if "gcomm" not in cache:
            gcomm = yield from ctx.comm.split(color=self.group_of(ctx.rank))
            am_writer = gcomm.rank == 0
            wcomm = yield from ctx.comm.split(color=0 if am_writer else 1)
            cache["gcomm"] = gcomm
            cache["am_writer"] = am_writer
            cache["wcomm"] = wcomm if am_writer else None
        return cache

    def ghost(self, ctx: RankContext, data: CheckpointData, step: int,
              basedir: str = "/ckpt"):
        """A crashed rank still joins the (cached) communicator splits."""
        yield from self._setup(ctx)

    # -- checkpoint ----------------------------------------------------------
    def checkpoint(self, ctx: RankContext, data: CheckpointData, step: int,
                   basedir: str = "/ckpt"):
        """Generator: worker fast path or writer aggregation-and-commit."""
        cache = yield from self._setup(ctx)
        inj = ctx.job.services.get("faults")
        if inj is not None and inj.has_rank_faults:
            # Writer failover reroutes individual workers across groups at
            # fault-oracle instants; only the flat worker->writer protocol
            # supports that, so TAM degrades to flat for the whole run.
            if self.tam == "require":
                raise ValueError(
                    f"{self.name}: tam='require' is incompatible with "
                    f"rank-crash fault schedules (writer failover needs the "
                    f"flat worker->writer protocol)")
            cache["tam_groups"] = None
            return (yield from self._checkpoint_faulted(ctx, inj, cache, data,
                                                        step, basedir))
        gcomm = cache["gcomm"]
        groups = self._tam_groups(ctx, gcomm, cache)
        if not cache["am_writer"]:
            if groups is not None:
                return (yield from self._worker_tam(ctx, gcomm, groups, data,
                                                    step))
            return (yield from self._worker(ctx, gcomm, data, step))
        return (yield from self._writer(ctx, cache, data, step, basedir))

    def _tam_groups(self, ctx: RankContext, gcomm, cache: dict):
        """The group's :class:`NodeGroups`, or ``None`` for the flat path.

        Cached per rank: the split is static, so the node grouping is too.
        ``None`` is cached when TAM is off or when no node hosts more than
        one rank of the group (nothing to coalesce — ``"require"`` raises
        instead).
        """
        if self.tam == "off":
            cache["tam_groups"] = None
            return None
        if "tam_groups" not in cache:
            from ..topology import NodeGroups
            cpn = ctx.config.cores_per_node
            groups = NodeGroups(gcomm.comm.world_ranks, cpn)
            if not groups.nontrivial:
                if self.tam == "require":
                    raise ValueError(
                        f"{self.name}: tam='require' but no node hosts more "
                        f"than one rank of a writer group (cores_per_node="
                        f"{cpn}, workers_per_writer="
                        f"{self.workers_per_writer})")
                groups = None
            cache["tam_groups"] = groups
        return cache["tam_groups"]

    # -- failover ------------------------------------------------------------
    def _adopter_rank(self, inj, group: int, ng: int, now: float) -> int:
        """World rank of the surviving writer adopting ``group``.

        Every rank evaluates the same deterministic oracle at the same
        post-barrier time, so workers and the adopter agree without any
        election traffic: the next alive writer in cyclic group order.
        """
        for d in range(1, ng):
            w = ((group + d) % ng) * self.workers_per_writer
            if not inj.dead_at(w, now):
                return w
        raise UnrecoverableCheckpointError(
            f"no surviving writer to adopt group {group}")

    def _checkpoint_faulted(self, ctx: RankContext, inj, cache: dict,
                            data: CheckpointData, step: int, basedir: str):
        """Crash-aware checkpoint step (identical to the normal path while
        nobody is dead yet)."""
        now = ctx.engine.now
        gcomm = cache["gcomm"]
        g = self.group_of(ctx.rank)
        ng = self.n_groups(ctx.comm.size)
        if not cache["am_writer"]:
            writer = g * self.workers_per_writer
            if inj.dead_at(writer, now):
                target = self._adopter_rank(inj, g, ng, now)
                return (yield from self._worker_rerouted(ctx, data, step,
                                                         target))
            return (yield from self._worker(ctx, gcomm, data, step))
        return (yield from self._writer_faulted(ctx, inj, cache, data, step,
                                                basedir, now))

    def _worker_rerouted(self, ctx: RankContext, data: CheckpointData,
                         step: int, target: int):
        """Worker whose writer died: send to the adopter over world comm.

        Flow-control state is reset on every writer switch — outstanding
        packages at the dead writer will never be acknowledged.
        """
        eng = ctx.engine
        t0 = eng.now
        cache = self._cache(ctx)
        if self.max_outstanding is not None:
            if cache.get("ack_target") != target:
                cache["ack_target"] = target
                cache["outstanding"] = 0
            outstanding = cache.get("outstanding", 0)
            while outstanding >= self.max_outstanding:
                yield from ctx.comm.recv(source=target, tag=_ACK_TAG)
                outstanding -= 1
            cache["outstanding"] = outstanding + 1
        package = (tuple(data.field_sizes), data.concatenated_payload())
        req = ctx.comm.isend(target, data.total_bytes,
                             tag=_PKG_TAG_BASE + step, payload=package,
                             buffered=True)
        yield req.event
        t_done = eng.now
        if ctx.profiler is not None:
            ctx.profiler.record_phase(ctx.rank, "isend", t0, t_done,
                                      data.total_bytes)
        return self._report(ctx, "worker", t0, t_done, t_done,
                            data.total_bytes, isend_seconds=t_done - t0)

    def _writer_faulted(self, ctx: RankContext, inj, cache: dict,
                        data: CheckpointData, step: int, basedir: str,
                        now: float):
        """Writer step under a fault schedule: skip dead members, adopt
        orphaned groups of dead writers."""
        eng = ctx.engine
        t0 = eng.now
        gcomm = cache["gcomm"]
        g = self.group_of(ctx.rank)
        n_ranks = ctx.comm.size
        ng = self.n_groups(n_ranks)
        base = g * self.workers_per_writer
        dead_members = tuple(src for src in range(1, gcomm.size)
                             if inj.dead_at(base + src, now))
        layout, image, member_sizes, member_payloads = yield from \
            self._gather_group(ctx, gcomm, data, step,
                               dead_members=dead_members)
        dead_writers = [w for w in self.writer_ranks(n_ranks)
                        if inj.dead_at(w, now)]
        if not self.single_file:
            # Delta commits describe a *complete* group; a group missing a
            # dead member's block falls back to the plain (rejectable)
            # full write so restore voting skips it.
            if self._delta_active(data) and not dead_members:
                yield from self._commit_private_delta(
                    ctx, cache, member_sizes, member_payloads,
                    data.header_bytes, step, basedir)
            else:
                yield from self._commit_private(ctx, layout, image, step,
                                                basedir)
        elif not dead_writers:
            # nf=1: the writers' delta collectives must all agree, so delta
            # requires every rank of the world alive (each writer evaluates
            # the same oracle at the same post-barrier instant).
            if self._delta_active(data) and not any(
                    inj.dead_at(r, now) for r in range(n_ranks)):
                yield from self._commit_shared_delta(
                    ctx, cache, member_sizes, member_payloads,
                    data.header_bytes, step, basedir)
            else:
                yield from self._commit_shared(ctx, cache["wcomm"], layout,
                                               member_sizes, member_payloads,
                                               data.header_bytes, step,
                                               basedir)
        # nf=1 with a dead writer: the writers' collective can never
        # complete, so survivors skip this generation's shared commit
        # entirely (restore falls back past it) but still ack their group.
        self._ack_group(gcomm, dead_members=dead_members)
        for w in dead_writers:
            og = self.group_of(w)
            if self._adopter_rank(inj, og, ng, now) == ctx.rank:
                yield from self._adopt_group(ctx, inj, og, data, step,
                                             basedir, now)
        t_end = eng.now
        return self._report(ctx, "writer", t0, t_end, t_end, data.total_bytes)

    def _adopt_group(self, ctx: RankContext, inj, group: int,
                     data: CheckpointData, step: int, basedir: str,
                     now: float):
        """Adopt a dead writer's group: gather its surviving workers'
        packages over world comm and commit them direct to the PFS.

        The dead writer's own contribution is gone, so the adopted file
        holds survivors only — a later restore of this generation rejects
        it by size and falls back; the failover's job is durability of the
        survivors' data and keeping the campaign running without hangs.
        """
        eng = ctx.engine
        lo = group * self.workers_per_writer
        hi = min(lo + self.workers_per_writer, ctx.comm.size)
        alive = [r for r in range(lo + 1, hi) if not inj.dead_at(r, now)]
        if not alive:
            return
        tag = _PKG_TAG_BASE + step
        member_sizes: list[tuple[int, ...]] = []
        member_payloads: list[Optional[bytes]] = []
        for r in alive:
            msg = yield from ctx.comm.recv(source=r, tag=tag)
            sizes, payload = msg.payload
            member_sizes.append(sizes)
            member_payloads.append(payload)
        group_bytes = sum(sum(s) for s in member_sizes)
        yield eng.timeout(group_bytes / ctx.config.memory_bandwidth)
        layout = FileLayout(data.header_bytes,
                            [list(s) for s in member_sizes])
        image = self._field_major_image(layout, member_sizes, member_payloads)
        yield from self._commit_private(ctx, layout, image, step, basedir,
                                        group=group)
        if self.max_outstanding is not None:
            for r in alive:
                ctx.comm.isend(r, 8, tag=_ACK_TAG, buffered=True)
        inj.log("writer_failover", group=group, adopter=ctx.rank, step=step,
                members=len(alive))

    def _worker(self, ctx: RankContext, gcomm, data: CheckpointData, step: int):
        """Worker: one buffered Isend of the whole package to the writer.

        With flow control enabled, first drain writer acknowledgements
        until the in-flight package count is under the bound — the time
        spent here is the lambda blocking of Eq. 4.
        """
        eng = ctx.engine
        t0 = eng.now
        cache = self._cache(ctx)
        if self.max_outstanding is not None:
            outstanding = cache.get("outstanding", 0)
            while outstanding >= self.max_outstanding:
                yield from gcomm.recv(source=0, tag=_ACK_TAG)
                outstanding -= 1
            cache["outstanding"] = outstanding + 1
        package = (tuple(data.field_sizes), data.concatenated_payload())
        req = gcomm.isend(0, data.total_bytes, tag=_PKG_TAG_BASE + step,
                          payload=package, buffered=True)
        yield req.event
        t_done = eng.now
        if ctx.profiler is not None:
            ctx.profiler.record_phase(ctx.rank, "isend", t0, t_done,
                                      data.total_bytes)
        return self._report(ctx, "worker", t0, t_done, t_done,
                            data.total_bytes, isend_seconds=t_done - t0)

    def _worker_tam(self, ctx: RankContext, gcomm, groups,
                    data: CheckpointData, step: int):
        """Worker step under two-level aggregation (TAM).

        Three roles by node position: members co-resident with the writer
        keep the flat single (their send is shared-memory traffic already);
        other members forward ``(group_rank, package)`` to their node's
        leader over shared memory; each leader coalesces its node's
        packages and issues **one** combined inter-node message to the
        writer — O(nodes) inter-node messages per group instead of the
        flat exchange's O(workers).  The writer rebuilds exact group-rank
        order (:meth:`_gather_group_tam`), so the committed file image is
        bit-identical to the flat path's.
        """
        eng = ctx.engine
        t0 = eng.now
        cache = self._cache(ctx)
        if self.max_outstanding is not None:
            # The writer still acknowledges every member directly, so flow
            # control is untouched by where the package physically travels.
            outstanding = cache.get("outstanding", 0)
            while outstanding >= self.max_outstanding:
                yield from gcomm.recv(source=0, tag=_ACK_TAG)
                outstanding -= 1
            cache["outstanding"] = outstanding + 1
        me = gcomm.rank
        lead = groups.leader_of[me]
        package = (tuple(data.field_sizes), data.concatenated_payload())
        if lead == 0:
            req = gcomm.isend(0, data.total_bytes, tag=_PKG_TAG_BASE + step,
                              payload=package, buffered=True)
        elif me != lead:
            req = gcomm.isend(lead, data.total_bytes,
                              tag=_TAM_TAG_BASE + step, payload=(me, package),
                              buffered=True)
        else:
            parts = [(me, package)]
            for src in groups.members_of[me][1:]:
                msg = yield from gcomm.recv(source=src,
                                            tag=_TAM_TAG_BASE + step)
                parts.append(msg.payload)
            total = sum(sum(sizes) for _, (sizes, _p) in parts)
            ctx.job.fabric.count_tam(len(parts))
            req = gcomm.isend(0, total, tag=_PKG_TAG_BASE + step,
                              payload=parts, buffered=True)
        yield req.event
        t_done = eng.now
        if ctx.profiler is not None:
            ctx.profiler.record_phase(ctx.rank, "isend", t0, t_done,
                                      data.total_bytes)
        return self._report(ctx, "worker", t0, t_done, t_done,
                            data.total_bytes, isend_seconds=t_done - t0)

    def _gather_group(self, ctx: RankContext, gcomm, data: CheckpointData,
                      step: int, dead_members: tuple = ()):
        """Generator: aggregate group packages and reorder to file order.

        Returns ``(layout, image, member_sizes, member_payloads)`` — the
        group's :class:`FileLayout`, the assembled field-major file image
        (``None`` in size-only runs), and the raw per-member packages.
        Shared by rbIO's synchronous commit and bbIO's staged commit.
        ``dead_members`` (group-comm source indices) are skipped: a dead
        worker sends nothing, so its block is simply absent.

        When the checkpoint step engaged TAM (``cache["tam_groups"]`` set
        by :meth:`checkpoint`), the gather dispatches to the two-level
        variant; fault paths always set it to ``None``, so degraded steps
        stay on the flat protocol.
        """
        if not dead_members:
            groups = self._cache(ctx).get("tam_groups")
            if groups is not None:
                return (yield from self._gather_group_tam(ctx, gcomm, groups,
                                                          data, step))
        eng = ctx.engine
        tag = _PKG_TAG_BASE + step
        # Aggregate: collect each member's (sizes, payload) package.
        member_sizes: list[tuple[int, ...]] = [tuple(data.field_sizes)]
        member_payloads: list[Optional[bytes]] = [data.concatenated_payload()]
        for src in range(1, gcomm.size):
            if src in dead_members:
                continue
            msg = yield from gcomm.recv(source=src, tag=tag)
            sizes, payload = msg.payload
            member_sizes.append(sizes)
            member_payloads.append(payload)
        group_bytes = sum(sum(s) for s in member_sizes)

        # Reorder member-major packages into field-major file order: one
        # memory pass over the aggregation buffer.
        t_p0 = eng.now
        yield eng.timeout(group_bytes / ctx.config.memory_bandwidth)
        self._span(ctx, "pack", t_p0, eng.now, group_bytes, cat="phase",
                   step=step)
        layout = FileLayout(data.header_bytes, [list(s) for s in member_sizes])
        image = self._field_major_image(layout, member_sizes, member_payloads)
        return layout, image, member_sizes, member_payloads

    def _gather_group_tam(self, ctx: RankContext, gcomm, groups,
                          data: CheckpointData, step: int):
        """Generator: two-level variant of :meth:`_gather_group`.

        Receives flat singles from the writer's own node and one combined
        ``[(group_rank, package), ...]`` message per remote node leader,
        then rebuilds the packages in group-rank order — layout and image
        are byte-identical to the flat gather's, only the message count
        differs.
        """
        eng = ctx.engine
        tag = _PKG_TAG_BASE + step
        t_g0 = eng.now
        packages: dict[int, tuple] = {
            0: (tuple(data.field_sizes), data.concatenated_payload())}
        for src in groups.members_of[0][1:]:
            msg = yield from gcomm.recv(source=src, tag=tag)
            packages[src] = msg.payload
        for lead in groups.leaders[1:]:
            msg = yield from gcomm.recv(source=lead, tag=tag)
            for src, pkg in msg.payload:
                packages[src] = pkg
        member_sizes: list[tuple[int, ...]] = []
        member_payloads: list[Optional[bytes]] = []
        for src in range(gcomm.size):
            sizes, payload = packages[src]
            member_sizes.append(tuple(sizes))
            member_payloads.append(payload)
        group_bytes = sum(sum(s) for s in member_sizes)
        self._span(ctx, "tam-gather", t_g0, eng.now, group_bytes,
                   cat="phase", step=step)
        t_p0 = eng.now
        yield eng.timeout(group_bytes / ctx.config.memory_bandwidth)
        self._span(ctx, "pack", t_p0, eng.now, group_bytes, cat="phase",
                   step=step)
        layout = FileLayout(data.header_bytes, [list(s) for s in member_sizes])
        image = self._field_major_image(layout, member_sizes, member_payloads)
        return layout, image, member_sizes, member_payloads

    def _writer(self, ctx: RankContext, cache: dict, data: CheckpointData,
                step: int, basedir: str):
        """Writer: gather group packages, reorder, commit to disk."""
        eng = ctx.engine
        t0 = eng.now
        gcomm = cache["gcomm"]
        layout, image, member_sizes, member_payloads = yield from \
            self._gather_group(ctx, gcomm, data, step)

        if self._delta_active(data):
            if not self.single_file:
                yield from self._commit_private_delta(
                    ctx, cache, member_sizes, member_payloads,
                    data.header_bytes, step, basedir)
            else:
                yield from self._commit_shared_delta(
                    ctx, cache, member_sizes, member_payloads,
                    data.header_bytes, step, basedir)
        elif not self.single_file:
            yield from self._commit_private(ctx, layout, image, step, basedir)
        else:
            yield from self._commit_shared(ctx, cache["wcomm"], layout,
                                           member_sizes, member_payloads,
                                           data.header_bytes, step, basedir)
        self._ack_group(gcomm)
        t_end = eng.now
        return self._report(ctx, "writer", t0, t_end, t_end, data.total_bytes)

    def _ack_group(self, gcomm, dead_members: tuple = ()) -> None:
        """Flow control: acknowledge the commit so workers release a slot."""
        if self.max_outstanding is not None:
            for dst in range(1, gcomm.size):
                if dst in dead_members:
                    continue
                gcomm.isend(dst, 8, tag=_ACK_TAG, buffered=True)

    @staticmethod
    def _field_major_image(layout: FileLayout,
                           member_sizes: list[tuple[int, ...]],
                           member_payloads: list
                           ) -> Optional[ByteRope]:
        """Assemble the file image (header zeros + field-major data).

        The member-major -> field-major reorder is a pure *gather of
        segment references*: the returned rope lists header zeros followed
        by each field section's member blocks as views into the members'
        own packages (which tile ``[header, total)`` exactly — the layout
        has no padding).  No payload byte is copied here; the simulated
        memory pass in :meth:`_gather_group` models the reorder cost.
        """
        if any(p is None for p in member_payloads):
            return None
        ropes = [ByteRope.wrap(p) for p in member_payloads]
        # Per-member prefix offset of each field block within its package.
        prefixes = []
        for sizes in member_sizes:
            run = 0
            pre = []
            for sz in sizes:
                pre.append(run)
                run += sz
            prefixes.append(pre)
        parts = [zeros(layout.header_bytes)] if layout.header_bytes else []
        n_fields = len(member_sizes[0])
        for f in range(n_fields):
            for m, rope in enumerate(ropes):
                lo = prefixes[m][f]
                parts.append(rope.slice(lo, lo + member_sizes[m][f]))
        return ByteRope.concat(parts)

    def _commit_private(self, ctx: RankContext, layout: FileLayout,
                        image: Optional[bytes], step: int, basedir: str,
                        group: Optional[int] = None):
        """nf=ng: sole-owner file, buffered multi-field flushes.

        ``group`` defaults to the writer's own; a failover adopter passes
        the orphaned group's index so the file lands at its usual path.
        """
        if group is None:
            group = self.group_of(ctx.rank)
        path = self.file_path(basedir, step, group)
        f = yield from MPIFile.open_independent(ctx, path, hints=self.hints)
        total = layout.total_size
        pos = 0
        while pos < total:
            burst = min(self.writer_buffer, total - pos)
            chunk = image[pos : pos + burst] if image is not None else None
            yield from f.write_at(pos, burst, payload=chunk)
            pos += burst
        yield from f.close()

    def _plan_group_delta(self, member_sizes, member_payloads, step: int,
                          parent_secs: dict, member_ids):
        """Plan every member's delta against its cached parent section.

        Fresh regions are packed sequentially (relative base 0); returns
        ``(sections, fresh_parts, fresh_total, hits, misses)``.
        """
        from .incremental import plan_section, shift_fresh

        sections = []
        fresh_parts = []
        fresh_total = 0
        hits = misses = 0
        for member, sizes, payload in zip(member_ids, member_sizes,
                                          member_payloads):
            plan = plan_section(
                ByteRope.wrap(payload), sizes, member=member, step=step,
                params=self.chunking, parent_section=parent_secs.get(member))
            sections.append(shift_fresh(plan.section, step, fresh_total))
            fresh_total += plan.fresh_bytes
            if plan.fresh_bytes:
                fresh_parts.append(plan.fresh)
            hits += plan.hits
            misses += plan.misses
        return sections, fresh_parts, fresh_total, hits, misses

    def _commit_private_delta(self, ctx: RankContext, cache: dict,
                              member_sizes, member_payloads,
                              header_bytes: int, step: int, basedir: str):
        """nf=ng delta: the writer's file holds only its group's fresh chunks.

        Layout is ``[header][member 0 fresh][member 1 fresh]...`` (packed,
        member-major — delta files carry no field-major sections; the
        manifest, not a fixed layout, is what restore walks).  Workers
        still send full packages (the fast path is untouched); dedup is
        writer-side against the previous generation's manifest.
        """
        from .incremental import Manifest, shift_fresh, stats, write_manifest

        eng = ctx.engine
        group = self.group_of(ctx.rank)
        parents = cache.get("delta_parent")  # (step, {member: section})
        parent_step = parents[0] if parents else None
        parent_secs = parents[1] if parents else {}
        group_bytes = sum(sum(s) for s in member_sizes)
        sections, fresh_parts, fresh_total, hits, misses = \
            self._plan_group_delta(member_sizes, member_payloads, step,
                                   parent_secs, range(len(member_sizes)))
        # Chunking + hashing: one more pass over the aggregation buffer.
        t_c0 = eng.now
        yield eng.timeout(group_bytes / ctx.config.memory_bandwidth)
        self._span(ctx, "chunk", t_c0, eng.now, group_bytes, cat="phase",
                   step=step, hits=hits, misses=misses)
        sections = [shift_fresh(s, step, header_bytes) for s in sections]
        manifest = Manifest(
            strategy=self.name, step=step, parent=parent_step,
            header_bytes=header_bytes, chunking=self.chunking,
            sections=tuple(sections))
        parts = [zeros(header_bytes)] if header_bytes else []
        image = ByteRope.concat(parts + fresh_parts)
        total = header_bytes + fresh_total
        path = self.file_path(basedir, step, group)
        f = yield from MPIFile.open_independent(ctx, path, hints=self.hints)
        pos = 0
        while pos < total:
            burst = min(self.writer_buffer, total - pos)
            yield from f.write_at(pos, burst, payload=image[pos : pos + burst])
            pos += burst
        yield from f.close()
        manifest_bytes = yield from write_manifest(ctx, manifest, path)
        cache["delta_parent"] = (step, {s.member: s for s in sections})
        stats.record_commit(group_bytes, total + manifest_bytes, hits, misses)

    def _commit_shared_delta(self, ctx: RankContext, cache: dict,
                             member_sizes, member_payloads,
                             header_bytes: int, step: int, basedir: str):
        """nf=1 delta: writers collectively append their fresh regions.

        The writers allgather ``(sections, fresh_bytes)`` and one shared
        merge places each writer's fresh region by prefix sum, producing a
        single manifest (members keyed by world rank) written by writer 0.
        """
        from .incremental import Manifest, shift_fresh, stats, write_manifest

        eng = ctx.engine
        wcomm = cache["wcomm"]
        base_rank = self.group_of(ctx.rank) * self.workers_per_writer
        parents = cache.get("delta_parent")
        parent_step = parents[0] if parents else None
        parent_secs = parents[1] if parents else {}
        group_bytes = sum(sum(s) for s in member_sizes)
        member_ids = [base_rank + m for m in range(len(member_sizes))]
        sections, fresh_parts, fresh_total, hits, misses = \
            self._plan_group_delta(member_sizes, member_payloads, step,
                                   parent_secs, member_ids)
        t_c0 = eng.now
        yield eng.timeout(group_bytes / ctx.config.memory_bandwidth)
        self._span(ctx, "chunk", t_c0, eng.now, group_bytes, cat="phase",
                   step=step, hits=hits, misses=misses)
        chunking = self.chunking
        strategy_name = self.name

        def merge(entries):
            bases = []
            all_sections = []
            pos = header_bytes
            for secs, fresh_bytes in entries:
                bases.append(pos)
                all_sections.extend(shift_fresh(s, step, pos) for s in secs)
                pos += fresh_bytes
            manifest = Manifest(
                strategy=strategy_name, step=step, parent=parent_step,
                header_bytes=header_bytes, chunking=chunking,
                sections=tuple(all_sections))
            return manifest, tuple(bases), pos

        manifest, bases, _total = yield from wcomm.allgather(
            (tuple(sections), fresh_total),
            nbytes=16 + 48 * sum(len(s.chunks) for s in sections),
            map_fn=merge)
        path = self.shared_path(basedir, step)
        f = yield from MPIFile.open(ctx, wcomm, path, hints=self.hints)
        if header_bytes:
            if wcomm.rank == 0:
                yield from f.write_at_all(0, header_bytes,
                                          payload=zeros(header_bytes))
            else:
                yield from f.write_at_all(0, 0)
        yield from f.write_at_all(bases[wcomm.rank], fresh_total,
                                  payload=ByteRope.concat(fresh_parts))
        yield from f.close()
        to_pfs = fresh_total
        if wcomm.rank == 0:
            manifest_bytes = yield from write_manifest(ctx, manifest, path)
            to_pfs += header_bytes + manifest_bytes
        mine = set(member_ids)
        cache["delta_parent"] = (step, {
            s.member: s for s in manifest.sections if s.member in mine})
        stats.record_commit(group_bytes, to_pfs, hits, misses)

    def _commit_shared(self, ctx: RankContext, wcomm, layout: FileLayout,
                       member_sizes: list[tuple[int, ...]],
                       member_payloads: list[Optional[bytes]],
                       header_bytes: int, step: int, basedir: str):
        """nf=1: writers collectively share one file; per-field commits."""
        path = self.shared_path(basedir, step)
        f = yield from MPIFile.open(ctx, wcomm, path, hints=self.hints)
        # Global layout over every member of every group (groups are
        # contiguous world-rank blocks, in writers'-communicator order).
        global_layout: FileLayout = yield from wcomm.allgather(
            [list(s) for s in member_sizes],
            nbytes=8 * len(member_sizes[0]) * len(member_sizes),
            map_fn=lambda lists: FileLayout(
                header_bytes, [s for group in lists for s in group]
            ),
        )
        first_member = wcomm.rank * len(member_sizes)
        if header_bytes:
            hdr = (zeros(header_bytes)
                   if all(p is not None for p in member_payloads) else None)
            if wcomm.rank == 0:
                yield from f.write_at_all(0, header_bytes, payload=hdr)
            else:
                yield from f.write_at_all(0, 0)
        n_fields = len(member_sizes[0])
        have_payload = all(p is not None for p in member_payloads)
        member_ropes = ([ByteRope.wrap(p) for p in member_payloads]
                        if have_payload else None)
        # Per-field prefix offsets into each member's package.
        prefixes = [[0] * len(member_sizes) for _ in range(n_fields + 1)]
        for m, sizes in enumerate(member_sizes):
            run = 0
            for fidx, sz in enumerate(sizes):
                prefixes[fidx][m] = run
                run += sz
        for fidx in range(n_fields):
            # My group's blocks are contiguous within the field section.
            offset = global_layout.block_offset(fidx, first_member)
            nbytes = sum(s[fidx] for s in member_sizes)
            chunk = None
            if member_ropes is not None:
                # Gather the members' field blocks as segment references.
                parts = []
                for m, rope in enumerate(member_ropes):
                    lo = prefixes[fidx][m]
                    parts.append(rope.slice(lo, lo + member_sizes[m][fidx]))
                chunk = ByteRope.concat(parts)
            yield from f.write_at_all(offset, nbytes, payload=chunk)
        yield from f.close()

    # -- restore ---------------------------------------------------------------
    def restore(self, ctx: RankContext, template: CheckpointData, step: int,
                basedir: str = "/ckpt"):
        """Generator: read this rank's blocks back from its group's file."""
        t_r0 = ctx.engine.now
        if self.delta != "off":
            from .incremental import manifest_exists
            if self.single_file:
                member = ctx.rank
                path_of = lambda s: self.shared_path(basedir, s)  # noqa: E731
            else:
                group = self.group_of(ctx.rank)
                member = ctx.rank % self.workers_per_writer
                path_of = (  # noqa: E731
                    lambda s: self.file_path(basedir, s, group))
            if manifest_exists(ctx, path_of(step)):
                fields = yield from self._delta_restore(
                    ctx, template, step, member=member, path_of=path_of)
                self._span(ctx, "restore", t_r0, ctx.engine.now,
                           template.total_bytes, step=step, delta=True)
                return fields
        cache = yield from self._setup(ctx)
        gcomm = cache["gcomm"]
        member = gcomm.rank
        # Layout within the group (or globally for nf=1).
        group_layout: FileLayout = yield from gcomm.allgather(
            list(template.field_sizes), nbytes=8 * template.n_fields,
            map_fn=lambda sizes: FileLayout(template.header_bytes, sizes),
        )
        if self.single_file:
            layout: FileLayout = yield from ctx.comm.allgather(
                list(template.field_sizes), nbytes=8 * template.n_fields,
                map_fn=lambda sizes: FileLayout(template.header_bytes, sizes),
            )
            member = ctx.rank
            path = self.shared_path(basedir, step)
        else:
            layout = group_layout
            path = self.file_path(basedir, step, self.group_of(ctx.rank))
        handle = yield from ctx.fs.open(path)
        if handle.file.size != layout.total_size:
            # Partial generation (aborted commit, failover file holding
            # survivors only): reject it so the fallback engages.
            yield from ctx.fs.close(handle)
            raise UnrecoverableCheckpointError(
                f"{path!r} has {handle.file.size} B, expected "
                f"{layout.total_size} B", step=step, path=path, rank=ctx.rank)
        fields = []
        for i, fld in enumerate(template.fields):
            offset = layout.block_offset(i, member)
            chunk = yield from ctx.fs.read(handle, offset, fld.nbytes)
            fields.append(chunk)
        yield from ctx.fs.close(handle)
        self._span(ctx, "restore", t_r0, ctx.engine.now,
                   template.total_bytes, step=step)
        return fields
