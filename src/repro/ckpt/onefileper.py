"""1 POSIX File Per Processor (1PFPP) — the traditional baseline.

Every rank creates its own output file (``nf = np``) in the step's shared
directory and streams its header plus fields into it.  The approach is
portable and simple but collapses at scale: tens of thousands of
simultaneous creates in one directory serialize through the directory
metanode, producing the 0-300+ s per-rank spread of Fig. 9 and the ~0.1 GB/s
effective bandwidth of Fig. 5.

A small random arrival jitter models the skew with which ranks actually hit
the metadata service (cache state, interrupt timing); it randomizes queue
order so the per-rank time distribution forms the paper's scatter cloud
rather than an artificial rank-ordered ramp.
"""

from __future__ import annotations

from ..buffers import ByteRope, zeros
from ..faults import UnrecoverableCheckpointError
from ..faults.retry import retry_fs
from ..mpi import RankContext
from .base import CheckpointStrategy
from .data import CheckpointData

__all__ = ["OneFilePerProcess"]


class OneFilePerProcess(CheckpointStrategy):
    """The 1PFPP strategy (``nf = np``).

    Parameters
    ----------
    arrival_jitter:
        Upper bound (seconds) of the uniform per-rank delay before hitting
        the metadata service.
    """

    name = "1pfpp"

    def __init__(self, arrival_jitter: float = 0.2) -> None:
        if arrival_jitter < 0:
            raise ValueError("negative jitter")
        self.arrival_jitter = arrival_jitter

    def describe(self) -> dict:
        return {"name": self.name, "nf": "np", "arrival_jitter": self.arrival_jitter}

    def rank_path(self, basedir: str, step: int, rank: int) -> str:
        """This rank's private output file (all in one directory)."""
        return f"{self.step_dir(basedir, step)}/p{rank:06d}.vtk"

    def checkpoint(self, ctx: RankContext, data: CheckpointData, step: int,
                   basedir: str = "/ckpt"):
        """Generator: create own file, stream header + fields, close."""
        eng = ctx.engine
        t0 = eng.now
        if self.arrival_jitter > 0:
            rng = ctx.job.streams.stream("ckpt.jitter")
            yield eng.timeout(float(rng.random()) * self.arrival_jitter)
        path = self.rank_path(basedir, step, ctx.rank)
        if self._delta_active(data):
            return (yield from self._checkpoint_delta(ctx, data, step, path,
                                                      t0))
        handle = yield from retry_fs(eng, lambda: ctx.fs.create(path))
        # POSIX stream write: header and fields leave the node as one
        # buffered sequential burst.
        total = data.header_bytes + data.total_bytes
        payload = None
        if data.has_payload:
            payload = ByteRope.concat(
                [zeros(data.header_bytes), data.concatenated_payload()])
        yield from retry_fs(
            eng, lambda: ctx.fs.write(handle, 0, total, payload=payload))
        yield from ctx.fs.close(handle)
        t_end = eng.now
        return self._report(ctx, "independent", t0, t_end, t_end, data.total_bytes)

    def _checkpoint_delta(self, ctx: RankContext, data: CheckpointData,
                          step: int, path: str, t0: float):
        """Generator: write only chunks absent from the parent generation.

        The file holds ``[header][fresh chunks, packed]``; the manifest
        written alongside maps every logical chunk to the generation and
        offset that holds its bytes.
        """
        from .incremental import (Manifest, plan_section, shift_fresh, stats,
                                  write_manifest)

        eng = ctx.engine
        cache = self._cache(ctx)
        parent = cache.get("delta_parent")  # (step, shifted section) | None
        plan = plan_section(
            data.concatenated_payload(), data.field_sizes, member=0,
            step=step, params=self.chunking,
            parent_section=parent[1] if parent else None)
        # Chunking + hashing is one pass over the image.
        t_c0 = eng.now
        yield eng.timeout(data.total_bytes / ctx.config.memory_bandwidth)
        self._span(ctx, "chunk", t_c0, eng.now, data.total_bytes,
                   cat="phase", step=step)
        section = shift_fresh(plan.section, step, data.header_bytes)
        manifest = Manifest(
            strategy=self.name, step=step,
            parent=parent[0] if parent else None,
            header_bytes=data.header_bytes, chunking=self.chunking,
            sections=(section,))
        handle = yield from retry_fs(eng, lambda: ctx.fs.create(path))
        total = data.header_bytes + plan.fresh_bytes
        payload = ByteRope.concat([zeros(data.header_bytes), plan.fresh])
        yield from retry_fs(
            eng, lambda: ctx.fs.write(handle, 0, total, payload=payload))
        yield from ctx.fs.close(handle)
        manifest_bytes = yield from write_manifest(ctx, manifest, path)
        cache["delta_parent"] = (step, section)
        stats.record_commit(data.total_bytes, total + manifest_bytes,
                            plan.hits, plan.misses)
        t_end = eng.now
        return self._report(ctx, "independent", t0, t_end, t_end,
                            data.total_bytes)

    def restore(self, ctx: RankContext, template: CheckpointData, step: int,
                basedir: str = "/ckpt"):
        """Generator: read this rank's fields back from its private file."""
        path = self.rank_path(basedir, step, ctx.rank)
        t_r0 = ctx.engine.now
        if self.delta != "off":
            from .incremental import manifest_exists
            if manifest_exists(ctx, path):
                fields = yield from self._delta_restore(
                    ctx, template, step, member=0,
                    path_of=lambda s: self.rank_path(basedir, s, ctx.rank))
                self._span(ctx, "restore", t_r0, ctx.engine.now,
                           template.total_bytes, step=step, delta=True)
                return fields
        handle = yield from ctx.fs.open(path)
        expected = template.header_bytes + template.total_bytes
        if handle.file.size != expected:
            # Truncated/partial file (e.g. an aborted write): refuse it so
            # the resilient restore falls back to an older generation.
            yield from ctx.fs.close(handle)
            raise UnrecoverableCheckpointError(
                f"{path!r} has {handle.file.size} B, expected {expected} B",
                step=step, path=path, rank=ctx.rank)
        fields = []
        offset = template.header_bytes
        for f in template.fields:
            chunk = yield from ctx.fs.read(handle, offset, f.nbytes)
            fields.append(chunk)
            offset += f.nbytes
        yield from ctx.fs.close(handle)
        self._span(ctx, "restore", t_r0, ctx.engine.now,
                   template.total_bytes, step=step)
        return fields
