"""Application-level checkpointing strategies — the paper's contribution.

Three approaches from Fu et al. (CLUSTER 2011):

- :class:`OneFilePerProcess` — 1PFPP baseline (one POSIX file per rank);
- :class:`CollectiveIO` — coIO, tuned MPI-IO collectives with tunable nf;
- :class:`ReducedBlockingIO` — rbIO, application-level two-phase I/O with
  dedicated writers (the reduced-blocking contribution).

Plus one extension beyond the paper:

- :class:`BurstBufferIO` — bbIO, rbIO aggregation with an asynchronous
  staged commit through :mod:`repro.staging` (burst buffer + background
  drain + optional partner replication).

Plus the shared data/layout/result types and the production-time model.
"""

from ..faults import UnrecoverableCheckpointError
from .base import CheckpointStrategy
from .bbio import BurstBufferIO
from .coio import CollectiveIO
from .data import CheckpointData, Field
from .layout import FileLayout
from .onefileper import OneFilePerProcess
from .rbio import ReducedBlockingIO
from .result import CheckpointResult, RankReport
from .schedule import (
    CheckpointRule,
    CheckpointSchedule,
    checkpoint_instants,
    checkpoint_ratio,
    production_improvement,
)

__all__ = [
    "BurstBufferIO",
    "CheckpointStrategy",
    "CollectiveIO",
    "CheckpointData",
    "Field",
    "FileLayout",
    "OneFilePerProcess",
    "ReducedBlockingIO",
    "CheckpointResult",
    "RankReport",
    "CheckpointRule",
    "CheckpointSchedule",
    "UnrecoverableCheckpointError",
    "checkpoint_instants",
    "checkpoint_ratio",
    "production_improvement",
]
