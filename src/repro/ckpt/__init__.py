"""Application-level checkpointing strategies — the paper's contribution.

Three approaches from Fu et al. (CLUSTER 2011):

- :class:`OneFilePerProcess` — 1PFPP baseline (one POSIX file per rank);
- :class:`CollectiveIO` — coIO, tuned MPI-IO collectives with tunable nf;
- :class:`ReducedBlockingIO` — rbIO, application-level two-phase I/O with
  dedicated writers (the reduced-blocking contribution).

Plus one extension beyond the paper:

- :class:`BurstBufferIO` — bbIO, rbIO aggregation with an asynchronous
  staged commit through :mod:`repro.staging` (burst buffer + background
  drain + optional partner replication).

Plus the shared data/layout/result types and the production-time model.
"""

from ..faults import UnrecoverableCheckpointError
from .base import CheckpointStrategy
from .bbio import BurstBufferIO
from .coio import CollectiveIO
from .data import BoundEvolvingData, CheckpointData, EvolvingData, Field
from .incremental import (
    ChunkingParams,
    ChunkRef,
    Manifest,
    ManifestError,
    ManifestSection,
    chunk_boundaries,
    chunk_spans,
    manifest_path,
)
from .incremental import stats as delta_stats
from .layout import FileLayout
from .onefileper import OneFilePerProcess
from .rbio import ReducedBlockingIO
from .result import CheckpointResult, RankReport
from .schedule import (
    CheckpointRule,
    CheckpointSchedule,
    checkpoint_instants,
    checkpoint_ratio,
    production_improvement,
)

__all__ = [
    "BurstBufferIO",
    "CheckpointStrategy",
    "CollectiveIO",
    "CheckpointData",
    "EvolvingData",
    "BoundEvolvingData",
    "Field",
    "FileLayout",
    "OneFilePerProcess",
    "ReducedBlockingIO",
    "CheckpointResult",
    "RankReport",
    "CheckpointRule",
    "CheckpointSchedule",
    "ChunkingParams",
    "ChunkRef",
    "Manifest",
    "ManifestError",
    "ManifestSection",
    "UnrecoverableCheckpointError",
    "chunk_boundaries",
    "chunk_spans",
    "checkpoint_instants",
    "checkpoint_ratio",
    "delta_stats",
    "manifest_path",
    "production_improvement",
]
