"""Checkpoint strategy interface.

A strategy implements one coordinated application-level checkpoint step: all
ranks enter :meth:`CheckpointStrategy.checkpoint` together (the experiment
runner barriers first), each rank contributes its
:class:`~repro.ckpt.data.CheckpointData`, and each rank returns a
:class:`~repro.ckpt.result.RankReport` describing when it was blocked and
when its I/O duty completed.

Strategies are shared, immutable configuration objects; per-rank state that
must persist across steps (split communicators, cached layouts) lives in
``ctx.user`` under the strategy's cache key.
"""

from __future__ import annotations

from typing import Any

from .. import trace as _trace
from ..mpi import RankContext
from .data import CheckpointData
from .result import RankReport

__all__ = ["CheckpointStrategy"]


class CheckpointStrategy:
    """Base class for the three checkpointing I/O approaches."""

    #: Short identifier used in result tables ("1pfpp", "coio", "rbio").
    name: str = "abstract"

    #: Incremental-checkpointing mode: "off" (full write, the paper-fidelity
    #: default), "auto" (delta when payloads are present and the group is
    #: intact), or "require" (raise if delta writes are impossible).
    delta: str = "off"

    #: Content-defined chunking bounds used by delta commits (set by
    #: :meth:`configure_delta`; ``None`` while ``delta == "off"``).
    chunking = None

    #: Two-level intra-node aggregation mode: "off" (flat exchange, the
    #: paper-fidelity default), "auto" (coalesce through node leaders when
    #: nodes host multiple ranks), or "require" (raise if TAM cannot
    #: engage).  Set via :meth:`configure_tam`.
    tam: str = "off"

    def checkpoint(self, ctx: RankContext, data: CheckpointData, step: int,
                   basedir: str = "/ckpt"):
        """Generator: perform one coordinated checkpoint step on this rank.

        Returns a :class:`~repro.ckpt.result.RankReport`.
        """
        raise NotImplementedError

    def restore(self, ctx: RankContext, template: CheckpointData, step: int,
                basedir: str = "/ckpt"):
        """Generator: read this rank's contribution back (restart path).

        ``template`` describes the expected field names/sizes.  Returns the
        list of per-field payload byte strings.
        """
        raise NotImplementedError

    def ghost(self, ctx: RankContext, data: CheckpointData, step: int,
              basedir: str = "/ckpt"):
        """Generator: a crashed rank's step-boundary participation.

        The runner calls this instead of :meth:`checkpoint` for ranks the
        fault schedule has killed.  The default contributes nothing;
        strategies with collective setup (communicator splits) override it
        so survivors' collectives still complete deterministically.
        """
        return
        yield  # pragma: no cover - makes this a generator

    def restore_resilient(self, ctx: RankContext, template: CheckpointData,
                          steps, basedir: str = "/ckpt"):
        """Generator: restore the newest step all ranks agree is intact.

        Tries each step of ``steps`` (newest first) with :meth:`restore`;
        a rank whose restore fails validation (missing/truncated file,
        corrupt package, checksum mismatch) votes it down, and the vote is
        agreed by a min-allreduce so every rank falls back to the same
        generation together.  Returns ``(step, fields)`` on success and
        raises :class:`~repro.faults.UnrecoverableCheckpointError` once no
        generation survives — never a silently wrong restore.
        """
        from ..faults import UnrecoverableCheckpointError
        from ..staging import StagingError
        from ..storage import FSError

        last_exc: Any = None
        for step in steps:
            ok = 1
            fields = None
            try:
                fields = yield from self.restore(ctx, template, step,
                                                 basedir=basedir)
            except (FSError, StagingError, UnrecoverableCheckpointError) as exc:
                ok = 0
                last_exc = exc
            agreed = yield from ctx.comm.allreduce(ok, op=min)
            if agreed:
                return step, fields
        raise UnrecoverableCheckpointError(
            f"no restorable checkpoint generation among steps {list(steps)!r}"
            + (f" (last failure: {last_exc})" if last_exc is not None else ""),
            rank=ctx.rank,
        )

    def describe(self) -> dict[str, Any]:
        """Strategy parameters for result records / EXPERIMENTS.md rows."""
        d: dict[str, Any] = {"name": self.name}
        if self.delta != "off":
            d["delta"] = self.delta
        if self.tam != "off":
            d["tam"] = self.tam
        return d

    def coalesce_plan(self, n_ranks: int):
        """Offer a :class:`~repro.sim.CoalescePlan`, or ``None``.

        A strategy whose ranks are symmetric within groups (identical data,
        identical schedules) may return a plan so the runner replays each
        group once.  The default is ``None``: strategies with per-rank
        divergence (1PFPP's arrival jitter, coIO's per-member file offsets
        and aggregator roles) must run every rank.
        """
        return None

    # -- incremental checkpointing --------------------------------------------
    def configure_delta(self, delta: str = "auto", chunking=None):
        """Enable incremental (content-addressed delta) checkpointing.

        ``delta="auto"`` writes deltas whenever the data carries payload and
        the writing group is fully intact, silently falling back to full
        writes otherwise; ``"require"`` raises instead of falling back when
        the data is size-only (fault degradation still falls back — a full
        write is always a correct superset of a delta).  Returns ``self``
        for chaining.
        """
        from .incremental import ChunkingParams

        if delta not in ("off", "auto", "require"):
            raise ValueError(f"delta must be 'off'|'auto'|'require', "
                             f"got {delta!r}")
        self.delta = delta
        if delta == "off":
            self.chunking = None
        else:
            self.chunking = chunking or ChunkingParams()
        return self

    # -- two-level intra-node aggregation -------------------------------------
    def configure_tam(self, tam: str = "auto"):
        """Enable two-level (intra-node) request aggregation.

        With ``tam="auto"`` ranks sharing a compute node coalesce their
        requests through the node's leader before any inter-node exchange,
        cutting inter-node message counts from O(np x aggregators) to
        O(nodes x aggregators) (Kang et al., arXiv:1907.12656); the path
        silently stays flat when nothing is co-resident or when rank-crash
        fault schedules demand the flat failover protocol.  ``"require"``
        raises instead of degrading.  File images are bit-identical to the
        flat exchange either way.  Returns ``self`` for chaining.
        """
        from ..mpiio.hints import TAM_MODES

        if tam not in TAM_MODES:
            raise ValueError(
                f"tam must be one of {TAM_MODES}, got {tam!r}")
        self.tam = tam
        return self

    def _delta_active(self, data: CheckpointData) -> bool:
        """Whether this commit should attempt a delta write."""
        if self.delta == "off":
            return False
        if data.has_payload:
            return True
        if self.delta == "require":
            raise ValueError(
                f"{self.name}: delta='require' needs payload-carrying "
                f"CheckpointData, got size-only fields")
        return False

    def _delta_restore(self, ctx: RankContext, template: CheckpointData,
                       step: int, member: int, path_of):
        """Generator: restore one member by walking its delta chain.

        ``path_of(step)`` maps a generation to the data-file path holding
        this member's chunks.  Reads the target generation's manifest,
        merges its chunk list into contiguous runs per source generation,
        reads each run, verifies every chunk's CRC32, and returns the
        per-field payload ropes.  Any damage (missing/short source file,
        bit-flip, malformed manifest) raises an
        :class:`~repro.faults.UnrecoverableCheckpointError` subclass so
        resilient restores vote the generation down.
        """
        from ..buffers import ByteRope
        from ..faults import UnrecoverableCheckpointError
        from .incremental import (ManifestError, assemble_section,
                                  read_manifest, read_plan)

        path = path_of(step)
        manifest = yield from read_manifest(ctx, path, step)
        section = manifest.section_for(member)
        if section.field_sizes != template.field_sizes:
            raise ManifestError(
                f"{path!r}: manifest member {member} has field sizes "
                f"{list(section.field_sizes)}, template expects "
                f"{list(template.field_sizes)}",
                step=step, path=path, rank=ctx.rank)
        runs = read_plan(section)
        run_data = []
        i = 0
        while i < len(runs):
            src = runs[i].src_step
            src_path = path_of(src)
            handle = yield from ctx.fs.open(src_path)
            while i < len(runs) and runs[i].src_step == src:
                run = runs[i]
                if handle.file.size < run.offset + run.length:
                    yield from ctx.fs.close(handle)
                    raise UnrecoverableCheckpointError(
                        f"{src_path!r} has {handle.file.size} B, a chunk "
                        f"run of generation {step} needs "
                        f"{run.offset + run.length} B",
                        step=step, path=src_path, rank=ctx.rank)
                piece = yield from ctx.fs.read(handle, run.offset, run.length)
                run_data.append((run, ByteRope.wrap(piece)))
                i += 1
            yield from ctx.fs.close(handle)
        payload = assemble_section(section, run_data, step, path,
                                   rank=ctx.rank)
        fields = []
        pos = 0
        for nbytes in template.field_sizes:
            fields.append(payload.slice(pos, pos + nbytes))
            pos += nbytes
        return fields

    # -- shared helpers -------------------------------------------------------
    def step_dir(self, basedir: str, step: int) -> str:
        """Directory holding one checkpoint step's files."""
        return f"{basedir}/step{step:06d}"

    def _cache(self, ctx: RankContext) -> dict:
        """Per-rank persistent state for this strategy instance."""
        key = f"ckpt:{id(self)}"
        cache = ctx.user.get(key)
        if cache is None:
            cache = {}
            ctx.user[key] = cache
        return cache

    @staticmethod
    def _span(ctx: RankContext, name: str, t_start: float, t_end: float,
              nbytes: int = 0, cat: str = "ckpt", members=None,
              **args: Any) -> None:
        """Record one sim-time span if tracing is on (else free).

        Spans never schedule engine events or touch simulation state, so
        trace ``off``/``summary``/``full`` runs stay bit-identical.
        """
        tr = _trace.tracer
        if tr is not None:
            tr.span(ctx.rank, name, cat, t_start, t_end, nbytes,
                    members=members, args=args or None)

    @staticmethod
    def _report(ctx: RankContext, role: str, t_start: float,
                t_blocked_end: float, t_complete: float, nbytes: int,
                isend_seconds: float = 0.0) -> RankReport:
        tr = _trace.tracer
        if tr is not None:
            tr.span(ctx.rank, "checkpoint", "ckpt", t_start, t_complete,
                    nbytes, args={"role": role,
                                  "blocked_until": t_blocked_end})
        return RankReport(
            rank=ctx.rank,
            role=role,
            t_start=t_start,
            t_blocked_end=t_blocked_end,
            t_complete=t_complete,
            bytes_local=nbytes,
            isend_seconds=isend_seconds,
        )
