"""Per-rank reports and aggregate results of one checkpoint step.

The measurement semantics follow DESIGN.md section 5:

- *raw write bandwidth* (Figs. 5 and 8): total bytes over the wall-clock
  window from the coordinated start to the slowest participating rank's
  completion (open + write + close), writers included;
- *overall time* (Fig. 6): that same window;
- *blocking time* (Fig. 7 numerator): the longest any **compute** rank was
  prevented from resuming computation.  For 1PFPP/coIO every rank blocks
  until its (collective) write finishes; for rbIO workers block only for
  the MPI_Isend window while dedicated writers drain in the background;
- *perceived bandwidth* (Table I): total worker bytes over the maximum
  Isend completion window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = ["RankReport", "CheckpointResult"]


@dataclass
class RankReport:
    """What one rank experienced during a checkpoint step."""

    rank: int
    role: str                 # "writer" | "worker" | "independent"
    t_start: float            # coordinated checkpoint start (after barrier)
    t_blocked_end: float      # when this rank could resume computation
    t_complete: float         # when this rank's I/O duty was fully done
    bytes_local: int          # checkpoint bytes this rank contributed
    isend_seconds: float = 0.0  # rbIO workers: Isend completion window

    @property
    def io_time(self) -> float:
        """The per-rank 'I/O time' plotted in Figs. 9-11."""
        return self.t_complete - self.t_start

    @property
    def blocked_seconds(self) -> float:
        """How long computation was blocked on this rank."""
        return self.t_blocked_end - self.t_start


class CheckpointResult:
    """Aggregate outcome of one coordinated checkpoint step."""

    def __init__(self, approach: str, reports: dict[int, RankReport],
                 params: Optional[dict[str, Any]] = None,
                 fs_stats: Optional[dict] = None) -> None:
        if not reports:
            raise ValueError("no rank reports")
        self.approach = approach
        self.params = dict(params or {})
        self.fs_stats = dict(fs_stats or {})
        self.n_ranks = len(reports)
        ranks = sorted(reports)
        self.ranks = np.array(ranks, dtype=np.int64)
        self.roles = [reports[r].role for r in ranks]
        self.t_start = np.array([reports[r].t_start for r in ranks])
        self.t_blocked_end = np.array([reports[r].t_blocked_end for r in ranks])
        self.t_complete = np.array([reports[r].t_complete for r in ranks])
        self.bytes_local = np.array([reports[r].bytes_local for r in ranks], dtype=np.int64)
        self.isend_seconds = np.array([reports[r].isend_seconds for r in ranks])

    # -- core metrics ----------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Checkpoint bytes across all ranks."""
        return int(self.bytes_local.sum())

    @property
    def start_time(self) -> float:
        """Coordinated start instant."""
        return float(self.t_start.min())

    @property
    def overall_time(self) -> float:
        """Fig. 6 metric: window to the slowest rank's completion."""
        return float(self.t_complete.max() - self.start_time)

    @property
    def write_bandwidth(self) -> float:
        """Fig. 5 metric: total bytes / overall time (B/s)."""
        t = self.overall_time
        return self.total_bytes / t if t > 0 else float("inf")

    @property
    def blocking_time(self) -> float:
        """Fig. 7 numerator: longest *compute*-rank blockage (seconds).

        Dedicated rbIO writers are I/O ranks — the solver's time-stepping
        loop runs on the workers, so writers are excluded (they drain in
        the background).  For 1PFPP/coIO every rank computes and blocks.
        """
        blocked = self.t_blocked_end - self.t_start
        mask = np.array([role != "writer" for role in self.roles])
        if not mask.any():
            return float(blocked.max())
        return float(blocked[mask].max())

    @property
    def per_rank_io_time(self) -> dict[int, float]:
        """Per-rank I/O time (Figs. 9-11 scatter)."""
        io = self.t_complete - self.t_start
        return {int(r): float(t) for r, t in zip(self.ranks, io)}

    # -- role views -------------------------------------------------------------
    @property
    def writer_ranks(self) -> list[int]:
        """Ranks that committed data to the file system."""
        return [int(r) for r, role in zip(self.ranks, self.roles)
                if role in ("writer", "independent")]

    @property
    def worker_ranks(self) -> list[int]:
        """Ranks that only shipped data to a writer (rbIO workers)."""
        return [int(r) for r, role in zip(self.ranks, self.roles) if role == "worker"]

    # -- rbIO perceived metrics ----------------------------------------------
    @property
    def perceived_time(self) -> float:
        """Table I: max worker Isend completion window (seconds)."""
        mask = np.array([role == "worker" for role in self.roles])
        if not mask.any():
            return 0.0
        return float(self.isend_seconds[mask].max())

    @property
    def perceived_bandwidth(self) -> float:
        """Table I: total worker bytes / perceived time (B/s)."""
        mask = np.array([role == "worker" for role in self.roles])
        t = self.perceived_time
        if t <= 0:
            return 0.0
        return float(self.bytes_local[mask].sum()) / t

    def summary(self) -> dict[str, float]:
        """Headline numbers for printing in benches/EXPERIMENTS.md."""
        return {
            "approach": self.approach,
            "n_ranks": self.n_ranks,
            "total_gb": self.total_bytes / 1e9,
            "overall_time_s": self.overall_time,
            "bandwidth_gbps": self.write_bandwidth / 1e9,
            "blocking_time_s": self.blocking_time,
            "n_writers": len(self.writer_ranks),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CheckpointResult {self.approach} np={self.n_ranks} "
            f"{self.total_bytes/1e9:.2f}GB in {self.overall_time:.2f}s "
            f"({self.write_bandwidth/1e9:.2f} GB/s)>"
        )
