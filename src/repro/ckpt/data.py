"""Checkpoint data descriptors.

A rank's checkpoint contribution is an ordered list of named *fields*
(NekCEM writes geometry plus the six electromagnetic components
Ex, Ey, Ez, Hx, Hy, Hz).  Payload bytes are optional: small-scale runs carry
real field data end-to-end (restart round-trips are bit-exact), figure-scale
runs carry sizes only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..buffers import ByteRope, BytesLike

__all__ = ["Field", "CheckpointData", "EvolvingData", "BoundEvolvingData"]


@dataclass(frozen=True)
class Field:
    """One named data block in a rank's checkpoint contribution.

    ``payload`` accepts any bytes-like (including a :class:`ByteRope`);
    the data plane moves it as segment references, never copying until the
    file-system commit boundary.
    """

    name: str
    nbytes: int
    payload: Optional[BytesLike] = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative field size: {self.nbytes}")
        if self.payload is not None and len(self.payload) != self.nbytes:
            raise ValueError(
                f"field {self.name!r}: payload length {len(self.payload)} "
                f"!= nbytes {self.nbytes}"
            )

    @property
    def view(self) -> Optional[ByteRope]:
        """The payload as a zero-copy rope (``None`` when size-only)."""
        if self.payload is None:
            return None
        return ByteRope.wrap(self.payload)


class CheckpointData:
    """One rank's ordered checkpoint contribution.

    Parameters
    ----------
    fields:
        The data blocks, in file order.  All participating ranks must use
        the same field names in the same order (the SPMD contract).
    header_bytes:
        Size of the per-file master header (application name, version,
        offset table...).  Written once per output file by that file's
        first writer.
    """

    def __init__(self, fields: Sequence[Field], header_bytes: int = 4096) -> None:
        if header_bytes < 0:
            raise ValueError(f"negative header size: {header_bytes}")
        self.fields = list(fields)
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names: {names}")
        self.header_bytes = header_bytes
        # Memoized concatenation, keyed by the copy mode active when built
        # (eager/zerocopy runs of the same data must not share a cache).
        self._payload_rope: Optional[tuple[str, ByteRope]] = None

    @property
    def n_fields(self) -> int:
        """Number of fields."""
        return len(self.fields)

    @property
    def total_bytes(self) -> int:
        """Sum of field sizes (excluding any header)."""
        return sum(f.nbytes for f in self.fields)

    @property
    def field_sizes(self) -> tuple[int, ...]:
        """Per-field sizes, in order."""
        return tuple(f.nbytes for f in self.fields)

    @property
    def has_payload(self) -> bool:
        """Whether every field carries real bytes."""
        return all(f.payload is not None for f in self.fields)

    def concatenated_payload(self) -> Optional[ByteRope]:
        """All field payloads joined in order (None if any is missing).

        Returns a zero-copy :class:`~repro.buffers.ByteRope` referencing
        the fields' own buffers, memoized per instance — rbIO's buffered
        nf=ng writer path calls this once per flush, and workers package it
        every checkpoint step.
        """
        if not self.has_payload:
            return None
        from ..buffers import copy_mode
        cached = self._payload_rope
        mode = copy_mode()
        if cached is not None and cached[0] == mode:
            return cached[1]
        rope = ByteRope.concat([f.payload for f in self.fields])
        self._payload_rope = (mode, rope)
        return rope

    @classmethod
    def synthetic(cls, bytes_per_field: Sequence[int],
                  names: Optional[Sequence[str]] = None,
                  header_bytes: int = 4096) -> "CheckpointData":
        """Size-only checkpoint data (figure-scale workloads)."""
        if names is None:
            names = [f"field{i}" for i in range(len(bytes_per_field))]
        return cls(
            [Field(n, b) for n, b in zip(names, bytes_per_field)],
            header_bytes=header_bytes,
        )

    @classmethod
    def nekcem_like(cls, points_per_rank: int, header_bytes: int = 4096
                    ) -> "CheckpointData":
        """A NekCEM-shaped contribution for ``points_per_rank`` grid points.

        Layout follows the paper's vtk output: a geometry block
        (coordinates + cell connectivity, ~10 doubles-equivalent per point)
        followed by the six field components at 8 bytes per point each.
        The byte-per-point total matches the paper's reported file sizes
        (39 GB for 275M points => ~142 B/point).
        """
        geom = 94 * points_per_rank  # coordinates, connectivity, cell types
        comp = 8 * points_per_rank
        names = ["geometry", "Ex", "Ey", "Ez", "Hx", "Hy", "Hz"]
        sizes = [geom] + [comp] * 6
        return cls.synthetic(sizes, names, header_bytes=header_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CheckpointData {self.n_fields} fields, "
            f"{self.total_bytes} B{' +payload' if self.has_payload else ''}>"
        )


class EvolvingData:
    """Per-step-evolving checkpoint data (incremental workloads).

    Wraps ``fn(rank, step) -> CheckpointData``: the runner binds it per
    rank and materializes each step's state just before checkpointing it,
    so successive generations genuinely differ — the workload incremental
    checkpointing exists for.  The field *layout* (names, sizes, header)
    must not change across steps; only payload bytes evolve.

    See :meth:`mutating` for the standard synthetic workload: a seeded
    initial state with one contiguous pseudo-random region overwritten per
    step.
    """

    def __init__(self, fn) -> None:
        self.fn = fn

    def bind(self, rank: int) -> "BoundEvolvingData":
        return BoundEvolvingData(self, rank)

    @classmethod
    def mutating(cls, points_per_rank: int, mutated_fraction: float = 0.25,
                 seed: int = 0, header_bytes: int = 4096) -> "EvolvingData":
        """A NekCEM-shaped payload workload that mutates per step.

        Step 0 is seeded pseudo-random state; each later step overwrites
        one contiguous region covering ``mutated_fraction`` of the
        concatenated payload (start position pseudo-random per
        ``(seed, rank, step)``, wrapping at the end) with fresh random
        bytes.  One region — not one per field — so the change surface
        matches the mutated fraction instead of being multiplied by
        chunk-boundary overhead at every field seam.
        """
        import numpy as np

        if not 0.0 <= mutated_fraction <= 1.0:
            raise ValueError(
                f"mutated_fraction must be in [0, 1], got {mutated_fraction}")
        shape = CheckpointData.nekcem_like(points_per_rank,
                                           header_bytes=header_bytes)
        sizes = shape.field_sizes
        names = [f.name for f in shape.fields]
        total = shape.total_bytes
        mut_len = int(total * mutated_fraction)

        def advance(state: "np.ndarray", rank: int, step: int
                    ) -> "np.ndarray":
            if step == 0:
                rng = np.random.default_rng((seed, rank))
                return rng.integers(0, 256, size=total, dtype=np.uint8)
            if mut_len == 0:
                return state
            rng = np.random.default_rng((seed, rank, step))
            start = int(rng.integers(0, total))
            fresh = rng.integers(0, 256, size=mut_len, dtype=np.uint8)
            out = state.copy()
            end = start + mut_len
            if end <= total:
                out[start:end] = fresh
            else:
                out[start:] = fresh[: total - start]
                out[: end - total] = fresh[total - start :]
            return out

        def fields_of(state: "np.ndarray") -> CheckpointData:
            blob = state.tobytes()
            fields = []
            pos = 0
            for name, nbytes in zip(names, sizes):
                fields.append(Field(name, nbytes, blob[pos : pos + nbytes]))
                pos += nbytes
            return CheckpointData(fields, header_bytes=header_bytes)

        return cls(_MutatingFn(advance, fields_of))


class _MutatingFn:
    """Stateful ``(rank, step) -> CheckpointData`` for cumulative mutation.

    Keeps only the current state array per rank and advances it forward;
    a request for an earlier step replays from step 0.  This bounds RAM to
    one state per bound rank instead of one per (rank, step).
    """

    def __init__(self, advance, fields_of) -> None:
        self._advance = advance
        self._fields_of = fields_of
        self._state: dict[int, tuple[int, object]] = {}

    def __call__(self, rank: int, step: int) -> CheckpointData:
        cached = self._state.get(rank)
        if cached is None or cached[0] > step:
            at, state = -1, None
        else:
            at, state = cached
        while at < step:
            at += 1
            state = self._advance(state, rank, at)
        self._state[rank] = (at, state)
        return self._fields_of(state)


class BoundEvolvingData:
    """One rank's view of an :class:`EvolvingData` workload."""

    def __init__(self, source: EvolvingData, rank: int) -> None:
        self.source = source
        self.rank = rank

    def at_step(self, step: int) -> CheckpointData:
        """This rank's state as of ``step`` (fresh CheckpointData)."""
        return self.source.fn(self.rank, step)

    def template(self) -> CheckpointData:
        """A layout template (step-0 state) for restore paths."""
        return self.at_step(0)

    @property
    def total_bytes(self) -> int:
        return self.template().total_bytes
