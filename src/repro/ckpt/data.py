"""Checkpoint data descriptors.

A rank's checkpoint contribution is an ordered list of named *fields*
(NekCEM writes geometry plus the six electromagnetic components
Ex, Ey, Ez, Hx, Hy, Hz).  Payload bytes are optional: small-scale runs carry
real field data end-to-end (restart round-trips are bit-exact), figure-scale
runs carry sizes only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..buffers import ByteRope, BytesLike

__all__ = ["Field", "CheckpointData"]


@dataclass(frozen=True)
class Field:
    """One named data block in a rank's checkpoint contribution.

    ``payload`` accepts any bytes-like (including a :class:`ByteRope`);
    the data plane moves it as segment references, never copying until the
    file-system commit boundary.
    """

    name: str
    nbytes: int
    payload: Optional[BytesLike] = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative field size: {self.nbytes}")
        if self.payload is not None and len(self.payload) != self.nbytes:
            raise ValueError(
                f"field {self.name!r}: payload length {len(self.payload)} "
                f"!= nbytes {self.nbytes}"
            )

    @property
    def view(self) -> Optional[ByteRope]:
        """The payload as a zero-copy rope (``None`` when size-only)."""
        if self.payload is None:
            return None
        return ByteRope.wrap(self.payload)


class CheckpointData:
    """One rank's ordered checkpoint contribution.

    Parameters
    ----------
    fields:
        The data blocks, in file order.  All participating ranks must use
        the same field names in the same order (the SPMD contract).
    header_bytes:
        Size of the per-file master header (application name, version,
        offset table...).  Written once per output file by that file's
        first writer.
    """

    def __init__(self, fields: Sequence[Field], header_bytes: int = 4096) -> None:
        if header_bytes < 0:
            raise ValueError(f"negative header size: {header_bytes}")
        self.fields = list(fields)
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names: {names}")
        self.header_bytes = header_bytes
        # Memoized concatenation, keyed by the copy mode active when built
        # (eager/zerocopy runs of the same data must not share a cache).
        self._payload_rope: Optional[tuple[str, ByteRope]] = None

    @property
    def n_fields(self) -> int:
        """Number of fields."""
        return len(self.fields)

    @property
    def total_bytes(self) -> int:
        """Sum of field sizes (excluding any header)."""
        return sum(f.nbytes for f in self.fields)

    @property
    def field_sizes(self) -> tuple[int, ...]:
        """Per-field sizes, in order."""
        return tuple(f.nbytes for f in self.fields)

    @property
    def has_payload(self) -> bool:
        """Whether every field carries real bytes."""
        return all(f.payload is not None for f in self.fields)

    def concatenated_payload(self) -> Optional[ByteRope]:
        """All field payloads joined in order (None if any is missing).

        Returns a zero-copy :class:`~repro.buffers.ByteRope` referencing
        the fields' own buffers, memoized per instance — rbIO's buffered
        nf=ng writer path calls this once per flush, and workers package it
        every checkpoint step.
        """
        if not self.has_payload:
            return None
        from ..buffers import copy_mode
        cached = self._payload_rope
        mode = copy_mode()
        if cached is not None and cached[0] == mode:
            return cached[1]
        rope = ByteRope.concat([f.payload for f in self.fields])
        self._payload_rope = (mode, rope)
        return rope

    @classmethod
    def synthetic(cls, bytes_per_field: Sequence[int],
                  names: Optional[Sequence[str]] = None,
                  header_bytes: int = 4096) -> "CheckpointData":
        """Size-only checkpoint data (figure-scale workloads)."""
        if names is None:
            names = [f"field{i}" for i in range(len(bytes_per_field))]
        return cls(
            [Field(n, b) for n, b in zip(names, bytes_per_field)],
            header_bytes=header_bytes,
        )

    @classmethod
    def nekcem_like(cls, points_per_rank: int, header_bytes: int = 4096
                    ) -> "CheckpointData":
        """A NekCEM-shaped contribution for ``points_per_rank`` grid points.

        Layout follows the paper's vtk output: a geometry block
        (coordinates + cell connectivity, ~10 doubles-equivalent per point)
        followed by the six field components at 8 bytes per point each.
        The byte-per-point total matches the paper's reported file sizes
        (39 GB for 275M points => ~142 B/point).
        """
        geom = 94 * points_per_rank  # coordinates, connectivity, cell types
        comp = 8 * points_per_rank
        names = ["geometry", "Ex", "Ey", "Ez", "Hx", "Hy", "Hz"]
        sizes = [geom] + [comp] * 6
        return cls.synthetic(sizes, names, header_bytes=header_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CheckpointData {self.n_fields} fields, "
            f"{self.total_bytes} B{' +payload' if self.has_payload else ''}>"
        )
