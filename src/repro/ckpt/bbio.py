"""bbIO — burst-buffer staged checkpointing (multi-level extension of rbIO).

bbIO keeps rbIO's two-phase application-level aggregation — workers Isend
their package to a dedicated writer, the writer reorders to the file-major
image — but replaces the synchronous PFS commit with a *staged* one:

1. the writer reserves capacity in its failure domain's burst buffer (the
   only point where backpressure can reach the application: the reserve
   blocks exactly when the background drain has fallen behind);
2. the file image is ingested at device speed (plus the collective-network
   link for ION-attached buffers) and registered as resident;
3. optionally the package is replicated to a partner failure domain's
   buffer over the torus;
4. the package is handed to the background drain, and workers are
   acknowledged immediately — the PFS write happens later, overlapped with
   computation.

Restart prefers the cheapest tier that still holds the checkpoint: the
local buffer, then the partner replica (zero PFS reads — the buffer/partner
paths distribute field blocks over the group communicator and never touch
the file system), then the PFS files the drain produced, which are
bit-identical to rbIO's nf=ng files.
"""

from __future__ import annotations

from typing import Optional

from ..buffers import ByteRope, zeros
from ..faults import UnrecoverableCheckpointError
from ..mpi import RankContext
from ..mpiio import Hints
from ..staging import (
    StagedPackage,
    StagingConfig,
    StagingError,
    StagingService,
    attach_staging,
    staging_of,
)
from ..storage import FSError
from .data import CheckpointData
from .rbio import ReducedBlockingIO

__all__ = ["BurstBufferIO"]

_RESTORE_TAG = 1 << 25

#: Restore-source preference values.
_SOURCES = ("auto", "buffer", "partner", "pfs")

#: Scatter payload the restoring writer sends when the staged image turned
#: out to be corrupt after the tier decision was already broadcast: workers
#: must raise rather than hang (or worse, accept damaged bytes).
_CORRUPT = "__bbio_corrupt__"


class BurstBufferIO(ReducedBlockingIO):
    """The bbIO strategy: rbIO aggregation + asynchronous staged commit.

    Parameters
    ----------
    workers_per_writer:
        Group size, as in rbIO.
    max_outstanding:
        Worker-side flow control (packages in flight before a worker waits
        for its writer's acknowledgement).  Defaults to 2 — unlike rbIO's
        unbounded default, bbIO bounds it so buffer backpressure is
        *measurable* at the workers instead of hiding in send buffers.
    staging:
        The staging-tier configuration used when the job has no staging
        service attached yet (capacity, device/drain bandwidth,
        replication).
    restore_from:
        Restart tier preference: ``"auto"`` (buffer, then partner replica,
        then PFS), or force ``"buffer"`` / ``"partner"`` / ``"pfs"``.
        Forcing a tier that does not hold the checkpoint raises
        :class:`~repro.staging.StagingError`.
    """

    name = "bbio"

    def __init__(self, workers_per_writer: int = 64,
                 max_outstanding: Optional[int] = 2,
                 staging: Optional[StagingConfig] = None,
                 restore_from: str = "auto",
                 hints: Optional[Hints] = None) -> None:
        super().__init__(workers_per_writer=workers_per_writer,
                         single_file=False, max_outstanding=max_outstanding,
                         hints=hints)
        if restore_from not in _SOURCES:
            raise ValueError(
                f"restore_from must be one of {_SOURCES}, got {restore_from!r}"
            )
        self.staging = staging if staging is not None else StagingConfig()
        self.restore_from = restore_from

    def describe(self) -> dict:
        out = super().describe()
        out.update({
            "name": self.name,
            "placement": self.staging.placement,
            "capacity_bytes": self.staging.capacity_bytes,
            "drain_bandwidth": self.staging.drain_bandwidth,
            "replicate": self.staging.replicate,
            "restore_from": self.restore_from,
        })
        return out

    # -- staging plumbing --------------------------------------------------
    def _service(self, ctx: RankContext) -> StagingService:
        """The job's staging service, attached on first use."""
        svc = staging_of(ctx.job)
        if svc is None:
            svc = attach_staging(ctx.job, self.staging, profiler=ctx.profiler)
        return svc

    def _partner_rank(self, svc: StagingService, ctx: RankContext) -> int:
        """World rank of the writer whose buffer holds my group's replica."""
        if svc.replicator is None:
            raise StagingError("partner replication is not enabled")
        group = self.group_of(ctx.rank)
        partner = svc.replicator.partner_group(group, self.n_groups(ctx.comm.size))
        return partner * self.workers_per_writer

    # -- checkpoint --------------------------------------------------------
    def _delta_pfs_commits(self, ctx: RankContext, cache: dict, member_sizes,
                           member_payloads, header_bytes: int, step: int,
                           basedir: str):
        """Generator: plan this generation's drain-time delta commit.

        The burst buffer stages the *full* field-major image (buffer and
        partner restores scatter from it, bit-identical to delta-off), but
        the background drain ships only ``[header][fresh chunks]`` plus the
        manifest.  Returns ``(pfs_commits, wire_nbytes)`` for the staged
        package.
        """
        from .incremental import Manifest, manifest_path, shift_fresh, stats

        group = self.group_of(ctx.rank)
        parents = cache.get("delta_parent")
        parent_step = parents[0] if parents else None
        parent_secs = parents[1] if parents else {}
        group_bytes = sum(sum(s) for s in member_sizes)
        sections, fresh_parts, fresh_total, hits, misses = \
            self._plan_group_delta(member_sizes, member_payloads, step,
                                   parent_secs, range(len(member_sizes)))
        # Chunking + hashing: one pass over the aggregation buffer.
        yield ctx.engine.timeout(group_bytes / ctx.config.memory_bandwidth)
        sections = [shift_fresh(s, step, header_bytes) for s in sections]
        manifest = Manifest(
            strategy=self.name, step=step, parent=parent_step,
            header_bytes=header_bytes, chunking=self.chunking,
            sections=tuple(sections))
        blob = manifest.to_bytes()
        parts = [zeros(header_bytes)] if header_bytes else []
        delta_image = ByteRope.concat(parts + fresh_parts)
        path = self.file_path(basedir, step, group)
        commits = (
            (path, ((0, header_bytes + fresh_total, delta_image),)),
            (manifest_path(path), ((0, len(blob), ByteRope.wrap(blob)),)),
        )
        to_pfs = header_bytes + fresh_total + len(blob)
        cache["delta_parent"] = (step, {s.member: s for s in sections})
        stats.record_commit(group_bytes, to_pfs, hits, misses)
        return commits, to_pfs

    def _stage_package(self, ctx: RankContext, layout, image, step: int,
                       basedir: str, delta_fn=None):
        """Generator: stage the assembled image; degrade to the PFS if the
        local buffer is unusable.  Returns the tier used.

        ``delta_fn`` (when incremental mode applies) is invoked only after
        the image is safely staged, so the degraded direct-PFS path below
        never plans a delta — a degraded generation is always a plain full
        write without a manifest.
        """
        eng = ctx.engine
        svc = self._service(ctx)
        buf = svc.buffer_for(ctx.rank)
        group = self.group_of(ctx.rank)
        total = layout.total_size
        if not buf.lost:
            try:
                yield from buf.reserve(total)
                yield buf.write(total)
            except StagingError as exc:
                if exc.op is None:
                    raise  # usage error (oversized package...), not a fault
                # Device died under us: fall through to degradation.
            else:
                pkg = StagedPackage(eng, step, group,
                                    self.file_path(basedir, step, group),
                                    total, layout=layout, image=image)
                if delta_fn is not None:
                    commits, wire = yield from delta_fn()
                    pkg.pfs_commits = commits
                    pkg.wire_nbytes = wire
                buf.stage(pkg)
                if svc.replicator is not None:
                    partner_rank = self._partner_rank(svc, ctx)
                    try:
                        yield from svc.replicator.replicate(pkg, ctx.rank,
                                                            partner_rank)
                    except StagingError:
                        # Partner buffer unusable: the local copy and the
                        # drain's PFS copy still protect this generation.
                        inj = ctx.job.services.get("faults")
                        if inj is not None:
                            inj.log("replica_skipped", rank=ctx.rank,
                                    step=step, group=group)
                svc.drain.enqueue(ctx.rank, buf, pkg)
                return "buffer"
        # Graceful degradation: local buffer lost — commit straight to the
        # PFS like rbIO so the generation is still durable.
        yield from self._commit_private(ctx, layout, image, step, basedir)
        inj = ctx.job.services.get("faults")
        if inj is not None:
            inj.log("bbio_degraded", rank=ctx.rank, step=step, group=group)
        return "pfs"

    def _writer(self, ctx: RankContext, cache: dict, data: CheckpointData,
                step: int, basedir: str):
        """Writer: gather and reorder as rbIO, then stage instead of commit."""
        eng = ctx.engine
        t0 = eng.now
        gcomm = cache["gcomm"]
        layout, image, member_sizes, member_payloads = yield from \
            self._gather_group(ctx, gcomm, data, step)
        delta_fn = None
        if self._delta_active(data):
            delta_fn = lambda: self._delta_pfs_commits(  # noqa: E731
                ctx, cache, member_sizes, member_payloads, data.header_bytes,
                step, basedir)
        yield from self._stage_package(ctx, layout, image, step, basedir,
                                       delta_fn=delta_fn)
        self._ack_group(gcomm)
        t_end = eng.now
        if ctx.profiler is not None:
            ctx.profiler.record_phase(ctx.rank, "stage", t0, t_end,
                                      layout.total_size)
        return self._report(ctx, "writer", t0, t_end, t_end, data.total_bytes)

    def _writer_faulted(self, ctx: RankContext, inj, cache: dict,
                        data: CheckpointData, step: int, basedir: str,
                        now: float):
        """Crash-aware writer step: stage own group (with degradation),
        adopt orphaned groups with a direct PFS commit."""
        eng = ctx.engine
        t0 = eng.now
        gcomm = cache["gcomm"]
        g = self.group_of(ctx.rank)
        n_ranks = ctx.comm.size
        ng = self.n_groups(n_ranks)
        base = g * self.workers_per_writer
        dead_members = tuple(src for src in range(1, gcomm.size)
                             if inj.dead_at(base + src, now))
        layout, image, member_sizes, member_payloads = yield from \
            self._gather_group(ctx, gcomm, data, step,
                               dead_members=dead_members)
        delta_fn = None
        if self._delta_active(data) and not dead_members:
            delta_fn = lambda: self._delta_pfs_commits(  # noqa: E731
                ctx, cache, member_sizes, member_payloads, data.header_bytes,
                step, basedir)
        yield from self._stage_package(ctx, layout, image, step, basedir,
                                       delta_fn=delta_fn)
        self._ack_group(gcomm, dead_members=dead_members)
        for w in self.writer_ranks(n_ranks):
            if not inj.dead_at(w, now):
                continue
            og = self.group_of(w)
            if self._adopter_rank(inj, og, ng, now) == ctx.rank:
                yield from self._adopt_group(ctx, inj, og, data, step,
                                             basedir, now)
        t_end = eng.now
        if ctx.profiler is not None:
            ctx.profiler.record_phase(ctx.rank, "stage", t0, t_end,
                                      layout.total_size)
        return self._report(ctx, "writer", t0, t_end, t_end, data.total_bytes)

    # -- restore -----------------------------------------------------------
    def _locate(self, svc: StagingService, ctx: RankContext, step: int):
        """Find the best available *trustworthy* copy: ``(package, tier)``.

        Copies whose checksum no longer matches (bit-rot, device loss) are
        skipped — detected corruption falls through to the next tier.
        """
        group = self.group_of(ctx.rank)
        want = self.restore_from
        inj = ctx.job.services.get("faults")
        if want in ("auto", "buffer"):
            buf = svc.buffer_for(ctx.rank)
            pkg = None if buf.lost else buf.resident.get((step, group))
            if pkg is not None:
                if pkg.verify():
                    return pkg, "buffer"
                if inj is not None:
                    inj.log("corruption_detected", tier="buffer", group=group,
                            step=step, rank=ctx.rank)
            if want == "buffer":
                raise StagingError(
                    f"step {step} group {group} is not intact in the buffer"
                )
        if want in ("auto", "partner"):
            if svc.replicator is not None:
                partner_rank = self._partner_rank(svc, ctx)
                pbuf = svc.buffer_for(partner_rank)
                pkg = (None if pbuf.lost
                       else svc.replicator.find_replica(partner_rank, group,
                                                        step))
                if pkg is not None:
                    if pkg.verify():
                        return pkg, "partner"
                    if inj is not None:
                        inj.log("corruption_detected", tier="partner",
                                group=group, step=step, rank=ctx.rank)
            if want == "partner":
                raise StagingError(
                    f"no intact partner replica of step {step} group {group}"
                )
        return None, "pfs"

    def restore(self, ctx: RankContext, template: CheckpointData, step: int,
                basedir: str = "/ckpt"):
        """Generator: restore from the cheapest tier holding the checkpoint.

        The group's writer picks the tier and broadcasts the decision; for
        the buffer/partner tiers it reads the staged image and scatters
        each member's field blocks over the group communicator — no file
        system involvement at all.
        """
        t_r0 = ctx.engine.now
        cache = yield from self._setup(ctx)
        gcomm = cache["gcomm"]
        if not cache["am_writer"]:
            tier = yield from gcomm.bcast(root=0, nbytes=8)
            if tier == "fail":
                # Only a forced tier (restore_from="buffer"/"partner") can
                # fail to serve; "auto" always falls through to the PFS.
                if self.restore_from != "auto":
                    raise StagingError(
                        f"step {step} group {self.group_of(ctx.rank)} is "
                        f"not intact in the {self.restore_from} tier")
                raise UnrecoverableCheckpointError(
                    f"no tier can serve step {step} for group "
                    f"{self.group_of(ctx.rank)}", step=step, rank=ctx.rank)
            if tier == "pfs":
                return (yield from super().restore(ctx, template, step,
                                                   basedir))
            msg = yield from gcomm.recv(source=0, tag=_RESTORE_TAG)
            if msg.payload == _CORRUPT:
                raise UnrecoverableCheckpointError(
                    f"staged image of step {step} failed its checksum",
                    step=step, rank=ctx.rank)
            self._span(ctx, "restore", t_r0, ctx.engine.now,
                       template.total_bytes, step=step, tier=tier)
            if msg.payload is None:
                return [None] * template.n_fields
            return list(msg.payload)

        svc = self._service(ctx)
        group = self.group_of(ctx.rank)
        pkg = None
        try:
            pkg, tier = self._locate(svc, ctx, step)
            if tier == "pfs":
                # The PFS copy is only durable once the background drain has
                # committed it; if our package is still in flight, wait it
                # out.  An aborted drain leaves a missing/partial file the
                # PFS restore path then rejects — consistently for every
                # member of the group.
                pending = svc.buffer_for(ctx.rank).resident.get((step, group))
                if pending is not None and not pending.is_drained:
                    try:
                        yield pending.drained
                    except (StagingError, FSError):
                        pass
        except StagingError as exc:
            # A forced tier (restore_from="buffer"/"partner") has nothing
            # intact to serve: broadcast the failure so nobody hangs.
            tier = "fail"
            forced_exc = exc
        yield from gcomm.bcast(tier, root=0, nbytes=8)
        if tier == "fail":
            raise forced_exc
        if tier == "pfs":
            return (yield from super().restore(ctx, template, step, basedir))

        # Pull the staged image back to the writer's memory.  The tier was
        # already broadcast, so device failures here must not raise before
        # the workers' scatter messages are sent — note them and tell the
        # whole group.
        intact = True
        try:
            if tier == "buffer":
                yield svc.buffer_for(ctx.rank).read(pkg.nbytes)
            else:
                partner_rank = self._partner_rank(svc, ctx)
                yield svc.buffer_for(partner_rank).read(pkg.nbytes)
                yield ctx.job.fabric.transfer(partner_rank, ctx.rank,
                                              pkg.nbytes)
        except StagingError:
            intact = False
        # Re-verify after the read: corruption that landed between the
        # tier decision and now must not be scattered as good data.
        if intact and not pkg.verify():
            intact = False

        # Scatter members' field blocks; slice straight out of the image.
        layout, image = pkg.layout, pkg.image

        def member_blocks(m: int):
            if image is None:
                return None
            return tuple(
                image[layout.block_offset(f, m):
                      layout.block_offset(f, m) + layout.block_size(f, m)]
                for f in range(layout.n_fields)
            )

        for m in range(1, gcomm.size):
            nbytes = sum(layout.block_size(f, m)
                         for f in range(layout.n_fields))
            gcomm.isend(m, nbytes, tag=_RESTORE_TAG,
                        payload=member_blocks(m) if intact else _CORRUPT)
        if not intact:
            raise UnrecoverableCheckpointError(
                f"staged image of step {step} failed its checksum",
                step=step, path=pkg.path, rank=ctx.rank)
        own = member_blocks(0)
        self._span(ctx, "restore", t_r0, ctx.engine.now,
                   template.total_bytes, step=step, tier=tier)
        if own is None:
            return [None] * template.n_fields
        return list(own)
