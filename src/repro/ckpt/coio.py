"""coIO — tuned MPI-IO collective checkpointing.

All ranks call MPI-IO split-collective writes
(``MPI_File_write_at_all_begin`` / ``_end``).  The number of output files
``nf`` is the tunable:

- ``nf = 1``: every rank of ``MPI_COMM_WORLD`` participates in one
  collective per field on a single shared file;
- ``np : nf = g : 1`` (paper's 64:1): ranks are split into ``np/g`` groups
  of ``g`` (``MPI_Comm_split``), each group collectively writing its own
  file; the groups' collectives proceed independently of each other
  ("split collective" in the paper's terminology).

ROMIO designates aggregators inside each file's communicator (default one
per 32 ranks on BG/P virtual-node mode) and aligns file domains to GPFS
block boundaries — both inherited from :mod:`repro.mpiio`.

The file layout is the NekCEM format of Fig. 2: master header, then one
section per field, each holding the group members' blocks in rank order,
so the collective pattern is one ``write_at_all`` per field.
"""

from __future__ import annotations

from typing import Optional

from ..buffers import zeros
from ..faults import UnrecoverableCheckpointError
from ..mpi import RankContext
from ..mpiio import Hints, MPIFile
from .base import CheckpointStrategy
from .data import CheckpointData
from .layout import FileLayout

__all__ = ["CollectiveIO"]


class CollectiveIO(CheckpointStrategy):
    """The coIO strategy.

    Parameters
    ----------
    ranks_per_file:
        Group size ``g`` so that ``nf = np / g``; ``None`` means ``nf = 1``
        (one shared file for the whole world communicator).
    hints:
        MPI-IO hints; defaults to the BG/P production setting (1 aggregator
        per 32 ranks, aligned file domains).
    """

    name = "coio"

    def __init__(self, ranks_per_file: Optional[int] = None,
                 hints: Optional[Hints] = None) -> None:
        if ranks_per_file is not None and ranks_per_file < 1:
            raise ValueError("ranks_per_file must be >= 1 or None")
        self.ranks_per_file = ranks_per_file
        self.hints = hints or Hints()

    def describe(self) -> dict:
        out = {
            "name": self.name,
            "nf": 1 if self.ranks_per_file is None else f"np/{self.ranks_per_file}",
            "ranks_per_aggregator": self.hints.ranks_per_aggregator,
            "aligned": self.hints.align_file_domains,
        }
        if self.hints.cb_nodes is not None:
            out["cb_nodes"] = self.hints.cb_nodes
        if self.hints.tam != "off":
            out["tam"] = self.hints.tam
        return out

    def configure_tam(self, tam: str = "auto"):
        """Enable two-level aggregation on every file this strategy opens.

        coIO's TAM lives entirely inside the MPI-IO collective write, so
        enabling it is a pure hint change: ranks coalesce their extents
        through node leaders before ROMIO's inter-node shuffle.  The
        resulting files are bit-identical to the flat exchange.
        """
        super().configure_tam(tam)
        self.hints = self.hints.with_(tam=tam)
        return self

    def group_of(self, rank: int) -> int:
        """Output-file group index of a world rank."""
        return 0 if self.ranks_per_file is None else rank // self.ranks_per_file

    def file_path(self, basedir: str, step: int, group: int) -> str:
        """Path of one group's shared output file."""
        return f"{self.step_dir(basedir, step)}/part{group:05d}.vtk"

    # -- setup ------------------------------------------------------------
    def _iocomm(self, ctx: RankContext):
        """Generator: the communicator sharing this rank's output file."""
        cache = self._cache(ctx)
        comm = cache.get("iocomm")
        if comm is None:
            if self.ranks_per_file is None:
                comm = ctx.comm
            else:
                comm = yield from ctx.comm.split(color=self.group_of(ctx.rank))
            cache["iocomm"] = comm
        return comm

    def _group_members(self, ctx: RankContext) -> range:
        """World ranks sharing this rank's output file."""
        if self.ranks_per_file is None:
            return range(ctx.comm.size)
        g = self.group_of(ctx.rank)
        lo = g * self.ranks_per_file
        return range(lo, min(lo + self.ranks_per_file, ctx.comm.size))

    def ghost(self, ctx: RankContext, data: CheckpointData, step: int,
              basedir: str = "/ckpt"):
        """A crashed rank still joins the (cached) communicator split."""
        yield from self._iocomm(ctx)

    # -- checkpoint -------------------------------------------------------
    def checkpoint(self, ctx: RankContext, data: CheckpointData, step: int,
                   basedir: str = "/ckpt"):
        """Generator: one collective write per field on the group file."""
        eng = ctx.engine
        t0 = eng.now
        comm = yield from self._iocomm(ctx)
        inj = ctx.job.services.get("faults")
        if inj is not None and inj.has_rank_faults and any(
                inj.dead_at(r, t0) for r in self._group_members(ctx)):
            # A dead member can never rejoin the collective; the whole
            # group skips this generation (every survivor evaluates the
            # same oracle at the same post-barrier time) and restore falls
            # back to the newest complete one.
            return self._report(ctx, "collective", t0, t0, t0, 0)
        if self._delta_active(data):
            return (yield from self._checkpoint_delta(ctx, data, step,
                                                      basedir, comm, t0))
        layout: FileLayout = yield from comm.allgather(
            list(data.field_sizes), nbytes=8 * data.n_fields,
            map_fn=lambda sizes: FileLayout(data.header_bytes, sizes),
        )
        path = self.file_path(basedir, step, self.group_of(ctx.rank))
        f = yield from MPIFile.open(ctx, comm, path, hints=self.hints)
        # Master header: contributed by the group's rank 0 in a collective
        # call of its own (everyone else contributes an empty region).
        if data.header_bytes:
            hdr = zeros(data.header_bytes) if data.has_payload else None
            if comm.rank == 0:
                yield from f.write_at_all(0, data.header_bytes, payload=hdr)
            else:
                yield from f.write_at_all(0, 0)
        # One collective write per field section (file sorted by fields).
        # Fields contribute zero-copy views; the two-phase exchange slices
        # and ships segment references, never the bytes themselves.
        for i, fld in enumerate(data.fields):
            offset = layout.block_offset(i, comm.rank)
            yield from f.write_at_all(offset, fld.nbytes, payload=fld.view)
        yield from f.close()
        t_end = eng.now
        return self._report(ctx, "collective", t0, t_end, t_end, data.total_bytes)

    def _checkpoint_delta(self, ctx: RankContext, data: CheckpointData,
                          step: int, basedir: str, comm, t0: float):
        """Generator: collective delta commit on the group file.

        Every member chunks its payload against its cached parent section,
        the group allgathers ``(section, fresh_bytes)`` pairs, and one
        shared merge lays the fresh regions out contiguously after the
        header (prefix sums) — producing a single manifest for the file.
        Each member then issues one collective write of its fresh region;
        the group's rank 0 writes the manifest.
        """
        from .incremental import (Manifest, plan_section, shift_fresh, stats,
                                  write_manifest)

        eng = ctx.engine
        cache = self._cache(ctx)
        parent = cache.get("delta_parent")  # (step, shifted section) | None
        plan = plan_section(
            data.concatenated_payload(), data.field_sizes, member=comm.rank,
            step=step, params=self.chunking,
            parent_section=parent[1] if parent else None)
        # Chunking + hashing is one pass over the member's image.
        t_c0 = eng.now
        yield eng.timeout(data.total_bytes / ctx.config.memory_bandwidth)
        self._span(ctx, "chunk", t_c0, eng.now, data.total_bytes,
                   cat="phase", step=step)
        header_bytes = data.header_bytes
        parent_step = parent[0] if parent else None
        chunking = self.chunking
        strategy_name = self.name

        def merge(entries):
            bases = []
            sections = []
            pos = header_bytes
            for sec, fresh_bytes in entries:
                bases.append(pos)
                sections.append(shift_fresh(sec, step, pos))
                pos += fresh_bytes
            manifest = Manifest(
                strategy=strategy_name, step=step, parent=parent_step,
                header_bytes=header_bytes, chunking=chunking,
                sections=tuple(sections))
            return manifest, tuple(bases), pos

        manifest, bases, _total = yield from comm.allgather(
            (plan.section, plan.fresh_bytes),
            nbytes=16 + 48 * len(plan.section.chunks), map_fn=merge)
        path = self.file_path(basedir, step, self.group_of(ctx.rank))
        f = yield from MPIFile.open(ctx, comm, path, hints=self.hints)
        if header_bytes:
            if comm.rank == 0:
                yield from f.write_at_all(0, header_bytes,
                                          payload=zeros(header_bytes))
            else:
                yield from f.write_at_all(0, 0)
        yield from f.write_at_all(bases[comm.rank], plan.fresh_bytes,
                                  payload=plan.fresh)
        yield from f.close()
        to_pfs = plan.fresh_bytes
        if comm.rank == 0:
            manifest_bytes = yield from write_manifest(ctx, manifest, path)
            to_pfs += header_bytes + manifest_bytes
        cache["delta_parent"] = (step, manifest.section_for(comm.rank))
        stats.record_commit(data.total_bytes, to_pfs, plan.hits, plan.misses)
        t_end = eng.now
        return self._report(ctx, "collective", t0, t_end, t_end,
                            data.total_bytes)

    # -- restore ----------------------------------------------------------
    def restore(self, ctx: RankContext, template: CheckpointData, step: int,
                basedir: str = "/ckpt"):
        """Generator: read this rank's blocks back from the group file."""
        t_r0 = ctx.engine.now
        if self.delta != "off":
            from .incremental import manifest_exists
            group = self.group_of(ctx.rank)
            if manifest_exists(ctx, self.file_path(basedir, step, group)):
                member = (ctx.rank if self.ranks_per_file is None
                          else ctx.rank % self.ranks_per_file)
                fields = yield from self._delta_restore(
                    ctx, template, step, member=member,
                    path_of=lambda s: self.file_path(basedir, s, group))
                self._span(ctx, "restore", t_r0, ctx.engine.now,
                           template.total_bytes, step=step, delta=True)
                return fields
        comm = yield from self._iocomm(ctx)
        layout: FileLayout = yield from comm.allgather(
            list(template.field_sizes), nbytes=8 * template.n_fields,
            map_fn=lambda sizes: FileLayout(template.header_bytes, sizes),
        )
        path = self.file_path(basedir, step, self.group_of(ctx.rank))
        handle = yield from ctx.fs.open(path)
        if handle.file.size != layout.total_size:
            yield from ctx.fs.close(handle)
            raise UnrecoverableCheckpointError(
                f"{path!r} has {handle.file.size} B, expected "
                f"{layout.total_size} B", step=step, path=path, rank=ctx.rank)
        fields = []
        for i, fld in enumerate(template.fields):
            offset = layout.block_offset(i, comm.rank)
            chunk = yield from ctx.fs.read(handle, offset, fld.nbytes)
            fields.append(chunk)
        yield from ctx.fs.close(handle)
        self._span(ctx, "restore", t_r0, ctx.engine.now,
                   template.total_bytes, step=step)
        return fields
