"""Checkpoint file layout: header + per-field sections in member order.

NekCEM output files (Fig. 2 of the paper) are a master header followed by
data blocks *sorted by field*: section ``f`` is the concatenation of every
participating rank's field-``f`` block, in rank order, so grid-point
numbering stays consistent within the file.  This layout is why nf=1 writers
must commit field by field — a writer cannot know field ``f+1``'s section
offset territory is safe to skip ahead into without finishing ``f``'s
(shared) section.

:class:`FileLayout` computes every offset for one output file shared by
``m`` members, for uniform or ragged per-member field sizes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["FileLayout"]


class FileLayout:
    """Offset map of one checkpoint file with ``m`` member contributions.

    Parameters
    ----------
    header_bytes:
        Master-header size at offset 0.
    member_field_sizes:
        ``[member][field]`` sizes.  All members must have the same field
        count (the SPMD contract).
    """

    def __init__(self, header_bytes: int, member_field_sizes: Sequence[Sequence[int]]) -> None:
        if header_bytes < 0:
            raise ValueError("negative header size")
        if not member_field_sizes:
            raise ValueError("need at least one member")
        sizes = np.asarray(member_field_sizes, dtype=np.int64)
        if sizes.ndim != 2:
            raise ValueError("members disagree on field count")
        if (sizes < 0).any():
            raise ValueError("negative field size")
        self.header_bytes = header_bytes
        self.n_members, self.n_fields = sizes.shape
        self.sizes = sizes
        # Section sizes and their start offsets.
        section_totals = sizes.sum(axis=0)
        self.section_offsets = header_bytes + np.concatenate(
            ([0], np.cumsum(section_totals[:-1]))
        )
        # Within each section, each member's block offset.
        within = np.zeros_like(sizes)
        within[1:, :] = np.cumsum(sizes[:-1, :], axis=0)
        self._within = within
        self.total_size = int(header_bytes + section_totals.sum())

    @classmethod
    def uniform(cls, header_bytes: int, field_sizes: Sequence[int], n_members: int
                ) -> "FileLayout":
        """Layout where every member contributes identical field sizes."""
        return cls(header_bytes, [list(field_sizes)] * n_members)

    def block_offset(self, field: int, member: int) -> int:
        """File offset of ``member``'s block within ``field``'s section."""
        self._check(field, member)
        return int(self.section_offsets[field] + self._within[member, field])

    def block_size(self, field: int, member: int) -> int:
        """Size of ``member``'s block in ``field``'s section."""
        self._check(field, member)
        return int(self.sizes[member, field])

    def section_range(self, field: int) -> tuple[int, int]:
        """``[lo, hi)`` byte range of one field section."""
        if not 0 <= field < self.n_fields:
            raise ValueError(f"field {field} out of range")
        lo = int(self.section_offsets[field])
        return lo, lo + int(self.sizes[:, field].sum())

    def member_total(self, member: int) -> int:
        """Total bytes contributed by one member."""
        if not 0 <= member < self.n_members:
            raise ValueError(f"member {member} out of range")
        return int(self.sizes[member, :].sum())

    def _check(self, field: int, member: int) -> None:
        if not 0 <= field < self.n_fields:
            raise ValueError(f"field {field} out of range")
        if not 0 <= member < self.n_members:
            raise ValueError(f"member {member} out of range")
