"""Analytic model of incremental (delta) checkpoint writes.

Extends the paper's Eq. 1 production-time machinery to delta-sized
checkpoints: when only a fraction ``f`` of the state mutates between
generations, a content-defined-chunking delta writes roughly

    f_eff = min(1, f + (mutated regions) * avg_chunk / image)

of the image — the mutated fraction plus one partially-dirty chunk per
mutated-region boundary (chunk granularity amplification) — and every
generation additionally pays the fixed header + manifest bytes.  Over a
chain of ``n`` generations starting from a full generation 0, the
steady-state bytes-to-PFS reduction approaches

    reduction(n) = n / (1 + (n - 1) * f_eff)

which is what ``bench_ext_incremental.py`` measures against the simulator.
"""

from __future__ import annotations

__all__ = [
    "effective_delta_fraction",
    "chain_reduction",
    "delta_checkpoint_seconds",
    "incremental_production_improvement",
]


def effective_delta_fraction(mutated_fraction: float, image_bytes: int,
                             avg_chunk: int, regions_per_step: int = 1,
                             overhead_bytes: int = 0) -> float:
    """Fraction of the image a delta generation actually writes.

    ``regions_per_step`` contiguous mutated regions each dirty up to two
    boundary chunks beyond the region itself; ``overhead_bytes`` is the
    per-generation fixed cost (header + manifest).  Clamped to 1 — a delta
    can never cost more than the full write it replaces plus overhead.
    """
    if not 0.0 <= mutated_fraction <= 1.0:
        raise ValueError(
            f"mutated_fraction must be in [0, 1], got {mutated_fraction}")
    if image_bytes <= 0 or avg_chunk <= 0:
        raise ValueError("image_bytes and avg_chunk must be positive")
    if regions_per_step < 0 or overhead_bytes < 0:
        raise ValueError("negative regions_per_step/overhead_bytes")
    boundary = 2.0 * regions_per_step * avg_chunk / image_bytes
    f = min(1.0, mutated_fraction + boundary)
    return min(1.0 + overhead_bytes / image_bytes,
               f + overhead_bytes / image_bytes)


def chain_reduction(n_generations: int, effective_fraction: float) -> float:
    """Bytes-to-PFS reduction of an ``n``-generation delta chain.

    Generation 0 is always full; the remaining ``n - 1`` write
    ``effective_fraction`` each, so full-write bytes over delta bytes is
    ``n / (1 + (n - 1) * f_eff)``.
    """
    if n_generations < 1:
        raise ValueError("need at least one generation")
    if effective_fraction <= 0:
        raise ValueError("effective_fraction must be positive")
    return n_generations / (1.0 + (n_generations - 1) * effective_fraction)


def delta_checkpoint_seconds(t_full_checkpoint: float,
                             effective_fraction: float) -> float:
    """Blocked seconds per delta checkpoint, scaled from the full write.

    First-order model: checkpoint time is bandwidth-dominated, so the
    delta write costs the full write scaled by the byte fraction shipped.
    """
    if t_full_checkpoint < 0:
        raise ValueError("negative checkpoint time")
    if effective_fraction <= 0:
        raise ValueError("effective_fraction must be positive")
    return t_full_checkpoint * min(1.0, effective_fraction)


def incremental_production_improvement(t_full_checkpoint: float,
                                       effective_fraction: float,
                                       t_computation_step: float,
                                       nc: int) -> float:
    """Eq. 1 speedup of delta writes over full writes of the same strategy.

    The delta term enters the interval model as a smaller per-checkpoint
    blocked time; see also
    :meth:`repro.ckpt.CheckpointSchedule.young_incremental`, which uses
    the same scaled cost to pick a shorter optimal interval.
    """
    from ..ckpt.schedule import production_improvement

    t_delta = delta_checkpoint_seconds(t_full_checkpoint, effective_fraction)
    return production_improvement(t_full_checkpoint, t_delta,
                                  t_computation_step, nc)
