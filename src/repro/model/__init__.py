"""Analytic models from the paper: Eq. 1 production time, Eqs. 2-7 speedup."""

from ..ckpt.schedule import checkpoint_ratio, production_improvement
from .speedup import SpeedupModel, blocked_processor_seconds

__all__ = [
    "checkpoint_ratio",
    "production_improvement",
    "SpeedupModel",
    "blocked_processor_seconds",
]
