"""Analytic models: Eq. 1 production time, Eqs. 2-7 speedup, multi-level.

The multi-level efficiency model (per-tier Young intervals for a burst
buffer + partner + PFS hierarchy) lives in :mod:`repro.staging.model` and
is re-exported here next to the paper's flat Eq. 1 machinery it extends.
"""

from ..ckpt.schedule import checkpoint_ratio, production_improvement
from ..staging.model import MultiLevelModel, TierSpec
from .incremental import (
    chain_reduction,
    delta_checkpoint_seconds,
    effective_delta_fraction,
    incremental_production_improvement,
)
from .speedup import SpeedupModel, blocked_processor_seconds

__all__ = [
    "checkpoint_ratio",
    "production_improvement",
    "MultiLevelModel",
    "TierSpec",
    "SpeedupModel",
    "blocked_processor_seconds",
    "effective_delta_fraction",
    "chain_reduction",
    "delta_checkpoint_seconds",
    "incremental_production_improvement",
]
