"""Analytic speedup model of rbIO over coIO (paper Section V-C2, Eqs. 2-7).

The paper quantifies rbIO's advantage by *total processor time blocked on
I/O* per checkpoint step:

    Speedup = T_coIO / T_rbIO                                        (2)
    T_coIO  = np * S / BW_coIO                                       (3)
    T_rbIO  = (np - ng) * (S/BW_p + lambda * S/BW_rbIO)
              + ng * S / BW_rbIO                                     (4)

where ``S`` is the checkpoint size, ``BW_p`` the perceived (Isend-side)
bandwidth, and ``lambda`` the fraction of the writers' write time that
workers remain blocked.  Substituting and using
``(np - ng)/np ~ 1`` and ``BW_coIO / BW_p ~ 1e-6`` gives

    Speedup ~ 1 / ((lambda + (ng/np)(1 - lambda)) * BW_coIO/BW_rbIO) (6)

and, with NekCEM's lambda ~ 0 (writers drain between checkpoint steps),

    Speedup ~ (np/ng) * BW_rbIO / BW_coIO.                           (7)

:class:`SpeedupModel` evaluates all of these; benchmarks cross-check the
model against blocked-time totals measured in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ckpt import CheckpointResult

__all__ = ["SpeedupModel", "blocked_processor_seconds"]


def blocked_processor_seconds(result: CheckpointResult) -> float:
    """Total processor-seconds blocked on I/O in a measured checkpoint step.

    For collective approaches this is every rank's full I/O window; for
    rbIO it is the workers' Isend windows plus the writers' commit time —
    exactly the quantity Eqs. (3)/(4) model.
    """
    blocked = (result.t_blocked_end - result.t_start).sum()
    # Writers' commit time blocks the writer processors themselves.
    writer_extra = 0.0
    for i, role in enumerate(result.roles):
        if role == "writer":
            writer_extra += float(
                result.t_complete[i] - result.t_blocked_end[i]
            )
    return float(blocked) + writer_extra


@dataclass(frozen=True)
class SpeedupModel:
    """Parameters of the Eq. 2-7 model.

    Bandwidths in bytes/second; ``lam`` is the paper's lambda (worker
    blocking fraction of writer write time), ``~0`` for NekCEM.
    """

    np_ranks: int
    ng_writers: int
    bw_coio: float
    bw_rbio: float
    bw_perceived: float
    lam: float = 0.0

    def __post_init__(self) -> None:
        if self.np_ranks < 1 or not 0 < self.ng_writers <= self.np_ranks:
            raise ValueError("need 0 < ng <= np")
        if min(self.bw_coio, self.bw_rbio, self.bw_perceived) <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError("lambda must be in [0, 1]")

    # -- blocked-time predictions (Eqs. 3 and 4) --------------------------
    def t_coio(self, file_bytes: float) -> float:
        """Eq. 3: total blocked processor-seconds under coIO."""
        return self.np_ranks * file_bytes / self.bw_coio

    def t_rbio(self, file_bytes: float) -> float:
        """Eq. 4: total blocked processor-seconds under rbIO."""
        workers = self.np_ranks - self.ng_writers
        worker_term = workers * (
            file_bytes / self.bw_perceived
            + self.lam * file_bytes / self.bw_rbio
        )
        writer_term = self.ng_writers * file_bytes / self.bw_rbio
        return worker_term + writer_term

    # -- speedups -----------------------------------------------------------
    def speedup_exact(self, file_bytes: float = 1.0) -> float:
        """Eq. 5: T_coIO / T_rbIO (independent of S; S cancels)."""
        return self.t_coio(file_bytes) / self.t_rbio(file_bytes)

    def speedup_approx(self) -> float:
        """Eq. 6: the paper's approximation (drops the BW_p term)."""
        frac = self.ng_writers / self.np_ranks
        return 1.0 / (
            (self.lam + frac * (1.0 - self.lam)) * (self.bw_coio / self.bw_rbio)
        )

    def speedup_limit(self) -> float:
        """Eq. 7: the lambda -> 0 limit, (np/ng) * BW_rbIO/BW_coIO."""
        return (self.np_ranks / self.ng_writers) * (self.bw_rbio / self.bw_coio)

    @classmethod
    def from_results(cls, coio: CheckpointResult, rbio: CheckpointResult,
                     lam: float = 0.0) -> "SpeedupModel":
        """Extract model parameters from two measured checkpoint steps."""
        ng = len(rbio.writer_ranks)
        return cls(
            np_ranks=rbio.n_ranks,
            ng_writers=ng,
            bw_coio=coio.write_bandwidth,
            bw_rbio=rbio.write_bandwidth,
            bw_perceived=rbio.perceived_bandwidth,
            lam=lam,
        )

    def describe(self) -> dict:
        """Model parameters and the three speedup figures."""
        return {
            "np": self.np_ranks,
            "ng": self.ng_writers,
            "bw_coio_gbps": self.bw_coio / 1e9,
            "bw_rbio_gbps": self.bw_rbio / 1e9,
            "bw_perceived_tbps": self.bw_perceived / 1e12,
            "lambda": self.lam,
            "speedup_eq5": self.speedup_exact(),
            "speedup_eq6": self.speedup_approx(),
            "speedup_eq7": self.speedup_limit(),
        }
