"""Message transport over the simulated torus fabric."""

from .fabric import Fabric, FabricStats, stats

__all__ = ["Fabric", "FabricStats", "stats"]
