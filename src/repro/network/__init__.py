"""Message transport over the simulated torus fabric."""

from .fabric import Fabric

__all__ = ["Fabric"]
