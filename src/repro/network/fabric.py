"""Message transport over the simulated Blue Gene/P fabric.

The fabric models the part of the network that shapes the paper's results:

- **Endpoint serialization.**  Every node has one injection and one ejection
  pipe whose bandwidth is the node's aggregate torus capacity (six links at
  425 MB/s each direction).  All traffic into a node shares its ejection
  pipe — this is what makes the 63-into-1 rbIO writer incast take
  ``63 * msg / ejection_bw`` rather than being free.
- **Distance latency.**  Dimension-ordered hop count times the per-hop
  router latency, plus a fixed per-message software overhead.
- **Intermediate links** are *not* individually modelled; checkpoint traffic
  is bulk-synchronous and endpoint-bound, so per-hop contention would add
  cost without changing any of the reproduced curves (see DESIGN.md §2).

Both pipe reservations for a message are made when the message is injected
and the message completes at the later of the two plus latency — the
standard steady-state pipelining approximation, costing exactly one timer
event per message (essential at 65,536 ranks).
"""

from __future__ import annotations

from ..sim import Engine, Event, Pipe
from ..topology import MachineConfig, PsetMap, TorusTopology

__all__ = ["Fabric", "FabricStats", "stats"]


class FabricStats:
    """Process-wide fabric traffic accounting (all Fabric instances).

    Splits message/byte counts by whether the endpoints share a compute
    node (intra-node transfers move over shared memory and never touch the
    torus) and tracks the two-level-aggregation (TAM) coalescing effect:
    ``tam_msgs`` inter-node messages carried ``tam_packages`` original
    per-rank packages, so ``tam_coalesce_ratio`` is the message-count
    reduction factor the node-local aggregation achieved.

    Riders on :meth:`repro.sim.Engine.counters` and the Darshan
    ``summary()``; like the data-plane and delta counters, these accumulate
    until :meth:`reset`.  Per-run numbers are available on each
    :class:`Fabric` instance's :meth:`Fabric.stats`.
    """

    __slots__ = ("msgs_intra", "msgs_inter", "bytes_intra", "bytes_inter",
                 "tam_msgs", "tam_packages")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.msgs_intra = 0
        self.msgs_inter = 0
        self.bytes_intra = 0
        self.bytes_inter = 0
        self.tam_msgs = 0
        self.tam_packages = 0

    @property
    def tam_coalesce_ratio(self) -> float:
        """Average per-rank packages per coalesced TAM message (0 if none)."""
        if self.tam_msgs == 0:
            return 0.0
        return self.tam_packages / self.tam_msgs

    def snapshot(self) -> dict:
        """Counter dict (the rider keys in ``Engine.counters()``)."""
        return {
            "fabric_msgs_intra": self.msgs_intra,
            "fabric_msgs_inter": self.msgs_inter,
            "fabric_bytes_intra": self.bytes_intra,
            "fabric_bytes_inter": self.bytes_inter,
            "tam_msgs": self.tam_msgs,
            "tam_packages": self.tam_packages,
            "tam_coalesce_ratio": self.tam_coalesce_ratio,
        }


#: The process-wide accumulator every :class:`Fabric` reports into.
stats = FabricStats()


class Fabric:
    """Transport service between ranks of one partition.

    Parameters
    ----------
    engine:
        The simulation engine.
    config:
        Machine constants (bandwidths, latencies).
    n_ranks:
        Partition size; rank-to-node placement follows
        :class:`~repro.topology.PsetMap`.
    """

    def __init__(self, engine: Engine, config: MachineConfig, n_ranks: int) -> None:
        self.engine = engine
        self.config = config
        self.psets: PsetMap = config.pset_map(n_ranks)
        self.topology: TorusTopology = config.torus(n_ranks)
        self._node_bw = config.torus_link_bandwidth * config.torus_links_per_node
        # Pipes are created lazily: most nodes never touch the network in a
        # given experiment phase, and 16K Pipe objects up front is waste.
        self._injection: dict[int, Pipe] = {}
        self._ejection: dict[int, Pipe] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_intra = 0
        self.messages_inter = 0
        self.bytes_intra = 0
        self.bytes_inter = 0
        self.tam_msgs = 0
        self.tam_packages = 0
        self._cores_per_node = config.cores_per_node
        self._intra_overhead = config.mpi_overhead
        self._mem_bw = config.memory_bandwidth
        # Checkpoint traffic is many-messages-between-few-node-pairs
        # (workers -> their writer); hop latency per pair is cached.
        self._latency_cache: dict[int, float] = {}
        #: Optional :class:`~repro.faults.FaultInjector`; ``None`` keeps
        #: transfers on the zero-cost fast path.
        self.injector = None

    # -- pipe accessors ----------------------------------------------------
    def injection(self, node: int) -> Pipe:
        """The (shared) injection pipe of a compute node."""
        pipe = self._injection.get(node)
        if pipe is None:
            pipe = Pipe(self.engine, self._node_bw)
            self._injection[node] = pipe
        return pipe

    def ejection(self, node: int) -> Pipe:
        """The (shared) ejection pipe of a compute node."""
        pipe = self._ejection.get(node)
        if pipe is None:
            pipe = Pipe(self.engine, self._node_bw)
            self._ejection[node] = pipe
        return pipe

    # -- transfers -----------------------------------------------------------
    def _pair_latency(self, src: int, dst: int) -> float:
        """Cached overhead + hop latency between two distinct nodes."""
        key = src * self.psets.n_nodes + dst
        lat = self._latency_cache.get(key)
        if lat is None:
            hops = self.topology.hops(src, dst)
            lat = self.config.mpi_overhead + hops * self.config.torus_hop_latency
            self._latency_cache[key] = lat
        return lat

    def latency_between(self, src_rank: int, dst_rank: int) -> float:
        """Pure latency (overhead + hops) between two ranks' nodes."""
        src = self.psets.node_of_rank(src_rank)
        dst = self.psets.node_of_rank(dst_rank)
        if src == dst:
            return self.config.mpi_overhead
        return self._pair_latency(src, dst)

    def transfer(self, src_rank: int, dst_rank: int, nbytes: int) -> Event:
        """Move ``nbytes`` from ``src_rank``'s node to ``dst_rank``'s node.

        Returns an event triggering when the last byte has arrived.
        Same-node transfers cost a memory copy instead of network time.

        Only *sizes* move through the fabric model; message payloads ride
        the :class:`~repro.mpi.core.Message` as zero-copy segment
        references (ropes), so a transfer never copies host bytes — the
        copy cost above is simulated time, accounted separately from the
        data plane's ``bytes_copied`` counter.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        eng = self.engine
        self.messages_sent += 1
        self.bytes_sent += nbytes
        cpn = self._cores_per_node
        src = src_rank // cpn
        dst = dst_rank // cpn
        if src == dst:
            # Intra-node: one memory-bandwidth copy plus software overhead.
            self.messages_intra += 1
            self.bytes_intra += nbytes
            stats.msgs_intra += 1
            stats.bytes_intra += nbytes
            return eng.timeout(self._intra_overhead + nbytes / self._mem_bw)
        self.messages_inter += 1
        self.bytes_inter += nbytes
        stats.msgs_inter += 1
        stats.bytes_inter += nbytes
        t_inj = self.injection(src).reserve(nbytes)
        t_ej = self.ejection(dst).reserve(nbytes)
        done = max(t_inj, t_ej) + self._pair_latency(src, dst)
        if self.injector is not None:
            done = self.injector.net_adjust(eng.now, src_rank, dst_rank, done)
        return eng.timeout(done - eng.now)

    def local_copy_time(self, nbytes: int) -> float:
        """Time for a node-local buffer copy of ``nbytes`` (eager sends)."""
        if nbytes < 0:
            raise ValueError(f"negative copy size: {nbytes}")
        return nbytes / self.config.memory_bandwidth

    def count_tam(self, packages: int) -> None:
        """Record one coalesced TAM message standing in for ``packages``
        original per-rank packages (issued by a node leader)."""
        self.tam_msgs += 1
        self.tam_packages += packages
        stats.tam_msgs += 1
        stats.tam_packages += packages

    # -- diagnostics ---------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate traffic counters (diagnostics).

        ``messages_sent`` / ``bytes_sent`` are totals;
        ``fabric_msgs_intra`` / ``fabric_msgs_inter`` (and the byte
        equivalents) split them by whether the endpoints shared a compute
        node.  ``tam_msgs`` / ``tam_packages`` describe two-level
        aggregation: how many inter-node messages carried how many
        coalesced per-rank packages.
        """
        ratio = self.tam_packages / self.tam_msgs if self.tam_msgs else 0.0
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "fabric_msgs_intra": self.messages_intra,
            "fabric_msgs_inter": self.messages_inter,
            "fabric_bytes_intra": self.bytes_intra,
            "fabric_bytes_inter": self.bytes_inter,
            "tam_msgs": self.tam_msgs,
            "tam_packages": self.tam_packages,
            "tam_coalesce_ratio": ratio,
            "nodes_touched": len(set(self._injection) | set(self._ejection)),
        }
