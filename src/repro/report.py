"""Command-line report generator: every table and figure to CSV/stdout.

Usage::

    python -m repro.report --out results/ [--scale small] [figures...]

Regenerates the paper's evaluation artifacts on the simulated machine and
writes one CSV per table/figure (plus a summary to stdout).  ``--scale
small`` runs a 16x-reduced sweep for quick checks; the default runs the
paper's 16K/32K/64K processor counts (several minutes of wall clock).

Available figure names: fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table1
eq1 eq2_7 inputread (default: all).

``python -m repro.report campaign ...`` delegates to the campaign CLI
(:mod:`repro.campaign.cli`): expand/run declarative sweep specs, serve
the sharded sweep service over HTTP, or submit to a running one.

``python -m repro.report profile SPEC [--index N] [--top N]`` runs one
expanded campaign point under cProfile and prints the top-N functions by
cumulative time — the first stop when a sweep suddenly gets slow.

``python -m repro.report trace APPROACH --np N --out trace.json`` runs one
checkpoint step with full tracing and writes a Chrome ``trace_event`` JSON
(open it in ``chrome://tracing`` or Perfetto).  ``python -m repro.report
timeline APPROACH --np N`` renders the same span store as a per-rank ASCII
Gantt chart plus a critical-path summary, straight to the terminal.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from typing import Callable, Iterable

from .experiments import (
    APPROACH_LABELS,
    eq1_production_improvement,
    eq2_7_speedup,
    fig5_write_bandwidth,
    fig6_overall_time,
    fig7_checkpoint_ratio,
    fig8_file_sweep,
    fig9_distribution_1pfpp,
    fig10_distribution_coio,
    fig11_distribution_rbio,
    fig12_write_activity,
    table1_perceived,
)
from .experiments.inputread import input_read_time

__all__ = ["main", "profile_main", "FIGURES"]


def _write_csv(path: str, header: list, rows: Iterable[list]) -> int:
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        count = 0
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def _per_approach_table(series: dict, sizes: list[int], value_name: str):
    header = ["approach"] + [f"np={n}" for n in sizes]
    rows = [
        [APPROACH_LABELS[key]] + [series[key][n] for n in sizes]
        for key in series
    ]
    return header, rows


def _report_fig5(outdir: str, sizes) -> str:
    series = fig5_write_bandwidth(sizes=sizes)
    header, rows = _per_approach_table(series, list(sizes), "GB/s")
    path = os.path.join(outdir, "fig5_write_bandwidth_gbps.csv")
    _write_csv(path, header, rows)
    return path

def _report_fig6(outdir: str, sizes) -> str:
    series = fig6_overall_time(sizes=sizes)
    header, rows = _per_approach_table(series, list(sizes), "s")
    path = os.path.join(outdir, "fig6_overall_time_s.csv")
    _write_csv(path, header, rows)
    return path

def _report_fig7(outdir: str, sizes) -> str:
    series = fig7_checkpoint_ratio(sizes=sizes)
    header, rows = _per_approach_table(series, list(sizes), "ratio")
    path = os.path.join(outdir, "fig7_checkpoint_ratio.csv")
    _write_csv(path, header, rows)
    return path

def _report_fig8(outdir: str, sizes) -> str:
    series = fig8_file_sweep(sizes=sizes)
    n_files = sorted({nf for per in series.values() for nf in per})
    header = ["np"] + [f"nf={nf}" for nf in n_files]
    rows = [
        [n] + [series[n].get(nf, "") for nf in n_files] for n in series
    ]
    path = os.path.join(outdir, "fig8_rbio_file_sweep_gbps.csv")
    _write_csv(path, header, rows)
    return path

def _report_fig9(outdir: str, sizes) -> str:
    n = max(sizes) if min(sizes) > 16384 else (16384 if 16384 in sizes else min(sizes))
    ranks, times = fig9_distribution_1pfpp(n_ranks=n)
    path = os.path.join(outdir, "fig9_1pfpp_per_rank_io_time.csv")
    _write_csv(path, ["rank", "io_time_s"], zip(ranks.tolist(), times.tolist()))
    return path

def _report_fig10(outdir: str, sizes) -> str:
    n = max(sizes)
    ranks, times = fig10_distribution_coio(n_ranks=n)
    path = os.path.join(outdir, "fig10_coio_per_rank_io_time.csv")
    _write_csv(path, ["rank", "io_time_s"], zip(ranks.tolist(), times.tolist()))
    return path

def _report_fig11(outdir: str, sizes) -> str:
    n = max(sizes)
    out = fig11_distribution_rbio(n_ranks=n)
    path = os.path.join(outdir, "fig11_rbio_per_rank_io_time.csv")
    _write_csv(
        path, ["rank", "io_time_s", "is_writer"],
        zip(out["ranks"].tolist(), out["io_time"].tolist(),
            out["writer_mask"].astype(int).tolist()),
    )
    return path

def _report_fig12(outdir: str, sizes) -> str:
    mid = sorted(sizes)[len(sizes) // 2]
    out = fig12_write_activity(n_ranks=mid)
    path = os.path.join(outdir, "fig12_write_activity.csv")
    rows = []
    for key in ("rbio_ng", "coio_64"):
        for t, c in zip(out[key]["bin_starts"], out[key]["active_writers"]):
            rows.append([APPROACH_LABELS[key], float(t), int(c)])
    _write_csv(path, ["approach", "bin_start_s", "active_writers"], rows)
    return path

def _report_table1(outdir: str, sizes) -> str:
    rows = table1_perceived(sizes=sizes)
    path = os.path.join(outdir, "table1_perceived_bandwidth.csv")
    _write_csv(
        path, ["np", "max_isend_us", "cpu_cycles", "perceived_tbps"],
        [[r["np"], r["time_us"], r["time_cycles"], r["perceived_tbps"]]
         for r in rows],
    )
    return path

def _report_eq1(outdir: str, sizes) -> str:
    out = eq1_production_improvement(n_ranks=max(sizes))
    path = os.path.join(outdir, "eq1_production_improvement.csv")
    _write_csv(path, list(out.keys()), [list(out.values())])
    return path

def _report_eq2_7(outdir: str, sizes) -> str:
    out = eq2_7_speedup(n_ranks=max(sizes))
    path = os.path.join(outdir, "eq2_7_speedup_model.csv")
    _write_csv(path, list(out.keys()), [list(out.values())])
    return path

def _report_inputread(outdir: str, sizes) -> str:
    cases = ([(32768, 136_000), (65536, 546_000)]
             if max(sizes) >= 32768 else [(max(sizes), 8_000)])
    rows = [input_read_time(n, e) for n, e in cases]
    path = os.path.join(outdir, "inputread_presetup.csv")
    keys = ["n_ranks", "elements", "file_mb", "read", "parse", "bcast", "total"]
    _write_csv(path, keys, [[r[k] for k in keys] for r in rows])
    return path


FIGURES: dict[str, Callable] = {
    "fig5": _report_fig5,
    "fig6": _report_fig6,
    "fig7": _report_fig7,
    "fig8": _report_fig8,
    "fig9": _report_fig9,
    "fig10": _report_fig10,
    "fig11": _report_fig11,
    "fig12": _report_fig12,
    "table1": _report_table1,
    "eq1": _report_eq1,
    "eq2_7": _report_eq2_7,
    "inputread": _report_inputread,
}


def profile_main(argv: list[str]) -> int:
    """``repro-report profile``: cProfile one campaign point, print top-N.

    Runs in a fresh process with cold in-memory caches, so the profile
    shows the real simulation cost of the point (the figure-run disk/memory
    caches that make repeated sweeps cheap are per-process).
    """
    import cProfile
    import pstats

    from .campaign.compiler import expand, run_point
    from .campaign.spec import CampaignSpec

    parser = argparse.ArgumentParser(
        prog="python -m repro.report profile",
        description="Profile one expanded campaign point with cProfile.",
    )
    parser.add_argument("spec", help="campaign spec file (YAML/JSON)")
    parser.add_argument("--index", type=int, default=0,
                        help="point to profile, in expansion order (default 0)")
    parser.add_argument("--top", type=int, default=25,
                        help="how many functions to print (default 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "calls"],
                        help="pstats sort key (default cumulative)")
    args = parser.parse_args(argv)

    spec = CampaignSpec.from_file(args.spec)
    expanded = expand(spec)
    if not expanded.points:
        print(f"profile: spec {args.spec!r} expands to no points",
              file=sys.stderr)
        return 2
    if not 0 <= args.index < len(expanded.points):
        print(f"profile: --index {args.index} out of range "
              f"(spec expands to {len(expanded.points)} points)",
              file=sys.stderr)
        return 2
    point = expanded.points[args.index]
    print(f"profiling point {args.index}/{len(expanded.points)}: "
          f"{point.approach} np={point.n_ranks} steps={point.n_steps} "
          f"hash={point.content_hash[:12]}")
    profiler = cProfile.Profile()
    profiler.enable()
    out = run_point(point)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(f"point result: overall_time={out.get('overall_time'):.6g} s  "
          f"gbps={out.get('gbps'):.4g}")
    return 0


def _trace_parser(prog: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("approach",
                        help="strategy key (e.g. rbio_ng, coio_64, 1pfpp)")
    parser.add_argument("--np", type=int, default=128, dest="n_ranks",
                        help="rank count (default 128)")
    parser.add_argument("--steps", type=int, default=1,
                        help="checkpoint steps to run (default 1)")
    parser.add_argument("--delta", default="off",
                        choices=["off", "auto", "require"])
    parser.add_argument("--tam", default="off",
                        choices=["off", "auto", "require"])
    return parser


def _traced_run(args):
    """Run one traced checkpoint experiment; returns the populated tracer."""
    from . import trace as trace_mod
    from .experiments.figures import problem_for, strategy_for
    from .experiments.runner import run_checkpoint_steps

    trace_mod.configure_trace("full")
    strategy = strategy_for(args.approach, args.n_ranks, delta=args.delta,
                            tam=args.tam)
    data = problem_for(args.n_ranks).data()
    run_checkpoint_steps(strategy, args.n_ranks, data, args.steps)
    return trace_mod.tracer


def trace_main(argv: list[str]) -> int:
    """``repro-report trace``: run one traced step, export Chrome JSON."""
    parser = _trace_parser(
        "python -m repro.report trace",
        "Run one checkpoint experiment with full tracing and write a "
        "Chrome trace_event JSON (Perfetto-loadable).")
    parser.add_argument("--out", default="trace.json",
                        help="output path (default trace.json)")
    args = parser.parse_args(argv)
    from . import trace as trace_mod
    from .trace.export import write_chrome_trace

    tracer = _traced_run(args)
    doc = write_chrome_trace(tracer, args.out)
    trace_mod.configure_trace("off")
    print(f"{args.out}: {len(doc['traceEvents'])} events "
          f"({len(tracer.spans)} spans, {len(tracer.events)} instants) — "
          f"open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def timeline_main(argv: list[str]) -> int:
    """``repro-report timeline``: per-rank ASCII Gantt + critical path."""
    parser = _trace_parser(
        "python -m repro.report timeline",
        "Run one traced checkpoint experiment and render a per-rank "
        "terminal Gantt chart plus a critical-path summary.")
    parser.add_argument("--width", type=int, default=72,
                        help="chart width in characters (default 72)")
    parser.add_argument("--rows", type=int, default=32,
                        help="max rank rows before elision (default 32)")
    args = parser.parse_args(argv)
    from . import trace as trace_mod
    from .trace.timeline import render_critical_path, render_timeline

    tracer = _traced_run(args)
    sys.stdout.write(render_timeline(tracer, width=args.width,
                                     max_rows=args.rows))
    sys.stdout.write("\n")
    sys.stdout.write(render_critical_path(tracer))
    trace_mod.configure_trace("off")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "campaign":
        from .campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "timeline":
        return timeline_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Regenerate the paper's tables and figures as CSV files.",
    )
    parser.add_argument("figures", nargs="*", default=[],
                        help=f"subset to run (default all): {' '.join(FIGURES)}")
    parser.add_argument("--out", default="results",
                        help="output directory (default: results/)")
    parser.add_argument("--scale", choices=["paper", "small"], default="paper",
                        help="paper = 16K/32K/64K ranks; small = 1K/2K/4K")
    args = parser.parse_args(argv)

    wanted = args.figures or list(FIGURES)
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")
    sizes = (16384, 32768, 65536) if args.scale == "paper" else (1024, 2048, 4096)
    os.makedirs(args.out, exist_ok=True)
    for name in wanted:
        path = FIGURES[name](args.out, sizes)
        print(f"{name:>10} -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
