"""Multi-tier asynchronous checkpoint staging (burst buffers + drain).

The subsystem behind the bbIO strategy (:class:`repro.ckpt.BurstBufferIO`):

- :mod:`~repro.staging.buffer` — finite-capacity burst-buffer devices with
  modelled ingest/drain bandwidth (ION- or node-attached);
- :mod:`~repro.staging.drain` — background DES processes that trickle
  staged checkpoints to the attached parallel file system between bursts,
  with watermark-based backpressure;
- :mod:`~repro.staging.replicate` — optional partner replication across
  failure domains (restart with zero PFS reads);
- :mod:`~repro.staging.service` — the per-job facade
  (:func:`attach_staging`, mirroring :func:`repro.storage.attach_storage`);
- :mod:`~repro.staging.model` — the multi-level extension of the paper's
  Eq. 1 (per-tier Young intervals, hierarchy efficiency).
"""

from .buffer import BurstBuffer, StagingConfig, StagingError
from .drain import DrainScheduler, StagedPackage
from .model import MultiLevelModel, TierSpec
from .replicate import PartnerReplicator
from .service import StagingService, attach_staging, staging_of

__all__ = [
    "BurstBuffer",
    "StagingConfig",
    "StagingError",
    "DrainScheduler",
    "StagedPackage",
    "MultiLevelModel",
    "PartnerReplicator",
    "StagingService",
    "TierSpec",
    "attach_staging",
    "staging_of",
]
