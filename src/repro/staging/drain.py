"""Background drain: trickle staged checkpoints from the buffer to the PFS.

One drain process runs per writer rank (started lazily at its first staged
package).  Each process pulls packages off its queue in staging order and
commits them to the parallel file system through the writer's own
:class:`~repro.storage.FSClient`, in ``drain_chunk`` bursts:

- below the configured ``high_watermark`` the process paces itself to the
  ``drain_bandwidth`` target, leaving PFS headroom for everything else the
  machine is doing (the "trickle" of aggregated asynchronous
  checkpointing);
- above the watermark it drains flat out until the buffer is safe again.

When a package's last burst is durably on the PFS the drain frees the
package's buffer reservation — which is what unparks writers waiting in
:meth:`~repro.staging.buffer.BurstBuffer.reserve` — and records the drain
window with the profiler (op name ``app:drain``), giving the Fig. 12-style
drain-activity timeline.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..buffers import crc32_of
from ..sim import Engine, Event, IntervalRecorder, Store
from .buffer import BurstBuffer, StagingConfig, StagingError

__all__ = ["StagedPackage", "DrainScheduler"]


class StagedPackage:
    """One group's aggregated checkpoint, resident in a burst buffer.

    ``nbytes`` is the full file-image size (header + field-major data), the
    amount reserved in the buffer and later written to the PFS.  ``image``
    carries real data at payload scale — a zero-copy
    :class:`~repro.buffers.ByteRope` sharing the worker packages' segments
    — and is ``None`` in size-only runs.  ``layout`` (a
    :class:`~repro.ckpt.FileLayout`) lets the restore path slice any
    member's blocks straight out of the image.

    A CRC of the image is taken at staging time, computed incrementally
    over the rope's segments (no materialization); :meth:`verify` re-checks
    it before any consumer (drain, restore) trusts the resident bytes.  In
    size-only runs corruption is modelled by the ``corrupt`` flag alone.
    """

    __slots__ = ("step", "group", "path", "nbytes", "layout", "image",
                 "staged_at", "drained", "checksum", "corrupt",
                 "pfs_commits", "wire_nbytes")

    def __init__(self, engine: Engine, step: int, group: int, path: str,
                 nbytes: int, layout: Any = None,
                 image: Optional[Any] = None) -> None:
        if nbytes < 0:
            raise ValueError(f"negative package size: {nbytes}")
        self.step = step
        self.group = group
        self.path = path
        self.nbytes = int(nbytes)
        self.layout = layout
        self.image = image
        self.staged_at = engine.now
        #: Incremental checkpointing: explicit drain-time PFS commits
        #: ``((path, ((offset, nbytes, rope), ...)), ...)`` replacing the
        #: default single full-image write of ``path`` (delta data file +
        #: manifest).  ``None`` means the classic full write.
        self.pfs_commits: Optional[tuple] = None
        #: Bytes this package actually moves over wires (drain + partner
        #: replication) when ``pfs_commits`` is set; ``None`` means
        #: ``nbytes`` (no dedup).
        self.wire_nbytes: Optional[int] = None
        #: Triggers when the package is durably on the PFS.
        self.drained: Event = Event(engine)
        #: CRC32 of ``image`` at staging time (``None`` in size-only runs).
        self.checksum: Optional[int] = (
            crc32_of(image) if image is not None else None
        )
        #: Set by fault injection (bit-rot, device loss).
        self.corrupt = False

    def verify(self) -> bool:
        """Whether the package's bytes can still be trusted."""
        if self.corrupt:
            return False
        if self.image is not None and self.checksum is not None:
            return crc32_of(self.image) == self.checksum
        return True

    @property
    def is_drained(self) -> bool:
        """Whether the PFS commit has completed."""
        return self.drained.triggered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "drained" if self.is_drained else "staged"
        return f"<StagedPackage step={self.step} g={self.group} {self.nbytes}B {state}>"


class DrainScheduler:
    """Writer-side background drain processes for one job.

    Parameters
    ----------
    engine:
        The job's simulation engine.
    fs_client_of:
        ``rank -> FSClient`` accessor (the drain commits through the
        writer's own file-system client, so ION routing and stream
        accounting stay faithful).
    config:
        The staging configuration (chunking, trickle rate, watermark).
    profiler:
        Optional :class:`~repro.profiling.DarshanProfiler`; drain windows
        are recorded as ``app:drain`` phases.
    """

    def __init__(self, engine: Engine, fs_client_of: Callable[[int], Any],
                 config: StagingConfig, profiler: Any = None) -> None:
        self.engine = engine
        self.fs_client_of = fs_client_of
        self.config = config
        self.profiler = profiler
        self._queues: dict[int, Store] = {}
        self.intervals = IntervalRecorder("drain")
        self.packages_drained = 0
        self.bytes_drained = 0
        self.packages_aborted = 0
        self.last_drain_end = 0.0

    @property
    def backlog(self) -> int:
        """Packages staged but not yet picked up by a drain process."""
        return sum(len(q) for q in self._queues.values())

    def enqueue(self, writer_rank: int, buffer: BurstBuffer,
                pkg: StagedPackage) -> StagedPackage:
        """Hand a staged package to ``writer_rank``'s background drain."""
        queue = self._queues.get(writer_rank)
        if queue is None:
            queue = Store(self.engine)
            self._queues[writer_rank] = queue
            self.engine.process(
                self._drain_loop(writer_rank, queue), name=f"drain{writer_rank}"
            )
        queue.put((buffer, pkg))
        return pkg

    # -- the background process -------------------------------------------
    def _drain_loop(self, rank: int, queue: Store):
        """Generator: drain packages for one writer rank, forever.

        The process parks on an empty queue between checkpoint bursts; a
        parked process holds no pending timer, so it never keeps the
        simulation alive.
        """
        from ..faults.retry import retry_fs
        from ..storage import FSError

        cfg = self.config
        eng = self.engine
        fsc = self.fs_client_of(rank)
        while True:
            buffer, pkg = yield queue.get()
            t0 = eng.now
            handle = None
            try:
                # Trust nothing that sat in the buffer: a lost device or a
                # rotted package must not propagate to the PFS as a
                # plausible-looking checkpoint file.
                if buffer.lost or not pkg.verify():
                    raise StagingError(
                        f"package {pkg.path!r} unreadable before drain",
                        op="drain", path=pkg.path, time=eng.now)
                # Incremental packages carry an explicit commit list (delta
                # data file + manifest); classic packages commit the one
                # full image at offset 0.
                commits = pkg.pfs_commits
                if commits is None:
                    commits = ((pkg.path, ((0, pkg.nbytes, pkg.image),)),)
                committed = 0
                for path, pieces in commits:
                    handle = yield from retry_fs(
                        eng, lambda p=path: fsc.create(p))
                    for base, nbytes, image in pieces:
                        pos = 0
                        while pos < nbytes:
                            # Re-check every burst: bit-rot landing
                            # mid-drain must abort with a short
                            # (rejectable) file, never complete a full-size
                            # file holding corrupt bytes.
                            if buffer.lost or not pkg.verify():
                                raise StagingError(
                                    f"package {pkg.path!r} rotted during "
                                    f"drain",
                                    op="drain", path=pkg.path, time=eng.now)
                            burst = min(cfg.drain_chunk, nbytes - pos)
                            t_burst = eng.now
                            # Read the burst off the staging device, then
                            # push it to the PFS; the device read contends
                            # with ingest by design.
                            yield buffer.read(burst, via_link=False)
                            chunk = None
                            if image is not None:
                                chunk = image[pos : pos + burst]
                            yield from retry_fs(
                                eng,
                                lambda h=handle, p=base + pos, b=burst,
                                c=chunk: fsc.write(h, p, b, payload=c))
                            pos += burst
                            committed += burst
                            if (cfg.drain_bandwidth is not None
                                    and (cfg.high_watermark is None
                                         or buffer.fill_fraction
                                         < cfg.high_watermark)):
                                # Trickle pacing: stretch this burst to the
                                # target rate.
                                target = burst / cfg.drain_bandwidth
                                elapsed = eng.now - t_burst
                                if elapsed < target:
                                    yield eng.timeout(target - elapsed)
                    yield from fsc.close(handle)
                    handle = None
            except (FSError, StagingError) as exc:
                # Abort this package: leave the partial PFS file (size
                # validation rejects it on restore), release the buffer,
                # and fail the drained event so waiters learn the truth.
                if handle is not None and not handle.closed:
                    try:
                        yield from fsc.close(handle)
                    except (FSError, StagingError):
                        pass
                buffer.unstage(pkg)
                if not buffer.lost:
                    buffer.free(pkg.nbytes)
                self.packages_aborted += 1
                if not pkg.drained.triggered:
                    pkg.drained.fail(StagingError(
                        f"drain of {pkg.path!r} aborted: {exc}",
                        op="drain", path=pkg.path, time=eng.now))
                continue
            buffer.unstage(pkg)
            if not buffer.lost:
                buffer.free(pkg.nbytes)
            t1 = eng.now
            self.intervals.record(t0, t1, rank)
            self.packages_drained += 1
            self.bytes_drained += committed
            if t1 > self.last_drain_end:
                self.last_drain_end = t1
            if self.profiler is not None:
                self.profiler.record_phase(rank, "drain", t0, t1, committed)
            pkg.drained.succeed()

    def stats(self) -> dict:
        """Drain counters (diagnostics / benches)."""
        return {
            "packages_drained": self.packages_drained,
            "bytes_drained": self.bytes_drained,
            "packages_aborted": self.packages_aborted,
            "backlog": self.backlog,
            "last_drain_end": self.last_drain_end,
        }
