"""Per-job staging service: buffers + drain + replication in one facade.

:func:`attach_staging` hangs a :class:`StagingService` off ``job.services``
(the same idiom :func:`repro.storage.attach_storage` uses), after which any
checkpoint strategy can stage through it.  The service owns:

- one :class:`~repro.staging.buffer.BurstBuffer` per failure domain —
  per *pset* for ION-attached placement (reached through a modelled
  collective-network link) or per *compute node* for node-local placement —
  created lazily on first touch;
- the :class:`~repro.staging.drain.DrainScheduler` whose background
  processes trickle staged packages to whatever parallel file system is
  attached to the job (GPFS, Lustre, PVFS — the drain only sees the
  ``FSClient`` interface);
- optionally a :class:`~repro.staging.replicate.PartnerReplicator`.

Buffers are shared by every writer in the failure domain, which is exactly
what makes capacity pressure interesting at scale.
"""

from __future__ import annotations

from typing import Any, Optional

from ..mpi import Job
from ..sim import Pipe
from .buffer import BurstBuffer, StagingConfig, StagingError
from .drain import DrainScheduler
from .replicate import PartnerReplicator

__all__ = ["StagingService", "attach_staging", "staging_of"]


class StagingService:
    """The staging tier of one job.

    Parameters
    ----------
    job:
        The owning :class:`~repro.mpi.Job`; its contexts must already have
        file-system clients attached (the drain writes through them).
    config:
        Staging tunables; defaults to :class:`StagingConfig`'s defaults.
    profiler:
        Optional profiler shared with the storage layer, so drain windows
        land in the same Darshan-style record stream.
    """

    def __init__(self, job: Job, config: Optional[StagingConfig] = None,
                 profiler: Any = None) -> None:
        self.job = job
        self.config = config if config is not None else StagingConfig()
        self.profiler = profiler
        self._psets = job.config.pset_map(job.n_ranks)
        self._buffers: dict[int, BurstBuffer] = {}
        self.drain = DrainScheduler(job.engine, self._fs_client_of,
                                    self.config, profiler=profiler)
        self.replicator: Optional[PartnerReplicator] = None
        if self.config.replicate:
            self.replicator = PartnerReplicator(
                job.engine, job.fabric, self.buffer_for,
                shift=self.config.replica_shift,
            )

    def _fs_client_of(self, rank: int):
        fsc = self.job.contexts[rank].fs
        if fsc is None:
            raise StagingError(
                f"rank {rank} has no file-system client; call attach_storage "
                "before the drain runs"
            )
        return fsc

    def domain_of(self, rank: int) -> int:
        """Failure-domain index of a rank (pset or node, per placement)."""
        if self.config.placement == "ion":
            return self._psets.pset_of_rank(rank)
        return self._psets.node_of_rank(rank)

    def buffer_for(self, rank: int) -> BurstBuffer:
        """The burst buffer serving ``rank`` (created on first touch)."""
        domain = self.domain_of(rank)
        buf = self._buffers.get(domain)
        if buf is None:
            cfg = self.config
            link = None
            if cfg.placement == "ion":
                # ION-attached: staged data crosses the pset's collective
                # network link before hitting the device.
                link = Pipe(self.job.engine,
                            self.job.config.collective_net_bandwidth)
            buf = BurstBuffer(
                self.job.engine,
                name=f"bb-{cfg.placement}{domain}",
                capacity_bytes=cfg.capacity_bytes,
                device_bandwidth=cfg.device_bandwidth,
                link=link,
            )
            self._buffers[domain] = buf
        return buf

    @property
    def buffers(self) -> list[BurstBuffer]:
        """All buffers created so far, in domain order."""
        return [self._buffers[d] for d in sorted(self._buffers)]

    def stats(self) -> dict:
        """Aggregated tier statistics (benches / diagnostics)."""
        bufs = self.buffers
        out = {
            "n_buffers": len(bufs),
            "placement": self.config.placement,
            "stalls": sum(b.stalls for b in bufs),
            "stall_seconds": sum(b.stall_seconds for b in bufs),
            "peak_used": max((b.peak_used for b in bufs), default=0),
            "drain": self.drain.stats(),
        }
        if self.replicator is not None:
            out["replication"] = self.replicator.stats()
        return out


def attach_staging(job: Job, config: Optional[StagingConfig] = None,
                   profiler: Any = None) -> StagingService:
    """Create a job's staging tier and register it under ``job.services``.

    Idempotent per job: attaching twice replaces the service (fresh
    buffers), mirroring how tests re-attach storage between phases.
    """
    service = StagingService(job, config=config, profiler=profiler)
    job.services["staging"] = service
    return service


def staging_of(job: Job) -> Optional[StagingService]:
    """The job's staging service, or ``None`` if never attached."""
    return job.services.get("staging")
