"""Multi-level efficiency model: Eq. 1 extended to a tiered hierarchy.

The paper's Eq. 1 compares production time under a *single* checkpoint
tier.  With staging, checkpoints live at several levels — burst buffer,
partner replica, PFS — each with its own commit cost, recovery cost, and
the failure rate it protects against (a node loss restores from the
buffer; a failure-domain loss from the partner; a full-system loss from
the PFS).  This module gives the standard first-order multi-level model
(Moody et al., SCR; Di et al., multi-level optimal intervals):

- per-tier Young interval  ``tau_i = sqrt(2 * w_i / lambda_i)`` — the
  checkpoint period at tier *i* that balances commit overhead against
  expected rework for the failures that tier absorbs;
- steady-state efficiency (useful-work fraction)

  ``E = 1 / (1 + sum_i w_i / tau_i + sum_i lambda_i * (r_i + tau_i / 2))``

  where ``w_i / tau_i`` is tier *i*'s commit overhead and each failure of
  class *i* costs its recovery read ``r_i`` plus half an interval of lost
  work.

Because staged commits overlap computation, ``w_i`` for the buffer tier is
the *blocking* cost (ingest + any capacity stall), not the PFS write time —
which is exactly what :class:`~repro.ckpt.BurstBufferIO` measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TierSpec", "MultiLevelModel"]


@dataclass(frozen=True)
class TierSpec:
    """One checkpoint tier of the hierarchy.

    Parameters
    ----------
    name:
        Tier label ("buffer", "partner", "pfs", ...).
    write_seconds:
        Application-blocking seconds to commit one checkpoint to this tier.
    read_seconds:
        Seconds to restore one checkpoint from this tier.
    failure_rate:
        Rate (failures/second) of the failure class this tier is the
        cheapest survivor of.  ``1 / MTBF`` for that class.
    """

    name: str
    write_seconds: float
    read_seconds: float
    failure_rate: float

    def __post_init__(self) -> None:
        if self.write_seconds <= 0:
            raise ValueError(f"tier {self.name}: write_seconds must be positive")
        if self.read_seconds < 0:
            raise ValueError(f"tier {self.name}: negative read_seconds")
        if self.failure_rate < 0:
            raise ValueError(f"tier {self.name}: negative failure_rate")

    @property
    def mtbf(self) -> float:
        """Mean time between failures of this tier's failure class."""
        if self.failure_rate == 0:
            return math.inf
        return 1.0 / self.failure_rate

    def young_interval(self) -> float:
        """Young's optimal period for this tier alone: sqrt(2 w / lambda)."""
        if self.failure_rate == 0:
            return math.inf
        return math.sqrt(2.0 * self.write_seconds / self.failure_rate)


class MultiLevelModel:
    """First-order efficiency model over a stack of checkpoint tiers."""

    def __init__(self, tiers: list[TierSpec]) -> None:
        if not tiers:
            raise ValueError("need at least one tier")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.tiers = list(tiers)

    def tier(self, name: str) -> TierSpec:
        """Look a tier up by name."""
        for t in self.tiers:
            if t.name == name:
                return t
        raise KeyError(name)

    def intervals(self) -> dict[str, float]:
        """Per-tier Young-optimal checkpoint periods (seconds)."""
        return {t.name: t.young_interval() for t in self.tiers}

    def efficiency(self, intervals: dict[str, float] | None = None) -> float:
        """Steady-state useful-work fraction at the given (or optimal) periods."""
        taus = intervals if intervals is not None else self.intervals()
        overhead = 0.0
        for t in self.tiers:
            tau = taus[t.name]
            if tau <= 0:
                raise ValueError(f"tier {t.name}: interval must be positive")
            if math.isfinite(tau):
                overhead += t.write_seconds / tau
                overhead += t.failure_rate * (t.read_seconds + tau / 2.0)
        return 1.0 / (1.0 + overhead)

    def expected_runtime(self, useful_seconds: float,
                         intervals: dict[str, float] | None = None) -> float:
        """Expected wall-clock to retire ``useful_seconds`` of computation."""
        if useful_seconds < 0:
            raise ValueError("negative workload")
        return useful_seconds / self.efficiency(intervals)

    def improvement_over(self, other: "MultiLevelModel") -> float:
        """Eq. 1 generalised: this hierarchy's speedup over ``other``.

        Both sides run at their own optimal intervals; the ratio of
        expected runtimes equals the inverse ratio of efficiencies.
        """
        return self.efficiency() / other.efficiency()

    @classmethod
    def single_tier(cls, write_seconds: float, read_seconds: float,
                    failure_rate: float, name: str = "pfs") -> "MultiLevelModel":
        """The paper's flat setup: every failure pays the PFS tier."""
        return cls([TierSpec(name, write_seconds, read_seconds, failure_rate)])

    @classmethod
    def staged(cls, buffer_write: float, buffer_read: float,
               pfs_write: float, pfs_read: float,
               node_failure_rate: float, system_failure_rate: float,
               partner_read: float | None = None,
               domain_failure_rate: float = 0.0) -> "MultiLevelModel":
        """A bbIO-shaped hierarchy: buffer [+ partner] + PFS.

        ``buffer_write`` is the worker-blocking cost of a staged commit
        (what bbIO measures); the PFS tier's write cost is the synchronous
        cost a flat scheme would pay, charged only at the PFS tier's own
        (much longer) period.
        """
        tiers = [TierSpec("buffer", buffer_write, buffer_read,
                          node_failure_rate)]
        if partner_read is not None:
            tiers.append(TierSpec("partner", buffer_write, partner_read,
                                  domain_failure_rate))
        tiers.append(TierSpec("pfs", pfs_write, pfs_read,
                              system_failure_rate))
        return cls(tiers)
